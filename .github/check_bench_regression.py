#!/usr/bin/env python3
"""CI perf-regression gate over the committed BENCH_*.json baselines.

Usage:
  check_bench_regression.py [--tolerance=0.15] BASELINE=CURRENT [...]
  check_bench_regression.py --self-test

Each positional argument pairs a committed baseline JSON with a freshly
generated run of the same bench (`--json=` output). The bench kind is read
from the "bench" field of the baseline and dispatched to a comparator.

Only machine-independent quantities gate: read-amplification ratios, merged
point counts, blocks-read reductions, simulated-device latencies. Wall-clock
milliseconds and RSS never fail the gate — CI runners are too noisy — and
scheduler speedups are skipped entirely when either side recorded
hardware_threads == 1 (a 1-core runner cannot demonstrate a speedup, and
BENCH_scheduler.json itself was recorded on one).

Numeric comparisons use a relative tolerance (default 15%, override with
--tolerance=0.10). Stdlib only, so it runs on a bare CI python3.
"""

import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.15


def rel_exceeds(current, baseline, tol):
    """True when `current` regressed from `baseline` by more than tol."""
    if baseline == 0:
        return abs(current) > tol
    return abs(current - baseline) / abs(baseline) > tol


class Gate:
    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.errors = []
        self.checked = 0
        self.skipped = []

    def fail(self, msg):
        self.errors.append(msg)

    def check_close(self, name, current, baseline):
        self.checked += 1
        if rel_exceeds(current, baseline, self.tolerance):
            self.fail(f"{name}: {current} vs baseline {baseline} "
                      f"(> {self.tolerance:.0%} off)")

    def check_equal(self, name, current, baseline):
        self.checked += 1
        if current != baseline:
            self.fail(f"{name}: {current} != baseline {baseline}")

    def check_true(self, name, value):
        self.checked += 1
        if not value:
            self.fail(f"{name}: expected true, got {value!r}")

    def skip(self, msg):
        self.skipped.append(msg)


def require_same_config(gate, label, base, cur, keys):
    """A baseline only gates a run of the same workload shape."""
    for key in keys:
        if base.get(key) != cur.get(key):
            gate.fail(f"{label}: config mismatch on '{key}' "
                      f"({cur.get(key)} vs baseline {base.get(key)}) — "
                      f"regenerate the baseline or fix the CI invocation")
            return False
    return True


def compare_fig12(gate, base, cur):
    """RA is a deterministic count ratio; every cell must stay put."""
    if not require_same_config(gate, "fig12", base, cur,
                               ("points", "budget")):
        return
    baseline_rows = {(r["dataset"], r["policy"]): r for r in base["rows"]}
    current_rows = {(r["dataset"], r["policy"]): r for r in cur["rows"]}
    if set(baseline_rows) - set(current_rows):
        gate.fail(f"fig12: rows missing from current run: "
                  f"{sorted(set(baseline_rows) - set(current_rows))}")
        return
    for key, brow in baseline_rows.items():
        crow = current_rows[key]
        for metric, bval in brow.items():
            if not metric.startswith("ra_"):
                continue
            gate.check_close(f"fig12 {key[0]}/{key[1]} {metric}",
                             crow[metric], bval)


def compare_compaction(gate, base, cur):
    """Merged point counts are exact; times/RSS are advisory only."""
    if not require_same_config(gate, "micro_compaction", base, cur,
                               ("run_points", "buffer_points", "file_points",
                                "block_points")):
        return
    base_cfgs = {c["config"]: c for c in base["configs"]}
    cur_cfgs = {c["config"]: c for c in cur["configs"]}
    if set(base_cfgs) != set(cur_cfgs):
        gate.fail(f"micro_compaction: config set changed: "
                  f"{sorted(cur_cfgs)} vs {sorted(base_cfgs)}")
        return
    for name, bcfg in base_cfgs.items():
        gate.check_equal(f"micro_compaction {name} merged_points",
                         cur_cfgs[name]["merged_points"],
                         bcfg["merged_points"])
    merged = {c["merged_points"] for c in cur_cfgs.values()}
    gate.check_true("micro_compaction all configs merge identical points",
                    len(merged) == 1)


def compare_pruning(gate, base, cur):
    """The pruning win must hold: identical answers, sustained reduction."""
    if not require_same_config(gate, "pruning", base, cur,
                               ("points", "summary_window", "bucket",
                                "queries")):
        return
    gate.check_true("pruning results_identical", cur["results_identical"])
    for metric in ("blocks_read_on", "blocks_read_off", "blocks_skipped_on",
                   "summary_hits_on", "disk_points_scanned_on",
                   "disk_points_scanned_off"):
        gate.check_close(f"pruning {metric}", cur[metric], base[metric])
    gate.check_close("pruning blocks_read_reduction",
                     cur["blocks_read_reduction"],
                     base["blocks_read_reduction"])
    gate.checked += 1
    if cur["blocks_read_reduction"] < 5.0:
        gate.fail(f"pruning blocks_read_reduction "
                  f"{cur['blocks_read_reduction']} < 5.0 acceptance floor")


def compare_fig13(gate, base, cur):
    """Latencies are LatencyEnv-simulated device time: deterministic."""
    if not require_same_config(gate, "fig13", base, cur,
                               ("points", "budget")):
        return
    baseline_rows = {(r["dataset"], r["policy"]): r for r in base["rows"]}
    current_rows = {(r["dataset"], r["policy"]): r for r in cur["rows"]}
    for key, brow in baseline_rows.items():
        if key not in current_rows:
            gate.fail(f"fig13: row {key} missing from current run")
            continue
        for metric, bval in brow.items():
            if not metric.startswith("lat_"):
                continue
            gate.check_close(f"fig13 {key[0]}/{key[1]} {metric}",
                             current_rows[key][metric], bval)


def compare_scheduler(gate, base, cur):
    """Job counts always gate; speedups only on real multicore runs."""
    if not require_same_config(gate, "scheduler", base, cur,
                               ("series", "client_threads",
                                "points_per_series")):
        return
    base_sweep = {e["bg_threads"]: e for e in base["sweep"]}
    cur_sweep = {e["bg_threads"]: e for e in cur["sweep"]}
    multicore = (base.get("hardware_threads", 1) > 1 and
                 cur.get("hardware_threads", 1) > 1)
    if not multicore:
        gate.skip("scheduler speedup_vs_1 assertions "
                  f"(hardware_threads: baseline="
                  f"{base.get('hardware_threads')}, current="
                  f"{cur.get('hardware_threads')}; need > 1 on both)")
    for threads, bentry in base_sweep.items():
        if threads not in cur_sweep:
            gate.fail(f"scheduler: bg_threads={threads} missing from "
                      f"current sweep")
            continue
        centry = cur_sweep[threads]
        # Flush-job counts depend on scheduling timing (the committed sweep
        # itself shows 58 vs 72), so only sanity-check that work happened.
        gate.check_true(f"scheduler bg_threads={threads} ran background jobs",
                        centry["bg_flush_jobs"] + centry["bg_compaction_jobs"]
                        > 0)
        if multicore:
            # Either side may have recorded null (machine-skipped on a
            # 1-thread host, even if hardware_threads was reported > 1 by a
            # later regeneration): nothing to compare then.
            if (centry.get("speedup_vs_1") is None or
                    bentry.get("speedup_vs_1") is None):
                gate.skip(f"scheduler bg_threads={threads} speedup_vs_1 "
                          f"(recorded as null)")
            else:
                gate.check_close(
                    f"scheduler bg_threads={threads} speedup_vs_1",
                    centry["speedup_vs_1"], bentry["speedup_vs_1"])


def compare_wal(gate, base, cur):
    """Durability and batching always gate; the speedup only on multicore.

    Wall-clock appends/sec depends on the runner's fsync latency, so the
    machine-independent invariants carry the gate: every mode must recover
    every point on clean reopen, must log exactly one WAL record per append,
    and group commit must demonstrably batch (points_per_fsync well above 1
    at the top thread count). The headline group-vs-sync speedup is compared
    against the baseline only when both runs had real parallelism.
    """
    if not require_same_config(gate, "wal", base, cur, ("points_per_run",)):
        return
    base_sweep = {(e["mode"], e["threads"]): e for e in base["sweep"]}
    cur_sweep = {(e["mode"], e["threads"]): e for e in cur["sweep"]}
    multicore = (base.get("hardware_threads", 1) > 1 and
                 cur.get("hardware_threads", 1) > 1)
    if not multicore:
        gate.skip("wal speedup_group_vs_sync_8t assertion "
                  f"(hardware_threads: baseline="
                  f"{base.get('hardware_threads')}, current="
                  f"{cur.get('hardware_threads')}; need > 1 on both)")
    max_threads = max(t for (_, t) in base_sweep)
    for key, bentry in base_sweep.items():
        mode, threads = key
        if key not in cur_sweep:
            gate.fail(f"wal: {mode}/t{threads} missing from current sweep")
            continue
        centry = cur_sweep[key]
        gate.check_true(f"wal {mode}/t{threads} recovered_ok",
                        centry["recovered_ok"])
        gate.check_equal(f"wal {mode}/t{threads} wal_records",
                         centry["wal_records"], bentry["wal_records"])
        if mode == "sync_each":
            # The per-append contract: exactly one fsync per append.
            gate.check_equal(f"wal {mode}/t{threads} fsyncs",
                             centry["fsyncs"], centry["wal_records"])
        if mode == "group" and threads == max_threads:
            # Batching must be observable regardless of wall-clock speed:
            # piled-up writers sharing fsyncs is a scheduling fact, not a
            # timing one.
            if centry["points_per_fsync"] < 2.0:
                gate.fail(f"wal group/t{threads} points_per_fsync "
                          f"{centry['points_per_fsync']:.2f} below the "
                          f"2.0 batching floor")
            else:
                gate.checked += 1
    if multicore:
        gate.check_close("wal speedup_group_vs_sync_8t",
                         cur["speedup_group_vs_sync_8t"],
                         base["speedup_group_vs_sync_8t"])


def compare_ingest(gate, base, cur):
    """Point accounting always gates; throughput scaling only on multicore.

    Every row must ingest exactly the configured number of points and log
    exactly one WAL record per point (batching changes framing, never
    count), and the writers=1 rows must carry a populated stall histogram
    (zero stalls is fine; a missing histogram means the telemetry plumbing
    broke). points/sec, ns/point, and stall microseconds are wall-clock —
    advisory only. speedup_vs_1 gates like the scheduler bench: only when
    both runs saw real parallelism, and the 8-writer/2048-series row must
    then clear the 3.0x acceptance floor from the tentpole issue.
    """
    if not require_same_config(gate, "ingest", base, cur,
                               ("points_per_config", "batch", "budget")):
        return
    base_rows = {(r["writers"], r["series"]): r for r in base["rows"]}
    cur_rows = {(r["writers"], r["series"]): r for r in cur["rows"]}
    multicore = (base.get("hardware_threads", 1) > 1 and
                 cur.get("hardware_threads", 1) > 1)
    if not multicore:
        gate.skip("ingest speedup_vs_1 assertions "
                  f"(hardware_threads: baseline="
                  f"{base.get('hardware_threads')}, current="
                  f"{cur.get('hardware_threads')}; need > 1 on both)")
    for key, bentry in base_rows.items():
        writers, series = key
        if key not in cur_rows:
            gate.fail(f"ingest: writers={writers}/series={series} missing "
                      f"from current sweep")
            continue
        centry = cur_rows[key]
        gate.check_equal(f"ingest w{writers}/s{series} points_ingested",
                         centry["points_ingested"], centry["points_total"])
        gate.check_equal(f"ingest w{writers}/s{series} wal_records",
                         centry["wal_records"], centry["points_total"])
        gate.check_true(f"ingest w{writers}/s{series} stall histogram "
                        f"present",
                        "stall_count" in centry and
                        centry["stall_count"] >= centry["writer_stalls"])
        if multicore:
            if (centry.get("speedup_vs_1") is None or
                    bentry.get("speedup_vs_1") is None):
                gate.skip(f"ingest w{writers}/s{series} speedup_vs_1 "
                          f"(recorded as null)")
                continue
            gate.check_close(f"ingest w{writers}/s{series} speedup_vs_1",
                             centry["speedup_vs_1"], bentry["speedup_vs_1"])
            if writers >= 8 and series >= 2048:
                gate.checked += 1
                if centry["speedup_vs_1"] < 3.0:
                    gate.fail(f"ingest w{writers}/s{series} speedup_vs_1 "
                              f"{centry['speedup_vs_1']} < 3.0 acceptance "
                              f"floor")


def compare_compaction_scaling(gate, base, cur):
    """The bounded-rewrite acceptance: per-job counts are deterministic.

    Every gated number is a point count derived from merge_events, so the
    comparison is exact up to tolerance on any machine. Beyond matching the
    baseline, two absolute floors re-assert the tentpole claim on the
    current run itself: the four_level per-job mean must stay within 2x
    from 1x to 16x volume (bounded rewrites), the two_level one must grow
    >= 8x (the unbounded baseline it is compared against), and no
    four_level job may exceed the configured input-file cap.
    """
    if not require_same_config(gate, "compaction_scaling", base, cur,
                               ("points_base", "budget", "cap")):
        return
    base_rows = {(r["config"], r["volume_factor"]): r for r in base["rows"]}
    cur_rows = {(r["config"], r["volume_factor"]): r for r in cur["rows"]}
    if set(base_rows) - set(cur_rows):
        gate.fail(f"compaction_scaling: rows missing from current run: "
                  f"{sorted(set(base_rows) - set(cur_rows))}")
        return
    for key, brow in base_rows.items():
        crow = cur_rows[key]
        label = f"compaction_scaling {key[0]}/{key[1]}x"
        for metric in ("wa", "jobs", "per_job_points_mean",
                       "per_job_points_p99"):
            gate.check_close(f"{label} {metric}", crow[metric], brow[metric])
        if key[0] == "four_level":
            gate.check_true(f"{label} max_input_files <= cap",
                            crow["max_input_files"] <= cur["cap"])
    gate.check_close("compaction_scaling growth_two_level",
                     cur["growth_two_level"], base["growth_two_level"])
    gate.check_close("compaction_scaling growth_four_level",
                     cur["growth_four_level"], base["growth_four_level"])
    gate.checked += 1
    if cur["growth_four_level"] >= 2.0:
        gate.fail(f"compaction_scaling growth_four_level "
                  f"{cur['growth_four_level']} >= 2.0 bounded-rewrite "
                  f"ceiling")
    gate.checked += 1
    if cur["growth_two_level"] < 8.0:
        gate.fail(f"compaction_scaling growth_two_level "
                  f"{cur['growth_two_level']} < 8.0 unbounded-baseline "
                  f"floor (the comparison lost its contrast)")


COMPARATORS = {
    "fig12_read_amp": compare_fig12,
    "fig13_recent_latency": compare_fig13,
    "micro_compaction_merge": compare_compaction,
    "pruning_ab": compare_pruning,
    "multi_series_parallel_ingest": compare_scheduler,
    "wal_group_commit": compare_wal,
    "ingest_multicore": compare_ingest,
    "compaction_scaling": compare_compaction_scaling,
}


def run_pairs(pairs, tolerance):
    gate = Gate(tolerance)
    for baseline_path, current_path in pairs:
        base = json.loads(Path(baseline_path).read_text())
        cur = json.loads(Path(current_path).read_text())
        kind = base.get("bench")
        if kind != cur.get("bench"):
            gate.fail(f"{baseline_path}: bench kind mismatch "
                      f"({cur.get('bench')} vs {kind})")
            continue
        comparator = COMPARATORS.get(kind)
        if comparator is None:
            gate.fail(f"{baseline_path}: unknown bench kind '{kind}'")
            continue
        comparator(gate, base, cur)
        print(f"compared {current_path} against {baseline_path} ({kind})")
    return gate


def self_test():
    """The gate must pass on unchanged metrics and fail on a regression."""
    base = {
        "bench": "pruning_ab", "points": 1000, "summary_window": 64,
        "bucket": 256, "queries": 10, "blocks_read_on": 100,
        "blocks_read_off": 1000, "blocks_skipped_on": 50,
        "summary_hits_on": 200, "files_skipped_on": 5,
        "disk_points_scanned_on": 10, "disk_points_scanned_off": 100,
        "blocks_read_reduction": 10.0, "results_identical": True,
    }
    gate = Gate(DEFAULT_TOLERANCE)
    compare_pruning(gate, base, dict(base))
    assert not gate.errors, f"identical run must pass: {gate.errors}"

    regressed = dict(base)
    regressed["blocks_read_on"] = 200      # 2x more blocks decoded
    regressed["blocks_read_reduction"] = 5.0
    gate = Gate(DEFAULT_TOLERANCE)
    compare_pruning(gate, base, regressed)
    assert gate.errors, "a 2x blocks_read regression must fail the gate"

    wrong = dict(base)
    wrong["results_identical"] = False
    gate = Gate(DEFAULT_TOLERANCE)
    compare_pruning(gate, base, wrong)
    assert gate.errors, "non-identical results must fail the gate"

    floor = dict(base)
    floor["blocks_read_off"] = 450
    floor["blocks_read_reduction"] = 4.5   # within 15% of 5.0 yet below floor
    gate = Gate(DEFAULT_TOLERANCE)
    compare_pruning(gate, base, floor)
    assert any("acceptance floor" in e for e in gate.errors), \
        "reduction below the 5x floor must fail even inside tolerance"

    sched_base = {
        "bench": "multi_series_parallel_ingest", "series": 8,
        "client_threads": 4, "points_per_series": 5000,
        "hardware_threads": 1,
        "sweep": [{"bg_threads": 1, "points_per_ms": 100.0,
                   "speedup_vs_1": 1.0, "bg_flush_jobs": 10,
                   "bg_compaction_jobs": 10}],
    }
    sched_cur = json.loads(json.dumps(sched_base))
    sched_cur["sweep"][0]["speedup_vs_1"] = 0.2  # would fail if asserted
    gate = Gate(DEFAULT_TOLERANCE)
    compare_scheduler(gate, sched_base, sched_cur)
    assert not gate.errors, \
        f"speedups must be skipped at hardware_threads=1: {gate.errors}"
    assert gate.skipped, "the skip must be reported, not silent"

    sched_base["hardware_threads"] = 8
    sched_cur["hardware_threads"] = 8
    gate = Gate(DEFAULT_TOLERANCE)
    compare_scheduler(gate, sched_base, sched_cur)
    assert gate.errors, "a 5x speedup regression on multicore must fail"

    sched_null = json.loads(json.dumps(sched_base))
    sched_null["sweep"][0]["speedup_vs_1"] = None  # 1-core regeneration
    gate = Gate(DEFAULT_TOLERANCE)
    compare_scheduler(gate, sched_base, sched_null)
    assert not gate.errors, \
        f"null speedups must skip, not crash the gate: {gate.errors}"
    assert gate.skipped, "the null skip must be reported"

    ing_base = {
        "bench": "ingest_multicore", "points_per_config": 96000,
        "batch": 64, "budget": 512, "hardware_threads": 1,
        "rows": [
            {"writers": 1, "series": 2048, "points_total": 96000,
             "points_per_sec": 4.0e6, "speedup_vs_1": None,
             "points_ingested": 96000, "wal_records": 96000,
             "writer_stalls": 0, "stall_count": 0,
             "stall_p50_micros": 0.0, "stall_p99_micros": 0.0},
            {"writers": 8, "series": 2048, "points_total": 96000,
             "points_per_sec": 3.5e6, "speedup_vs_1": None,
             "points_ingested": 96000, "wal_records": 96000,
             "writer_stalls": 2, "stall_count": 2,
             "stall_p50_micros": 10.0, "stall_p99_micros": 50.0},
        ],
    }
    ing_cur = json.loads(json.dumps(ing_base))
    ing_cur["rows"][1]["points_per_sec"] = 0.5e6  # slow is fine: no gate
    gate = Gate(DEFAULT_TOLERANCE)
    compare_ingest(gate, ing_base, ing_cur)
    assert not gate.errors, \
        f"ingest wall-clock must not gate on a 1-core host: {gate.errors}"
    assert gate.skipped, "the 1-core ingest skip must be reported"

    ing_lost = json.loads(json.dumps(ing_base))
    ing_lost["rows"][0]["points_ingested"] = 95999  # dropped a point
    gate = Gate(DEFAULT_TOLERANCE)
    compare_ingest(gate, ing_base, ing_lost)
    assert gate.errors, "a dropped point must fail the ingest gate"

    ing_unlogged = json.loads(json.dumps(ing_base))
    ing_unlogged["rows"][1]["wal_records"] = 1500  # batching ate records
    gate = Gate(DEFAULT_TOLERANCE)
    compare_ingest(gate, ing_base, ing_unlogged)
    assert gate.errors, \
        "batching must never change the WAL record count (one per point)"

    ing_mc_base = json.loads(json.dumps(ing_base))
    ing_mc_base["hardware_threads"] = 8
    for row in ing_mc_base["rows"]:
        row["speedup_vs_1"] = 1.0 if row["writers"] == 1 else 4.2
    ing_mc_cur = json.loads(json.dumps(ing_mc_base))
    ing_mc_cur["rows"][1]["speedup_vs_1"] = 2.0  # scaling collapsed
    gate = Gate(DEFAULT_TOLERANCE)
    compare_ingest(gate, ing_mc_base, ing_mc_cur)
    assert gate.errors, "a multicore scaling collapse must fail"
    assert any("acceptance floor" in e for e in gate.errors), \
        "the 8-writer/2048-series row must enforce the 3.0x floor"

    fig12_base = {
        "bench": "fig12_read_amp", "points": 1000, "budget": 512,
        "rows": [{"dataset": "M1", "policy": "pi_c", "ra_w500": 4.0}],
    }
    fig12_cur = json.loads(json.dumps(fig12_base))
    gate = Gate(DEFAULT_TOLERANCE)
    compare_fig12(gate, fig12_base, fig12_cur)
    assert not gate.errors, f"identical fig12 must pass: {gate.errors}"
    fig12_cur["rows"][0]["ra_w500"] = 5.0
    gate = Gate(DEFAULT_TOLERANCE)
    compare_fig12(gate, fig12_base, fig12_cur)
    assert gate.errors, "a 25% RA regression must fail"

    comp_base = {
        "bench": "micro_compaction_merge", "run_points": 1000,
        "buffer_points": 100, "file_points": 100, "block_points": 10,
        "configs": [
            {"config": "stream-2way", "merged_points": 1100,
             "merge_ms": 1.0},
            {"config": "materialized", "merged_points": 1100,
             "merge_ms": 99.0},  # slow is fine: time never gates
        ],
    }
    comp_cur = json.loads(json.dumps(comp_base))
    comp_cur["configs"][0]["merge_ms"] = 500.0
    gate = Gate(DEFAULT_TOLERANCE)
    compare_compaction(gate, comp_base, comp_cur)
    assert not gate.errors, f"times must not gate: {gate.errors}"
    comp_cur["configs"][0]["merged_points"] = 1099  # dropped a point
    gate = Gate(DEFAULT_TOLERANCE)
    compare_compaction(gate, comp_base, comp_cur)
    assert gate.errors, "a dropped merge point must fail"


    wal_base = {
        "bench": "wal_group_commit", "points_per_run": 4000,
        "hardware_threads": 1, "speedup_group_vs_sync_8t": 5.5,
        "sweep": [
            {"mode": "sync_each", "threads": 8, "appends_per_sec": 8000.0,
             "wal_records": 4000, "fsyncs": 4000, "points_per_fsync": 1.0,
             "max_group": 0, "recovered_points": 4000, "recovered_ok": True},
            {"mode": "group", "threads": 8, "appends_per_sec": 45000.0,
             "wal_records": 4000, "fsyncs": 500, "points_per_fsync": 8.0,
             "max_group": 8, "recovered_points": 4000, "recovered_ok": True},
        ],
    }
    wal_cur = json.loads(json.dumps(wal_base))
    wal_cur["speedup_group_vs_sync_8t"] = 0.5  # would fail if asserted
    gate = Gate(DEFAULT_TOLERANCE)
    compare_wal(gate, wal_base, wal_cur)
    assert not gate.errors, \
        f"wal speedup must be skipped at hardware_threads=1: {gate.errors}"
    assert gate.skipped, "the wal skip must be reported, not silent"

    wal_lost = json.loads(json.dumps(wal_base))
    wal_lost["sweep"][1]["recovered_ok"] = False
    gate = Gate(DEFAULT_TOLERANCE)
    compare_wal(gate, wal_base, wal_lost)
    assert gate.errors, "a durability loss must fail the wal gate"

    wal_nobatch = json.loads(json.dumps(wal_base))
    wal_nobatch["sweep"][1]["points_per_fsync"] = 1.0
    gate = Gate(DEFAULT_TOLERANCE)
    compare_wal(gate, wal_base, wal_nobatch)
    assert any("batching floor" in e for e in gate.errors), \
        "group commit that stops batching must fail even on one core"

    wal_multicore_base = json.loads(json.dumps(wal_base))
    wal_multicore_base["hardware_threads"] = 8
    wal_multicore_cur = json.loads(json.dumps(wal_multicore_base))
    wal_multicore_cur["speedup_group_vs_sync_8t"] = 1.1
    gate = Gate(DEFAULT_TOLERANCE)
    compare_wal(gate, wal_multicore_base, wal_multicore_cur)
    assert gate.errors, "a wal speedup collapse on multicore must fail"

    scal_base = {
        "bench": "compaction_scaling", "points_base": 8000, "budget": 512,
        "cap": 8, "growth_two_level": 15.7, "growth_four_level": 1.1,
        "rows": [
            {"config": "two_level", "volume_factor": 1, "wa": 7.7,
             "jobs": 15, "per_job_points_mean": 4096.0,
             "per_job_points_p99": 7680, "max_input_files": 14},
            {"config": "four_level", "volume_factor": 1, "wa": 8.1,
             "jobs": 22, "per_job_points_mean": 2955.0,
             "per_job_points_p99": 4096, "max_input_files": 8},
            {"config": "two_level", "volume_factor": 16, "wa": 125.5,
             "jobs": 250, "per_job_points_mean": 64233.0,
             "per_job_points_p99": 126976, "max_input_files": 249},
            {"config": "four_level", "volume_factor": 16, "wa": 22.1,
             "jobs": 907, "per_job_points_mean": 3125.0,
             "per_job_points_p99": 4096, "max_input_files": 8},
        ],
    }
    scal_cur = json.loads(json.dumps(scal_base))
    gate = Gate(DEFAULT_TOLERANCE)
    compare_compaction_scaling(gate, scal_base, scal_cur)
    assert not gate.errors, \
        f"identical compaction_scaling must pass: {gate.errors}"

    scal_unbounded = json.loads(json.dumps(scal_base))
    # Bounded rewrites broke: the deep tree's 16x per-job mean tripled.
    scal_unbounded["rows"][3]["per_job_points_mean"] = 9375.0
    scal_unbounded["growth_four_level"] = 3.17
    gate = Gate(DEFAULT_TOLERANCE)
    compare_compaction_scaling(gate, scal_base, scal_unbounded)
    assert any("bounded-rewrite ceiling" in e for e in gate.errors), \
        "a four_level per-job blowup must trip the 2x ceiling"

    scal_capped = json.loads(json.dumps(scal_base))
    scal_capped["rows"][1]["max_input_files"] = 20  # cap stopped applying
    gate = Gate(DEFAULT_TOLERANCE)
    compare_compaction_scaling(gate, scal_base, scal_capped)
    assert gate.errors, "a job exceeding the input-file cap must fail"

    scal_flat = json.loads(json.dumps(scal_base))
    # The two_level contrast collapsed (e.g. the workload stopped being
    # out-of-order): the comparison is meaningless, fail loudly.
    scal_flat["rows"][2]["per_job_points_mean"] = 5000.0
    scal_flat["growth_two_level"] = 1.2
    gate = Gate(DEFAULT_TOLERANCE)
    compare_compaction_scaling(gate, scal_base, scal_flat)
    assert any("lost its contrast" in e for e in gate.errors), \
        "a flat two_level growth must trip the 8x floor"

    print("self-test: all gate behaviours verified")


def main():
    tolerance = DEFAULT_TOLERANCE
    pairs = []
    for arg in sys.argv[1:]:
        if arg == "--self-test":
            self_test()
            return
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif "=" in arg:
            baseline, current = arg.split("=", 1)
            pairs.append((baseline, current))
        else:
            print(f"usage: {sys.argv[0]} [--tolerance=T] "
                  f"BASELINE=CURRENT [...] | --self-test", file=sys.stderr)
            sys.exit(2)
    if not pairs:
        print("no baseline pairs given", file=sys.stderr)
        sys.exit(2)
    gate = run_pairs(pairs, tolerance)
    for msg in gate.skipped:
        print(f"skipped: {msg}")
    if gate.errors:
        for e in gate.errors:
            print(f"REGRESSION: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"bench regression gate: {gate.checked} checks passed "
          f"(tolerance {tolerance:.0%}, {len(gate.skipped)} skipped)")


if __name__ == "__main__":
    main()
