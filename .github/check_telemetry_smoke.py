#!/usr/bin/env python3
"""Validates the telemetry smoke artifacts produced in CI.

Usage: check_telemetry_smoke.py <dir>             stats/trace artifacts
       check_telemetry_smoke.py <dir> --exporter  live-exporter artifacts

Default mode expects in <dir>:
  stats.json        `seplsm_cli stats --json` output
  stats.prom        `seplsm_cli stats --prometheus` output
  spans.chrome.json Chrome trace_event capture (--trace-out, chrome format)
  spans.jsonl       JSONL capture (--trace-out, jsonl format)

--exporter mode expects curl captures of the five live endpoints served by
`seplsm_cli serve` under concurrent ingest:
  metrics           /metrics      Prometheus exposition (strictly validated:
                                  HELP/TYPE per family, no duplicate family,
                                  cumulative histogram buckets, +Inf==_count)
  stats             /stats        full JSON stats
  healthz           /healthz      health verdict
  debug_lsm         /debug/lsm    per-series LSM shape
  debug_policy      /debug/policy adaptive-policy decision audit

Stdlib only (json, re, sys) so it runs on a bare CI python3.
"""

import json
import re
import sys
from pathlib import Path


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats_json(path):
    doc = json.loads(path.read_text())
    for key in ("series", "engine", "telemetry"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    counters = doc["engine"].get("counters", {})
    for name in ("points_ingested", "points_flushed", "queries"):
        if counters.get(name, 0) <= 0:
            fail(f"{path}: engine counter '{name}' not positive: "
                 f"{counters.get(name)}")
    # The pruning counters must be exported even when zero (the smoke
    # workload may not exercise summaries), so dashboards never see a gap.
    for name in ("files_skipped", "blocks_skipped", "blooms_negative",
                 "summary_hits", "compaction_bytes_written"):
        if name not in counters:
            fail(f"{path}: counter '{name}' absent from "
                 f"engine.counters (have: {sorted(counters)})")
    # Per-level breakdown: one entry per tree level, level 1 always exists.
    levels = doc["engine"].get("levels")
    if not isinstance(levels, list) or len(levels) < 2:
        fail(f"{path}: engine.levels missing or fewer than 2 entries: "
             f"{levels!r}")
    for entry in levels:
        for key in ("level", "files", "bytes", "points", "compactions",
                    "compaction_bytes_read", "compaction_bytes_written"):
            if key not in entry:
                fail(f"{path}: engine.levels entry missing '{key}': {entry}")
    if sum(e["compactions"] for e in levels) <= 0:
        fail(f"{path}: no level recorded a compaction: {levels}")
    latency = doc["telemetry"].get("latency_micros", {})
    if not latency:
        fail(f"{path}: telemetry.latency_micros is empty")
    # The smoke workload ingests and queries, so at minimum the append and
    # query phases must report full percentile summaries.
    for op in ("append", "query"):
        summary = latency.get(op)
        if summary is None:
            fail(f"{path}: no latency summary for op '{op}' "
                 f"(have: {sorted(latency)})")
        for q in ("count", "p50", "p95", "p99", "max"):
            if q not in summary:
                fail(f"{path}: latency summary for '{op}' missing '{q}'")
    if not any(op in latency for op in ("flush", "compaction")):
        fail(f"{path}: neither flush nor compaction latency recorded "
             f"(have: {sorted(latency)})")
    print(f"ok: {path} ({sorted(latency)} phases)")


def check_stats_prom(path):
    text = path.read_text()
    sample = re.compile(r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? "
                        r"-?[0-9.eE+-]+(nan|inf)?$")
    seen = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        if not sample.match(line):
            fail(f"{path}: malformed exposition line: {line!r}")
        seen.add(line.split("{")[0].split(" ")[0])
    for metric in ("seplsm_points_flushed_total", "seplsm_queries_total",
                   "seplsm_op_latency_micros",
                   "seplsm_write_amplification",
                   "seplsm_files_skipped_total",
                   "seplsm_blocks_skipped_total",
                   "seplsm_blooms_negative_total",
                   "seplsm_summary_hits_total",
                   "seplsm_compaction_bytes_written_total",
                   "seplsm_level_files",
                   "seplsm_level_points",
                   "seplsm_level_compactions_total",
                   "seplsm_level_compaction_bytes_written_total"):
        if metric not in seen:
            fail(f"{path}: metric '{metric}' not found")
    if 'series="' not in text:
        fail(f"{path}: no series label on any sample")
    if 'level="1"' not in text:
        fail(f"{path}: no level label on any sample")
    print(f"ok: {path} ({len(seen)} metric families)")


def check_chrome_trace(path):
    doc = json.loads(path.read_text())
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    names = set()
    for e in events:
        if e.get("ph") == "M":
            continue
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event missing '{key}': {e}")
        names.add(e["name"])
    for span in ("flush", "query"):
        if span not in names:
            fail(f"{path}: no '{span}' spans captured (have: {sorted(names)})")
    print(f"ok: {path} ({len(events)} events, span types {sorted(names)})")


def check_jsonl_trace(path):
    types = set()
    count = 0
    for line in path.read_text().splitlines():
        e = json.loads(line)
        for key in ("type", "series", "start_nanos", "end_nanos",
                    "duration_nanos"):
            if key not in e:
                fail(f"{path}: event missing '{key}': {line!r}")
        if e["end_nanos"] < e["start_nanos"]:
            fail(f"{path}: negative span: {line!r}")
        types.add(e["type"])
        count += 1
    if count == 0:
        fail(f"{path}: empty trace")
    print(f"ok: {path} ({count} events, span types {sorted(types)})")


SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? "
                       r"(-?[0-9.eE+-]+(?:nan|inf)?)$")


def parse_exposition(path):
    """Parses an exposition strictly: returns (types, helps, samples) where
    samples are (name, labels_text, float_value) tuples."""
    types, helps, samples = {}, set(), []
    for line in path.read_text().splitlines():
        if not line:
            fail(f"{path}: blank line in exposition")
        if line.startswith("# HELP "):
            helps.add(line.split()[2])
        elif line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) < 4:
                fail(f"{path}: malformed TYPE line: {line!r}")
            if parts[2] in types:
                fail(f"{path}: family declared twice: {parts[2]}")
            types[parts[2]] = parts[3]
        elif line.startswith("#"):
            fail(f"{path}: unknown comment line: {line!r}")
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}: malformed exposition line: {line!r}")
            samples.append((m.group(1), m.group(2) or "",
                            float(m.group(3))))
    return types, helps, samples


def family_of(name, types):
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[:-len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) in ("histogram", "summary"):
            return base
    return None


def check_exporter_metrics(path):
    types, helps, samples = parse_exposition(path)
    for name, _, _ in samples:
        family = family_of(name, types)
        if family is None:
            fail(f"{path}: sample '{name}' has no TYPE declaration")
        if family not in helps:
            fail(f"{path}: family '{family}' missing HELP")
        if types[family] == "counter" and not family.endswith("_total"):
            fail(f"{path}: counter family '{family}' does not end in _total")
    # Histogram buckets: cumulative, nondecreasing, +Inf present and equal
    # to _count — per op label group.
    for family, typ in types.items():
        if typ != "histogram":
            continue
        buckets, counts = {}, {}
        for name, labels, value in samples:
            le = re.search(r'le="([^"]*)"', labels)
            group = re.sub(r',?le="[^"]*"', "", labels)
            if name == family + "_bucket" and le:
                upper = float("inf") if le.group(1) == "+Inf" \
                    else float(le.group(1))
                buckets.setdefault(group, []).append((upper, value))
            elif name == family + "_count":
                counts[group] = value
        if not buckets:
            fail(f"{path}: histogram '{family}' emitted no buckets")
        for group, series in buckets.items():
            for (lo_le, lo_v), (hi_le, hi_v) in zip(series, series[1:]):
                if hi_le <= lo_le:
                    fail(f"{path}: {family}{group}: le not increasing")
                if hi_v < lo_v:
                    fail(f"{path}: {family}{group}: buckets not cumulative")
            if series[-1][0] != float("inf"):
                fail(f"{path}: {family}{group}: missing le=\"+Inf\"")
            if group not in counts or series[-1][1] != counts[group]:
                fail(f"{path}: {family}{group}: +Inf bucket != _count")
    for metric in ("seplsm_points_ingested_total",
                   "seplsm_writer_stall_micros_total",
                   "seplsm_stall_wal_commit_micros_total",
                   "seplsm_stall_shard_lock_micros_total",
                   "seplsm_level_compaction_debt_bytes",
                   "seplsm_op_latency_micros",
                   "seplsm_op_duration_micros"):
        if metric not in types:
            fail(f"{path}: family '{metric}' not exported")
    ingested = [v for n, _, v in samples
                if n == "seplsm_points_ingested_total"]
    if not ingested or sum(ingested) <= 0:
        fail(f"{path}: no points ingested during the serve window")
    print(f"ok: {path} ({len(types)} families, all declared)")


def check_exporter_json(d):
    stats = json.loads((d / "stats").read_text())
    for key in ("dir", "series_count", "engine", "health"):
        if key not in stats:
            fail(f"{d / 'stats'}: missing key '{key}'")
    if stats["series_count"] <= 0:
        fail(f"{d / 'stats'}: no series registered")

    healthz = json.loads((d / "healthz").read_text())
    if healthz.get("ok") is not True:
        fail(f"{d / 'healthz'}: serve DB reported unhealthy: {healthz}")

    lsm = json.loads((d / "debug_lsm").read_text())
    series = lsm.get("series")
    if not isinstance(series, list) or not series:
        fail(f"{d / 'debug_lsm'}: no per-series LSM entries")
    for entry in series:
        if "lsm" not in entry or "levels" not in entry["lsm"]:
            fail(f"{d / 'debug_lsm'}: entry missing lsm.levels: {entry}")

    policy = json.loads((d / "debug_policy").read_text())
    if "adaptive" not in policy or "series" not in policy:
        fail(f"{d / 'debug_policy'}: missing adaptive/series keys")
    if policy["adaptive"]:
        audited = [e for e in policy["series"] if e.get("audit")]
        if not audited:
            fail(f"{d / 'debug_policy'}: adaptive on but no audit entries")
        for entry in audited:
            for key in ("entries", "dropped"):
                if key not in entry["audit"]:
                    fail(f"{d / 'debug_policy'}: audit missing '{key}'")
    print(f"ok: {d}/stats,healthz,debug_lsm,debug_policy "
          f"({stats['series_count']} series)")


def check_exporter(d):
    check_exporter_metrics(d / "metrics")
    check_exporter_json(d)
    print("exporter smoke: all endpoints valid")


def main():
    if len(sys.argv) == 3 and sys.argv[2] == "--exporter":
        check_exporter(Path(sys.argv[1]))
        return
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <dir> [--exporter]")
    d = Path(sys.argv[1])
    check_stats_json(d / "stats.json")
    check_stats_prom(d / "stats.prom")
    check_chrome_trace(d / "spans.chrome.json")
    check_jsonl_trace(d / "spans.jsonl")
    print("telemetry smoke: all artifacts valid")


if __name__ == "__main__":
    main()
