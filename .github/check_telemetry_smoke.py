#!/usr/bin/env python3
"""Validates the telemetry smoke artifacts produced in CI.

Usage: check_telemetry_smoke.py <dir>

Expects in <dir>:
  stats.json        `seplsm_cli stats --json` output
  stats.prom        `seplsm_cli stats --prometheus` output
  spans.chrome.json Chrome trace_event capture (--trace-out, chrome format)
  spans.jsonl       JSONL capture (--trace-out, jsonl format)

Stdlib only (json, re, sys) so it runs on a bare CI python3.
"""

import json
import re
import sys
from pathlib import Path


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats_json(path):
    doc = json.loads(path.read_text())
    for key in ("series", "engine", "telemetry"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    counters = doc["engine"].get("counters", {})
    for name in ("points_ingested", "points_flushed", "queries"):
        if counters.get(name, 0) <= 0:
            fail(f"{path}: engine counter '{name}' not positive: "
                 f"{counters.get(name)}")
    # The pruning counters must be exported even when zero (the smoke
    # workload may not exercise summaries), so dashboards never see a gap.
    for name in ("files_skipped", "blocks_skipped", "blooms_negative",
                 "summary_hits", "compaction_bytes_written"):
        if name not in counters:
            fail(f"{path}: counter '{name}' absent from "
                 f"engine.counters (have: {sorted(counters)})")
    # Per-level breakdown: one entry per tree level, level 1 always exists.
    levels = doc["engine"].get("levels")
    if not isinstance(levels, list) or len(levels) < 2:
        fail(f"{path}: engine.levels missing or fewer than 2 entries: "
             f"{levels!r}")
    for entry in levels:
        for key in ("level", "files", "bytes", "points", "compactions",
                    "compaction_bytes_read", "compaction_bytes_written"):
            if key not in entry:
                fail(f"{path}: engine.levels entry missing '{key}': {entry}")
    if sum(e["compactions"] for e in levels) <= 0:
        fail(f"{path}: no level recorded a compaction: {levels}")
    latency = doc["telemetry"].get("latency_micros", {})
    if not latency:
        fail(f"{path}: telemetry.latency_micros is empty")
    # The smoke workload ingests and queries, so at minimum the append and
    # query phases must report full percentile summaries.
    for op in ("append", "query"):
        summary = latency.get(op)
        if summary is None:
            fail(f"{path}: no latency summary for op '{op}' "
                 f"(have: {sorted(latency)})")
        for q in ("count", "p50", "p95", "p99", "max"):
            if q not in summary:
                fail(f"{path}: latency summary for '{op}' missing '{q}'")
    if not any(op in latency for op in ("flush", "compaction")):
        fail(f"{path}: neither flush nor compaction latency recorded "
             f"(have: {sorted(latency)})")
    print(f"ok: {path} ({sorted(latency)} phases)")


def check_stats_prom(path):
    text = path.read_text()
    sample = re.compile(r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? "
                        r"-?[0-9.eE+-]+(nan|inf)?$")
    seen = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        if not sample.match(line):
            fail(f"{path}: malformed exposition line: {line!r}")
        seen.add(line.split("{")[0].split(" ")[0])
    for metric in ("seplsm_points_flushed_total", "seplsm_queries_total",
                   "seplsm_op_latency_micros",
                   "seplsm_write_amplification",
                   "seplsm_files_skipped_total",
                   "seplsm_blocks_skipped_total",
                   "seplsm_blooms_negative_total",
                   "seplsm_summary_hits_total",
                   "seplsm_compaction_bytes_written_total",
                   "seplsm_level_files",
                   "seplsm_level_points",
                   "seplsm_level_compactions_total",
                   "seplsm_level_compaction_bytes_written_total"):
        if metric not in seen:
            fail(f"{path}: metric '{metric}' not found")
    if 'series="' not in text:
        fail(f"{path}: no series label on any sample")
    if 'level="1"' not in text:
        fail(f"{path}: no level label on any sample")
    print(f"ok: {path} ({len(seen)} metric families)")


def check_chrome_trace(path):
    doc = json.loads(path.read_text())
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    names = set()
    for e in events:
        if e.get("ph") == "M":
            continue
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event missing '{key}': {e}")
        names.add(e["name"])
    for span in ("flush", "query"):
        if span not in names:
            fail(f"{path}: no '{span}' spans captured (have: {sorted(names)})")
    print(f"ok: {path} ({len(events)} events, span types {sorted(names)})")


def check_jsonl_trace(path):
    types = set()
    count = 0
    for line in path.read_text().splitlines():
        e = json.loads(line)
        for key in ("type", "series", "start_nanos", "end_nanos",
                    "duration_nanos"):
            if key not in e:
                fail(f"{path}: event missing '{key}': {line!r}")
        if e["end_nanos"] < e["start_nanos"]:
            fail(f"{path}: negative span: {line!r}")
        types.add(e["type"])
        count += 1
    if count == 0:
        fail(f"{path}: empty trace")
    print(f"ok: {path} ({count} events, span types {sorted(types)})")


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <dir>")
    d = Path(sys.argv[1])
    check_stats_json(d / "stats.json")
    check_stats_prom(d / "stats.prom")
    check_chrome_trace(d / "spans.chrome.json")
    check_jsonl_trace(d / "spans.jsonl")
    print("telemetry smoke: all artifacts valid")


if __name__ == "__main__":
    main()
