// Quickstart: open a database, write a partially out-of-order stream, run a
// range query, and inspect write amplification under both policies.
//
//   ./quickstart [data_dir]

#include <cstdio>
#include <filesystem>

#include "seplsm/seplsm.h"

int main(int argc, char** argv) {
  using namespace seplsm;

  std::string dir = argc > 1 ? argv[1] : "/tmp/seplsm_quickstart";
  std::filesystem::remove_all(dir);

  // 1. Configure the engine: memory budget of 512 points, separation policy
  //    with an even split (IoTDB's historical default).
  engine::Options options;
  options.dir = dir;
  options.policy = engine::PolicyConfig::Separation(512, 256);
  options.sstable_points = 512;

  auto open = engine::TsEngine::Open(options);
  if (!open.ok()) {
    std::fprintf(stderr, "open failed: %s\n", open.status().ToString().c_str());
    return 1;
  }
  auto& db = *open;

  // 2. Generate a sensor stream: one point every 50 ms, lognormal network
  //    delays, sorted by arrival — some points arrive out of order.
  workload::SyntheticConfig config;
  config.num_points = 50'000;
  config.delta_t = 50.0;
  dist::LognormalDistribution delay(4.0, 1.5);
  auto points = workload::GenerateSynthetic(config, delay);

  auto disorder = workload::ComputeDisorderStats(points);
  std::printf("ingesting %zu points, %.2f%% out of order...\n", points.size(),
              100.0 * disorder.out_of_order_fraction);

  for (const auto& p : points) {
    Status st = db->Append(p);
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = db->FlushAll(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Query the last 10 seconds of data (generation-time predicate).
  int64_t max_time = db->MaxPersistedGenerationTime();
  std::vector<DataPoint> recent;
  engine::QueryStats stats;
  if (Status st = db->Query(max_time - 10'000, max_time, &recent, &stats);
      !st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("recent window: %zu points, read amplification %.2f\n",
              recent.size(), stats.ReadAmplification());

  // 4. Inspect write amplification and ask the models what the optimal
  //    policy would have been.
  engine::Metrics metrics = db->GetMetrics();
  std::printf("engine metrics: %s\n", metrics.ToString().c_str());

  model::TuningOptions tuning;
  tuning.sweep_step = 16;
  // Account for whole-SSTable rewrite granularity (see DESIGN.md) so the
  // recommendation is robust on mildly disordered streams.
  tuning.granularity_sstable_points = options.sstable_points;
  auto tuned = model::TunePolicy(delay, config.delta_t, 512, tuning);
  std::printf("model: r_c = %.3f, min r_s = %.3f at n_seq = %zu -> use %s\n",
              tuned.wa_conventional, tuned.wa_separation_best,
              tuned.best_nseq, tuned.recommended.ToString().c_str());
  return 0;
}
