// Policy advisor: offline what-if analysis. Reads a delay trace (CSV with
// generation_time,arrival_time,value — or generates a demo trace), fits a
// delay distribution, and prints the predicted WA for π_c and the whole
// r_s(n_seq) curve so an operator can pick the policy and capacity split
// before deploying.
//
//   ./policy_advisor [trace.csv] [memory_budget]

#include <cstdio>
#include <cstdlib>

#include "seplsm/seplsm.h"

int main(int argc, char** argv) {
  using namespace seplsm;

  std::vector<DataPoint> points;
  if (argc > 1) {
    auto trace = workload::ReadTraceCsv(Env::Default(), argv[1]);
    if (!trace.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                   trace.status().ToString().c_str());
      return 1;
    }
    points = std::move(trace).value();
  } else {
    std::printf("no trace given; using a demo S-9-like trace\n");
    points = workload::GenerateS9Simulated(30'000);
  }
  size_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 512;

  auto disorder = workload::ComputeDisorderStats(points);
  std::printf("trace: %zu points, %.2f%% out of order, mean delay %.1f, "
              "max delay %.1f\n",
              points.size(), 100.0 * disorder.out_of_order_fraction,
              disorder.mean_delay, disorder.max_delay);

  // Profile the delays exactly the way the in-engine analyzer does.
  analyzer::DelayCollector collector(8192, 4096);
  for (const auto& p : points) collector.Observe(p);
  auto fit = analyzer::FitDelayDistribution(collector.sample());
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  double delta_t = collector.EstimateDeltaT();
  std::printf("fitted delay distribution: %s (KS distance %.4f)\n",
              fit->distribution->Name().c_str(), fit->ks_distance);
  std::printf("estimated generation interval: %.2f\n\n", delta_t);

  model::TuningOptions tuning;
  tuning.sweep_step = budget >= 64 ? budget / 64 : 1;
  tuning.keep_curve = true;
  tuning.granularity_sstable_points = 512;  // engine default SSTable size
  auto result = model::TunePolicy(*fit->distribution, delta_t, budget, tuning);

  std::printf("predicted WA under pi_c:            %.3f\n",
              result.wa_conventional);
  std::printf("predicted minimum WA under pi_s:    %.3f (n_seq = %zu)\n",
              result.wa_separation_best, result.best_nseq);
  std::printf("recommendation:                     %s\n\n",
              result.recommended.ToString().c_str());

  std::printf("r_s(n_seq) curve:\n  n_seq  predicted_WA\n");
  for (const auto& [nseq, wa] : result.separation_curve) {
    std::printf("  %5zu  %.3f%s\n", nseq, wa,
                nseq == result.best_nseq ? "   <-- best" : "");
  }
  return 0;
}
