// Multi-sensor store: one database, many time series with very different
// delay behaviour — a GPS feed with near-zero delays, an engine-bus feed
// with moderate network jitter, and a diagnostics feed that batches uploads.
// With per-series adaptive control, each series converges to its own
// policy; with one global policy, somebody always loses.
//
//   ./multi_sensor_store [data_dir]

#include <cstdio>
#include <filesystem>

#include "seplsm/seplsm.h"

int main(int argc, char** argv) {
  using namespace seplsm;

  std::string dir = argc > 1 ? argv[1] : "/tmp/seplsm_multi";
  std::filesystem::remove_all(dir);

  engine::MultiSeriesDB::MultiOptions options;
  options.base.dir = dir;
  options.base.policy = engine::PolicyConfig::Conventional(256);
  options.base.enable_wal = true;  // survive crashes with buffered points
  options.adaptive = true;
  options.adaptive_options.warmup_points = 4'096;
  options.adaptive_options.check_interval = 4'096;
  options.adaptive_options.tuning.sweep_step = 8;
  options.adaptive_options.tuning.granularity_sstable_points = 512;

  auto open = engine::MultiSeriesDB::Open(std::move(options));
  if (!open.ok()) {
    std::fprintf(stderr, "open failed: %s\n", open.status().ToString().c_str());
    return 1;
  }
  auto& db = *open;

  // Three sensors with distinct delay profiles.
  struct Sensor {
    const char* name;
    workload::SyntheticConfig config;
    dist::DistributionPtr delay;
  };
  std::vector<Sensor> sensors;
  {
    workload::SyntheticConfig gps;
    gps.num_points = 30'000;
    gps.delta_t = 100.0;
    gps.seed = 1;
    sensors.push_back({"vehicle.gps", gps,
                       std::make_unique<dist::UniformDistribution>(0.0, 5.0)});
    workload::SyntheticConfig bus;
    bus.num_points = 30'000;
    bus.delta_t = 50.0;
    bus.seed = 2;
    sensors.push_back(
        {"vehicle.engine_bus", bus,
         std::make_unique<dist::LognormalDistribution>(4.0, 1.75)});
    workload::SyntheticConfig diag;
    diag.num_points = 30'000;
    diag.delta_t = 10.0;
    diag.seed = 3;
    sensors.push_back(
        {"vehicle.diagnostics", diag,
         std::make_unique<dist::LognormalDistribution>(6.0, 2.0)});
  }

  // Interleave the three streams roughly by arrival time.
  std::vector<std::pair<const char*, DataPoint>> merged;
  for (const auto& sensor : sensors) {
    auto points = workload::GenerateSynthetic(sensor.config, *sensor.delay);
    for (const auto& p : points) merged.emplace_back(sensor.name, p);
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.arrival_time < b.second.arrival_time;
                   });

  std::printf("ingesting %zu points across %zu series...\n", merged.size(),
              sensors.size());
  for (const auto& [series, point] : merged) {
    if (Status st = db->Append(series, point); !st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = db->FlushAll(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\nper-series outcome:\n");
  for (const auto& sensor : sensors) {
    auto policy = db->GetSeriesPolicy(sensor.name);
    auto metrics = db->GetSeriesMetrics(sensor.name);
    if (!policy.ok() || !metrics.ok()) return 1;
    std::printf("  %-22s -> %-36s WA=%.3f (%llu merges)\n", sensor.name,
                policy->ToString().c_str(), metrics->WriteAmplification(),
                static_cast<unsigned long long>(metrics->merge_count));
  }

  engine::Metrics total = db->GetAggregateMetrics();
  std::printf("\naggregate: ingested=%llu written=%llu overall WA=%.3f\n",
              static_cast<unsigned long long>(total.points_ingested),
              static_cast<unsigned long long>(total.points_written_total()),
              total.WriteAmplification());

  std::vector<DataPoint> out;
  if (Status st = db->Query("vehicle.gps", 0, 1'000'000, &out); !st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("gps points in the first 1000 s: %zu\n", out.size());
  return 0;
}
