// Trace replay: load a CSV trace (generation_time,arrival_time,value),
// replay it through the engine under a chosen policy, and report write
// amplification, read amplification and file counts — the measurement side
// of the policy_advisor example, useful for validating a recommendation
// against real data before deploying it.
//
//   ./trace_replay [trace.csv] [pi_c|pi_s] [n] [n_seq]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "seplsm/seplsm.h"

int main(int argc, char** argv) {
  using namespace seplsm;

  std::vector<DataPoint> points;
  if (argc > 1) {
    auto trace = workload::ReadTraceCsv(Env::Default(), argv[1]);
    if (!trace.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                   trace.status().ToString().c_str());
      return 1;
    }
    points = std::move(trace).value();
  } else {
    std::printf("no trace given; replaying a demo M5 workload "
                "(lognormal mu=5 sigma=1.75, dt=50)\n");
    points = workload::GenerateTableII(workload::TableIIByName("M5"),
                                       100'000);
  }

  size_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 512;
  size_t nseq = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : n / 2;
  bool separation = argc > 2 && std::strcmp(argv[2], "pi_s") == 0;

  engine::Options options;
  options.dir = "/tmp/seplsm_replay";
  std::filesystem::remove_all(options.dir);
  options.policy = separation ? engine::PolicyConfig::Separation(n, nseq)
                              : engine::PolicyConfig::Conventional(n);

  auto open = engine::TsEngine::Open(options);
  if (!open.ok()) {
    std::fprintf(stderr, "open failed: %s\n", open.status().ToString().c_str());
    return 1;
  }
  auto& db = *open;
  std::printf("replaying %zu points under %s ...\n", points.size(),
              db->options().policy.ToString().c_str());

  for (const auto& p : points) {
    if (Status st = db->Append(p); !st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  engine::Metrics m = db->GetMetrics();
  std::printf("\nwrite path:\n");
  std::printf("  ingested           %llu points\n",
              static_cast<unsigned long long>(m.points_ingested));
  std::printf("  flushed            %llu points\n",
              static_cast<unsigned long long>(m.points_flushed));
  std::printf("  rewritten          %llu points (%llu merges)\n",
              static_cast<unsigned long long>(m.points_rewritten),
              static_cast<unsigned long long>(m.merge_count));
  std::printf("  write amplification %.3f  (bytes written: %llu)\n",
              m.WriteAmplification(),
              static_cast<unsigned long long>(m.bytes_written));
  std::printf("  run files          %zu (+%zu level-0)\n", db->RunFileCount(),
              db->Level0FileCount());

  // A few probe queries for read amplification.
  int64_t max_time = db->MaxPersistedGenerationTime();
  std::printf("\nread path (recent windows):\n");
  for (int64_t window : {1'000, 10'000, 100'000}) {
    std::vector<DataPoint> out;
    engine::QueryStats stats;
    if (Status st = db->Query(max_time - window, max_time, &out, &stats);
        !st.ok()) {
      std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("  window %7lld: %6zu points, RA %.2f, %llu files\n",
                static_cast<long long>(window), out.size(),
                stats.ReadAmplification(),
                static_cast<unsigned long long>(stats.files_opened));
  }
  return 0;
}
