// Fleet monitoring: the paper's §VI use case in miniature. A vehicle fleet
// sends one point per second; connectivity outages cause batched re-sends
// (systematic ~50 s delays). The adaptive delay analyzer watches the stream,
// fits the delay profile, and keeps the engine on the policy with the lower
// predicted write amplification.
//
//   ./fleet_monitoring [data_dir]

#include <cstdio>
#include <filesystem>

#include "seplsm/seplsm.h"

int main(int argc, char** argv) {
  using namespace seplsm;

  std::string dir = argc > 1 ? argv[1] : "/tmp/seplsm_fleet";
  std::filesystem::remove_all(dir);

  engine::Options options;
  options.dir = dir;
  options.policy = engine::PolicyConfig::Conventional(512);
  auto open = engine::TsEngine::Open(options);
  if (!open.ok()) {
    std::fprintf(stderr, "open failed: %s\n", open.status().ToString().c_str());
    return 1;
  }
  auto& db = *open;

  analyzer::AdaptiveController::Options controller_options;
  controller_options.warmup_points = 8'192;
  controller_options.check_interval = 8'192;
  controller_options.tuning.sweep_step = 16;
  controller_options.tuning.granularity_sstable_points = 512;
  analyzer::AdaptiveController controller(db.get(), controller_options);

  // Simulated vehicle telemetry (see workload::GenerateHSimulated).
  workload::HSimConfig h;
  h.num_points = 200'000;
  auto points = workload::GenerateHSimulated(h);
  auto disorder = workload::ComputeDisorderStats(points);
  std::printf("fleet stream: %zu points, %.4f%% out of order, "
              "max delay %.0f ms\n",
              points.size(), 100.0 * disorder.out_of_order_fraction,
              disorder.max_delay);

  for (const auto& p : points) {
    if (Status st = controller.Observe(p); !st.ok()) {
      std::fprintf(stderr, "analyzer failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (Status st = db->Append(p); !st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = db->FlushAll(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\nanalyzer decisions:\n");
  for (const auto& d : controller.decisions()) {
    std::printf("  @%llu points: fitted %s, r_c=%.3f, r_s*=%.3f -> %s%s\n",
                static_cast<unsigned long long>(d.at_points),
                d.fitted_family.c_str(), d.wa_conventional,
                d.wa_separation_best, d.chosen.ToString().c_str(),
                d.switched ? " (switched)" : "");
  }

  engine::Metrics metrics = db->GetMetrics();
  std::printf("\nfinal: %s\n", metrics.ToString().c_str());
  std::printf("policy in effect: %s\n",
              db->options().policy.ToString().c_str());

  // Dashboard query: the last two minutes of telemetry.
  int64_t max_time = db->MaxPersistedGenerationTime();
  std::vector<DataPoint> window;
  if (Status st = db->Query(max_time - 120'000, max_time, &window); !st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("last 2 min: %zu points\n", window.size());
  return 0;
}
