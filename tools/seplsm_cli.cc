// seplsm command-line tool: generate workloads, ingest traces, query,
// and run the policy tuner without writing any code.
//
//   seplsm_cli generate --dataset=M5 --points=100000 --out=trace.csv
//   seplsm_cli ingest   --trace=trace.csv --dir=/tmp/db --policy=pi_s \
//                       --n=512 --nseq=256 [--wal] [--gorilla] [--bg]
//   seplsm_cli query    --dir=/tmp/db --lo=0 --hi=100000 [--bucket=5000]
//   seplsm_cli tune     --trace=trace.csv --n=512 [--granularity=512]
//   seplsm_cli info     --dir=/tmp/db

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "seplsm/seplsm.h"

namespace {

using namespace seplsm;

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long long GetInt(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Applies the shared --cache-mb / --cache-shards knobs to engine options.
void ApplyCacheFlags(const Flags& flags, engine::Options* options) {
  long long cache_mb = flags.GetInt("cache-mb", 0);
  if (cache_mb > 0) {
    options->block_cache_bytes = static_cast<size_t>(cache_mb) << 20;
    options->block_cache_shards =
        static_cast<size_t>(flags.GetInt("cache-shards", 16));
    // Keeping readers open is a prerequisite for block caching to pay off;
    // pick a roomy default when the user asked for a cache.
    if (options->table_cache_entries == 0) {
      options->table_cache_entries = 1024;
    }
  }
}

/// Applies the tree-shape knobs (--num-levels, --level-layout, --file-pick,
/// --level-base-files, --size-ratio, --max-compaction-input-files). Without
/// flags the options keep num_levels=0 (auto), so $SEPLSM_NUM_LEVELS still
/// applies; an explicit --num-levels pins the shape like it does in tests.
int ApplyTreeFlags(const Flags& flags, engine::Options* options) {
  options->num_levels = static_cast<size_t>(flags.GetInt("num-levels", 0));
  std::string layout = flags.Get("level-layout", "");
  if (!layout.empty()) {
    size_t n = options->num_levels > 0 ? options->num_levels : 2;
    if (layout == "tiering") {
      options->level_layouts.assign(n, storage::LevelLayout::kStacked);
    } else if (layout == "hybrid") {
      options->level_layouts.assign(n, storage::LevelLayout::kStacked);
      options->level_layouts.back() = storage::LevelLayout::kSorted;
    } else if (layout == "leveling") {
      options->level_layouts.clear();
    } else {
      return Fail("unknown --level-layout '" + layout +
                  "' (expected leveling, tiering, or hybrid)");
    }
  }
  std::string pick = flags.Get("file-pick", "oldest");
  if (pick == "oldest") {
    options->file_pick = engine::CompactionFilePick::kOldest;
  } else if (pick == "most-overlap") {
    options->file_pick = engine::CompactionFilePick::kMostOverlap;
  } else if (pick == "round-robin") {
    options->file_pick = engine::CompactionFilePick::kRoundRobin;
  } else {
    return Fail("unknown --file-pick '" + pick +
                "' (expected oldest, most-overlap, or round-robin)");
  }
  options->level_base_files = static_cast<size_t>(
      flags.GetInt("level-base-files",
                   static_cast<long long>(options->level_base_files)));
  options->level_size_ratio =
      flags.GetDouble("size-ratio", options->level_size_ratio);
  options->max_compaction_input_files = static_cast<size_t>(
      flags.GetInt("max-compaction-input-files", 0));
  return 0;
}

void PrintLevelFileCounts(engine::TsEngine* db) {
  std::printf("levels:     %zu (", db->NumLevels());
  for (size_t n = 0; n < db->NumLevels(); ++n) {
    std::printf("%sL%zu=%zu", n > 0 ? " " : "", n, db->LevelFileCount(n));
  }
  std::printf(")\n");
}

void PrintCacheStats(engine::TsEngine* db) {
  if (db->block_cache() != nullptr) {
    std::printf("%s\n", db->block_cache()->StatsString().c_str());
  }
}

/// Attaches a telemetry hub when observability flags ask for one (`force`
/// makes one unconditionally — the stats command). Span tracing is on only
/// when a --trace-out destination exists; histograms/counters are always
/// live on the returned hub.
std::shared_ptr<telemetry::Telemetry> ApplyTelemetryFlags(
    const Flags& flags, engine::Options* options, bool force = false) {
  const bool want_trace = !flags.Get("trace-out", "").empty();
  if (!force && !want_trace && !flags.GetBool("telemetry")) return nullptr;
  telemetry::TelemetryOptions topts;
  topts.trace_enabled = want_trace;
  auto telemetry = std::make_shared<telemetry::Telemetry>(topts);
  options->telemetry = telemetry;
  options->stats_dump_interval_ms =
      static_cast<uint64_t>(flags.GetInt("stats-dump-ms", 0));
  return telemetry;
}

/// Writes the captured span trace to --trace-out (no-op without the flag).
int DumpTraceIfRequested(const Flags& flags,
                         const telemetry::Telemetry* telemetry) {
  std::string path = flags.Get("trace-out", "");
  if (path.empty() || telemetry == nullptr) return 0;
  std::string format = flags.Get("trace-format", "chrome");
  if (!telemetry::WriteTraceFile(*telemetry, path, format)) {
    return Fail("failed to write trace to " + path + " (format " + format +
                "; expected chrome or jsonl)");
  }
  std::fprintf(stderr, "(%llu spans captured, %llu dropped; trace written "
               "to %s [%s])\n",
               static_cast<unsigned long long>(telemetry->tracer().recorded()),
               static_cast<unsigned long long>(telemetry->tracer().dropped()),
               path.c_str(), format.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: seplsm_cli <generate|ingest|query|tune|info|stats> "
               "[flags]\n"
               "  generate --dataset=M1..M12|s9|h --points=N --out=csv\n"
               "  ingest   --trace=csv --dir=path [--policy=pi_c|pi_s]\n"
               "           [--n=512] [--nseq=256] [--wal] [--wal-sync-every]\n"
               "           [--wal-group-commit] [--gorilla] [--bg]\n"
               "           [--bg-threads=T] [--cache-mb=M] [--cache-shards=S]\n"
               "           [--trace-out=f] [--stats-dump-ms=T]\n"
               "           [--num-levels=N] "
               "[--level-layout=leveling|tiering|hybrid]\n"
               "           [--file-pick=oldest|most-overlap|round-robin]\n"
               "           [--level-base-files=K] [--size-ratio=R]\n"
               "           [--max-compaction-input-files=C]\n"
               "  query    --dir=path --lo=T --hi=T [--bucket=W]\n"
               "           [--repeat=R] [--cache-mb=M] [--cache-shards=S]\n"
               "           [--stats] [--trace-out=f]\n"
               "  tune     --trace=csv [--n=512] [--granularity=S] [--step=K]\n"
               "  info     --dir=path [--stats]\n"
               "  verify   --dir=path\n"
               "  stats    --dir=path [--trace=csv] [--queries=Q] [--json]\n"
               "           [--prometheus] [--series=name] [--trace-out=f]\n"
               "           [--trace-format=chrome|jsonl] + ingest flags\n"
               "  --stats prints the full engine counter line (incl. "
               "compaction_read_bytes/blocks)\n"
               "  --trace-out captures engine spans (flush/compaction/query/"
               "queue_wait/stall)\n"
               "  stats runs an optional ingest+query workload with "
               "telemetry on and reports\n"
               "  per-phase latency percentiles (default text, --json, or "
               "--prometheus)\n");
  return 2;
}

int CmdGenerate(const Flags& flags) {
  std::string dataset = flags.Get("dataset", "M5");
  size_t points = static_cast<size_t>(flags.GetInt("points", 100'000));
  std::string out = flags.Get("out", "trace.csv");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::vector<DataPoint> trace;
  if (dataset == "s9") {
    trace = workload::GenerateS9Simulated(points, true, seed);
  } else if (dataset == "h") {
    workload::HSimConfig config;
    config.num_points = points;
    config.seed = seed;
    trace = workload::GenerateHSimulated(config);
  } else {
    trace = workload::GenerateTableII(workload::TableIIByName(dataset),
                                      points, seed);
  }
  auto stats = workload::ComputeDisorderStats(trace);
  Status st = workload::WriteTraceCsv(Env::Default(), out, trace);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %zu points to %s (%.3f%% out of order, mean delay "
              "%.1f)\n",
              trace.size(), out.c_str(),
              100.0 * stats.out_of_order_fraction, stats.mean_delay);
  return 0;
}

int CmdIngest(const Flags& flags) {
  std::string trace_path = flags.Get("trace", "");
  std::string dir = flags.Get("dir", "");
  if (trace_path.empty() || dir.empty()) {
    return Fail("ingest requires --trace and --dir");
  }
  auto trace = workload::ReadTraceCsv(Env::Default(), trace_path);
  if (!trace.ok()) return Fail(trace.status().ToString());

  engine::Options options;
  options.dir = dir;
  size_t n = static_cast<size_t>(flags.GetInt("n", 512));
  if (flags.Get("policy", "pi_c") == "pi_s") {
    size_t nseq = static_cast<size_t>(flags.GetInt("nseq", n / 2));
    options.policy = engine::PolicyConfig::Separation(n, nseq);
  } else {
    options.policy = engine::PolicyConfig::Conventional(n);
  }
  options.enable_wal = flags.GetBool("wal");
  options.wal_sync_every_append = flags.GetBool("wal-sync-every");
  options.wal_group_commit = flags.GetBool("wal-group-commit");
  if (options.wal_sync_every_append || options.wal_group_commit) {
    options.enable_wal = true;  // durable modes imply the log itself
  }
  options.background_mode = flags.GetBool("bg");
  // Worker count for the background scheduler (0 = hardware concurrency);
  // a single engine uses at most one job at a time, but the flag matters
  // once the same options template is reused across a fleet of series.
  options.background_threads =
      static_cast<size_t>(flags.GetInt("bg-threads", 0));
  if (options.background_mode && options.background_threads > 0) {
    options.job_scheduler =
        std::make_shared<engine::JobScheduler>(options.background_threads);
  }
  if (flags.GetBool("gorilla")) {
    options.value_encoding = format::ValueEncoding::kGorilla;
  }
  ApplyCacheFlags(flags, &options);
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  auto telemetry = ApplyTelemetryFlags(flags, &options);

  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());
  // Batched ingest: one WAL record, one durability ack, and one lock
  // round-trip per chunk instead of per point.
  constexpr size_t kIngestBatch = 256;
  for (size_t i = 0; i < trace->size(); i += kIngestBatch) {
    const size_t n = std::min(kIngestBatch, trace->size() - i);
    if (Status st = (*db)->AppendBatch(trace->data() + i, n); !st.ok()) {
      return Fail(st.ToString());
    }
  }
  if (Status st = (*db)->FlushAll(); !st.ok()) return Fail(st.ToString());
  engine::Metrics m = (*db)->GetMetrics();
  std::printf("ingested under %s\n%s\n",
              (*db)->options().policy.ToString().c_str(),
              m.ToString().c_str());
  PrintLevelFileCounts(db->get());
  PrintCacheStats(db->get());
  if (telemetry != nullptr) {
    std::printf("%s\n", telemetry->registry().ToJson().c_str());
  }
  return DumpTraceIfRequested(flags, telemetry.get());
}

int CmdQuery(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("query requires --dir");
  engine::Options options;
  options.dir = dir;
  ApplyCacheFlags(flags, &options);
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  auto telemetry = ApplyTelemetryFlags(flags, &options);
  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());

  int64_t hi_default = (*db)->MaxPersistedGenerationTime();
  int64_t lo = flags.GetInt("lo", 0);
  int64_t hi = flags.GetInt("hi", hi_default);
  int64_t bucket = flags.GetInt("bucket", 0);

  // --repeat re-runs the same query; with --cache-mb the repeats are served
  // from the block cache, which the stats line below makes visible.
  long long repeat = flags.GetInt("repeat", 1);
  for (long long r = 1; r < repeat; ++r) {
    engine::Aggregates warm;
    if (Status st = (*db)->Aggregate(lo, hi, &warm); !st.ok()) {
      return Fail(st.ToString());
    }
  }

  engine::QueryStats stats;
  if (bucket > 0) {
    std::vector<engine::TimeBucket> buckets;
    if (Status st = (*db)->Downsample(lo, hi, bucket, &buckets, &stats);
        !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("bucket_start,count,min,max,mean\n");
    for (const auto& b : buckets) {
      std::printf("%lld,%llu,%g,%g,%g\n",
                  static_cast<long long>(b.bucket_start),
                  static_cast<unsigned long long>(b.aggregates.count),
                  b.aggregates.min, b.aggregates.max, b.aggregates.mean());
    }
  } else {
    engine::Aggregates agg;
    if (Status st = (*db)->Aggregate(lo, hi, &agg, &stats); !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("count=%llu min=%g max=%g mean=%g first@%lld last@%lld\n",
                static_cast<unsigned long long>(agg.count), agg.min, agg.max,
                agg.mean(), static_cast<long long>(agg.first_time),
                static_cast<long long>(agg.last_time));
  }
  std::printf("(read amplification %.2f, %llu files, %llu device bytes",
              stats.ReadAmplification(),
              static_cast<unsigned long long>(stats.files_opened),
              static_cast<unsigned long long>(stats.device_bytes_read));
  if (stats.block_cache_hits + stats.block_cache_misses > 0) {
    std::printf(", cache hit rate %.1f%%", stats.BlockCacheHitRate() * 100.0);
  }
  std::printf(")\n");
  if (flags.GetBool("stats")) {
    // Cumulative engine counters for this process — recovery compactions
    // (level-0 stragglers folded at Open) show up as compaction reads.
    std::printf("%s\n", (*db)->GetMetrics().ToString().c_str());
  }
  PrintCacheStats(db->get());
  return DumpTraceIfRequested(flags, telemetry.get());
}

int CmdTune(const Flags& flags) {
  std::string trace_path = flags.Get("trace", "");
  if (trace_path.empty()) return Fail("tune requires --trace");
  auto trace = workload::ReadTraceCsv(Env::Default(), trace_path);
  if (!trace.ok()) return Fail(trace.status().ToString());
  size_t n = static_cast<size_t>(flags.GetInt("n", 512));

  analyzer::DelayCollector collector(8192, 4096);
  for (const auto& p : *trace) collector.Observe(p);
  auto fit = analyzer::FitDelayDistribution(collector.sample());
  if (!fit.ok()) return Fail(fit.status().ToString());
  double delta_t = collector.EstimateDeltaT();

  model::TuningOptions tuning;
  tuning.sweep_step = static_cast<size_t>(flags.GetInt("step", 8));
  tuning.granularity_sstable_points =
      static_cast<size_t>(flags.GetInt("granularity", 0));
  auto result = model::TunePolicy(*fit->distribution, delta_t, n, tuning);

  std::printf("fitted: %s (KS %.4f), dt=%.2f\n",
              fit->distribution->Name().c_str(), fit->ks_distance, delta_t);
  std::printf("r_c = %.3f, min r_s = %.3f at n_seq = %zu\n",
              result.wa_conventional, result.wa_separation_best,
              result.best_nseq);
  std::printf("recommendation: %s\n", result.recommended.ToString().c_str());
  return 0;
}

int CmdInfo(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("info requires --dir");
  engine::Options options;
  options.dir = dir;
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());
  engine::Aggregates agg;
  if (Status st = (*db)->Aggregate(std::numeric_limits<int64_t>::min() / 2,
                                   std::numeric_limits<int64_t>::max() / 2,
                                   &agg);
      !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("points:     %llu\n",
              static_cast<unsigned long long>(agg.count));
  std::printf("time range: [%lld, %lld]\n",
              static_cast<long long>(agg.first_time),
              static_cast<long long>(agg.last_time));
  std::printf("run files:  %zu (+%zu level-0)\n", (*db)->RunFileCount(),
              (*db)->Level0FileCount());
  PrintLevelFileCounts(db->get());
  if (flags.GetBool("stats")) {
    std::printf("%s\n", (*db)->GetMetrics().ToString().c_str());
  }
  return 0;
}

/// One-stop observability probe: open (or populate) a database with
/// telemetry attached, optionally drive a query sweep, and report engine
/// counters + per-phase latency percentiles as text, JSON, or Prometheus
/// exposition. This is what the CI smoke job scrapes.
int CmdStats(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("stats requires --dir");

  engine::Options options;
  options.dir = dir;
  size_t n = static_cast<size_t>(flags.GetInt("n", 512));
  if (flags.Get("policy", "pi_c") == "pi_s") {
    size_t nseq = static_cast<size_t>(flags.GetInt("nseq", n / 2));
    options.policy = engine::PolicyConfig::Separation(n, nseq);
  } else {
    options.policy = engine::PolicyConfig::Conventional(n);
  }
  options.enable_wal = flags.GetBool("wal");
  options.wal_sync_every_append = flags.GetBool("wal-sync-every");
  options.wal_group_commit = flags.GetBool("wal-group-commit");
  if (options.wal_sync_every_append || options.wal_group_commit) {
    options.enable_wal = true;
  }
  options.background_mode = flags.GetBool("bg");
  options.background_threads =
      static_cast<size_t>(flags.GetInt("bg-threads", 0));
  if (flags.GetBool("gorilla")) {
    options.value_encoding = format::ValueEncoding::kGorilla;
  }
  ApplyCacheFlags(flags, &options);
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  std::string series = flags.Get("series", dir);
  options.series_name = series;
  auto telemetry = ApplyTelemetryFlags(flags, &options, /*force=*/true);

  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());

  // Optional workload so the histograms have something to summarize:
  // ingest a CSV trace, then sweep the persisted range with --queries
  // aggregate queries (0 skips the sweep).
  std::string trace_path = flags.Get("trace", "");
  if (!trace_path.empty()) {
    auto trace = workload::ReadTraceCsv(Env::Default(), trace_path);
    if (!trace.ok()) return Fail(trace.status().ToString());
    constexpr size_t kIngestBatch = 256;
    for (size_t i = 0; i < trace->size(); i += kIngestBatch) {
      const size_t n = std::min(kIngestBatch, trace->size() - i);
      if (Status st = (*db)->AppendBatch(trace->data() + i, n); !st.ok()) {
        return Fail(st.ToString());
      }
    }
    if (Status st = (*db)->FlushAll(); !st.ok()) return Fail(st.ToString());
  }
  long long queries = flags.GetInt("queries", 8);
  int64_t hi = (*db)->MaxPersistedGenerationTime();
  if (queries > 0 && hi > 0) {
    int64_t span = hi / queries;
    for (long long q = 0; q < queries; ++q) {
      std::vector<DataPoint> out;
      int64_t lo = q * span;
      if (Status st = (*db)->Query(lo, lo + std::max<int64_t>(span, 1), &out);
          !st.ok()) {
        return Fail(st.ToString());
      }
    }
  }

  engine::Metrics m = (*db)->GetMetrics();
  if (flags.GetBool("json")) {
    std::printf("{\"series\":\"%s\",\"engine\":%s,\"telemetry\":%s}\n",
                series.c_str(), m.ToJson().c_str(),
                telemetry->registry().ToJson().c_str());
  } else if (flags.GetBool("prometheus")) {
    std::printf("%s%s", m.ToPrometheus(series).c_str(),
                telemetry->registry().ToPrometheus(series).c_str());
  } else {
    std::printf("%s\n%s\n", m.ToString().c_str(),
                telemetry->registry().ToJson().c_str());
  }
  return DumpTraceIfRequested(flags, telemetry.get());
}

int CmdVerify(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("verify requires --dir");
  auto report = storage::VerifyDatabase(Env::Default(), dir);
  if (!report.ok()) return Fail(report.status().ToString());
  for (const auto& t : report->tables) {
    std::printf("%-40s %s", t.path.c_str(), t.ok ? "OK" : "CORRUPT");
    if (t.ok) {
      std::printf(" (%llu points, %llu blocks)",
                  static_cast<unsigned long long>(t.point_count),
                  static_cast<unsigned long long>(t.blocks));
    } else {
      std::printf(" -- %s", t.error.c_str());
    }
    std::printf("\n");
  }
  if (report->wal_present) {
    std::printf("wal.log: %llu replayable records%s\n",
                static_cast<unsigned long long>(report->wal_records),
                report->wal_tail_truncated ? " (torn tail truncated)" : "");
  }
  std::printf("total: %zu tables, %llu points, %llu corrupt\n",
              report->tables.size(),
              static_cast<unsigned long long>(report->total_points),
              static_cast<unsigned long long>(report->corrupt_tables));
  return report->ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "ingest") return CmdIngest(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "tune") return CmdTune(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "verify") return CmdVerify(flags);
  if (command == "stats") return CmdStats(flags);
  return Usage();
}
