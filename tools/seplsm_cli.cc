// seplsm command-line tool: generate workloads, ingest traces, query,
// and run the policy tuner without writing any code.
//
//   seplsm_cli generate --dataset=M5 --points=100000 --out=trace.csv
//   seplsm_cli ingest   --trace=trace.csv --dir=/tmp/db --policy=pi_s \
//                       --n=512 --nseq=256 [--wal] [--gorilla] [--bg]
//   seplsm_cli query    --dir=/tmp/db --lo=0 --hi=100000 [--bucket=5000]
//   seplsm_cli tune     --trace=trace.csv --n=512 [--granularity=512]
//   seplsm_cli info     --dir=/tmp/db

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "seplsm/seplsm.h"

namespace {

using namespace seplsm;

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long long GetInt(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Applies the shared --cache-mb / --cache-shards knobs to engine options.
void ApplyCacheFlags(const Flags& flags, engine::Options* options) {
  long long cache_mb = flags.GetInt("cache-mb", 0);
  if (cache_mb > 0) {
    options->block_cache_bytes = static_cast<size_t>(cache_mb) << 20;
    options->block_cache_shards =
        static_cast<size_t>(flags.GetInt("cache-shards", 16));
    // Keeping readers open is a prerequisite for block caching to pay off;
    // pick a roomy default when the user asked for a cache.
    if (options->table_cache_entries == 0) {
      options->table_cache_entries = 1024;
    }
  }
}

/// Applies the tree-shape knobs (--num-levels, --level-layout, --file-pick,
/// --level-base-files, --size-ratio, --max-compaction-input-files). Without
/// flags the options keep num_levels=0 (auto), so $SEPLSM_NUM_LEVELS still
/// applies; an explicit --num-levels pins the shape like it does in tests.
int ApplyTreeFlags(const Flags& flags, engine::Options* options) {
  options->num_levels = static_cast<size_t>(flags.GetInt("num-levels", 0));
  std::string layout = flags.Get("level-layout", "");
  if (!layout.empty()) {
    size_t n = options->num_levels > 0 ? options->num_levels : 2;
    if (layout == "tiering") {
      options->level_layouts.assign(n, storage::LevelLayout::kStacked);
    } else if (layout == "hybrid") {
      options->level_layouts.assign(n, storage::LevelLayout::kStacked);
      options->level_layouts.back() = storage::LevelLayout::kSorted;
    } else if (layout == "leveling") {
      options->level_layouts.clear();
    } else {
      return Fail("unknown --level-layout '" + layout +
                  "' (expected leveling, tiering, or hybrid)");
    }
  }
  std::string pick = flags.Get("file-pick", "oldest");
  if (pick == "oldest") {
    options->file_pick = engine::CompactionFilePick::kOldest;
  } else if (pick == "most-overlap") {
    options->file_pick = engine::CompactionFilePick::kMostOverlap;
  } else if (pick == "round-robin") {
    options->file_pick = engine::CompactionFilePick::kRoundRobin;
  } else {
    return Fail("unknown --file-pick '" + pick +
                "' (expected oldest, most-overlap, or round-robin)");
  }
  options->level_base_files = static_cast<size_t>(
      flags.GetInt("level-base-files",
                   static_cast<long long>(options->level_base_files)));
  options->level_size_ratio =
      flags.GetDouble("size-ratio", options->level_size_ratio);
  options->max_compaction_input_files = static_cast<size_t>(
      flags.GetInt("max-compaction-input-files", 0));
  return 0;
}

void PrintLevelFileCounts(engine::TsEngine* db) {
  std::printf("levels:     %zu (", db->NumLevels());
  for (size_t n = 0; n < db->NumLevels(); ++n) {
    std::printf("%sL%zu=%zu", n > 0 ? " " : "", n, db->LevelFileCount(n));
  }
  std::printf(")\n");
}

void PrintCacheStats(engine::TsEngine* db) {
  if (db->block_cache() != nullptr) {
    std::printf("%s\n", db->block_cache()->StatsString().c_str());
  }
}

/// Attaches a telemetry hub when observability flags ask for one (`force`
/// makes one unconditionally — the stats command). Span tracing is on only
/// when a --trace-out destination exists; histograms/counters are always
/// live on the returned hub.
std::shared_ptr<telemetry::Telemetry> ApplyTelemetryFlags(
    const Flags& flags, engine::Options* options, bool force = false) {
  const bool want_trace = !flags.Get("trace-out", "").empty();
  if (!force && !want_trace && !flags.GetBool("telemetry")) return nullptr;
  telemetry::TelemetryOptions topts;
  topts.trace_enabled = want_trace;
  auto telemetry = std::make_shared<telemetry::Telemetry>(topts);
  options->telemetry = telemetry;
  options->stats_dump_interval_ms =
      static_cast<uint64_t>(flags.GetInt("stats-dump-ms", 0));
  return telemetry;
}

/// Writes the captured span trace to --trace-out (no-op without the flag).
int DumpTraceIfRequested(const Flags& flags,
                         const telemetry::Telemetry* telemetry) {
  std::string path = flags.Get("trace-out", "");
  if (path.empty() || telemetry == nullptr) return 0;
  std::string format = flags.Get("trace-format", "chrome");
  if (!telemetry::WriteTraceFile(*telemetry, path, format)) {
    return Fail("failed to write trace to " + path + " (format " + format +
                "; expected chrome or jsonl)");
  }
  std::fprintf(stderr, "(%llu spans captured, %llu dropped; trace written "
               "to %s [%s])\n",
               static_cast<unsigned long long>(telemetry->tracer().recorded()),
               static_cast<unsigned long long>(telemetry->tracer().dropped()),
               path.c_str(), format.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: seplsm_cli <generate|ingest|query|explain|tune|info|"
               "verify|stats|doctor|serve> [flags]\n"
               "  generate --dataset=M1..M12|s9|h --points=N --out=csv\n"
               "  ingest   --trace=csv --dir=path [--policy=pi_c|pi_s]\n"
               "           [--n=512] [--nseq=256] [--wal] [--wal-sync-every]\n"
               "           [--wal-group-commit] [--gorilla] [--bg]\n"
               "           [--bg-threads=T] [--cache-mb=M] [--cache-shards=S]\n"
               "           [--trace-out=f] [--stats-dump-ms=T]\n"
               "           [--num-levels=N] "
               "[--level-layout=leveling|tiering|hybrid]\n"
               "           [--file-pick=oldest|most-overlap|round-robin]\n"
               "           [--level-base-files=K] [--size-ratio=R]\n"
               "           [--max-compaction-input-files=C]\n"
               "  query    --dir=path --lo=T --hi=T [--bucket=W]\n"
               "           [--repeat=R] [--cache-mb=M] [--cache-shards=S]\n"
               "           [--stats] [--trace-out=f]\n"
               "  explain  --dir=path --lo=T --hi=T [--bucket=W] [--raw]\n"
               "           [--json] [--max-events=N] — run the query with a\n"
               "           decision trace attached and print it\n"
               "  tune     --trace=csv [--n=512] [--granularity=S] [--step=K]\n"
               "  info     --dir=path [--stats]\n"
               "  verify   --dir=path\n"
               "  doctor   --dir=path [--strict] — one-shot read-only health\n"
               "           check (file inventory, CRCs, level invariants,\n"
               "           WAL tail); exit 1 on problems\n"
               "  serve    --dir=path [--port=P] [--port-file=f]\n"
               "           [--duration-ms=T] [--series=S] [--adaptive]\n"
               "           [--bg] [--wal] — live exporter under synthetic\n"
               "           concurrent ingest (the CI smoke harness)\n"
               "  stats    --dir=path [--trace=csv] [--queries=Q] [--json]\n"
               "           [--prometheus] [--series=name] [--trace-out=f]\n"
               "           [--trace-format=chrome|jsonl] + ingest flags\n"
               "  --stats prints the full engine counter line (incl. "
               "compaction_read_bytes/blocks)\n"
               "  --trace-out captures engine spans (flush/compaction/query/"
               "queue_wait/stall)\n"
               "  stats runs an optional ingest+query workload with "
               "telemetry on and reports\n"
               "  per-phase latency percentiles (default text, --json, or "
               "--prometheus)\n");
  return 2;
}

int CmdGenerate(const Flags& flags) {
  std::string dataset = flags.Get("dataset", "M5");
  size_t points = static_cast<size_t>(flags.GetInt("points", 100'000));
  std::string out = flags.Get("out", "trace.csv");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::vector<DataPoint> trace;
  if (dataset == "s9") {
    trace = workload::GenerateS9Simulated(points, true, seed);
  } else if (dataset == "h") {
    workload::HSimConfig config;
    config.num_points = points;
    config.seed = seed;
    trace = workload::GenerateHSimulated(config);
  } else {
    trace = workload::GenerateTableII(workload::TableIIByName(dataset),
                                      points, seed);
  }
  auto stats = workload::ComputeDisorderStats(trace);
  Status st = workload::WriteTraceCsv(Env::Default(), out, trace);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %zu points to %s (%.3f%% out of order, mean delay "
              "%.1f)\n",
              trace.size(), out.c_str(),
              100.0 * stats.out_of_order_fraction, stats.mean_delay);
  return 0;
}

int CmdIngest(const Flags& flags) {
  std::string trace_path = flags.Get("trace", "");
  std::string dir = flags.Get("dir", "");
  if (trace_path.empty() || dir.empty()) {
    return Fail("ingest requires --trace and --dir");
  }
  auto trace = workload::ReadTraceCsv(Env::Default(), trace_path);
  if (!trace.ok()) return Fail(trace.status().ToString());

  engine::Options options;
  options.dir = dir;
  size_t n = static_cast<size_t>(flags.GetInt("n", 512));
  if (flags.Get("policy", "pi_c") == "pi_s") {
    size_t nseq = static_cast<size_t>(flags.GetInt("nseq", n / 2));
    options.policy = engine::PolicyConfig::Separation(n, nseq);
  } else {
    options.policy = engine::PolicyConfig::Conventional(n);
  }
  options.enable_wal = flags.GetBool("wal");
  options.wal_sync_every_append = flags.GetBool("wal-sync-every");
  options.wal_group_commit = flags.GetBool("wal-group-commit");
  if (options.wal_sync_every_append || options.wal_group_commit) {
    options.enable_wal = true;  // durable modes imply the log itself
  }
  options.background_mode = flags.GetBool("bg");
  // Worker count for the background scheduler (0 = hardware concurrency);
  // a single engine uses at most one job at a time, but the flag matters
  // once the same options template is reused across a fleet of series.
  options.background_threads =
      static_cast<size_t>(flags.GetInt("bg-threads", 0));
  if (options.background_mode && options.background_threads > 0) {
    options.job_scheduler =
        std::make_shared<engine::JobScheduler>(options.background_threads);
  }
  if (flags.GetBool("gorilla")) {
    options.value_encoding = format::ValueEncoding::kGorilla;
  }
  ApplyCacheFlags(flags, &options);
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  auto telemetry = ApplyTelemetryFlags(flags, &options);

  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());
  // Batched ingest: one WAL record, one durability ack, and one lock
  // round-trip per chunk instead of per point.
  constexpr size_t kIngestBatch = 256;
  for (size_t i = 0; i < trace->size(); i += kIngestBatch) {
    const size_t n = std::min(kIngestBatch, trace->size() - i);
    if (Status st = (*db)->AppendBatch(trace->data() + i, n); !st.ok()) {
      return Fail(st.ToString());
    }
  }
  if (Status st = (*db)->FlushAll(); !st.ok()) return Fail(st.ToString());
  engine::Metrics m = (*db)->GetMetrics();
  std::printf("ingested under %s\n%s\n",
              (*db)->options().policy.ToString().c_str(),
              m.ToString().c_str());
  PrintLevelFileCounts(db->get());
  PrintCacheStats(db->get());
  if (telemetry != nullptr) {
    std::printf("%s\n", telemetry->registry().ToJson().c_str());
  }
  return DumpTraceIfRequested(flags, telemetry.get());
}

int CmdQuery(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("query requires --dir");
  engine::Options options;
  options.dir = dir;
  ApplyCacheFlags(flags, &options);
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  auto telemetry = ApplyTelemetryFlags(flags, &options);
  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());

  int64_t hi_default = (*db)->MaxPersistedGenerationTime();
  int64_t lo = flags.GetInt("lo", 0);
  int64_t hi = flags.GetInt("hi", hi_default);
  int64_t bucket = flags.GetInt("bucket", 0);

  // --repeat re-runs the same query; with --cache-mb the repeats are served
  // from the block cache, which the stats line below makes visible.
  long long repeat = flags.GetInt("repeat", 1);
  for (long long r = 1; r < repeat; ++r) {
    engine::Aggregates warm;
    if (Status st = (*db)->Aggregate(lo, hi, &warm); !st.ok()) {
      return Fail(st.ToString());
    }
  }

  engine::QueryStats stats;
  if (bucket > 0) {
    std::vector<engine::TimeBucket> buckets;
    if (Status st = (*db)->Downsample(lo, hi, bucket, &buckets, &stats);
        !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("bucket_start,count,min,max,mean\n");
    for (const auto& b : buckets) {
      std::printf("%lld,%llu,%g,%g,%g\n",
                  static_cast<long long>(b.bucket_start),
                  static_cast<unsigned long long>(b.aggregates.count),
                  b.aggregates.min, b.aggregates.max, b.aggregates.mean());
    }
  } else {
    engine::Aggregates agg;
    if (Status st = (*db)->Aggregate(lo, hi, &agg, &stats); !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("count=%llu min=%g max=%g mean=%g first@%lld last@%lld\n",
                static_cast<unsigned long long>(agg.count), agg.min, agg.max,
                agg.mean(), static_cast<long long>(agg.first_time),
                static_cast<long long>(agg.last_time));
  }
  std::printf("(read amplification %.2f, %llu files, %llu device bytes",
              stats.ReadAmplification(),
              static_cast<unsigned long long>(stats.files_opened),
              static_cast<unsigned long long>(stats.device_bytes_read));
  if (stats.block_cache_hits + stats.block_cache_misses > 0) {
    std::printf(", cache hit rate %.1f%%", stats.BlockCacheHitRate() * 100.0);
  }
  std::printf(")\n");
  if (flags.GetBool("stats")) {
    // Cumulative engine counters for this process — recovery compactions
    // (level-0 stragglers folded at Open) show up as compaction reads.
    std::printf("%s\n", (*db)->GetMetrics().ToString().c_str());
  }
  PrintCacheStats(db->get());
  return DumpTraceIfRequested(flags, telemetry.get());
}

int CmdTune(const Flags& flags) {
  std::string trace_path = flags.Get("trace", "");
  if (trace_path.empty()) return Fail("tune requires --trace");
  auto trace = workload::ReadTraceCsv(Env::Default(), trace_path);
  if (!trace.ok()) return Fail(trace.status().ToString());
  size_t n = static_cast<size_t>(flags.GetInt("n", 512));

  analyzer::DelayCollector collector(8192, 4096);
  for (const auto& p : *trace) collector.Observe(p);
  auto fit = analyzer::FitDelayDistribution(collector.sample());
  if (!fit.ok()) return Fail(fit.status().ToString());
  double delta_t = collector.EstimateDeltaT();

  model::TuningOptions tuning;
  tuning.sweep_step = static_cast<size_t>(flags.GetInt("step", 8));
  tuning.granularity_sstable_points =
      static_cast<size_t>(flags.GetInt("granularity", 0));
  auto result = model::TunePolicy(*fit->distribution, delta_t, n, tuning);

  std::printf("fitted: %s (KS %.4f), dt=%.2f\n",
              fit->distribution->Name().c_str(), fit->ks_distance, delta_t);
  std::printf("r_c = %.3f, min r_s = %.3f at n_seq = %zu\n",
              result.wa_conventional, result.wa_separation_best,
              result.best_nseq);
  std::printf("recommendation: %s\n", result.recommended.ToString().c_str());
  return 0;
}

int CmdInfo(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("info requires --dir");
  engine::Options options;
  options.dir = dir;
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());
  engine::Aggregates agg;
  if (Status st = (*db)->Aggregate(std::numeric_limits<int64_t>::min() / 2,
                                   std::numeric_limits<int64_t>::max() / 2,
                                   &agg);
      !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("points:     %llu\n",
              static_cast<unsigned long long>(agg.count));
  std::printf("time range: [%lld, %lld]\n",
              static_cast<long long>(agg.first_time),
              static_cast<long long>(agg.last_time));
  std::printf("run files:  %zu (+%zu level-0)\n", (*db)->RunFileCount(),
              (*db)->Level0FileCount());
  PrintLevelFileCounts(db->get());
  if (flags.GetBool("stats")) {
    std::printf("%s\n", (*db)->GetMetrics().ToString().c_str());
  }
  return 0;
}

/// One-stop observability probe: open (or populate) a database with
/// telemetry attached, optionally drive a query sweep, and report engine
/// counters + per-phase latency percentiles as text, JSON, or Prometheus
/// exposition. This is what the CI smoke job scrapes.
int CmdStats(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("stats requires --dir");

  engine::Options options;
  options.dir = dir;
  size_t n = static_cast<size_t>(flags.GetInt("n", 512));
  if (flags.Get("policy", "pi_c") == "pi_s") {
    size_t nseq = static_cast<size_t>(flags.GetInt("nseq", n / 2));
    options.policy = engine::PolicyConfig::Separation(n, nseq);
  } else {
    options.policy = engine::PolicyConfig::Conventional(n);
  }
  options.enable_wal = flags.GetBool("wal");
  options.wal_sync_every_append = flags.GetBool("wal-sync-every");
  options.wal_group_commit = flags.GetBool("wal-group-commit");
  if (options.wal_sync_every_append || options.wal_group_commit) {
    options.enable_wal = true;
  }
  options.background_mode = flags.GetBool("bg");
  options.background_threads =
      static_cast<size_t>(flags.GetInt("bg-threads", 0));
  if (flags.GetBool("gorilla")) {
    options.value_encoding = format::ValueEncoding::kGorilla;
  }
  ApplyCacheFlags(flags, &options);
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  std::string series = flags.Get("series", dir);
  options.series_name = series;
  auto telemetry = ApplyTelemetryFlags(flags, &options, /*force=*/true);

  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());

  // Optional workload so the histograms have something to summarize:
  // ingest a CSV trace, then sweep the persisted range with --queries
  // aggregate queries (0 skips the sweep).
  std::string trace_path = flags.Get("trace", "");
  if (!trace_path.empty()) {
    auto trace = workload::ReadTraceCsv(Env::Default(), trace_path);
    if (!trace.ok()) return Fail(trace.status().ToString());
    constexpr size_t kIngestBatch = 256;
    for (size_t i = 0; i < trace->size(); i += kIngestBatch) {
      const size_t n = std::min(kIngestBatch, trace->size() - i);
      if (Status st = (*db)->AppendBatch(trace->data() + i, n); !st.ok()) {
        return Fail(st.ToString());
      }
    }
    if (Status st = (*db)->FlushAll(); !st.ok()) return Fail(st.ToString());
  }
  long long queries = flags.GetInt("queries", 8);
  int64_t hi = (*db)->MaxPersistedGenerationTime();
  if (queries > 0 && hi > 0) {
    int64_t span = hi / queries;
    for (long long q = 0; q < queries; ++q) {
      std::vector<DataPoint> out;
      int64_t lo = q * span;
      if (Status st = (*db)->Query(lo, lo + std::max<int64_t>(span, 1), &out);
          !st.ok()) {
        return Fail(st.ToString());
      }
    }
  }

  engine::Metrics m = (*db)->GetMetrics();
  if (flags.GetBool("json")) {
    std::printf("{\"series\":\"%s\",\"engine\":%s,\"telemetry\":%s}\n",
                series.c_str(), m.ToJson().c_str(),
                telemetry->registry().ToJson().c_str());
  } else if (flags.GetBool("prometheus")) {
    // The engine counter names double in the telemetry registry (the
    // engine mirrors them); exclude so no family appears twice.
    std::printf("%s%s", m.ToPrometheus(series).c_str(),
                telemetry->registry()
                    .ToPrometheus(series, engine::Metrics::CounterNames())
                    .c_str());
  } else {
    std::printf("%s\n%s\n", m.ToString().c_str(),
                telemetry->registry().ToJson().c_str());
  }
  return DumpTraceIfRequested(flags, telemetry.get());
}

/// Runs one query/aggregate/downsample with a QueryExplain attached and
/// prints the decision trace. Results are bit-identical with or without the
/// trace (tests/explain_test.cc proves it), so this is safe on live data.
int CmdExplain(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("explain requires --dir");
  engine::Options options;
  options.dir = dir;
  ApplyCacheFlags(flags, &options);
  if (int rc = ApplyTreeFlags(flags, &options); rc != 0) return rc;
  auto db = engine::TsEngine::Open(options);
  if (!db.ok()) return Fail(db.status().ToString());

  int64_t lo = flags.GetInt("lo", 0);
  int64_t hi = flags.GetInt("hi", (*db)->MaxPersistedGenerationTime());
  int64_t bucket = flags.GetInt("bucket", 0);

  storage::QueryExplain explain(
      static_cast<size_t>(flags.GetInt("max-events", 4096)));
  engine::QueryStats stats;
  stats.explain = &explain;
  if (bucket > 0) {
    std::vector<engine::TimeBucket> buckets;
    if (Status st = (*db)->Downsample(lo, hi, bucket, &buckets, &stats);
        !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("downsample [%lld, %lld] bucket=%lld -> %zu buckets\n",
                static_cast<long long>(lo), static_cast<long long>(hi),
                static_cast<long long>(bucket), buckets.size());
  } else if (flags.GetBool("raw")) {
    std::vector<DataPoint> out;
    if (Status st = (*db)->Query(lo, hi, &out, &stats); !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("query [%lld, %lld] -> %zu points\n",
                static_cast<long long>(lo), static_cast<long long>(hi),
                out.size());
  } else {
    engine::Aggregates agg;
    if (Status st = (*db)->Aggregate(lo, hi, &agg, &stats); !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("aggregate [%lld, %lld] -> count=%llu min=%g max=%g "
                "mean=%g\n",
                static_cast<long long>(lo), static_cast<long long>(hi),
                static_cast<unsigned long long>(agg.count), agg.min, agg.max,
                agg.mean());
  }
  if (flags.GetBool("json")) {
    std::printf("%s\n", explain.ToJson().c_str());
  } else {
    std::printf("%s", explain.ToText().c_str());
  }
  return 0;
}

/// Read-only inspection of one engine directory for `doctor`: file
/// inventory (v1/v2), deep CRC verification, the recovery-shape level
/// invariants, and the WAL tail. Never opens a TsEngine — recovery
/// compacts stragglers and rotates the WAL, and a doctor must not mutate
/// the patient.
void DoctorOneDir(Env* env, const std::string& dir, const std::string& label,
                  bool strict, size_t* problems, size_t* warnings) {
  auto report = storage::VerifyDatabase(env, dir);
  if (!report.ok()) {
    std::printf("%s: ERROR %s\n", label.c_str(),
                report.status().ToString().c_str());
    ++*problems;
    return;
  }
  for (const auto& t : report->tables) {
    if (!t.ok) {
      std::printf("%s: CORRUPT %s -- %s\n", label.c_str(), t.path.c_str(),
                  t.error.c_str());
      ++*problems;
    }
  }

  // Inventory + level invariants, reconstructed exactly the way recovery
  // does (files carry no level tag): sort by min generation time, greedily
  // extend the sorted run, everything overlapping falls to level 0.
  struct TableInfo {
    uint64_t number = 0;
    int64_t min_t = 0;
    int64_t max_t = 0;
    bool v2 = false;
  };
  std::vector<TableInfo> tables;
  std::vector<std::string> children;
  if (Status st = env->ListDir(dir, &children); !st.ok()) {
    std::printf("%s: ERROR %s\n", label.c_str(), st.ToString().c_str());
    ++*problems;
    return;
  }
  for (const auto& name : children) {
    const size_t dot = name.rfind(".sst");
    if (dot == std::string::npos || dot + 4 != name.size() || dot == 0) {
      continue;
    }
    bool digits = true;
    for (size_t i = 0; i < dot; ++i) {
      digits = digits && name[i] >= '0' && name[i] <= '9';
    }
    if (!digits) continue;
    auto reader =
        storage::SSTableReader::Open(env, dir + "/" + name);
    if (!reader.ok()) continue;  // already reported by VerifyDatabase
    TableInfo info;
    info.number = std::strtoull(name.c_str(), nullptr, 10);
    info.min_t = (*reader)->min_generation_time();
    info.max_t = (*reader)->max_generation_time();
    info.v2 = (*reader)->has_metadata();
    tables.push_back(info);
  }
  std::sort(tables.begin(), tables.end(),
            [](const TableInfo& a, const TableInfo& b) {
              if (a.min_t != b.min_t) return a.min_t < b.min_t;
              return a.number < b.number;
            });
  size_t v2 = 0, stragglers = 0, inverted = 0;
  bool have_run = false;
  int64_t run_max = 0;
  for (const auto& t : tables) {
    if (t.v2) ++v2;
    if (t.min_t > t.max_t) {
      std::printf("%s: INVARIANT %08llu.sst has inverted time range "
                  "[%lld, %lld]\n",
                  label.c_str(), static_cast<unsigned long long>(t.number),
                  static_cast<long long>(t.min_t),
                  static_cast<long long>(t.max_t));
      ++inverted;
      ++*problems;
      continue;
    }
    if (!have_run || t.min_t > run_max) {
      have_run = true;
      run_max = t.max_t;
    } else {
      ++stragglers;  // would recover into level 0
    }
  }
  std::printf("%s: %zu tables (v1=%zu v2=%zu), %llu points, "
              "%zu level-0 stragglers\n",
              label.c_str(), tables.size(), tables.size() - v2, v2,
              static_cast<unsigned long long>(report->total_points),
              stragglers);
  if (report->wal_present) {
    std::printf("%s: wal %llu replayable records%s\n", label.c_str(),
                static_cast<unsigned long long>(report->wal_records),
                report->wal_tail_truncated ? " (TORN TAIL: will be "
                                             "truncated on recovery)"
                                           : "");
    if (report->wal_tail_truncated) {
      // Recoverable by design (the tail is dropped and logged), so a
      // warning unless --strict.
      if (strict) {
        ++*problems;
      } else {
        ++*warnings;
      }
    }
  }
}

/// One-shot health check with a doctor's contract: observe, report, never
/// treat. Exit 0 = healthy, 1 = problems found, 2 = usage.
int CmdDoctor(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("doctor requires --dir");
  const bool strict = flags.GetBool("strict");
  Env* env = Env::Default();
  size_t problems = 0, warnings = 0;

  // A multi-series root holds "s_*" child directories; doctor each series
  // plus the root itself (a standalone engine keeps tables at the root).
  std::vector<std::string> children;
  std::vector<std::string> series_dirs;
  if (Status st = env->ListDir(dir, &children); !st.ok()) {
    return Fail(st.ToString());
  }
  std::sort(children.begin(), children.end());
  for (const auto& child : children) {
    if (child.rfind("s_", 0) != 0) continue;
    std::vector<std::string> probe;
    if (env->ListDir(dir + "/" + child, &probe).ok()) {
      series_dirs.push_back(child);
    }
  }
  DoctorOneDir(env, dir, dir, strict, &problems, &warnings);
  for (const auto& child : series_dirs) {
    DoctorOneDir(env, dir + "/" + child, dir + "/" + child, strict,
                 &problems, &warnings);
  }
  if (problems == 0) {
    std::printf("doctor: OK (%zu warning%s)\n", warnings,
                warnings == 1 ? "" : "s");
    return 0;
  }
  std::printf("doctor: %zu problem%s, %zu warning%s\n", problems,
              problems == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s");
  return 1;
}

/// Live exporter under synthetic concurrent ingest: opens a MultiSeriesDB
/// with the HTTP exporter attached, appends from `--series` writer threads
/// for `--duration-ms`, and keeps every endpoint scrapeable meanwhile.
/// This is the CI smoke harness (--port-file hands the ephemeral port to
/// the curl loop).
int CmdServe(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("serve requires --dir");

  engine::MultiSeriesDB::MultiOptions mopts;
  mopts.base.dir = dir;
  size_t n = static_cast<size_t>(flags.GetInt("n", 512));
  if (flags.Get("policy", "pi_c") == "pi_s") {
    size_t nseq = static_cast<size_t>(flags.GetInt("nseq", n / 2));
    mopts.base.policy = engine::PolicyConfig::Separation(n, nseq);
  } else {
    mopts.base.policy = engine::PolicyConfig::Conventional(n);
  }
  mopts.base.enable_wal = flags.GetBool("wal");
  mopts.base.wal_group_commit = flags.GetBool("wal-group-commit");
  if (mopts.base.wal_group_commit) mopts.base.enable_wal = true;
  mopts.base.background_mode = flags.GetBool("bg");
  mopts.adaptive = flags.GetBool("adaptive");
  telemetry::TelemetryOptions topts;
  mopts.base.telemetry = std::make_shared<telemetry::Telemetry>(topts);

  obs::HttpExporter::Options eopts;
  eopts.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  auto exporter = std::make_shared<obs::HttpExporter>(eopts);
  if (Status st = exporter->Start(); !st.ok()) return Fail(st.ToString());
  mopts.base.http_exporter = exporter;

  auto db = engine::MultiSeriesDB::Open(std::move(mopts));
  if (!db.ok()) return Fail(db.status().ToString());

  // Announce readiness only after Open: every endpoint is registered now.
  std::printf("serving on 127.0.0.1:%u\n",
              static_cast<unsigned>(exporter->port()));
  std::fflush(stdout);
  std::string port_file = flags.Get("port-file", "");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) return Fail("cannot write " + port_file);
    std::fprintf(f, "%u\n", static_cast<unsigned>(exporter->port()));
    std::fclose(f);
  }

  const long long duration_ms = flags.GetInt("duration-ms", 3000);
  const size_t series_count =
      static_cast<size_t>(std::max(1LL, flags.GetInt("series", 4)));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> appended{0};
  std::vector<std::thread> writers;
  writers.reserve(series_count);
  for (size_t s = 0; s < series_count; ++s) {
    writers.emplace_back([&, s] {
      const std::string name = "serve_s" + std::to_string(s);
      uint64_t state = 0x9E3779B97F4A7C15ULL ^ (s + 1);
      int64_t t = 0;
      std::vector<DataPoint> batch(64);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& p : batch) {
          state ^= state << 13;
          state ^= state >> 7;
          state ^= state << 17;
          // Mildly disordered stream: ~12% of points delayed a few slots.
          const int64_t delay =
              (state & 7) == 0 ? static_cast<int64_t>((state >> 3) & 7) : 0;
          ++t;
          p.generation_time = t > delay ? t - delay : t;
          p.arrival_time = t;
          p.value = static_cast<double>(state & 1023) / 16.0;
        }
        if (!(*db)->AppendBatch(name, batch.data(), batch.size()).ok()) {
          return;
        }
        appended.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  if (Status st = (*db)->FlushAll(); !st.ok()) return Fail(st.ToString());

  const obs::HttpExporter::Stats estats = exporter->GetStats();
  engine::Metrics m = (*db)->GetAggregateMetrics();
  std::printf("appended %llu points across %zu series\n",
              static_cast<unsigned long long>(
                  appended.load(std::memory_order_relaxed)),
              series_count);
  std::printf("exporter: %llu connections, %llu requests (%llu not found, "
              "%llu rejected)\n",
              static_cast<unsigned long long>(estats.connections_accepted),
              static_cast<unsigned long long>(estats.requests_served),
              static_cast<unsigned long long>(estats.not_found),
              static_cast<unsigned long long>(estats.rejected));
  std::printf("stalls: backpressure=%lluus wal_commit=%lluus "
              "shard_lock=%lluus\n",
              static_cast<unsigned long long>(m.writer_stall_micros),
              static_cast<unsigned long long>(m.stall_wal_commit_micros),
              static_cast<unsigned long long>(m.stall_shard_lock_micros));
  // DB first (deregisters its endpoints, draining in-flight scrapes), then
  // the exporter.
  db->reset();
  exporter->Stop();
  return 0;
}

int CmdVerify(const Flags& flags) {
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) return Fail("verify requires --dir");
  auto report = storage::VerifyDatabase(Env::Default(), dir);
  if (!report.ok()) return Fail(report.status().ToString());
  for (const auto& t : report->tables) {
    std::printf("%-40s %s", t.path.c_str(), t.ok ? "OK" : "CORRUPT");
    if (t.ok) {
      std::printf(" (%llu points, %llu blocks)",
                  static_cast<unsigned long long>(t.point_count),
                  static_cast<unsigned long long>(t.blocks));
    } else {
      std::printf(" -- %s", t.error.c_str());
    }
    std::printf("\n");
  }
  if (report->wal_present) {
    std::printf("wal.log: %llu replayable records%s\n",
                static_cast<unsigned long long>(report->wal_records),
                report->wal_tail_truncated ? " (torn tail truncated)" : "");
  }
  std::printf("total: %zu tables, %llu points, %llu corrupt\n",
              report->tables.size(),
              static_cast<unsigned long long>(report->total_points),
              static_cast<unsigned long long>(report->corrupt_tables));
  return report->ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "ingest") return CmdIngest(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "tune") return CmdTune(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "verify") return CmdVerify(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "doctor") return CmdDoctor(flags);
  if (command == "serve") return CmdServe(flags);
  return Usage();
}
