// Model-vs-engine integration tests: the paper's central claim is that r_c
// and r_s predict the measured write amplification well enough to choose
// the right policy. These tests ingest real (synthetic) workloads through
// the full storage engine and compare measured WA against the models.

#include <gtest/gtest.h>

#include <memory>

#include "dist/parametric.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "model/tuner.h"
#include "model/wa_model.h"
#include "workload/datasets.h"
#include "workload/synthetic.h"

namespace seplsm {
namespace {

using engine::Options;
using engine::PolicyConfig;
using engine::TsEngine;

double MeasureWa(Env* env, const PolicyConfig& policy,
                 const std::vector<DataPoint>& points,
                 size_t sstable_points = 512) {
  Options o;
  o.env = env;
  o.dir = "/wa_run";
  o.num_levels = 2;  // the WA estimators model the two-level tree
  o.policy = policy;
  o.sstable_points = sstable_points;
  auto open = TsEngine::Open(o);
  EXPECT_TRUE(open.ok()) << open.status().ToString();
  auto& db = *open;
  for (const auto& p : points) {
    EXPECT_TRUE(db->Append(p).ok());
  }
  // Deliberately do NOT flush remaining memtables: the paper measures WA
  // over a long stream where boundary effects vanish; flushing partial
  // tables would bias small runs upward. Drop the data dir afterwards.
  engine::Metrics m = db->GetMetrics();
  db.reset();
  std::vector<std::string> children;
  EXPECT_TRUE(env->ListDir("/wa_run", &children).ok());
  for (const auto& c : children) {
    EXPECT_TRUE(env->RemoveFile("/wa_run/" + c).ok());
  }
  return m.WriteAmplification();
}

TEST(ModelVsEngineTest, ConventionalWaMatchesModelModerateDisorder) {
  MemEnv env;
  dist::LognormalDistribution delay(4.0, 1.5);
  workload::SyntheticConfig sc;
  sc.num_points = 60000;
  sc.delta_t = 50.0;
  sc.seed = 11;
  auto points = workload::GenerateSynthetic(sc, delay);

  double measured =
      MeasureWa(&env, PolicyConfig::Conventional(512), points);
  model::WaModel wa_model(delay, 50.0);
  double predicted = wa_model.ConventionalWa(512);
  // Paper §III: the model undercounts by at most ~1 (whole-SSTable rewrite
  // granularity); allow that bias plus estimation noise.
  EXPECT_NEAR(measured, predicted, std::max(1.2, 0.35 * measured))
      << "measured=" << measured << " predicted=" << predicted;
  EXPECT_GE(measured, predicted - 0.3);
}

TEST(ModelVsEngineTest, ConventionalWaMatchesModelDenseInterval) {
  MemEnv env;
  dist::LognormalDistribution delay(4.0, 1.75);
  workload::SyntheticConfig sc;
  sc.num_points = 60000;
  sc.delta_t = 10.0;
  sc.seed = 12;
  auto points = workload::GenerateSynthetic(sc, delay);

  double measured =
      MeasureWa(&env, PolicyConfig::Conventional(512), points);
  model::WaModel wa_model(delay, 10.0);
  double predicted = wa_model.ConventionalWa(512);
  // Paper §V-B: with shorter Δt the relative error shrinks.
  EXPECT_NEAR(measured / predicted, 1.0, 0.35)
      << "measured=" << measured << " predicted=" << predicted;
}

TEST(ModelVsEngineTest, SeparationWaMatchesModel) {
  MemEnv env;
  dist::LognormalDistribution delay(5.0, 2.0);
  workload::SyntheticConfig sc;
  sc.num_points = 60000;
  sc.delta_t = 50.0;
  sc.seed = 13;
  auto points = workload::GenerateSynthetic(sc, delay);

  model::WaModel wa_model(delay, 50.0);
  for (size_t nseq : {128u, 256u, 384u}) {
    double measured =
        MeasureWa(&env, PolicyConfig::Separation(512, nseq), points);
    double predicted = wa_model.SeparationWa(512, nseq);
    EXPECT_NEAR(measured / predicted, 1.0, 0.40)
        << "nseq=" << nseq << " measured=" << measured
        << " predicted=" << predicted;
  }
}

TEST(ModelVsEngineTest, TunerPicksMeasuredWinnerNearlyOrdered) {
  // Almost ordered stream: π_c must win both in model and measurement.
  MemEnv env;
  dist::UniformDistribution delay(0.0, 20.0);
  workload::SyntheticConfig sc;
  sc.num_points = 40000;
  sc.delta_t = 500.0;
  sc.seed = 14;
  auto points = workload::GenerateSynthetic(sc, delay);

  double wa_c = MeasureWa(&env, PolicyConfig::Conventional(512), points);
  double wa_s =
      MeasureWa(&env, PolicyConfig::Separation(512, 256), points);
  auto tuned = model::TunePolicy(delay, 500.0, 512,
                                 model::TuningOptions{.sweep_step = 32});
  EXPECT_EQ(tuned.recommended.kind, engine::PolicyKind::kConventional);
  // With zero out-of-order points neither policy ever merges, so measured
  // WA ties; π_c must never lose here.
  EXPECT_LE(wa_c, wa_s) << "measurement should agree with the tuner";
}

TEST(ModelVsEngineTest, TunerPicksMeasuredWinnerSevereDisorder) {
  MemEnv env;
  dist::LognormalDistribution delay(6.0, 2.0);
  workload::SyntheticConfig sc;
  sc.num_points = 40000;
  sc.delta_t = 10.0;
  sc.seed = 15;
  auto points = workload::GenerateSynthetic(sc, delay);

  double wa_c = MeasureWa(&env, PolicyConfig::Conventional(512), points);
  auto tuned = model::TunePolicy(delay, 10.0, 512,
                                 model::TuningOptions{.sweep_step = 32});
  ASSERT_EQ(tuned.recommended.kind, engine::PolicyKind::kSeparation)
      << "r_c=" << tuned.wa_conventional
      << " r_s*=" << tuned.wa_separation_best;
  double wa_s = MeasureWa(
      &env,
      PolicyConfig::Separation(512, tuned.recommended.nseq_capacity),
      points);
  EXPECT_LT(wa_s, wa_c) << "measurement should agree with the tuner";
}

TEST(ModelVsEngineTest, MeasuredSubsequentPointsTrackZeta) {
  // Fig. 5 in miniature: mean rewritten points per merge vs ζ(n).
  MemEnv env;
  dist::LognormalDistribution delay(4.0, 1.5);
  workload::SyntheticConfig sc;
  sc.num_points = 50000;
  sc.delta_t = 50.0;
  sc.seed = 16;
  auto points = workload::GenerateSynthetic(sc, delay);

  Options o;
  o.env = &env;
  o.dir = "/fig5";
  o.num_levels = 2;  // zeta tracks the two-level tree's merges
  o.policy = PolicyConfig::Conventional(256);
  o.sstable_points = 512;
  auto open = TsEngine::Open(o);
  ASSERT_TRUE(open.ok());
  auto& db = *open;
  for (const auto& p : points) ASSERT_TRUE(db->Append(p).ok());
  engine::Metrics m = db->GetMetrics();
  ASSERT_GT(m.merge_events.size(), 20u);
  double mean_subsequent = 0.0;
  double mean_rewritten = 0.0;
  for (const auto& e : m.merge_events) {
    mean_subsequent += static_cast<double>(e.disk_points_subsequent);
    mean_rewritten += static_cast<double>(e.disk_points_rewritten);
  }
  mean_subsequent /= static_cast<double>(m.merge_events.size());
  mean_rewritten /= static_cast<double>(m.merge_events.size());

  model::SubsequentModel zeta(delay, 50.0);
  double predicted = zeta.Estimate(256);
  EXPECT_NEAR(mean_subsequent / std::max(predicted, 1.0), 1.0, 0.5)
      << "measured=" << mean_subsequent << " zeta=" << predicted;
  // Whole-SSTable granularity: rewritten exceeds subsequent by at most one
  // partial file per merge (paper §III bounds the WA gap by 1).
  EXPECT_GE(mean_rewritten, mean_subsequent);
  EXPECT_LE(mean_rewritten, mean_subsequent + 512.0);
}

TEST(EndToEndTest, S9WorkloadThroughFullStack) {
  MemEnv env;
  auto points = workload::GenerateS9Simulated(30000);
  Options o;
  o.env = &env;
  o.dir = "/s9";
  o.num_levels = 2;  // WA expectations assume the seed tree
  // Paper uses memory budget 8 for S-9 because the dataset is small.
  o.policy = PolicyConfig::Separation(8, 4);
  o.sstable_points = 512;
  auto open = TsEngine::Open(o);
  ASSERT_TRUE(open.ok());
  auto& db = *open;
  for (const auto& p : points) ASSERT_TRUE(db->Append(p).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->CheckInvariants().ok());
  std::vector<DataPoint> all;
  ASSERT_TRUE(db->Query(std::numeric_limits<int64_t>::min() / 2,
                        std::numeric_limits<int64_t>::max() / 2, &all)
                  .ok());
  EXPECT_EQ(all.size(), points.size());
  EXPECT_GT(db->GetMetrics().WriteAmplification(), 1.0);
}

}  // namespace
}  // namespace seplsm
