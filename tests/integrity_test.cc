#include "storage/integrity.h"

#include <gtest/gtest.h>

#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "storage/sstable.h"

namespace seplsm::storage {
namespace {

class IntegrityTest : public ::testing::Test {
 protected:
  void BuildDatabase(bool with_wal = false) {
    engine::Options o;
    o.env = &env_;
    o.dir = "/db";
    o.policy = engine::PolicyConfig::Conventional(16);
    o.sstable_points = 32;
    o.enable_wal = with_wal;
    auto db = engine::TsEngine::Open(o);
    ASSERT_TRUE(db.ok());
    for (int64_t t = 0; t < 200; ++t) {
      ASSERT_TRUE((*db)->Append({t, t + 1, 0.5}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());  // also truncates the WAL
  }

  void CorruptFile(const std::string& path, size_t offset) {
    std::unique_ptr<RandomAccessFile> f;
    ASSERT_TRUE(env_.NewRandomAccessFile(path, &f).ok());
    std::string contents;
    ASSERT_TRUE(f->Read(0, f->Size(), &contents).ok());
    contents[offset] ^= 0x55;
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(env_.NewWritableFile(path, &w).ok());
    ASSERT_TRUE(w->Append(contents).ok());
    ASSERT_TRUE(w->Close().ok());
  }

  MemEnv env_;
};

TEST_F(IntegrityTest, CleanDatabaseVerifies) {
  BuildDatabase();
  auto report = VerifyDatabase(&env_, "/db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->total_points, 200u);
  EXPECT_GT(report->tables.size(), 1u);
  for (const auto& t : report->tables) {
    EXPECT_TRUE(t.ok) << t.path << ": " << t.error;
  }
}

TEST_F(IntegrityTest, DetectsCorruptBlock) {
  BuildDatabase();
  auto report = VerifyDatabase(&env_, "/db");
  ASSERT_TRUE(report.ok());
  std::string victim = report->tables.front().path;
  CorruptFile(victim, 5);  // inside the first data block
  auto after = VerifyDatabase(&env_, "/db");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->ok());
  EXPECT_EQ(after->corrupt_tables, 1u);
  for (const auto& t : after->tables) {
    if (t.path == victim) {
      EXPECT_FALSE(t.ok);
      EXPECT_FALSE(t.error.empty());
    } else {
      EXPECT_TRUE(t.ok);
    }
  }
}

TEST_F(IntegrityTest, DetectsTruncatedFooter) {
  BuildDatabase();
  auto report = VerifyDatabase(&env_, "/db");
  std::string victim = report->tables.front().path;
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_.NewRandomAccessFile(victim, &f).ok());
  std::string contents;
  ASSERT_TRUE(f->Read(0, f->Size() - 10, &contents).ok());
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_.NewWritableFile(victim, &w).ok());
  ASSERT_TRUE(w->Append(contents).ok());
  ASSERT_TRUE(w->Close().ok());
  auto after = VerifyDatabase(&env_, "/db");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->corrupt_tables, 1u);
}

TEST_F(IntegrityTest, ReportsWal) {
  BuildDatabase(/*with_wal=*/true);
  // Leave a couple of un-checkpointed records in the log.
  engine::Options o;
  o.env = &env_;
  o.dir = "/db";
  o.policy = engine::PolicyConfig::Conventional(16);
  o.enable_wal = true;
  {
    auto db = engine::TsEngine::Open(o);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append({1000, 1001, 1.0}).ok());
    ASSERT_TRUE((*db)->Append({1001, 1002, 1.0}).ok());
  }
  auto report = VerifyDatabase(&env_, "/db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->wal_present);
  EXPECT_EQ(report->wal_records, 2u);
  EXPECT_FALSE(report->wal_tail_truncated);
}

TEST_F(IntegrityTest, EmptyDirectoryOk) {
  ASSERT_TRUE(env_.CreateDirIfMissing("/empty").ok());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_.NewWritableFile("/empty/notes.txt", &f).ok());
  ASSERT_TRUE(f->Close().ok());
  auto report = VerifyDatabase(&env_, "/empty");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_TRUE(report->tables.empty());
}

TEST_F(IntegrityTest, VerifySingleTableDirect) {
  SSTableWriter writer(&env_, "/solo.sst", 8);
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(writer.Add({t, t, 1.0}).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  TableReport report = VerifySSTable(&env_, "/solo.sst");
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.point_count, 20u);
  EXPECT_EQ(report.blocks, 3u);  // ceil(20/8)
}

TEST_F(IntegrityTest, MissingFileReported) {
  TableReport report = VerifySSTable(&env_, "/missing.sst");
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
}

}  // namespace
}  // namespace seplsm::storage
