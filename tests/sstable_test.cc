#include "storage/sstable.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "env/mem_env.h"

namespace seplsm::storage {
namespace {

std::vector<DataPoint> MakePoints(size_t n, int64_t start = 0,
                                  int64_t step = 10) {
  std::vector<DataPoint> points(n);
  for (size_t i = 0; i < n; ++i) {
    points[i].generation_time = start + static_cast<int64_t>(i) * step;
    points[i].arrival_time = points[i].generation_time + 5;
    points[i].value = static_cast<double>(i);
  }
  return points;
}

class SSTableTest : public ::testing::Test {
 protected:
  FileMetadata WriteTable(const std::vector<DataPoint>& points,
                          const std::string& path,
                          size_t points_per_block = 16) {
    SSTableWriter writer(&env_, path, points_per_block);
    for (const auto& p : points) EXPECT_TRUE(writer.Add(p).ok());
    auto meta = writer.Finish();
    EXPECT_TRUE(meta.ok()) << meta.status().ToString();
    return *meta;
  }

  MemEnv env_;
};

TEST_F(SSTableTest, WriteReadAllRoundTrip) {
  auto points = MakePoints(100);
  WriteTable(points, "/t.sst");
  auto reader = SSTableReader::Open(&env_, "/t.sst");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<DataPoint> out;
  ASSERT_TRUE((*reader)->ReadAll(&out).ok());
  EXPECT_EQ(out, points);
}

TEST_F(SSTableTest, MetadataReflectsContents) {
  auto points = MakePoints(57, 1000, 3);
  FileMetadata meta = WriteTable(points, "/t.sst");
  EXPECT_EQ(meta.point_count, 57u);
  EXPECT_EQ(meta.min_generation_time, 1000);
  EXPECT_EQ(meta.max_generation_time, 1000 + 56 * 3);
  EXPECT_GT(meta.file_bytes, 0u);
  auto reader = SSTableReader::Open(&env_, "/t.sst");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->point_count(), 57u);
  EXPECT_EQ((*reader)->min_generation_time(), 1000);
}

TEST_F(SSTableTest, MultipleBlocksCreated) {
  auto points = MakePoints(100);
  WriteTable(points, "/t.sst", 16);
  auto reader = SSTableReader::Open(&env_, "/t.sst");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->block_count(), 7u);  // ceil(100/16)
}

TEST_F(SSTableTest, ReadRangeSelectsBlocks) {
  auto points = MakePoints(100, 0, 10);  // keys 0..990
  WriteTable(points, "/t.sst", 10);
  auto reader = SSTableReader::Open(&env_, "/t.sst");
  ASSERT_TRUE(reader.ok());
  std::vector<DataPoint> out;
  ReadStats stats;
  ASSERT_TRUE((*reader)->ReadRange(500, 520, &out, &stats).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].generation_time, 500);
  EXPECT_EQ(out[2].generation_time, 520);
  // Only the covering block(s) should be decoded, not the whole file.
  EXPECT_LE(stats.points_scanned, 20u);
  EXPECT_GE(stats.points_scanned, out.size());
  // Without a cache attached every scanned block comes off the device.
  EXPECT_GT(stats.device_bytes_read, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST_F(SSTableTest, ReadRangeOutsideKeySpaceEmpty) {
  WriteTable(MakePoints(10), "/t.sst");
  auto reader = SSTableReader::Open(&env_, "/t.sst");
  ASSERT_TRUE(reader.ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE((*reader)->ReadRange(10000, 20000, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(SSTableTest, OutOfOrderAddRejected) {
  SSTableWriter writer(&env_, "/t.sst", 16);
  ASSERT_TRUE(writer.Add({100, 100, 0}).ok());
  EXPECT_TRUE(writer.Add({50, 50, 0}).IsInvalidArgument());
}

TEST_F(SSTableTest, EmptyTableRejected) {
  SSTableWriter writer(&env_, "/t.sst", 16);
  EXPECT_FALSE(writer.Finish().ok());
}

TEST_F(SSTableTest, CorruptedFooterDetected) {
  WriteTable(MakePoints(20), "/t.sst");
  // Truncate the file: footer invalid.
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &f).ok());
  std::string contents;
  ASSERT_TRUE(f->Read(0, f->Size() - 8, &contents).ok());
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_.NewWritableFile("/t.sst", &w).ok());
  ASSERT_TRUE(w->Append(contents).ok());
  ASSERT_TRUE(w->Close().ok());
  EXPECT_FALSE(SSTableReader::Open(&env_, "/t.sst").ok());
}

TEST_F(SSTableTest, CorruptedBlockDetectedOnRead) {
  WriteTable(MakePoints(50), "/t.sst", 50);
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &f).ok());
  std::string contents;
  ASSERT_TRUE(f->Read(0, f->Size(), &contents).ok());
  contents[10] ^= 0x20;  // flip a bit inside the data block
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_.NewWritableFile("/t.sst", &w).ok());
  ASSERT_TRUE(w->Append(contents).ok());
  ASSERT_TRUE(w->Close().ok());
  auto reader = SSTableReader::Open(&env_, "/t.sst");
  ASSERT_TRUE(reader.ok());  // index+footer are intact
  std::vector<DataPoint> out;
  EXPECT_TRUE((*reader)->ReadAll(&out).IsCorruption());
}

TEST_F(SSTableTest, WriteSortedPointsCutsFiles) {
  auto points = MakePoints(1000);
  uint64_t next = 1;
  std::vector<FileMetadata> files;
  ASSERT_TRUE(WriteSortedPointsAsTables(&env_, "/db", points, 300, 64, &next,
                                        &files)
                  .ok());
  ASSERT_EQ(files.size(), 4u);  // 300+300+300+100
  EXPECT_EQ(files[0].point_count, 300u);
  EXPECT_EQ(files[3].point_count, 100u);
  EXPECT_EQ(next, 5u);
  // Ranges must be contiguous and disjoint.
  for (size_t i = 1; i < files.size(); ++i) {
    EXPECT_GT(files[i].min_generation_time, files[i - 1].max_generation_time);
  }
}

TEST_F(SSTableTest, TableFilePathFormat) {
  EXPECT_EQ(TableFilePath("/db", 7), "/db/00000007.sst");
  EXPECT_EQ(TableFilePath("/db", 12345678), "/db/12345678.sst");
}

TEST_F(SSTableTest, RandomizedRangeQueriesMatchBruteForce) {
  Rng rng(2024);
  std::vector<DataPoint> points;
  int64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 1 + static_cast<int64_t>(rng.UniformU64(20));
    points.push_back({t, t + 3, static_cast<double>(i)});
  }
  WriteTable(points, "/t.sst", 32);
  auto reader = SSTableReader::Open(&env_, "/t.sst");
  ASSERT_TRUE(reader.ok());
  for (int trial = 0; trial < 50; ++trial) {
    int64_t lo = rng.UniformInt(0, t);
    int64_t hi = lo + rng.UniformInt(0, 500);
    std::vector<DataPoint> got;
    ASSERT_TRUE((*reader)->ReadRange(lo, hi, &got).ok());
    std::vector<DataPoint> want;
    for (const auto& p : points) {
      if (p.generation_time >= lo && p.generation_time <= hi) {
        want.push_back(p);
      }
    }
    EXPECT_EQ(got, want) << "[" << lo << ", " << hi << "]";
  }
}

}  // namespace
}  // namespace seplsm::storage
