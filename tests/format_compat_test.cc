// Backward compatibility of the SSTable on-disk format. v1 files — written
// before the metadata section existed — must read byte-for-byte identically
// under the v2-aware reader, and a corrupted or truncated file of either
// version must come back as a Status, never a crash (the fuzz loops below
// run under the ASan job).

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "env/env.h"
#include "env/mem_env.h"
#include "format/table_format.h"
#include "storage/sstable.h"

namespace seplsm::storage {
namespace {

// The golden v1 file in tests/data/ was produced by the metadata-less
// writer from exactly these points (see tests/data/README.md to
// regenerate).
std::vector<DataPoint> GoldenPoints() {
  std::vector<DataPoint> points;
  for (int64_t t = 0; t < 300; ++t) {
    points.push_back({t * 3, t * 3 + 7, static_cast<double>(t % 50) * 0.5});
  }
  return points;
}

std::string ReadWhole(Env* env, const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_TRUE(env->NewRandomAccessFile(path, &file).ok());
  std::string data;
  EXPECT_TRUE(file->Read(0, file->Size(), &data).ok());
  return data;
}

void WriteWhole(Env* env, const std::string& path, const std::string& data) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append(data).ok());
  ASSERT_TRUE(file->Close().ok());
}

// Committed golden file: written by the pre-metadata writer (format v1).
TEST(FormatCompatTest, GoldenV1FileReadsIdentically) {
  const std::string path = std::string(SEPLSM_TEST_DATA_DIR) + "/golden_v1.sst";
  ASSERT_TRUE(Env::Default()->FileExists(path))
      << path << " missing — regenerate per tests/data/README.md";
  auto reader = SSTableReader::Open(Env::Default(), path, {});
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE((*reader)->has_metadata());
  std::vector<DataPoint> expected = GoldenPoints();
  std::vector<DataPoint> out;
  ASSERT_TRUE((*reader)->ReadRange(0, 1 << 20, &out).ok());
  EXPECT_EQ(out, expected);
  // Sub-ranges exercise the index path, not just the full scan.
  out.clear();
  ASSERT_TRUE((*reader)->ReadRange(300, 600, &out).ok());
  std::vector<DataPoint> expected_mid;
  for (const auto& p : expected) {
    if (p.generation_time >= 300 && p.generation_time <= 600) {
      expected_mid.push_back(p);
    }
  }
  EXPECT_EQ(out, expected_mid);
}

// A metadata-disabled writer today must still produce v1 files (same magic,
// same footer size) that answer exactly like a v2 file over the same data.
TEST(FormatCompatTest, MetadataOffWritesV1Bytes) {
  MemEnv env;
  std::vector<DataPoint> points = GoldenPoints();
  format::TableMetadataConfig off;
  off.enabled = false;
  {
    SSTableWriter w1(&env, "/v1.sst", 64, format::ValueEncoding::kRaw, off);
    SSTableWriter w2(&env, "/v2.sst", 64, format::ValueEncoding::kRaw, {});
    for (const auto& p : points) {
      ASSERT_TRUE(w1.Add(p).ok());
      ASSERT_TRUE(w2.Add(p).ok());
    }
    ASSERT_TRUE(w1.Finish().ok());
    ASSERT_TRUE(w2.Finish().ok());
  }
  std::string v1 = ReadWhole(&env, "/v1.sst");
  ASSERT_GE(v1.size(), format::kFooterSize);
  EXPECT_EQ(DecodeFixed64(v1.data() + v1.size() - 8), format::kTableMagic);
  std::string v2 = ReadWhole(&env, "/v2.sst");
  EXPECT_EQ(DecodeFixed64(v2.data() + v2.size() - 8), format::kTableMagicV2);
  for (const char* path : {"/v1.sst", "/v2.sst"}) {
    auto reader = SSTableReader::Open(&env, path, {});
    ASSERT_TRUE(reader.ok()) << path;
    std::vector<DataPoint> out;
    ASSERT_TRUE((*reader)->ReadRange(0, 1 << 20, &out).ok());
    EXPECT_EQ(out, points) << path;
  }
}

// Every truncation length of a valid table must fail cleanly (or, above the
// last byte, succeed); no length may crash or hang.
void FuzzTruncations(const std::string& valid) {
  MemEnv env;
  std::mt19937_64 rng(20260808);
  for (int i = 0; i < 400; ++i) {
    size_t cut = rng() % valid.size();
    std::string path = "/trunc" + std::to_string(i) + ".sst";
    WriteWhole(&env, path, valid.substr(0, cut));
    auto reader = SSTableReader::Open(&env, path, {});
    if (reader.ok()) {
      // Opening may legitimately succeed if the cut only removed data the
      // footer never pointed at — reading must then still be clean.
      std::vector<DataPoint> out;
      (void)(*reader)->ReadRange(0, 1 << 20, &out);
    }
  }
}

// Single-byte corruptions across the whole file: block CRCs, the metadata
// CRC, index CRC, and footer magic between them must catch everything that
// matters; whatever opens must read without crashing.
void FuzzCorruptions(const std::string& valid) {
  MemEnv env;
  std::mt19937_64 rng(20260809);
  for (int i = 0; i < 400; ++i) {
    std::string bytes = valid;
    size_t pos = rng() % bytes.size();
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1 + rng() % 255));
    std::string path = "/corrupt" + std::to_string(i) + ".sst";
    WriteWhole(&env, path, bytes);
    auto reader = SSTableReader::Open(&env, path, {});
    if (reader.ok()) {
      std::vector<DataPoint> out;
      (void)(*reader)->ReadRange(0, 1 << 20, &out);
    }
  }
}

std::string BuildValidTable(bool with_metadata) {
  MemEnv env;
  format::TableMetadataConfig meta;
  meta.enabled = with_metadata;
  meta.summary_window = 16;
  SSTableWriter writer(&env, "/t.sst", 32, format::ValueEncoding::kRaw, meta);
  for (int64_t t = 0; t < 256; ++t) {
    EXPECT_TRUE(writer.Add({t, t, static_cast<double>(t)}).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  return ReadWhole(&env, "/t.sst");
}

TEST(FormatFuzzTest, TruncatedV2NeverCrashes) {
  FuzzTruncations(BuildValidTable(true));
}

TEST(FormatFuzzTest, TruncatedV1NeverCrashes) {
  FuzzTruncations(BuildValidTable(false));
}

TEST(FormatFuzzTest, CorruptedV2NeverCrashes) {
  FuzzCorruptions(BuildValidTable(true));
}

TEST(FormatFuzzTest, CorruptedV1NeverCrashes) {
  FuzzCorruptions(BuildValidTable(false));
}

// The decoders themselves on raw random bytes — no file framing at all.
TEST(FormatFuzzTest, RawDecodersRejectGarbage) {
  std::mt19937_64 rng(20260810);
  for (int i = 0; i < 2000; ++i) {
    size_t n = rng() % 200;
    std::string bytes(n, '\0');
    for (auto& c : bytes) c = static_cast<char>(rng());
    format::TableMetadata meta;
    (void)format::DecodeTableMetadata(bytes, &meta);
    format::Footer footer;
    (void)format::DecodeFooter(bytes, &footer);
  }
}

// Round-trip sanity at the metadata-codec level (not just via files).
TEST(FormatCompatTest, MetadataRoundTrips) {
  format::TableMetadata meta;
  meta.summary_window = 64;
  meta.zone_maps = {{-1.5, 2.5}, {0.0, 0.0}, {-1e300, 1e300}};
  format::WindowSummary s;
  s.window_start = -128;
  s.count = 7;
  s.sum = 3.25;
  s.min = -1.0;
  s.max = 2.0;
  s.first_time = -128;
  s.first_value = 1.0;
  s.last_time = -70;
  s.last_value = 0.5;
  meta.summaries = {s};
  std::string encoded;
  format::EncodeTableMetadata(meta, &encoded);
  format::TableMetadata back;
  ASSERT_TRUE(format::DecodeTableMetadata(encoded, &back).ok());
  EXPECT_EQ(back.summary_window, meta.summary_window);
  ASSERT_EQ(back.zone_maps.size(), meta.zone_maps.size());
  EXPECT_EQ(back.zone_maps[0].min_value, -1.5);
  EXPECT_EQ(back.zone_maps[2].max_value, 1e300);
  ASSERT_EQ(back.summaries.size(), 1u);
  EXPECT_EQ(back.summaries[0].window_start, -128);
  EXPECT_EQ(back.summaries[0].count, 7u);
  EXPECT_DOUBLE_EQ(back.summaries[0].sum, 3.25);
}

}  // namespace
}  // namespace seplsm::storage
