#include <gtest/gtest.h>

#include <memory>

#include "analyzer/adaptive_controller.h"
#include "analyzer/delay_collector.h"
#include "analyzer/drift_detector.h"
#include "analyzer/fitter.h"
#include "common/random.h"
#include "dist/gamma.h"
#include "dist/parametric.h"
#include "env/mem_env.h"
#include "workload/synthetic.h"

namespace seplsm::analyzer {
namespace {

TEST(DelayCollectorTest, TracksMomentsAndDeltaT) {
  DelayCollector c;
  for (int64_t i = 0; i < 100; ++i) {
    c.Observe({i * 50, i * 50 + 10, 0.0});
  }
  EXPECT_EQ(c.count(), 100u);
  EXPECT_DOUBLE_EQ(c.moments().mean(), 10.0);
  EXPECT_NEAR(c.EstimateDeltaT(), 50.0, 1e-9);
}

TEST(DelayCollectorTest, DeltaTFallbackBeforeTwoPoints) {
  DelayCollector c;
  EXPECT_EQ(c.EstimateDeltaT(123.0), 123.0);
  c.Observe({0, 5, 0.0});
  EXPECT_EQ(c.EstimateDeltaT(123.0), 123.0);
}

TEST(DelayCollectorTest, ResetDelaysKeepsTiming) {
  DelayCollector c;
  for (int64_t i = 0; i < 10; ++i) c.Observe({i * 100, i * 100 + 3, 0.0});
  c.ResetDelays();
  EXPECT_EQ(c.count(), 0u);
  EXPECT_NEAR(c.EstimateDeltaT(), 100.0, 1e-9);
}

TEST(DelayCollectorTest, RecentWindowBounded) {
  DelayCollector c(100, 16);
  for (int64_t i = 0; i < 100; ++i) c.Observe({i, i + i, 0.0});
  EXPECT_EQ(c.RecentSample().size(), 16u);
  // Recent window holds the newest delays.
  EXPECT_DOUBLE_EQ(c.RecentSample().back(), 99.0);
}

TEST(FitterTest, RecoversLognormalParameters) {
  Rng rng(5);
  dist::LognormalDistribution truth(4.0, 1.5);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(truth.Sample(rng));
  auto fit = FitDelayDistribution(sample);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->family, "lognormal");
  auto* ln = dynamic_cast<dist::LognormalDistribution*>(
      fit->distribution.get());
  ASSERT_NE(ln, nullptr);
  EXPECT_NEAR(ln->mu(), 4.0, 0.05);
  EXPECT_NEAR(ln->sigma(), 1.5, 0.05);
}

TEST(FitterTest, RecoversExponential) {
  Rng rng(6);
  dist::ExponentialDistribution truth(200.0);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(truth.Sample(rng));
  auto fit = FitDelayDistribution(sample);
  ASSERT_TRUE(fit.ok());
  // Exponential == Weibull(k=1) is also a lognormal-ish shape; accept either
  // parametric family as long as the KS fit is tight.
  EXPECT_LT(fit->ks_distance, 0.02);
}

TEST(FitterTest, RecoversGamma) {
  Rng rng(15);
  dist::GammaDistribution truth(3.0, 50.0);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(truth.Sample(rng));
  auto fit = FitDelayDistribution(sample);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->ks_distance, 0.02);
  if (fit->family == "gamma") {
    auto* g = dynamic_cast<dist::GammaDistribution*>(fit->distribution.get());
    ASSERT_NE(g, nullptr);
    EXPECT_NEAR(g->shape(), 3.0, 0.3);
    EXPECT_NEAR(g->scale(), 50.0, 5.0);
  }
}

TEST(FitterTest, BimodalFallsBackToEmpirical) {
  Rng rng(7);
  std::vector<double> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back(10.0 + rng.NextDouble());
  for (int i = 0; i < 5000; ++i) sample.push_back(50000.0 + rng.NextDouble());
  auto fit = FitDelayDistribution(sample);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->family, "empirical");
  EXPECT_LT(fit->ks_distance, 0.05);
}

TEST(FitterTest, EmptySampleRejected) {
  EXPECT_FALSE(FitDelayDistribution({}).ok());
}

TEST(DriftDetectorTest, NoDriftOnSameDistribution) {
  Rng rng(8);
  dist::LognormalDistribution d(4.0, 1.5);
  std::vector<double> ref, recent;
  for (int i = 0; i < 2000; ++i) ref.push_back(d.Sample(rng));
  for (int i = 0; i < 2000; ++i) recent.push_back(d.Sample(rng));
  DriftDetector detector;
  detector.SetReference(std::move(ref));
  EXPECT_FALSE(detector.IsDrift(recent));
}

TEST(DriftDetectorTest, DetectsSigmaChange) {
  Rng rng(9);
  dist::LognormalDistribution before(5.0, 2.0);
  dist::LognormalDistribution after(5.0, 1.0);
  std::vector<double> ref, recent;
  for (int i = 0; i < 2000; ++i) ref.push_back(before.Sample(rng));
  for (int i = 0; i < 2000; ++i) recent.push_back(after.Sample(rng));
  DriftDetector detector;
  detector.SetReference(std::move(ref));
  EXPECT_TRUE(detector.IsDrift(recent));
}

TEST(DriftDetectorTest, TooFewSamplesNeverDrift) {
  DriftDetector detector;
  detector.SetReference({1.0, 2.0, 3.0});
  EXPECT_FALSE(detector.IsDrift({100.0, 200.0}));
}

class AdaptiveControllerTest : public ::testing::Test {
 protected:
  std::unique_ptr<engine::TsEngine> OpenEngine(size_t n = 64) {
    engine::Options o;
    o.env = &env_;
    o.dir = "/db";
    o.policy = engine::PolicyConfig::Conventional(n);
    o.sstable_points = 64;
    auto e = engine::TsEngine::Open(o);
    EXPECT_TRUE(e.ok());
    return std::move(e).value();
  }

  AdaptiveController::Options FastOptions() {
    AdaptiveController::Options o;
    o.warmup_points = 512;
    o.check_interval = 512;
    o.reservoir_capacity = 1024;
    o.recent_window = 512;
    o.tuning.sweep_step = 8;
    return o;
  }

  MemEnv env_;
};

TEST_F(AdaptiveControllerTest, FirstDecisionAfterWarmup) {
  auto db = OpenEngine();
  AdaptiveController controller(db.get(), FastOptions());
  workload::SyntheticConfig sc;
  sc.num_points = 2000;
  sc.delta_t = 50.0;
  dist::LognormalDistribution delay(4.0, 1.5);
  auto points = workload::GenerateSynthetic(sc, delay);
  for (const auto& p : points) {
    ASSERT_TRUE(controller.Observe(p).ok());
    ASSERT_TRUE(db->Append(p).ok());
  }
  ASSERT_GE(controller.decisions().size(), 1u);
  const auto& d = controller.decisions().front();
  EXPECT_GT(d.wa_conventional, 0.0);
  EXPECT_GT(d.wa_separation_best, 0.0);
}

TEST_F(AdaptiveControllerTest, SwitchesOnDrift) {
  auto db = OpenEngine();
  auto options = FastOptions();
  options.drift.min_samples = 256;
  AdaptiveController controller(db.get(), options);

  // Regime 1: almost ordered (conventional wins); regime 2: severe
  // disorder (separation wins).
  workload::SyntheticConfig sc1;
  sc1.num_points = 3000;
  sc1.delta_t = 1000.0;
  sc1.seed = 1;
  dist::UniformDistribution mild(0.0, 5.0);
  auto part1 = workload::GenerateSynthetic(sc1, mild);

  workload::SyntheticConfig sc2;
  sc2.num_points = 3000;
  sc2.delta_t = 10.0;
  sc2.seed = 2;
  sc2.start_time = part1.back().generation_time + 1000;
  dist::LognormalDistribution severe(6.0, 2.0);
  auto part2 = workload::GenerateSynthetic(sc2, severe);

  for (const auto& p : part1) ASSERT_TRUE(controller.Observe(p).ok());
  size_t decisions_after_part1 = controller.decisions().size();
  ASSERT_GE(decisions_after_part1, 1u);
  EXPECT_EQ(controller.decisions().back().chosen.kind,
            engine::PolicyKind::kConventional);

  for (const auto& p : part2) ASSERT_TRUE(controller.Observe(p).ok());
  ASSERT_GT(controller.decisions().size(), decisions_after_part1)
      << "drift should force a re-tune";
  EXPECT_EQ(controller.decisions().back().chosen.kind,
            engine::PolicyKind::kSeparation);
  EXPECT_EQ(db->options().policy.kind, engine::PolicyKind::kSeparation);
}

TEST_F(AdaptiveControllerTest, NoSpuriousSwitchesOnStableStream) {
  auto db = OpenEngine();
  AdaptiveController controller(db.get(), FastOptions());
  workload::SyntheticConfig sc;
  sc.num_points = 6000;
  sc.delta_t = 50.0;
  dist::LognormalDistribution delay(4.0, 1.5);
  auto points = workload::GenerateSynthetic(sc, delay);
  for (const auto& p : points) ASSERT_TRUE(controller.Observe(p).ok());
  size_t switches = 0;
  for (const auto& d : controller.decisions()) switches += d.switched;
  EXPECT_LE(switches, 1u);  // at most the initial switch
}

// The two-regime stream from SwitchesOnDrift, factored for the audit tests:
// guarantees at least two tuning decisions (warmup, then drift).
std::vector<DataPoint> TwoRegimeStream() {
  workload::SyntheticConfig sc1;
  sc1.num_points = 3000;
  sc1.delta_t = 1000.0;
  sc1.seed = 1;
  dist::UniformDistribution mild(0.0, 5.0);
  auto points = workload::GenerateSynthetic(sc1, mild);

  workload::SyntheticConfig sc2;
  sc2.num_points = 3000;
  sc2.delta_t = 10.0;
  sc2.seed = 2;
  sc2.start_time = points.back().generation_time + 1000;
  dist::LognormalDistribution severe(6.0, 2.0);
  auto part2 = workload::GenerateSynthetic(sc2, severe);
  points.insert(points.end(), part2.begin(), part2.end());
  return points;
}

TEST_F(AdaptiveControllerTest, AuditRingRecordsEveryDecision) {
  auto db = OpenEngine();
  auto options = FastOptions();
  options.drift.min_samples = 256;
  AdaptiveController controller(db.get(), options);
  for (const auto& p : TwoRegimeStream()) {
    ASSERT_TRUE(controller.Observe(p).ok());
  }
  ASSERT_GE(controller.decisions().size(), 2u);

  auto audit = controller.AuditLog();
  ASSERT_EQ(audit.size(), controller.decisions().size());
  EXPECT_EQ(controller.audit_dropped(), 0u);
  EXPECT_EQ(audit.front().trigger, "warmup");
  EXPECT_EQ(audit.back().trigger, "drift");
  for (const auto& entry : audit) {
    EXPECT_GT(entry.at_points, 0u);
    EXPECT_GE(entry.ooo_rate, 0.0);
    EXPECT_LE(entry.ooo_rate, 1.0);
    EXPECT_GT(entry.wa_conventional, 0.0);
    EXPECT_GT(entry.wa_separation_best, 0.0);
    EXPECT_FALSE(entry.chosen.empty());
    EXPECT_FALSE(entry.fitted_family.empty());
  }
  // The severe-disorder regime pushed most delays past its Δt.
  EXPECT_GT(audit.back().ooo_rate, audit.front().ooo_rate);

  std::string json = controller.AuditJson();
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
  EXPECT_NE(json.find("\"trigger\":\"warmup\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST_F(AdaptiveControllerTest, AuditRingEvictsOldestWhenFull) {
  auto db = OpenEngine();
  auto options = FastOptions();
  options.drift.min_samples = 256;
  options.audit_capacity = 1;
  AdaptiveController controller(db.get(), options);
  for (const auto& p : TwoRegimeStream()) {
    ASSERT_TRUE(controller.Observe(p).ok());
  }
  ASSERT_GE(controller.decisions().size(), 2u);
  auto audit = controller.AuditLog();
  ASSERT_EQ(audit.size(), 1u);
  EXPECT_EQ(audit.back().trigger, "drift");  // oldest (warmup) evicted
  EXPECT_GE(controller.audit_dropped(), 1u);
}

TEST_F(AdaptiveControllerTest, AuditDisabledByZeroCapacity) {
  auto db = OpenEngine();
  auto options = FastOptions();
  options.audit_capacity = 0;
  AdaptiveController controller(db.get(), options);
  workload::SyntheticConfig sc;
  sc.num_points = 2000;
  sc.delta_t = 50.0;
  dist::LognormalDistribution delay(4.0, 1.5);
  for (const auto& p : workload::GenerateSynthetic(sc, delay)) {
    ASSERT_TRUE(controller.Observe(p).ok());
  }
  ASSERT_GE(controller.decisions().size(), 1u);
  EXPECT_TRUE(controller.AuditLog().empty());
  EXPECT_EQ(controller.audit_dropped(), 0u);
}

}  // namespace
}  // namespace seplsm::analyzer
