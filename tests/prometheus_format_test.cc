// Prometheus exposition conformance (promtool-style, DESIGN.md §15).
// A strict in-process parser/validator checks everything /metrics emits:
// every sample line parses, every family is declared with HELP and TYPE
// before its first sample, no family is declared twice (the
// exclude_counters contract between Metrics and MetricsRegistry), counter
// families end in _total, label values round-trip through escaping, and
// histogram buckets are cumulative with a mandatory +Inf == _count.

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/metrics.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/telemetry.h"

namespace seplsm {
namespace {

struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // decoded values
  std::string value_text;
};

/// Parsed exposition plus every conformance violation found.
struct Exposition {
  std::map<std::string, std::string> type_of;  // family -> counter/gauge/...
  std::set<std::string> help_seen;
  std::vector<Sample> samples;
  std::vector<std::string> errors;

  std::string ErrorReport() const {
    std::ostringstream out;
    for (const auto& e : errors) out << "  " << e << "\n";
    return out.str();
  }
};

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

bool IsValidValue(const std::string& text) {
  if (text.empty()) return false;
  const char* s = text.c_str();
  char* end = nullptr;
  std::strtod(s, &end);  // accepts inf/nan spellings too
  return end == s + text.size();
}

/// Strips the histogram/summary child suffix, returning the family name a
/// sample belongs to given the declared types.
std::string FamilyOf(const std::string& name,
                     const std::map<std::string, std::string>& type_of) {
  if (type_of.count(name) != 0) return name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t n = std::string(suffix).size();
    if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
      std::string base = name.substr(0, name.size() - n);
      auto it = type_of.find(base);
      if (it != type_of.end() &&
          (it->second == "histogram" || it->second == "summary")) {
        return base;
      }
    }
  }
  return {};
}

/// Parses one sample line ("name{k="v",...} value"), decoding label escapes.
bool ParseSample(const std::string& line, Sample* out, std::string* error) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!IsValidMetricName(out->name)) {
    *error = "bad metric name in: " + line;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        *error = "malformed label in: " + line;
        return false;
      }
      std::string key = line.substr(i, eq - i);
      std::string value;
      size_t j = eq + 2;
      for (; j < line.size() && line[j] != '"'; ++j) {
        if (line[j] == '\\') {
          if (j + 1 >= line.size()) break;
          ++j;
          if (line[j] == 'n') value += '\n';
          else if (line[j] == '\\') value += '\\';
          else if (line[j] == '"') value += '"';
          else {
            *error = "bad escape in: " + line;
            return false;
          }
        } else {
          value += line[j];
        }
      }
      if (j >= line.size()) {
        *error = "unterminated label value in: " + line;
        return false;
      }
      out->labels.emplace_back(std::move(key), std::move(value));
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *error = "unterminated label set in: " + line;
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "missing value separator in: " + line;
    return false;
  }
  out->value_text = line.substr(i + 1);
  if (!IsValidValue(out->value_text)) {
    *error = "unparsable value '" + out->value_text + "' in: " + line;
    return false;
  }
  return true;
}

Exposition Validate(const std::string& text) {
  Exposition expo;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      expo.errors.push_back("blank line in exposition");
      continue;
    }
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, family;
      comment >> hash >> keyword >> family;
      if (keyword == "HELP") {
        expo.help_seen.insert(family);
      } else if (keyword == "TYPE") {
        std::string type;
        comment >> type;
        if (expo.type_of.count(family) != 0) {
          expo.errors.push_back("family declared twice: " + family);
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          expo.errors.push_back("unknown TYPE '" + type + "' for " + family);
        }
        expo.type_of[family] = type;
      } else {
        expo.errors.push_back("unknown comment keyword: " + line);
      }
      continue;
    }
    Sample sample;
    std::string error;
    if (!ParseSample(line, &sample, &error)) {
      expo.errors.push_back(error);
      continue;
    }
    // Declaration-before-use: the family must already be typed by now.
    std::string family = FamilyOf(sample.name, expo.type_of);
    if (family.empty()) {
      expo.errors.push_back("sample without preceding TYPE: " + sample.name);
    } else {
      if (expo.help_seen.count(family) == 0) {
        expo.errors.push_back("family missing HELP: " + family);
      }
      if (expo.type_of[family] == "counter" &&
          (family.size() < 6 ||
           family.compare(family.size() - 6, 6, "_total") != 0)) {
        expo.errors.push_back("counter family not *_total: " + family);
      }
    }
    expo.samples.push_back(std::move(sample));
  }

  // Histogram invariants: per label-set-minus-le, buckets are cumulative
  // and nondecreasing, end at le="+Inf", and +Inf equals _count.
  for (const auto& [family, type] : expo.type_of) {
    if (type != "histogram") continue;
    std::map<std::string, std::vector<std::pair<double, double>>> buckets;
    std::map<std::string, double> counts;
    for (const Sample& s : expo.samples) {
      std::string group;
      double le = 0;
      bool has_le = false;
      for (const auto& [k, v] : s.labels) {
        if (k == "le") {
          has_le = true;
          le = (v == "+Inf") ? HUGE_VAL : std::strtod(v.c_str(), nullptr);
        } else {
          group += k + "=" + v + ";";
        }
      }
      if (s.name == family + "_bucket" && has_le) {
        buckets[group].emplace_back(le,
                                    std::strtod(s.value_text.c_str(), nullptr));
      } else if (s.name == family + "_count") {
        counts[group] = std::strtod(s.value_text.c_str(), nullptr);
      }
    }
    for (const auto& [group, series] : buckets) {
      for (size_t i = 1; i < series.size(); ++i) {
        if (series[i].first <= series[i - 1].first) {
          expo.errors.push_back(family + "{" + group +
                                "}: le boundaries not increasing");
        }
        if (series[i].second < series[i - 1].second) {
          expo.errors.push_back(family + "{" + group +
                                "}: bucket counts not cumulative");
        }
      }
      if (series.empty() || !std::isinf(series.back().first)) {
        expo.errors.push_back(family + "{" + group + "}: missing le=\"+Inf\"");
      } else if (counts.count(group) == 0) {
        expo.errors.push_back(family + "{" + group + "}: missing _count");
      } else if (series.back().second != counts[group]) {
        expo.errors.push_back(family + "{" + group + "}: +Inf != _count");
      }
    }
  }
  return expo;
}

bool HasLabel(const Sample& s, const std::string& key,
              const std::string& value) {
  for (const auto& [k, v] : s.labels) {
    if (k == key && v == value) return true;
  }
  return false;
}

/// A small real workload so counters, per-level stats, and latency
/// summaries are all non-trivially populated.
engine::Metrics EngineMetricsFromWorkload(
    std::shared_ptr<telemetry::Telemetry> telemetry) {
  MemEnv env;
  engine::Options options;
  options.env = &env;
  options.dir = "/prom";
  options.num_levels = 2;
  options.policy = engine::PolicyConfig::Separation(256, 128);
  options.sstable_points = 256;
  options.points_per_block = 32;
  options.telemetry = std::move(telemetry);
  auto db = engine::TsEngine::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  for (int64_t t = 0; t < 4000; ++t) {
    int64_t delay = (t % 11 == 0) ? 30 : 0;
    EXPECT_TRUE((*db)->Append({t > delay ? t - delay : t, t, 1.0 * t}).ok());
  }
  EXPECT_TRUE((*db)->FlushAll().ok());
  std::vector<DataPoint> out;
  EXPECT_TRUE((*db)->Query(500, 2500, &out).ok());
  engine::Aggregates agg;
  EXPECT_TRUE((*db)->Aggregate(0, 4000, &agg).ok());
  return (*db)->GetMetrics();
}

TEST(PrometheusFormatTest, EngineExpositionConforms) {
  engine::Metrics metrics = EngineMetricsFromWorkload(nullptr);
  Exposition expo = Validate(metrics.ToPrometheus("bench"));
  EXPECT_TRUE(expo.errors.empty()) << expo.ErrorReport();

  EXPECT_EQ(expo.type_of["seplsm_points_ingested_total"], "counter");
  EXPECT_EQ(expo.type_of["seplsm_write_amplification"], "gauge");
  EXPECT_EQ(expo.type_of["seplsm_level_compaction_debt_bytes"], "gauge");
  // Per-level families carry one sample per level, all labeled.
  size_t debt_samples = 0;
  for (const Sample& s : expo.samples) {
    if (s.name != "seplsm_level_compaction_debt_bytes") continue;
    ++debt_samples;
    EXPECT_TRUE(HasLabel(s, "series", "bench"));
  }
  EXPECT_EQ(debt_samples, 2u);  // num_levels pinned to 2 above
  // Every engine counter family made it out (nothing starved the X-macro).
  size_t counter_families = 0;
  for (const auto& [family, type] : expo.type_of) {
    if (type == "counter") ++counter_families;
  }
  EXPECT_GE(counter_families, engine::Metrics::kCounterCount);
}

TEST(PrometheusFormatTest, RegistrySummaryAndHistogramConform) {
  telemetry::MetricsRegistry registry;
  // Latencies spread across decades so several log-buckets are hit.
  for (double micros : {1.0, 2.0, 9.0, 15.0, 80.0, 400.0, 2000.0, 90000.0}) {
    registry.AddLatency(telemetry::SpanType::kAppend, micros);
  }
  registry.AddLatency(telemetry::SpanType::kQuery, 33.0);
  registry.GetCounter("wal_group_commits")->Add(7);

  Exposition expo = Validate(registry.ToPrometheus("s", {}));
  EXPECT_TRUE(expo.errors.empty()) << expo.ErrorReport();
  EXPECT_EQ(expo.type_of["seplsm_op_latency_micros"], "summary");
  EXPECT_EQ(expo.type_of["seplsm_op_duration_micros"], "histogram");
  EXPECT_EQ(expo.type_of["seplsm_wal_group_commits_total"], "counter");

  // The append histogram spans several distinct le boundaries, and the
  // summary publishes the standard quantiles.
  std::set<std::string> append_les;
  std::set<std::string> append_quantiles;
  for (const Sample& s : expo.samples) {
    if (!HasLabel(s, "op", "append")) continue;
    for (const auto& [k, v] : s.labels) {
      if (s.name == "seplsm_op_duration_micros_bucket" && k == "le") {
        append_les.insert(v);
      }
      if (s.name == "seplsm_op_latency_micros" && k == "quantile") {
        append_quantiles.insert(v);
      }
    }
  }
  EXPECT_GE(append_les.size(), 4u);
  EXPECT_EQ(append_les.count("+Inf"), 1u);
  EXPECT_EQ(append_quantiles,
            (std::set<std::string>{"0.5", "0.95", "0.99", "1"}));
}

TEST(PrometheusFormatTest, CombinedExpositionHasNoDuplicateFamilies) {
  // The /metrics endpoint concatenates the engine exposition with the
  // telemetry registry's; both sides track block cache traffic under the
  // same name. The CounterNames() exclusion is what keeps the combined
  // output legal — validate exactly that contract.
  auto telemetry =
      std::make_shared<telemetry::Telemetry>(telemetry::TelemetryOptions{});
  engine::Metrics metrics = EngineMetricsFromWorkload(telemetry);
  telemetry->registry().GetCounter("block_cache_hits")->Add(1);

  const std::string engine_text = metrics.ToPrometheus("s");
  const std::string excluded = telemetry->registry().ToPrometheus(
      "s", engine::Metrics::CounterNames());
  Exposition combined = Validate(engine_text + excluded);
  EXPECT_TRUE(combined.errors.empty()) << combined.ErrorReport();
  EXPECT_EQ(combined.type_of.count("seplsm_op_latency_micros"), 1u);
  EXPECT_EQ(combined.type_of.count("seplsm_block_cache_hits_total"), 1u);

  // Negative control: without the exclusion the overlap is a duplicate
  // declaration, and this validator must catch it.
  const std::string unexcluded =
      telemetry->registry().ToPrometheus("s", {});
  Exposition clashing = Validate(engine_text + unexcluded);
  bool found_duplicate = false;
  for (const auto& e : clashing.errors) {
    found_duplicate =
        found_duplicate ||
        e == "family declared twice: seplsm_block_cache_hits_total";
  }
  EXPECT_TRUE(found_duplicate);
}

TEST(PrometheusFormatTest, LabelEscapingRoundTrips) {
  const std::string nasty = "rack\\7\"alpha\"\nline2";
  engine::Metrics metrics;
  metrics.points_ingested = 5;
  Exposition expo = Validate(metrics.ToPrometheus(nasty));
  EXPECT_TRUE(expo.errors.empty()) << expo.ErrorReport();
  bool found = false;
  for (const Sample& s : expo.samples) {
    if (s.name == "seplsm_points_ingested_total") {
      found = true;
      EXPECT_TRUE(HasLabel(s, "series", nasty))
          << "series label did not round-trip through escaping";
    }
  }
  EXPECT_TRUE(found);

  telemetry::MetricsRegistry registry;
  registry.GetCounter("wal_fsyncs")->Add(1);
  Exposition rexpo = Validate(registry.ToPrometheus(nasty, {}));
  EXPECT_TRUE(rexpo.errors.empty()) << rexpo.ErrorReport();
  bool rfound = false;
  for (const Sample& s : rexpo.samples) {
    if (s.name == "seplsm_wal_fsyncs_total") {
      rfound = true;
      EXPECT_TRUE(HasLabel(s, "series", nasty));
    }
  }
  EXPECT_TRUE(rfound);
}

TEST(PrometheusFormatTest, ValidatorRejectsMalformedLines) {
  // Self-test: a validator that accepts everything proves nothing.
  EXPECT_FALSE(Validate("metric{unterminated 1\n").errors.empty());
  EXPECT_FALSE(Validate("9starts_with_digit 1\n").errors.empty());
  EXPECT_FALSE(Validate("novalue{a=\"b\"}\n").errors.empty());
  EXPECT_FALSE(Validate("# TYPE m counter\nm 1\n").errors.empty())
      << "missing HELP must be an error";
  EXPECT_FALSE(Validate("# HELP m h\nm 1\n").errors.empty())
      << "missing TYPE must be an error";
  EXPECT_FALSE(
      Validate("# HELP m h\n# TYPE m counter\nm not_a_number\n")
          .errors.empty());
  // Counter family not ending in _total.
  EXPECT_FALSE(
      Validate("# HELP m h\n# TYPE m counter\nm 1\n").errors.empty());
  // And a well-formed fragment passes, so the rejections above mean
  // something.
  Exposition ok = Validate(
      "# HELP m_total h\n# TYPE m_total counter\nm_total{a=\"b\"} 1\n");
  EXPECT_TRUE(ok.errors.empty()) << ok.ErrorReport();
}

}  // namespace
}  // namespace seplsm
