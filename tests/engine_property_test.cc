// Property-based tests: for arbitrary delay-disordered workloads, under both
// policies and both execution modes, the engine must (a) keep the run sorted
// and non-overlapping, (b) return exactly the ingested set from range
// queries, (c) satisfy the WA accounting identity, and (d) agree with a
// brute-force in-memory reference on random range queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "dist/parametric.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "workload/synthetic.h"

namespace seplsm::engine {
namespace {

struct PropertyCase {
  std::string label;
  PolicyConfig policy;
  bool background_mode;
  double sigma;      // lognormal delay spread
  uint64_t seed;
};

std::vector<PropertyCase> Cases() {
  std::vector<PropertyCase> cases;
  int i = 0;
  for (bool bg : {false, true}) {
    for (double sigma : {0.5, 1.5, 2.5}) {
      cases.push_back({"conv_" + std::to_string(i), PolicyConfig::Conventional(32),
                       bg, sigma, 100u + static_cast<uint64_t>(i)});
      ++i;
      cases.push_back({"sep_" + std::to_string(i),
                       PolicyConfig::Separation(32, 16), bg, sigma,
                       200u + static_cast<uint64_t>(i)});
      ++i;
      cases.push_back({"sep_skew_" + std::to_string(i),
                       PolicyConfig::Separation(32, 28), bg, sigma,
                       300u + static_cast<uint64_t>(i)});
      ++i;
    }
  }
  return cases;
}

class EnginePropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EnginePropertyTest, FuzzedWorkloadInvariants) {
  const PropertyCase& pc = GetParam();
  MemEnv env;
  Options o;
  o.env = &env;
  o.dir = "/db";
  o.policy = pc.policy;
  o.background_mode = pc.background_mode;
  o.sstable_points = 32;
  o.points_per_block = 8;
  auto open = TsEngine::Open(o);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  auto& db = *open;

  workload::SyntheticConfig sc;
  sc.num_points = 3000;
  sc.delta_t = 20.0;
  sc.seed = pc.seed;
  dist::LognormalDistribution delay(3.0, pc.sigma);
  auto points = workload::GenerateSynthetic(sc, delay);

  std::map<int64_t, DataPoint> reference;
  Rng rng(pc.seed * 7 + 1);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(db->Append(points[i]).ok());
    reference.insert_or_assign(points[i].generation_time, points[i]);
    // Interleave occasional queries against the reference.
    if (i % 500 == 499) {
      int64_t lo = rng.UniformInt(0, 60000);
      int64_t hi = lo + rng.UniformInt(0, 20000);
      std::vector<DataPoint> got;
      ASSERT_TRUE(db->Query(lo, hi, &got).ok());
      std::vector<DataPoint> want;
      for (auto it = reference.lower_bound(lo);
           it != reference.end() && it->first <= hi; ++it) {
        want.push_back(it->second);
      }
      ASSERT_EQ(got, want) << "mid-ingest query [" << lo << "," << hi << "]";
    }
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->CheckInvariants().ok());

  // (b) Full-range query returns exactly the ingested set.
  std::vector<DataPoint> all;
  ASSERT_TRUE(db
                  ->Query(std::numeric_limits<int64_t>::min() / 2,
                          std::numeric_limits<int64_t>::max() / 2, &all)
                  .ok());
  ASSERT_EQ(all.size(), reference.size());
  size_t idx = 0;
  for (const auto& [tg, p] : reference) {
    ASSERT_EQ(all[idx].generation_time, tg);
    ASSERT_EQ(all[idx], p);
    ++idx;
  }

  // (c) Accounting identity: everything ingested is on disk exactly once
  // after FlushAll, and written = flushed + rewritten >= ingested.
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.points_ingested, points.size());
  EXPECT_GE(m.points_flushed, reference.size());
  EXPECT_EQ(m.points_written_total(), m.points_flushed + m.points_rewritten);
  EXPECT_GE(m.WriteAmplification(), 1.0 - 1e-9);

  // (d) Random range queries match brute force.
  for (int trial = 0; trial < 30; ++trial) {
    int64_t lo = rng.UniformInt(-100, 70000);
    int64_t hi = lo + rng.UniformInt(0, 30000);
    std::vector<DataPoint> got;
    ASSERT_TRUE(db->Query(lo, hi, &got).ok());
    std::vector<DataPoint> want;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      want.push_back(it->second);
    }
    ASSERT_EQ(got, want) << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EnginePropertyTest,
                         ::testing::ValuesIn(Cases()),
                         [](const auto& info) { return info.param.label; });

TEST(EnginePropertyExtraTest, ReopenAfterEveryBatchKeepsData) {
  MemEnv env;
  Options o;
  o.env = &env;
  o.dir = "/db";
  o.policy = PolicyConfig::Conventional(16);
  o.sstable_points = 16;
  o.points_per_block = 8;

  workload::SyntheticConfig sc;
  sc.num_points = 1000;
  sc.delta_t = 10.0;
  sc.seed = 5;
  dist::LognormalDistribution delay(3.0, 1.5);
  auto points = workload::GenerateSynthetic(sc, delay);

  std::map<int64_t, DataPoint> reference;
  size_t cursor = 0;
  while (cursor < points.size()) {
    auto open = TsEngine::Open(o);
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    auto& db = *open;
    size_t batch = std::min<size_t>(250, points.size() - cursor);
    for (size_t i = 0; i < batch; ++i, ++cursor) {
      ASSERT_TRUE(db->Append(points[cursor]).ok());
      reference.insert_or_assign(points[cursor].generation_time,
                                 points[cursor]);
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->CheckInvariants().ok());
  }
  auto open = TsEngine::Open(o);
  ASSERT_TRUE(open.ok());
  std::vector<DataPoint> all;
  ASSERT_TRUE((*open)->Query(-1, 1 << 30, &all).ok());
  EXPECT_EQ(all.size(), reference.size());
}

TEST(EnginePropertyExtraTest, DuplicateHeavyWorkload) {
  MemEnv env;
  Options o;
  o.env = &env;
  o.dir = "/db";
  o.policy = PolicyConfig::Separation(16, 8);
  o.sstable_points = 16;
  o.points_per_block = 4;
  auto open = TsEngine::Open(o);
  ASSERT_TRUE(open.ok());
  auto& db = *open;
  Rng rng(88);
  std::map<int64_t, double> reference;
  // Only 50 distinct keys, written 2000 times: exercises upsert through
  // memtables, flushes and merges.
  for (int i = 0; i < 2000; ++i) {
    int64_t key = rng.UniformInt(0, 49);
    double value = static_cast<double>(i);
    DataPoint p{key, 10000 + i, value};
    ASSERT_TRUE(db->Append(p).ok());
    reference[key] = value;
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> all;
  ASSERT_TRUE(db->Query(0, 49, &all).ok());
  ASSERT_EQ(all.size(), reference.size());
  for (const auto& p : all) {
    EXPECT_EQ(p.value, reference[p.generation_time])
        << "key " << p.generation_time;
  }
}

}  // namespace
}  // namespace seplsm::engine
