#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace seplsm {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(crc32c::Value("", 0), 0u);
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  std::string data = "hello world, this is a longer buffer";
  uint32_t whole = crc32c::Value(data);
  uint32_t split = crc32c::Extend(crc32c::Value(data.data(), 10),
                                  data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(crc32c::Value("abc"), crc32c::Value("abd"));
  EXPECT_NE(crc32c::Value("abc"), crc32c::Value("cba"));
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  }
}

TEST(Crc32cTest, MaskChangesValue) {
  uint32_t crc = crc32c::Value("abc");
  EXPECT_NE(crc32c::Mask(crc), crc);
}

}  // namespace
}  // namespace seplsm
