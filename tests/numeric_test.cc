#include <gtest/gtest.h>

#include <cmath>

#include "numeric/integration.h"
#include "numeric/interpolation.h"
#include "numeric/root_finding.h"
#include "numeric/special_functions.h"

namespace seplsm::numeric {
namespace {

TEST(IntegrationTest, SimpsonPolynomialExact) {
  // Simpson is exact for cubics.
  auto f = [](double x) { return x * x * x - 2 * x + 1; };
  double got = AdaptiveSimpson(f, 0.0, 2.0);
  double want = 4.0 - 4.0 + 2.0;  // x^4/4 - x^2 + x over [0,2]
  EXPECT_NEAR(got, want, 1e-10);
}

TEST(IntegrationTest, SimpsonSine) {
  double got = AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0,
                               M_PI);
  EXPECT_NEAR(got, 2.0, 1e-8);
}

TEST(IntegrationTest, SimpsonEmptyInterval) {
  EXPECT_EQ(AdaptiveSimpson([](double) { return 1.0; }, 3.0, 3.0), 0.0);
}

TEST(IntegrationTest, SimpsonSteepGaussian) {
  // Narrow Gaussian: total mass 1.
  auto f = [](double x) {
    double z = (x - 5.0) / 0.01;
    return std::exp(-0.5 * z * z) / (0.01 * std::sqrt(2 * M_PI));
  };
  IntegrationOptions opts;
  opts.abs_tolerance = 1e-12;
  double got = AdaptiveSimpson(f, 0.0, 10.0, opts);
  EXPECT_NEAR(got, 1.0, 1e-6);
}

class GaussLegendreTest : public ::testing::TestWithParam<int> {};

TEST_P(GaussLegendreTest, ExpIntegral) {
  int points = GetParam();
  double got =
      GaussLegendre([](double x) { return std::exp(x); }, 0.0, 1.0, points);
  EXPECT_NEAR(got, std::exp(1.0) - 1.0, 1e-9) << "points=" << points;
}

TEST_P(GaussLegendreTest, ExactForHighDegreePolynomials) {
  int points = GetParam();
  // GL with k points integrates degree 2k-1 exactly; use degree 7.
  auto f = [](double x) { return std::pow(x, 7); };
  double got = GaussLegendre(f, -1.0, 2.0, points);
  double want = (std::pow(2.0, 8) - std::pow(-1.0, 8)) / 8.0;
  EXPECT_NEAR(got, want, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreTest,
                         ::testing::Values(8, 16, 32, 64));

TEST(IntegrationTest, GeometricGLHeavyTail) {
  // Integral of 1/(1+x)^2 over [0, 1e6] = 1 - 1/(1+1e6).
  auto f = [](double x) { return 1.0 / ((1.0 + x) * (1.0 + x)); };
  double got = GeometricGaussLegendre(f, 0.0, 1e6, 32, 16);
  EXPECT_NEAR(got, 1.0 - 1.0 / (1.0 + 1e6), 1e-6);
}

TEST(IntegrationTest, GeometricGLDegenerateInterval) {
  EXPECT_EQ(GeometricGaussLegendre([](double) { return 1.0; }, 5.0, 5.0), 0.0);
}

TEST(BrentTest, FindsSqrtTwo) {
  auto r = Brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, std::sqrt(2.0), 1e-9);
}

TEST(BrentTest, FindsCosRoot) {
  auto r = Brent([](double x) { return std::cos(x); }, 0.0, 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, M_PI / 2.0, 1e-9);
}

TEST(BrentTest, EndpointRoot) {
  auto r = Brent([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.0, 1e-9);
}

TEST(BrentTest, NoBracketFails) {
  auto r = Brent([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(MonotoneIntSearchTest, FindsThreshold) {
  auto g = [](long long k) { return static_cast<double>(k) * 0.5; };
  auto r = MonotoneIntSearch(g, 0, 1000, 10.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 20);
}

TEST(MonotoneIntSearchTest, TargetAboveRangeFails) {
  auto g = [](long long k) { return static_cast<double>(k); };
  auto r = MonotoneIntSearch(g, 0, 10, 100.0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(SpecialFunctionsTest, GammaPKnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(SpecialFunctionsTest, GammaPBoundaries) {
  EXPECT_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(2.0, 1e6), 1.0, 1e-12);
  EXPECT_NEAR(RegularizedGammaP(3.0, 3.0) + RegularizedGammaQ(3.0, 3.0), 1.0,
              1e-12);
}

TEST(SpecialFunctionsTest, GammaPMonotone) {
  double prev = -1.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    double p = RegularizedGammaP(2.5, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(SpecialFunctionsTest, GammaPInverseRoundTrip) {
  for (double a : {0.5, 1.0, 2.0, 10.0}) {
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
      double x = RegularizedGammaPInverse(a, p);
      EXPECT_NEAR(RegularizedGammaP(a, x), p, 1e-9)
          << "a=" << a << " p=" << p;
    }
  }
}

TEST(InterpolationTest, LinearBetweenKnots) {
  LinearInterpolator interp({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(interp(0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp(1.5), 25.0);
}

TEST(InterpolationTest, ClampsOutsideRange) {
  LinearInterpolator interp({1.0, 2.0}, {3.0, 7.0});
  EXPECT_DOUBLE_EQ(interp(0.0), 3.0);
  EXPECT_DOUBLE_EQ(interp(9.0), 7.0);
}

TEST(InterpolationTest, InverseRoundTrip) {
  LinearInterpolator interp({0.0, 5.0, 10.0}, {0.0, 0.25, 1.0});
  for (double y : {0.0, 0.1, 0.25, 0.6, 1.0}) {
    double x = interp.Inverse(y);
    EXPECT_NEAR(interp(x), y, 1e-12);
  }
}

TEST(InterpolationTest, EmptyIsZero) {
  LinearInterpolator interp;
  EXPECT_TRUE(interp.empty());
  EXPECT_EQ(interp(1.0), 0.0);
  EXPECT_EQ(interp.Inverse(0.5), 0.0);
}

}  // namespace
}  // namespace seplsm::numeric
