// Read-path pruning: summary-served aggregation, zone-map block skipping,
// and the MultiSeriesDB series Bloom filter. The invariant throughout is
// that pruning is an optimization, never a semantic: every query answers
// identically with Options::pruning on and off (bit-exact except aggregate
// `sum`, where partial-sum re-association moves the last few ulps).

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "engine/multi_series_db.h"
#include "engine/series_bloom.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "storage/iterator.h"
#include "storage/sstable.h"

namespace seplsm::engine {
namespace {

Options BaseOptions(Env* env, const std::string& dir, bool pruning) {
  Options o;
  o.env = env;
  o.dir = dir;
  // Summary-served aggregation engages on the sorted run; pin the seed
  // tree so the "summaries were actually used" assertions stay meaningful
  // under the deep-tree CI leg.
  o.num_levels = 2;
  o.policy = PolicyConfig::Conventional(256);
  o.sstable_points = 256;
  o.points_per_block = 32;
  o.summary_window = 64;
  o.pruning = pruning;
  return o;
}

void ExpectSameAggregates(const Aggregates& a, const Aggregates& b) {
  EXPECT_EQ(a.count, b.count);
  // Everything is bit-exact except `sum`: summary partials re-associate the
  // additions (per window, then across windows), so the two paths may
  // differ by accumulated rounding — bounded here at 1e-12 relative.
  EXPECT_NEAR(a.sum, b.sum, 1e-12 * std::max(1.0, std::abs(b.sum)));
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_EQ(a.first_time, b.first_time);
  EXPECT_EQ(a.last_time, b.last_time);
  EXPECT_DOUBLE_EQ(a.first_value, b.first_value);
  EXPECT_DOUBLE_EQ(a.last_value, b.last_value);
}

double Reading(int64_t t) { return std::sin(t * 0.013) * 40.0 + (t % 17); }

// Dense in-order series, fully flushed: every interior window is servable.
class PruningEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = TsEngine::Open(BaseOptions(&env_, "/db", true));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int64_t t = 0; t < 4096; ++t) {
      ASSERT_TRUE((*db)->Append({t, t + 3, Reading(t)}).ok());
    }
    ASSERT_TRUE((*db)->FlushAll().ok());
  }

  std::unique_ptr<TsEngine> Reopen(bool pruning) {
    auto db = TsEngine::Open(BaseOptions(&env_, "/db", pruning));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  MemEnv env_;
};

TEST_F(PruningEquivalenceTest, AggregateMatchesPointReads) {
  auto on = Reopen(true);
  auto off = Reopen(false);
  // Edge-y ranges: window-aligned, unaligned both ends, sub-window,
  // whole-series, past-the-data.
  const int64_t ranges[][2] = {{0, 4095},    {64, 4031},  {1, 4094},
                               {100, 3999},  {130, 140},  {0, 63},
                               {4000, 9999}, {-500, 500}, {2048, 2048}};
  for (auto [lo, hi] : ranges) {
    Aggregates a, b;
    QueryStats sa, sb;
    ASSERT_TRUE(on->Aggregate(lo, hi, &a, &sa).ok());
    ASSERT_TRUE(off->Aggregate(lo, hi, &b, &sb).ok());
    ExpectSameAggregates(a, b);
    EXPECT_EQ(sb.pruning.summary_hits, 0u);
  }
  // The wide aligned range must actually have used summaries.
  Aggregates a;
  QueryStats stats;
  ASSERT_TRUE(on->Aggregate(0, 4095, &a, &stats).ok());
  EXPECT_GT(stats.pruning.summary_hits, 0u);
  EXPECT_EQ(stats.disk_points_scanned, 0u);  // fully summary-served
}

TEST_F(PruningEquivalenceTest, DownsampleMatchesPointReads) {
  auto on = Reopen(true);
  auto off = Reopen(false);
  // Aligned (lo on the window grid, width a multiple of 64) and unaligned
  // shapes; both must agree with the pruning-off engine bucket for bucket.
  const int64_t shapes[][3] = {{0, 4095, 256},  {0, 4095, 64},
                               {64, 4095, 128}, {0, 4000, 256},
                               {7, 4088, 256},  {0, 4095, 100}};
  for (auto [lo, hi, width] : shapes) {
    std::vector<TimeBucket> a, b;
    ASSERT_TRUE(on->Downsample(lo, hi, width, &a).ok());
    ASSERT_TRUE(off->Downsample(lo, hi, width, &b).ok());
    ASSERT_EQ(a.size(), b.size()) << lo << " " << hi << " " << width;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].bucket_start, b[i].bucket_start);
      EXPECT_EQ(a[i].bucket_end, b[i].bucket_end);
      ExpectSameAggregates(a[i].aggregates, b[i].aggregates);
    }
  }
  std::vector<TimeBucket> buckets;
  QueryStats stats;
  ASSERT_TRUE(on->Downsample(0, 4095, 256, &buckets, &stats).ok());
  EXPECT_GT(stats.pruning.summary_hits, 0u);
  EXPECT_EQ(stats.disk_points_scanned, 0u);
}

TEST_F(PruningEquivalenceTest, NarrowQueryCountsSkippedFilesAndBlocks) {
  auto on = Reopen(true);
  std::vector<DataPoint> out;
  QueryStats stats;
  ASSERT_TRUE(on->Query(1000, 1031, &out, &stats).ok());
  EXPECT_EQ(out.size(), 32u);
  // 4096 points / 256 per file = 16 run files; all but one irrelevant.
  EXPECT_GT(stats.pruning.files_skipped, 0u);
  EXPECT_GT(stats.blocks_read, 0u);
}

TEST_F(PruningEquivalenceTest, MetricsCountersAccumulate) {
  auto on = Reopen(true);
  Aggregates a;
  ASSERT_TRUE(on->Aggregate(0, 4095, &a).ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(on->Query(1000, 1031, &out).ok());
  Metrics m = on->GetMetrics();
  EXPECT_GT(m.summary_hits, 0u);
  EXPECT_GT(m.files_skipped, 0u);
}

// Buffered and out-of-order data override disk summaries; pushdown must
// notice and fall back without changing any answer.
TEST(PruningDirtyDataTest, MemTableAndLevel0ForceFallback) {
  MemEnv env;
  auto db = TsEngine::Open(BaseOptions(&env, "/db", true));
  ASSERT_TRUE(db.ok());
  for (int64_t t = 0; t < 2048; ++t) {
    ASSERT_TRUE((*db)->Append({t, t + 3, Reading(t)}).ok());
  }
  ASSERT_TRUE((*db)->FlushAll().ok());
  // Out-of-order upserts into flushed territory (new values win)...
  for (int64_t t = 500; t < 520; ++t) {
    ASSERT_TRUE((*db)->Append({t, t + 5000, -1000.0}).ok());
  }
  // ...plus fresh points still buffered in the MemTable.
  for (int64_t t = 2048; t < 2100; ++t) {
    ASSERT_TRUE((*db)->Append({t, t + 3, Reading(t)}).ok());
  }
  Aggregates a;
  ASSERT_TRUE((*db)->Aggregate(0, 2099, &a).ok());
  // Reference: fold the point query (always correct by construction).
  std::vector<DataPoint> points;
  ASSERT_TRUE((*db)->Query(0, 2099, &points).ok());
  Aggregates ref;
  for (const auto& p : points) ref.Accumulate(p);
  ExpectSameAggregates(a, ref);
  EXPECT_DOUBLE_EQ(a.min, -1000.0);  // the upserts are visible
}

// v1 tables (metadata off) must silently disable pushdown, not break it.
TEST(PruningCompatTest, MixedV1AndV2TablesStayCorrect) {
  MemEnv env;
  {
    Options o = BaseOptions(&env, "/db", true);
    o.table_metadata = false;  // first half of the data lands in v1 files
    auto db = TsEngine::Open(o);
    ASSERT_TRUE(db.ok());
    for (int64_t t = 0; t < 1024; ++t) {
      ASSERT_TRUE((*db)->Append({t, t + 3, Reading(t)}).ok());
    }
    ASSERT_TRUE((*db)->FlushAll().ok());
  }
  auto db = TsEngine::Open(BaseOptions(&env, "/db", true));
  ASSERT_TRUE(db.ok());
  for (int64_t t = 1024; t < 2048; ++t) {
    ASSERT_TRUE((*db)->Append({t, t + 3, Reading(t)}).ok());
  }
  ASSERT_TRUE((*db)->FlushAll().ok());
  Aggregates a;
  ASSERT_TRUE((*db)->Aggregate(0, 2047, &a).ok());
  std::vector<DataPoint> points;
  ASSERT_TRUE((*db)->Query(0, 2047, &points).ok());
  ASSERT_EQ(points.size(), 2048u);
  Aggregates ref;
  for (const auto& p : points) ref.Accumulate(p);
  ExpectSameAggregates(a, ref);
}

// Value zone maps at the storage layer: a reader given value bounds skips
// blocks whose [min,max] value range cannot match.
TEST(ZoneMapTest, ValueBoundsSkipBlocks) {
  MemEnv env;
  storage::SSTableWriter writer(&env, "/t.sst", 32,
                                format::ValueEncoding::kRaw, {});
  // Blocks 0..7 carry value plateaus 0, 100, 200, ...: disjoint zone maps.
  for (int64_t t = 0; t < 256; ++t) {
    ASSERT_TRUE(writer.Add({t, t, static_cast<double>((t / 32) * 100)}).ok());
  }
  auto meta = writer.Finish();
  ASSERT_TRUE(meta.ok());
  auto reader = storage::SSTableReader::Open(&env, "/t.sst", {});
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->has_metadata());
  storage::ReadStats stats;
  storage::ReadOptions opts;
  opts.stats = &stats;
  opts.value_lo = 300.0;
  opts.value_hi = 300.0;  // only block 3 can match
  auto it = (*reader)->NewIterator(opts);
  size_t n = 0;
  for (; it->Valid(); it->Next()) {
    EXPECT_DOUBLE_EQ(it->point().value, 300.0);
    ++n;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(n, 32u);
  EXPECT_GE(stats.blocks_skipped, 6u);  // 7 of 8 blocks pruned, ±edge reads
}

TEST(SeriesBloomTest, InsertedIdsAlwaysHit) {
  SeriesBloom bloom(1 << 12);
  for (int i = 0; i < 200; ++i) {
    bloom.Insert("sensor-" + std::to_string(i));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(bloom.MayContain("sensor-" + std::to_string(i)));
  }
  // False positives exist but must be rare at ~10 bits/key.
  int fp = 0;
  for (int i = 0; i < 1000; ++i) {
    if (bloom.MayContain("ghost-" + std::to_string(i))) ++fp;
  }
  EXPECT_LT(fp, 100);
}

TEST(SeriesBloomTest, AbsentSeriesSkipsLookup) {
  MemEnv env;
  MultiSeriesDB::MultiOptions mo;
  mo.base.env = &env;
  mo.base.dir = "/multi";
  mo.base.policy = PolicyConfig::Conventional(64);
  auto db = MultiSeriesDB::Open(mo);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Append("engine_temp", {1, 2, 3.0}).ok());
  std::vector<DataPoint> out;
  QueryStats stats;
  // Existing series answers normally.
  ASSERT_TRUE((*db)->Query("engine_temp", 0, 10, &out, &stats).ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.pruning.blooms_negative, 0u);
  // Probe ids that were never created: NotFound via the bloom filter.
  uint64_t negatives = 0;
  for (int i = 0; i < 50; ++i) {
    QueryStats s;
    Status st = (*db)->Query("no-such-" + std::to_string(i), 0, 10, &out, &s);
    EXPECT_TRUE(st.IsNotFound());
    negatives += s.pruning.blooms_negative;
  }
  EXPECT_GT(negatives, 0u);
  EXPECT_EQ((*db)->GetAggregateMetrics().blooms_negative, negatives);
}

TEST(SeriesBloomTest, RecoveredSeriesRepopulateFilter) {
  MemEnv env;
  MultiSeriesDB::MultiOptions mo;
  mo.base.env = &env;
  mo.base.dir = "/multi";
  mo.base.policy = PolicyConfig::Conventional(64);
  {
    auto db = MultiSeriesDB::Open(mo);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append("persisted", {1, 2, 3.0}).ok());
    ASSERT_TRUE((*db)->FlushAll().ok());
  }
  auto db = MultiSeriesDB::Open(mo);
  ASSERT_TRUE(db.ok());
  std::vector<DataPoint> out;
  EXPECT_TRUE((*db)->Query("persisted", 0, 10, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(SeriesBloomTest, DisabledFilterStillAnswersNotFound) {
  MemEnv env;
  MultiSeriesDB::MultiOptions mo;
  mo.base.env = &env;
  mo.base.dir = "/multi";
  mo.base.policy = PolicyConfig::Conventional(64);
  mo.series_bloom = false;
  auto db = MultiSeriesDB::Open(mo);
  ASSERT_TRUE(db.ok());
  std::vector<DataPoint> out;
  QueryStats stats;
  Status st = (*db)->Query("anything", 0, 10, &out, &stats);
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(stats.pruning.blooms_negative, 0u);
  EXPECT_EQ((*db)->GetAggregateMetrics().blooms_negative, 0u);
}

}  // namespace
}  // namespace seplsm::engine
