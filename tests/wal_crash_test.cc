/// Crash matrix for the WAL durability contract (DESIGN.md §12): the engine
/// is run through a fault-injection env that kills I/O at EVERY successive
/// operation index, the env is rewound to exactly what a power loss would
/// leave (un-synced bytes dropped, un-SyncDir'd files and renames undone),
/// and the store is reopened. The invariant under test, at every crash
/// point and in every durability mode:
///
///     acked-durable points  ⊆  recovered points  ⊆  attempted points
///
/// where "acked-durable" is mode-dependent: every OK Append under
/// wal_sync_every_append / wal_group_commit, and every point covered by the
/// last OK Checkpoint under buffered WAL. Values are checked too — a point
/// that comes back corrupted counts as lost.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/point.h"
#include "engine/ts_engine.h"
#include "env/fault_env.h"
#include "env/mem_env.h"

namespace seplsm {
namespace {

enum class WalMode { kBuffered, kSyncEvery, kGroup };
enum class Policy { kConventional, kSeparation };

const char* ModeName(WalMode m) {
  switch (m) {
    case WalMode::kBuffered:
      return "buffered";
    case WalMode::kSyncEvery:
      return "sync_every";
    case WalMode::kGroup:
      return "group";
  }
  return "?";
}

engine::Options MakeOptions(Env* env, WalMode mode, Policy policy) {
  engine::Options o;
  o.env = env;
  o.dir = "/db";
  o.policy = policy == Policy::kConventional
                 ? engine::PolicyConfig::Conventional(8)
                 : engine::PolicyConfig::Separation(8, 4);
  o.sstable_points = 16;
  o.enable_wal = true;
  o.wal_sync_every_append = mode == WalMode::kSyncEvery;
  o.wal_group_commit = mode == WalMode::kGroup;
  return o;
}

constexpr int kPoints = 20;
constexpr int kCheckpointAfter = 12;  ///< Checkpoint() after this many appends

/// Distinct keys in shuffled (out-of-order) arrival: 7 is coprime to 20.
int64_t KeyFor(int i) { return (i * 7) % kPoints; }
double ValueFor(int64_t key) { return static_cast<double>(key) * 1.5 + 0.25; }

struct RunResult {
  std::set<int64_t> acked;      ///< keys the mode guarantees durable
  std::set<int64_t> attempted;  ///< every key driven at the engine
};

/// Drives the workload; statuses are recorded, never required to be OK —
/// with the fault armed most runs die partway through, on purpose.
RunResult RunWorkload(Env* env, WalMode mode, Policy policy) {
  RunResult r;
  auto db = engine::TsEngine::Open(MakeOptions(env, mode, policy));
  if (!db.ok()) return r;
  std::set<int64_t> appended_ok;
  for (int i = 0; i < kPoints; ++i) {
    const int64_t key = KeyFor(i);
    r.attempted.insert(key);
    Status st = (*db)->Append({key, key + 1, ValueFor(key)});
    if (st.ok()) {
      appended_ok.insert(key);
      if (mode != WalMode::kBuffered) r.acked.insert(key);
    }
    if (i + 1 == kCheckpointAfter) {
      if ((*db)->Checkpoint().ok()) {
        // Buffered WAL promises durability only up to an OK checkpoint.
        r.acked.insert(appended_ok.begin(), appended_ok.end());
      }
    }
  }
  return r;
}

class WalCrashMatrixTest
    : public ::testing::TestWithParam<std::tuple<WalMode, Policy>> {};

TEST_P(WalCrashMatrixTest, NoAckedPointLostAtAnyCrashPoint) {
  const auto [mode, policy] = GetParam();

  // Dry run: count the ops a fault-free workload performs so the sweep
  // covers every crash point including "just past the end".
  int64_t max_ops = 0;
  {
    MemEnv base;
    FaultInjectionEnv dry(&base);
    dry.SetFailAfterOps(-1);
    RunResult full = RunWorkload(&dry, mode, policy);
    ASSERT_EQ(full.attempted.size(), static_cast<size_t>(kPoints));
    // Buffered WAL only promises durability up to the checkpoint; the
    // per-append modes promise every OK append.
    const size_t expect_acked = mode == WalMode::kBuffered
                                    ? static_cast<size_t>(kCheckpointAfter)
                                    : static_cast<size_t>(kPoints);
    ASSERT_EQ(full.acked.size(), expect_acked)
        << "fault-free run acked an unexpected point count";
    max_ops = dry.ops();
  }
  ASSERT_GT(max_ops, kPoints);

  for (int64_t k = 1; k <= max_ops; ++k) {
    SCOPED_TRACE(std::string(ModeName(mode)) + " crash at op " +
                 std::to_string(k));
    MemEnv base;
    FaultInjectionEnv fault(&base);
    fault.SetFailAfterOps(k);
    RunResult r = RunWorkload(&fault, mode, policy);
    fault.SetFailAfterOps(-1);
    ASSERT_TRUE(fault.SimulateCrash().ok());

    // Reopen on the post-crash state with a healthy env.
    auto db = engine::TsEngine::Open(MakeOptions(&base, mode, policy));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    std::vector<DataPoint> out;
    ASSERT_TRUE((*db)->Query(0, kPoints + 1, &out).ok());

    std::set<int64_t> recovered;
    for (const auto& p : out) {
      ASSERT_TRUE(recovered.insert(p.generation_time).second)
          << "duplicate key " << p.generation_time;
      EXPECT_EQ(p.value, ValueFor(p.generation_time))
          << "corrupt value for key " << p.generation_time;
    }
    for (int64_t key : r.acked) {
      EXPECT_TRUE(recovered.count(key))
          << "acked-durable key " << key << " lost";
    }
    for (int64_t key : recovered) {
      EXPECT_TRUE(r.attempted.count(key))
          << "phantom key " << key << " recovered";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, WalCrashMatrixTest,
    ::testing::Combine(::testing::Values(WalMode::kBuffered,
                                         WalMode::kSyncEvery,
                                         WalMode::kGroup),
                       ::testing::Values(Policy::kConventional,
                                         Policy::kSeparation)),
    [](const auto& info) {
      return std::string(ModeName(std::get<0>(info.param))) + "_" +
             (std::get<1>(info.param) == Policy::kConventional ? "pi_c"
                                                               : "pi_s");
    });

/// Regression for the recovery crash window: the old code truncated
/// `wal.log` in place and re-logged the replayed points afterwards, so a
/// crash between the truncate and the re-log lost every buffered point that
/// had already been durable before recovery started. The fixed protocol
/// (write wal.log.new with the replayed batch, sync, rename, dir-sync)
/// must survive a crash at EVERY op of recovery itself.
class WalRecoveryCrashTest : public ::testing::TestWithParam<WalMode> {
 protected:
  static constexpr int kSeedPoints = 5;

  /// Builds a store whose WAL durably holds kSeedPoints buffered points.
  void SeedStore(MemEnv* base) {
    auto db = engine::TsEngine::Open(
        MakeOptions(base, WalMode::kSyncEvery, Policy::kConventional));
    ASSERT_TRUE(db.ok());
    for (int64_t t = 0; t < kSeedPoints; ++t) {
      ASSERT_TRUE((*db)->Append({t, t + 1, ValueFor(t)}).ok());
    }
    // Below MemTable capacity: the WAL is the only copy. Clean destruction
    // closes the log; the points were fsynced per append.
  }

  void VerifySeedIntact(MemEnv* base, WalMode mode) {
    auto db = engine::TsEngine::Open(
        MakeOptions(base, mode, Policy::kConventional));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    std::vector<DataPoint> out;
    ASSERT_TRUE((*db)->Query(0, kSeedPoints + 1, &out).ok());
    ASSERT_EQ(out.size(), static_cast<size_t>(kSeedPoints));
    for (int64_t t = 0; t < kSeedPoints; ++t) {
      EXPECT_EQ(out[t].generation_time, t);
      EXPECT_EQ(out[t].value, ValueFor(t));
    }
  }
};

TEST_P(WalRecoveryCrashTest, CrashDuringRecoveryLosesNothing) {
  const WalMode mode = GetParam();

  // Dry run: how many ops does a clean recovery take?
  int64_t max_ops = 0;
  {
    MemEnv base;
    SeedStore(&base);
    FaultInjectionEnv dry(&base);
    dry.SetFailAfterOps(-1);
    auto db = engine::TsEngine::Open(
        MakeOptions(&dry, mode, Policy::kConventional));
    ASSERT_TRUE(db.ok());
    max_ops = dry.ops();
  }
  ASSERT_GT(max_ops, 3);

  int failed_opens = 0;
  for (int64_t k = 1; k <= max_ops; ++k) {
    SCOPED_TRACE("recovery crash at op " + std::to_string(k));
    MemEnv base;
    SeedStore(&base);
    FaultInjectionEnv fault(&base);
    fault.SetFailAfterOps(k);
    {
      auto db = engine::TsEngine::Open(
          MakeOptions(&fault, mode, Policy::kConventional));
      if (!db.ok()) ++failed_opens;
      // Engine (if it opened) is destroyed here, possibly mid-fault.
    }
    fault.SetFailAfterOps(-1);
    ASSERT_TRUE(fault.SimulateCrash().ok());
    VerifySeedIntact(&base, mode);
  }
  // Sanity: the sweep actually interrupted recovery somewhere.
  EXPECT_GT(failed_opens, 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, WalRecoveryCrashTest,
                         ::testing::Values(WalMode::kBuffered,
                                           WalMode::kSyncEvery,
                                           WalMode::kGroup),
                         [](const auto& info) {
                           return ModeName(info.param);
                         });

}  // namespace
}  // namespace seplsm
