#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "format/block.h"
#include "format/table_format.h"

namespace seplsm::format {
namespace {

std::vector<DataPoint> MakePoints(size_t n, int64_t start = 0,
                                  int64_t step = 50) {
  std::vector<DataPoint> points(n);
  for (size_t i = 0; i < n; ++i) {
    points[i].generation_time = start + static_cast<int64_t>(i) * step;
    points[i].arrival_time = points[i].generation_time + 17;
    points[i].value = static_cast<double>(i) * 0.5;
  }
  return points;
}

TEST(BlockTest, RoundTripSmall) {
  BlockBuilder builder;
  auto points = MakePoints(10);
  for (const auto& p : points) builder.Add(p);
  std::string data = builder.Finish();
  std::vector<DataPoint> decoded;
  ASSERT_TRUE(DecodeBlock(data, &decoded).ok());
  EXPECT_EQ(decoded, points);
}

TEST(BlockTest, RoundTripNegativeTimesAndDelays) {
  BlockBuilder builder;
  std::vector<DataPoint> points = {
      {-1000, -500, 1.5},
      {-999, -1050, -2.25},  // negative delay (clock skew)
      {0, 0, 0.0},
      {5, 100000, 3.14},
  };
  for (const auto& p : points) builder.Add(p);
  std::string data = builder.Finish();
  std::vector<DataPoint> decoded;
  ASSERT_TRUE(DecodeBlock(data, &decoded).ok());
  EXPECT_EQ(decoded, points);
}

TEST(BlockTest, RoundTripSpecialValues) {
  BlockBuilder builder;
  std::vector<DataPoint> points = {
      {1, 2, std::numeric_limits<double>::infinity()},
      {2, 3, -0.0},
      {3, 4, std::numeric_limits<double>::denorm_min()},
  };
  for (const auto& p : points) builder.Add(p);
  std::string data = builder.Finish();
  std::vector<DataPoint> decoded;
  ASSERT_TRUE(DecodeBlock(data, &decoded).ok());
  EXPECT_EQ(decoded, points);
}

TEST(BlockTest, FinishResetsBuilder) {
  BlockBuilder builder;
  builder.Add({1, 2, 3.0});
  builder.Finish();
  EXPECT_TRUE(builder.empty());
  builder.Add({100, 200, 1.0});
  std::string data = builder.Finish();
  std::vector<DataPoint> decoded;
  ASSERT_TRUE(DecodeBlock(data, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].generation_time, 100);
}

TEST(BlockTest, CorruptionDetectedByCrc) {
  BlockBuilder builder;
  for (const auto& p : MakePoints(50)) builder.Add(p);
  std::string data = builder.Finish();
  for (size_t i : {size_t{0}, data.size() / 2, data.size() - 5}) {
    std::string bad = data;
    bad[i] ^= 0x40;
    std::vector<DataPoint> decoded;
    EXPECT_TRUE(DecodeBlock(bad, &decoded).IsCorruption()) << "byte " << i;
  }
}

TEST(BlockTest, TruncationDetected) {
  BlockBuilder builder;
  for (const auto& p : MakePoints(20)) builder.Add(p);
  std::string data = builder.Finish();
  std::vector<DataPoint> decoded;
  EXPECT_TRUE(DecodeBlock(data.substr(0, 3), &decoded).IsCorruption());
  EXPECT_TRUE(DecodeBlock("", &decoded).IsCorruption());
}

TEST(BlockTest, DeltaEncodingIsCompact) {
  BlockBuilder builder;
  for (const auto& p : MakePoints(128)) builder.Add(p);
  std::string data = builder.Finish();
  // 8-byte value + ~1-2 bytes per timestamp/delay: far below 24B/point.
  EXPECT_LT(data.size(), 128 * 14);
}

TEST(BlockTest, LargeBlockRoundTrip) {
  BlockBuilder builder;
  Rng rng(5);
  std::vector<DataPoint> points;
  int64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += static_cast<int64_t>(rng.UniformU64(1000));
    points.push_back({t, t + static_cast<int64_t>(rng.UniformU64(100000)),
                      rng.NextDouble()});
    builder.Add(points.back());
  }
  std::string data = builder.Finish();
  std::vector<DataPoint> decoded;
  ASSERT_TRUE(DecodeBlock(data, &decoded).ok());
  EXPECT_EQ(decoded, points);
}

TEST(TableFormatTest, IndexRoundTrip) {
  std::vector<BlockIndexEntry> entries = {
      {0, 100, 0, 500, 10},
      {101, 250, 500, 700, 12},
      {-50, -10, 1200, 90, 3},
  };
  std::string data;
  EncodeIndex(entries, &data);
  std::vector<BlockIndexEntry> decoded;
  ASSERT_TRUE(DecodeIndex(data, &decoded).ok());
  ASSERT_EQ(decoded.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].min_generation_time, entries[i].min_generation_time);
    EXPECT_EQ(decoded[i].max_generation_time, entries[i].max_generation_time);
    EXPECT_EQ(decoded[i].offset, entries[i].offset);
    EXPECT_EQ(decoded[i].size, entries[i].size);
    EXPECT_EQ(decoded[i].point_count, entries[i].point_count);
  }
}

TEST(TableFormatTest, IndexCorruptionDetected) {
  std::vector<BlockIndexEntry> entries = {{0, 1, 2, 3, 4}};
  std::string data;
  EncodeIndex(entries, &data);
  data[1] ^= 0xFF;
  std::vector<BlockIndexEntry> decoded;
  EXPECT_TRUE(DecodeIndex(data, &decoded).IsCorruption());
}

TEST(TableFormatTest, EmptyIndexRoundTrip) {
  std::string data;
  EncodeIndex({}, &data);
  std::vector<BlockIndexEntry> decoded;
  ASSERT_TRUE(DecodeIndex(data, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(TableFormatTest, FooterRoundTrip) {
  Footer f;
  f.index_offset = 123456;
  f.index_size = 789;
  f.point_count = 42;
  f.min_generation_time = -100;
  f.max_generation_time = 1'000'000'000'000;
  std::string data;
  EncodeFooter(f, &data);
  ASSERT_EQ(data.size(), kFooterSize);
  Footer g;
  ASSERT_TRUE(DecodeFooter(data, &g).ok());
  EXPECT_EQ(g.index_offset, f.index_offset);
  EXPECT_EQ(g.index_size, f.index_size);
  EXPECT_EQ(g.point_count, f.point_count);
  EXPECT_EQ(g.min_generation_time, f.min_generation_time);
  EXPECT_EQ(g.max_generation_time, f.max_generation_time);
}

TEST(TableFormatTest, BadMagicRejected) {
  Footer f;
  std::string data;
  EncodeFooter(f, &data);
  data[kFooterSize - 1] ^= 0x01;
  Footer g;
  EXPECT_TRUE(DecodeFooter(data, &g).IsCorruption());
}

TEST(TableFormatTest, WrongFooterSizeRejected) {
  Footer g;
  EXPECT_TRUE(DecodeFooter("short", &g).IsCorruption());
}

}  // namespace
}  // namespace seplsm::format
