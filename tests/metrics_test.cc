#include "engine/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace seplsm::engine {
namespace {

// One distinct value per counter (its 1-based position in the X-list) so a
// transposed or dropped field in MergeFrom shows up as a wrong sum, not a
// coincidence. Expanded from SEPLSM_METRICS_COUNTERS, so a new counter is
// covered the moment it is added to the list.
Metrics DistinctMetrics(uint64_t base) {
  Metrics m;
  uint64_t k = 0;
#define SEPLSM_TEST_SET_FIELD(name, help) m.name = base + ++k;
  SEPLSM_METRICS_COUNTERS(SEPLSM_TEST_SET_FIELD)
#undef SEPLSM_TEST_SET_FIELD
  return m;
}

// merge_events, wa_timeline, level_stats (vector<LevelStats> has the same
// layout size as vector<uint64_t>).
constexpr size_t kVectorFields = 3;

TEST(MetricsMergeTest, EveryFieldIsCovered) {
  // If this fails you added a field to Metrics outside the
  // SEPLSM_METRICS_COUNTERS X-list. Add it to the list instead (or, for a
  // new vector, bump kVectorFields and extend the concatenation test):
  // fields outside the list are invisible to MergeFrom and every export
  // surface, so GetAggregateMetrics would silently drop them.
  EXPECT_EQ(sizeof(Metrics),
            Metrics::kCounterCount * sizeof(uint64_t) +
                kVectorFields * sizeof(std::vector<uint64_t>))
      << "Metrics gained a field not declared via SEPLSM_METRICS_COUNTERS";
  EXPECT_EQ(Metrics::kCounterCount, 38u);
}

TEST(MetricsMergeTest, EverySumIsCorrect) {
  Metrics a = DistinctMetrics(100);
  const Metrics b = DistinctMetrics(10000);
  const Metrics expect_a = DistinctMetrics(100);
  a.MergeFrom(b);
#define SEPLSM_TEST_CHECK_SUM(name, help) \
  EXPECT_EQ(a.name, expect_a.name + b.name) << #name;
  SEPLSM_METRICS_COUNTERS(SEPLSM_TEST_CHECK_SUM)
#undef SEPLSM_TEST_CHECK_SUM
}

TEST(MetricsMergeTest, MergeIntoEmptyIsIdentityOnCounters) {
  Metrics total;
  Metrics b = DistinctMetrics(0);
  total.MergeFrom(b);
#define SEPLSM_TEST_CHECK_IDENTITY(name, help) \
  EXPECT_EQ(total.name, b.name) << #name;
  SEPLSM_METRICS_COUNTERS(SEPLSM_TEST_CHECK_IDENTITY)
#undef SEPLSM_TEST_CHECK_IDENTITY
  EXPECT_EQ(total.WriteAmplification(), b.WriteAmplification());
}

TEST(MetricsMergeTest, EventVectorsAreConcatenatedInOrder) {
  Metrics a;
  MergeEvent e1;
  e1.buffered_points = 11;
  a.merge_events.push_back(e1);
  a.wa_timeline = {1, 2};

  Metrics b;
  MergeEvent e2;
  e2.buffered_points = 22;
  MergeEvent e3;
  e3.buffered_points = 33;
  b.merge_events = {e2, e3};
  b.wa_timeline = {3};

  a.MergeFrom(b);
  ASSERT_EQ(a.merge_events.size(), 3u);
  EXPECT_EQ(a.merge_events[0].buffered_points, 11u);
  EXPECT_EQ(a.merge_events[1].buffered_points, 22u);
  EXPECT_EQ(a.merge_events[2].buffered_points, 33u);
  EXPECT_EQ(a.wa_timeline, (std::vector<uint64_t>{1, 2, 3}));
}

// The audit property the exports promise: every counter in the X-list
// appears, by name, in ToString, ToJson, and ToPrometheus — including
// zero-valued ones (the old ToString gated whole groups on activity and
// silently omitted the WAL and query-file counters).
TEST(MetricsExportTest, ToStringPrintsEveryCounter) {
  const Metrics m;  // all zero: nothing may be elided
  const std::string s = m.ToString();
  EXPECT_NE(s.find("WA="), std::string::npos);  // engine_test.cc relies on it
#define SEPLSM_TEST_CHECK_PRINTED(name, help) \
  EXPECT_NE(s.find(#name "="), std::string::npos) << #name;
  SEPLSM_METRICS_COUNTERS(SEPLSM_TEST_CHECK_PRINTED)
#undef SEPLSM_TEST_CHECK_PRINTED
}

TEST(MetricsExportTest, ToStringShowsDistinctValues) {
  const Metrics m = DistinctMetrics(500);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("points_ingested=501"), std::string::npos) << s;
  EXPECT_NE(s.find("files_deferred_deleted=532"), std::string::npos) << s;
}

TEST(MetricsExportTest, ToJsonContainsEveryCounterAndDerived) {
  const Metrics m = DistinctMetrics(0);
  const std::string j = m.ToJson();
#define SEPLSM_TEST_CHECK_JSON(name, help) \
  EXPECT_NE(j.find("\"" #name "\":"), std::string::npos) << #name;
  SEPLSM_METRICS_COUNTERS(SEPLSM_TEST_CHECK_JSON)
#undef SEPLSM_TEST_CHECK_JSON
  EXPECT_NE(j.find("\"write_amplification\":"), std::string::npos);
  EXPECT_NE(j.find("\"read_amplification\":"), std::string::npos);
  EXPECT_NE(j.find("\"block_cache_hit_rate\":"), std::string::npos);
  EXPECT_NE(j.find("\"points_ingested\":1"), std::string::npos) << j;
}

TEST(MetricsExportTest, ToPrometheusEmitsLabeledCounters) {
  Metrics m;
  m.points_flushed = 42;
  const std::string p = m.ToPrometheus("engine.\"a\"");
#define SEPLSM_TEST_CHECK_PROM(name, help)                       \
  EXPECT_NE(p.find("seplsm_" #name "_total{series="), std::string::npos) \
      << #name;                                                  \
  EXPECT_NE(p.find("# TYPE seplsm_" #name "_total counter"),     \
            std::string::npos)                                   \
      << #name;
  SEPLSM_METRICS_COUNTERS(SEPLSM_TEST_CHECK_PROM)
#undef SEPLSM_TEST_CHECK_PROM
  // Label escaping: the embedded quotes in the series name are escaped.
  EXPECT_NE(p.find("seplsm_points_flushed_total{series=\"engine.\\\"a\\\"\"} "
                   "42"),
            std::string::npos)
      << p;
  // Derived gauges ride along.
  EXPECT_NE(p.find("seplsm_write_amplification{series="), std::string::npos);

  // Without a series the label set disappears entirely.
  const std::string bare = m.ToPrometheus();
  EXPECT_NE(bare.find("seplsm_points_flushed_total 42"), std::string::npos)
      << bare;
  EXPECT_EQ(bare.find("{series="), std::string::npos);
}

}  // namespace
}  // namespace seplsm::engine
