#include "engine/metrics.h"

#include <gtest/gtest.h>

namespace seplsm::engine {
namespace {

// One distinct value per counter so a transposed or dropped field in
// MergeFrom shows up as a wrong sum, not a coincidence.
Metrics DistinctMetrics(uint64_t base) {
  Metrics m;
  m.points_ingested = base + 1;
  m.points_flushed = base + 2;
  m.points_rewritten = base + 3;
  m.bytes_written = base + 4;
  m.flush_count = base + 5;
  m.merge_count = base + 6;
  m.files_created = base + 7;
  m.files_deleted = base + 8;
  m.wal_records = base + 9;
  m.wal_bytes = base + 10;
  m.wal_checkpoints = base + 11;
  m.compaction_bytes_read = base + 26;
  m.compaction_blocks_read = base + 27;
  m.queries = base + 12;
  m.points_returned = base + 13;
  m.disk_points_scanned = base + 14;
  m.query_files_opened = base + 15;
  m.query_device_bytes_read = base + 16;
  m.block_cache_hits = base + 17;
  m.block_cache_misses = base + 18;
  m.bg_flush_jobs = base + 19;
  m.bg_compaction_jobs = base + 20;
  m.bg_queue_wait_micros = base + 21;
  m.writer_stalls = base + 22;
  m.writer_stall_micros = base + 23;
  m.snapshots_acquired = base + 24;
  m.files_deferred_deleted = base + 25;
  return m;
}

constexpr size_t kCounterFields = 27;  // counters set by DistinctMetrics
constexpr size_t kVectorFields = 2;    // merge_events, wa_timeline

TEST(MetricsMergeTest, EveryFieldIsCovered) {
  // If this fails you added a field to Metrics: extend MergeFrom,
  // DistinctMetrics above, and EverySumIsCorrect below, then bump the
  // constants. This is what keeps a new counter from being silently
  // dropped by GetAggregateMetrics.
  EXPECT_EQ(sizeof(Metrics), kCounterFields * sizeof(uint64_t) +
                                 kVectorFields * sizeof(std::vector<uint64_t>))
      << "Metrics gained a field not covered by the MergeFrom test";
}

TEST(MetricsMergeTest, EverySumIsCorrect) {
  Metrics a = DistinctMetrics(100);
  Metrics b = DistinctMetrics(10000);
  a.MergeFrom(b);
  const Metrics expect_a = DistinctMetrics(100);
  const Metrics expect_b = DistinctMetrics(10000);
  EXPECT_EQ(a.points_ingested, expect_a.points_ingested + expect_b.points_ingested);
  EXPECT_EQ(a.points_flushed, expect_a.points_flushed + expect_b.points_flushed);
  EXPECT_EQ(a.points_rewritten, expect_a.points_rewritten + expect_b.points_rewritten);
  EXPECT_EQ(a.bytes_written, expect_a.bytes_written + expect_b.bytes_written);
  EXPECT_EQ(a.flush_count, expect_a.flush_count + expect_b.flush_count);
  EXPECT_EQ(a.merge_count, expect_a.merge_count + expect_b.merge_count);
  EXPECT_EQ(a.files_created, expect_a.files_created + expect_b.files_created);
  EXPECT_EQ(a.files_deleted, expect_a.files_deleted + expect_b.files_deleted);
  EXPECT_EQ(a.wal_records, expect_a.wal_records + expect_b.wal_records);
  EXPECT_EQ(a.wal_bytes, expect_a.wal_bytes + expect_b.wal_bytes);
  EXPECT_EQ(a.wal_checkpoints, expect_a.wal_checkpoints + expect_b.wal_checkpoints);
  EXPECT_EQ(a.compaction_bytes_read,
            expect_a.compaction_bytes_read + expect_b.compaction_bytes_read);
  EXPECT_EQ(a.compaction_blocks_read,
            expect_a.compaction_blocks_read + expect_b.compaction_blocks_read);
  EXPECT_EQ(a.queries, expect_a.queries + expect_b.queries);
  EXPECT_EQ(a.points_returned, expect_a.points_returned + expect_b.points_returned);
  EXPECT_EQ(a.disk_points_scanned,
            expect_a.disk_points_scanned + expect_b.disk_points_scanned);
  EXPECT_EQ(a.query_files_opened,
            expect_a.query_files_opened + expect_b.query_files_opened);
  EXPECT_EQ(a.query_device_bytes_read,
            expect_a.query_device_bytes_read + expect_b.query_device_bytes_read);
  EXPECT_EQ(a.block_cache_hits,
            expect_a.block_cache_hits + expect_b.block_cache_hits);
  EXPECT_EQ(a.block_cache_misses,
            expect_a.block_cache_misses + expect_b.block_cache_misses);
  EXPECT_EQ(a.bg_flush_jobs, expect_a.bg_flush_jobs + expect_b.bg_flush_jobs);
  EXPECT_EQ(a.bg_compaction_jobs,
            expect_a.bg_compaction_jobs + expect_b.bg_compaction_jobs);
  EXPECT_EQ(a.bg_queue_wait_micros,
            expect_a.bg_queue_wait_micros + expect_b.bg_queue_wait_micros);
  EXPECT_EQ(a.writer_stalls, expect_a.writer_stalls + expect_b.writer_stalls);
  EXPECT_EQ(a.writer_stall_micros,
            expect_a.writer_stall_micros + expect_b.writer_stall_micros);
  EXPECT_EQ(a.snapshots_acquired,
            expect_a.snapshots_acquired + expect_b.snapshots_acquired);
  EXPECT_EQ(a.files_deferred_deleted,
            expect_a.files_deferred_deleted + expect_b.files_deferred_deleted);
}

TEST(MetricsMergeTest, MergeIntoEmptyIsIdentityOnCounters) {
  Metrics total;
  Metrics b = DistinctMetrics(0);
  total.MergeFrom(b);
  EXPECT_EQ(total.points_ingested, b.points_ingested);
  EXPECT_EQ(total.files_deferred_deleted, b.files_deferred_deleted);
  EXPECT_EQ(total.WriteAmplification(), b.WriteAmplification());
}

TEST(MetricsMergeTest, EventVectorsAreConcatenatedInOrder) {
  Metrics a;
  MergeEvent e1;
  e1.buffered_points = 11;
  a.merge_events.push_back(e1);
  a.wa_timeline = {1, 2};

  Metrics b;
  MergeEvent e2;
  e2.buffered_points = 22;
  MergeEvent e3;
  e3.buffered_points = 33;
  b.merge_events = {e2, e3};
  b.wa_timeline = {3};

  a.MergeFrom(b);
  ASSERT_EQ(a.merge_events.size(), 3u);
  EXPECT_EQ(a.merge_events[0].buffered_points, 11u);
  EXPECT_EQ(a.merge_events[1].buffered_points, 22u);
  EXPECT_EQ(a.merge_events[2].buffered_points, 33u);
  EXPECT_EQ(a.wa_timeline, (std::vector<uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace seplsm::engine
