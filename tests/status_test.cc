#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace seplsm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::IOError("disk on fire").ok());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_EQ(s.message(), "bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, EmptyMessageToString) {
  EXPECT_EQ(Status::NotFound().ToString(), "Not found");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(StatusTest, CopyKeepsValue) {
  Status a = Status::Busy("locked");
  Status b = a;
  EXPECT_TRUE(b.IsBusy());
  EXPECT_EQ(b.message(), "locked");
}

Status FailsAtStep(int failing_step, int step) {
  if (step == failing_step) return Status::Aborted("step");
  return Status::OK();
}

Status RunSteps(int failing_step) {
  for (int i = 0; i < 3; ++i) {
    SEPLSM_RETURN_IF_ERROR(FailsAtStep(failing_step, i));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(RunSteps(-1).ok());
  EXPECT_TRUE(RunSteps(1).IsAborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::IOError("x");
  EXPECT_EQ(ok.value_or(9), 7);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace seplsm
