#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "stats/autocorrelation.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/online_stats.h"
#include "stats/quantile_sketch.h"
#include "stats/reservoir.h"
#include "stats/sliding_window.h"

namespace seplsm::stats {
namespace {

TEST(FixedHistogramTest, BinAssignment) {
  FixedHistogram h(0.0, 10.0, 10);
  h.Add(0.0);
  h.Add(0.5);
  h.Add(9.99);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(FixedHistogramTest, UnderOverflow) {
  FixedHistogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(10.0);
  h.Add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(FixedHistogramTest, QuantileUniformData) {
  FixedHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
}

TEST(FixedHistogramTest, MergeAddsCounts) {
  FixedHistogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.Add(1.0);
  b.Add(1.0);
  b.Add(9.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bin_count(1), 2u);
}

TEST(FixedHistogramTest, ClearResets) {
  FixedHistogram h(0.0, 1.0, 4);
  h.Add(0.5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bin_count(2), 0u);
}

TEST(FixedHistogramTest, AsciiRenderingMentionsCounts) {
  FixedHistogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(LogHistogramTest, TracksMinMeanMax) {
  LogHistogram h(1.0, 2.0);
  h.Add(1.0);
  h.Add(10.0);
  h.Add(100.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 37.0, 1e-9);
}

TEST(LogHistogramTest, QuantileRoughlyOrdered) {
  // min_value well below the data so the lower half is resolved by real
  // buckets rather than the single underflow bucket.
  LogHistogram h(0.01, 1.3);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(std::exp(rng.NextGaussian()));
  EXPECT_LT(h.Quantile(0.25), h.Quantile(0.75));
  // Median of lognormal(0,1) is 1.
  EXPECT_NEAR(std::log(h.Quantile(0.5)), 0.0, 0.3);
}

TEST(OnlineMomentsTest, MeanVarMinMax) {
  OnlineMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(OnlineMomentsTest, SinglePointVarianceZero) {
  OnlineMoments m;
  m.Add(3.0);
  EXPECT_EQ(m.variance(), 0.0);
}

TEST(ReservoirTest, KeepsAllUnderCapacity) {
  ReservoirSample r(10);
  for (int i = 0; i < 5; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 5u);
}

TEST(ReservoirTest, BoundedAboveCapacity) {
  ReservoirSample r(100);
  for (int i = 0; i < 100000; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 100u);
  EXPECT_EQ(r.seen(), 100000u);
}

TEST(ReservoirTest, SampleMeanApproximatesStreamMean) {
  ReservoirSample r(2000, 99);
  const int n = 200000;
  for (int i = 0; i < n; ++i) r.Add(i);
  double sum = 0.0;
  for (double x : r.sample()) sum += x;
  double mean = sum / static_cast<double>(r.sample().size());
  EXPECT_NEAR(mean, n / 2.0, n * 0.05);
}

TEST(EcdfTest, StepValues) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.Cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.Cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.Cdf(99.0), 1.0);
}

TEST(EcdfTest, QuantileInverseOfCdf) {
  Ecdf e({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(e.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(e.Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(e.Quantile(1.0), 40.0);
}

TEST(EcdfTest, MeanComputed) {
  Ecdf e({1.0, 3.0});
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
}

TEST(KsTest, IdenticalSamplesZeroDistance) {
  std::vector<double> s = {1, 2, 3, 4, 5};
  Ecdf a(s), b(s);
  EXPECT_DOUBLE_EQ(KsDistance(a, b), 0.0);
}

TEST(KsTest, DisjointSamplesDistanceOne) {
  Ecdf a({1, 2, 3});
  Ecdf b({10, 20, 30});
  EXPECT_DOUBLE_EQ(KsDistance(a, b), 1.0);
}

TEST(KsTest, SameDistributionBelowCritical) {
  Rng rng(4);
  std::vector<double> s1, s2;
  for (int i = 0; i < 2000; ++i) s1.push_back(rng.NextGaussian());
  for (int i = 0; i < 2000; ++i) s2.push_back(rng.NextGaussian());
  Ecdf a(std::move(s1)), b(std::move(s2));
  EXPECT_LT(KsDistance(a, b), KsCriticalValue(2000, 2000, 0.01));
}

TEST(KsTest, ShiftedDistributionAboveCritical) {
  Rng rng(4);
  std::vector<double> s1, s2;
  for (int i = 0; i < 2000; ++i) s1.push_back(rng.NextGaussian());
  for (int i = 0; i < 2000; ++i) s2.push_back(rng.NextGaussian() + 0.5);
  Ecdf a(std::move(s1)), b(std::move(s2));
  EXPECT_GT(KsDistance(a, b), KsCriticalValue(2000, 2000, 0.05));
}

TEST(AutocorrTest, IidNearZero) {
  Rng rng(8);
  std::vector<double> s;
  for (int i = 0; i < 5000; ++i) s.push_back(rng.NextGaussian());
  auto r = Autocorrelation(s, 10);
  ASSERT_EQ(r.acf.size(), 11u);
  EXPECT_DOUBLE_EQ(r.acf[0], 1.0);
  for (size_t k = 1; k <= 10; ++k) {
    EXPECT_LT(std::fabs(r.acf[k]), 3.0 * r.conf_bound) << "lag " << k;
  }
}

TEST(AutocorrTest, Ar1StronglyPositive) {
  Rng rng(8);
  std::vector<double> s;
  double x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    x = 0.9 * x + rng.NextGaussian();
    s.push_back(x);
  }
  auto r = Autocorrelation(s, 5);
  EXPECT_GT(r.acf[1], 0.8);
  EXPECT_GT(r.acf[1], r.acf[5]);
}

TEST(AutocorrTest, ConstantSeriesEmpty) {
  std::vector<double> s(100, 3.0);
  auto r = Autocorrelation(s, 10);
  EXPECT_TRUE(r.acf.empty());
}

TEST(AutocorrTest, ConfidenceBoundFormula) {
  std::vector<double> s = {1, 2, 1, 2, 1, 2, 1, 2, 1};
  auto r = Autocorrelation(s, 2);
  EXPECT_NEAR(r.conf_bound, 1.96 / 3.0, 1e-12);
}

TEST(P2QuantileTest, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.Add(10.0);
  EXPECT_DOUBLE_EQ(q.Value(), 10.0);
  q.Add(30.0);
  q.Add(20.0);
  EXPECT_DOUBLE_EQ(q.Value(), 20.0);  // exact median of {10,20,30}
}

TEST(P2QuantileTest, MedianOfUniformStream) {
  P2Quantile q(0.5);
  Rng rng(21);
  for (int i = 0; i < 100000; ++i) q.Add(rng.NextDouble() * 1000.0);
  EXPECT_NEAR(q.Value(), 500.0, 25.0);
}

TEST(P2QuantileTest, TailQuantileOfExponential) {
  P2Quantile q(0.99);
  Rng rng(22);
  for (int i = 0; i < 200000; ++i) q.Add(rng.NextExponential(1.0 / 100.0));
  // p99 of Exp(mean 100) = -100 ln(0.01) ~= 460.5.
  EXPECT_NEAR(q.Value(), 460.5, 50.0);
}

TEST(P2QuantileTest, MonotoneUnderSortedInput) {
  P2Quantile q(0.9);
  for (int i = 1; i <= 10000; ++i) q.Add(static_cast<double>(i));
  EXPECT_NEAR(q.Value(), 9000.0, 300.0);
}

TEST(P2QuantileTest, EmptyIsZero) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.Value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(SlidingWindowTest, MeanOverWindow) {
  SlidingWindowMean w(3);
  w.Add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  w.Add(6.0);
  w.Add(9.0);
  EXPECT_DOUBLE_EQ(w.mean(), 6.0);
  w.Add(12.0);  // evicts 3
  EXPECT_DOUBLE_EQ(w.mean(), 9.0);
  EXPECT_TRUE(w.full());
}

TEST(SlidingWindowTest, ClearEmpties) {
  SlidingWindowMean w(2);
  w.Add(1.0);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

}  // namespace
}  // namespace seplsm::stats
