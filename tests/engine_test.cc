#include "engine/ts_engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "env/fault_env.h"
#include "env/mem_env.h"

namespace seplsm::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options o;
    o.env = &env_;
    o.dir = "/db";
    o.sstable_points = 16;
    o.points_per_block = 8;
    return o;
  }

  std::unique_ptr<TsEngine> MustOpen(Options o) {
    auto e = TsEngine::Open(std::move(o));
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  static DataPoint P(int64_t tg, int64_t ta = -1, double v = 0.0) {
    return {tg, ta < 0 ? tg : ta, v};
  }

  MemEnv env_;
};

TEST_F(EngineTest, OpenRequiresDir) {
  Options o = BaseOptions();
  o.dir.clear();
  EXPECT_FALSE(TsEngine::Open(o).ok());
}

TEST_F(EngineTest, OpenValidatesSeparationCapacities) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(16, 16);  // nseq == n
  EXPECT_FALSE(TsEngine::Open(o).ok());
  o.policy = PolicyConfig::Separation(16, 0);
  EXPECT_FALSE(TsEngine::Open(o).ok());
  o.policy = PolicyConfig::Separation(16, 8);
  EXPECT_TRUE(TsEngine::Open(o).ok());
}

TEST_F(EngineTest, InOrderIngestConventional) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 64; ++t) {
    ASSERT_TRUE(db->Append(P(t * 10)).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.points_ingested, 64u);
  EXPECT_EQ(m.points_flushed, 64u);
  // Fully ordered data never rewrites anything: WA == 1.
  EXPECT_EQ(m.points_rewritten, 0u);
  EXPECT_DOUBLE_EQ(m.WriteAmplification(), 1.0);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, QueryReturnsAllPoints) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 100; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 99, &out).ok());
  ASSERT_EQ(out.size(), 100u);
  for (int64_t t = 0; t < 100; ++t) EXPECT_EQ(out[t].generation_time, t);
}

TEST_F(EngineTest, QueryRangeSubset) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 100; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(40, 49, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().generation_time, 40);
  EXPECT_EQ(out.back().generation_time, 49);
}

TEST_F(EngineTest, QueryBadRangeRejected) {
  auto db = MustOpen(BaseOptions());
  std::vector<DataPoint> out;
  EXPECT_TRUE(db->Query(10, 5, &out).IsInvalidArgument());
}

TEST_F(EngineTest, UpsertNewestWins) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o);
  // First version goes to disk.
  for (int64_t t = 0; t < 8; ++t) ASSERT_TRUE(db->Append(P(t, t, 1.0)).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  // Rewrite key 3 with a new value (arrives out of order).
  ASSERT_TRUE(db->Append(P(3, 100, 42.0)).ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(3, 3, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 42.0);
  // Also after the overwrite is compacted to disk.
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->Query(3, 3, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 42.0);
}

TEST_F(EngineTest, OutOfOrderTriggersRewrite) {
  Options o = BaseOptions();
  o.num_levels = 2;  // rewrite accounting assumes the seed tree
  o.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o);
  // Fill disk with 0..15.
  for (int64_t t = 0; t < 16; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  // Now one stale point plus fresh ones: merging rewrites the overlap.
  ASSERT_TRUE(db->Append(P(2, 100)).ok());
  for (int64_t t = 16; t < 19; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  Metrics m = db->GetMetrics();
  EXPECT_GT(m.points_rewritten, 0u);
  EXPECT_GT(m.WriteAmplification(), 1.0);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, SeparationFlushDoesNotRewrite) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(8, 4);
  auto db = MustOpen(o);
  // Pure in-order load: only C_seq flushes, zero rewrites.
  for (int64_t t = 0; t < 64; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.points_rewritten, 0u);
  EXPECT_EQ(m.merge_count, 0u);
  EXPECT_GT(m.flush_count, 0u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, SeparationClassifiesAgainstDisk) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(8, 4);
  auto db = MustOpen(o);
  // Persist 0..39 via C_seq flushes (capacity 4 -> flush at 4,8,...).
  for (int64_t t = 0; t < 40; ++t) ASSERT_TRUE(db->Append(P(t * 10)).ok());
  EXPECT_GT(db->MaxPersistedGenerationTime(), 0);
  int64_t last = db->MaxPersistedGenerationTime();
  // A point below LAST(R) must land in C_nonseq: no flush yet (capacity 4),
  // and the run must not change.
  size_t files_before = db->RunFileCount();
  ASSERT_TRUE(db->Append(P(last - 5, last + 1000)).ok());
  EXPECT_EQ(db->RunFileCount(), files_before);
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.merge_count, 0u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, SeparationNonseqFullTriggersMerge) {
  Options o = BaseOptions();
  o.num_levels = 2;  // merge accounting assumes the seed tree
  o.policy = PolicyConfig::Separation(8, 6);  // C_nonseq capacity 2
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 60; ++t) ASSERT_TRUE(db->Append(P(t * 10)).ok());
  int64_t last = db->MaxPersistedGenerationTime();
  ASSERT_GT(last, 100);
  ASSERT_TRUE(db->Append(P(last - 15, last + 1)).ok());
  ASSERT_TRUE(db->Append(P(last - 25, last + 2)).ok());  // fills C_nonseq
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.merge_count, 1u);
  EXPECT_GT(m.points_rewritten, 0u);
  ASSERT_EQ(m.merge_events.size(), 1u);
  EXPECT_EQ(m.merge_events[0].buffered_points, 2u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, FlushAllDrainsEverything) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(8, 4);
  auto db = MustOpen(o);
  ASSERT_TRUE(db->Append(P(100)).ok());
  ASSERT_TRUE(db->Append(P(50, 200)).ok());  // below nothing persisted yet
  ASSERT_TRUE(db->FlushAll().ok());
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.points_flushed, 2u);
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 1000, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(EngineTest, MaxSeenVsMaxPersisted) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  auto db = MustOpen(o);
  EXPECT_EQ(db->MaxPersistedGenerationTime(),
            std::numeric_limits<int64_t>::min());
  ASSERT_TRUE(db->Append(P(500)).ok());
  EXPECT_EQ(db->MaxSeenGenerationTime(), 500);
  EXPECT_EQ(db->MaxPersistedGenerationTime(),
            std::numeric_limits<int64_t>::min());
  ASSERT_TRUE(db->FlushAll().ok());
  EXPECT_EQ(db->MaxPersistedGenerationTime(), 500);
}

TEST_F(EngineTest, SwitchPolicyPreservesData) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 20; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  ASSERT_TRUE(db->SwitchPolicy(PolicyConfig::Separation(8, 4)).ok());
  for (int64_t t = 20; t < 40; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  ASSERT_TRUE(db->SwitchPolicy(PolicyConfig::Conventional(8)).ok());
  for (int64_t t = 40; t < 60; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 59, &out).ok());
  EXPECT_EQ(out.size(), 60u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, SwitchPolicyValidatesConfig) {
  auto db = MustOpen(BaseOptions());
  EXPECT_TRUE(db->SwitchPolicy(PolicyConfig::Separation(8, 8))
                  .IsInvalidArgument());
  EXPECT_TRUE(
      db->SwitchPolicy(PolicyConfig{PolicyKind::kConventional, 0, 0})
          .IsInvalidArgument());
}

TEST_F(EngineTest, ReopenRecoversData) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(4);
  {
    auto db = MustOpen(o);
    for (int64_t t = 0; t < 30; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
    ASSERT_TRUE(db->FlushAll().ok());
  }
  auto db = MustOpen(o);
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 29, &out).ok());
  EXPECT_EQ(out.size(), 30u);
  EXPECT_EQ(db->MaxPersistedGenerationTime(), 29);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, ReopenContinuesFileNumbers) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(4);
  {
    auto db = MustOpen(o);
    for (int64_t t = 0; t < 8; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  }
  auto db = MustOpen(o);
  for (int64_t t = 8; t < 16; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 15, &out).ok());
  EXPECT_EQ(out.size(), 16u);
}

TEST_F(EngineTest, SSTableSizeRespected) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(64);
  o.sstable_points = 16;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 64; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  // 64 points in files of <= 16 points: at least 4 files.
  EXPECT_GE(db->RunFileCount(), 4u);
}

TEST_F(EngineTest, QueryStatsReadAmplification) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(16);
  o.sstable_points = 16;
  o.points_per_block = 4;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 64; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  QueryStats qs;
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(20, 23, &out, &qs).ok());
  EXPECT_EQ(qs.points_returned, 4u);
  EXPECT_GE(qs.disk_points_scanned, 4u);
  EXPECT_GE(qs.ReadAmplification(), 1.0);
  EXPECT_EQ(qs.files_opened, 1u);
}

TEST_F(EngineTest, BackgroundModeIngestAndQuery) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  o.background_mode = true;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 200; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  EXPECT_EQ(db->Level0FileCount(), 0u);
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 199, &out).ok());
  EXPECT_EQ(out.size(), 200u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, BackgroundModeOutOfOrder) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(8, 4);
  o.background_mode = true;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 100; ++t) ASSERT_TRUE(db->Append(P(t * 10)).ok());
  // Inject stale points.
  for (int64_t t = 0; t < 8; ++t) {
    ASSERT_TRUE(db->Append(P(t * 10 + 5, 100000 + t)).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 100000, &out).ok());
  EXPECT_EQ(out.size(), 108u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineTest, FaultDuringMergeSurfacesStatus) {
  FaultInjectionEnv fault_env(&env_);
  Options o = BaseOptions();
  o.env = &fault_env;
  o.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 8; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  fault_env.SetFailAfterOps(0);  // everything fails now
  Status st;
  // The 4th point triggers a merge which must fail, not crash.
  for (int64_t t = 8; t < 13 && st.ok(); ++t) st = db->Append(P(t));
  EXPECT_TRUE(st.IsIOError());
  fault_env.SetFailAfterOps(-1);
  // Engine remains usable after the fault clears.
  ASSERT_TRUE(db->Append(P(100)).ok());
  std::vector<DataPoint> out;
  EXPECT_TRUE(db->Query(0, 200, &out).ok());
}

TEST_F(EngineTest, WaTimelineRecorded) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  o.record_wa_timeline = true;
  o.wa_timeline_batch = 16;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 64; ++t) ASSERT_TRUE(db->Append(P(t)).ok());
  Metrics m = db->GetMetrics();
  ASSERT_EQ(m.wa_timeline.size(), 4u);
  // Cumulative counters are non-decreasing.
  for (size_t i = 1; i < m.wa_timeline.size(); ++i) {
    EXPECT_GE(m.wa_timeline[i], m.wa_timeline[i - 1]);
  }
}

TEST_F(EngineTest, MetricsToStringMentionsWa) {
  auto db = MustOpen(BaseOptions());
  ASSERT_TRUE(db->Append(P(1)).ok());
  EXPECT_NE(db->GetMetrics().ToString().find("WA="), std::string::npos);
}

TEST_F(EngineTest, PolicyConfigToString) {
  EXPECT_EQ(PolicyConfig::Conventional(512).ToString(), "pi_c(n=512)");
  EXPECT_EQ(PolicyConfig::Separation(512, 128).ToString(),
            "pi_s(n=512, n_seq=128, n_nonseq=384)");
}

}  // namespace
}  // namespace seplsm::engine
