// Query EXPLAIN (DESIGN.md §15): the decision trace is purely
// observational. Two invariants carry the whole feature:
//
//  1. Equivalence — answers with an explain attached are bit-identical to
//     answers without one, across fuzzed ranges and all three read APIs.
//  2. Completeness — the explain's aggregate counters equal the
//     PruningStats the same query reports, so no pruning decision escapes
//     the trace.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/multi_series_db.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "storage/query_explain.h"

namespace seplsm::engine {
namespace {

double Reading(int64_t t) { return std::sin(t * 0.017) * 25.0 + (t % 13); }

Options BaseOptions(Env* env, const std::string& dir) {
  Options o;
  o.env = env;
  o.dir = dir;
  o.num_levels = 2;  // pin: accounting-sensitive assertions below
  o.policy = PolicyConfig::Separation(256, 128);
  o.sstable_points = 256;
  o.points_per_block = 32;
  o.summary_window = 64;
  return o;
}

/// A mildly disordered stream with a buffered tail, so queries cross
/// flushed files, level-0 stragglers, and the memtable.
std::vector<DataPoint> MakeTrace(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<DataPoint> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t t = static_cast<int64_t>(i);
    int64_t delay =
        (rng.UniformU64(10) == 0) ? rng.UniformInt(0, 39) : 0;
    int64_t tg = t > delay ? t - delay : t;
    trace.push_back({tg, t, Reading(tg)});
  }
  return trace;
}

class ExplainEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = TsEngine::Open(BaseOptions(&env_, "/db"));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    auto trace = MakeTrace(6000, 42);
    ASSERT_TRUE(db_->AppendBatch(trace.data(), trace.size()).ok());
    // Leave the last chunk buffered: the memtable path must also be
    // equivalence-covered (RecordMemtableScan).
  }

  MemEnv env_;
  std::unique_ptr<TsEngine> db_;
};

TEST_F(ExplainEquivalenceTest, FuzzedQueriesBitIdentical) {
  Rng rng(7);
  const int64_t max_t = 6000;
  for (int i = 0; i < 60; ++i) {
    int64_t lo = rng.UniformInt(0, max_t - 1);
    int64_t hi = rng.UniformInt(lo, max_t);

    std::vector<DataPoint> plain;
    ASSERT_TRUE(db_->Query(lo, hi, &plain).ok());

    storage::QueryExplain explain;
    QueryStats stats;
    stats.explain = &explain;
    std::vector<DataPoint> traced;
    ASSERT_TRUE(db_->Query(lo, hi, &traced, &stats).ok());

    ASSERT_EQ(plain.size(), traced.size()) << "range [" << lo << "," << hi
                                           << "]";
    for (size_t k = 0; k < plain.size(); ++k) {
      EXPECT_EQ(plain[k], traced[k]);
    }
  }
}

TEST_F(ExplainEquivalenceTest, FuzzedAggregatesBitIdentical) {
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    int64_t lo = rng.UniformInt(0, 5999);
    int64_t hi = rng.UniformInt(lo, 6000);

    Aggregates plain;
    ASSERT_TRUE(db_->Aggregate(lo, hi, &plain).ok());

    storage::QueryExplain explain;
    QueryStats stats;
    stats.explain = &explain;
    Aggregates traced;
    ASSERT_TRUE(db_->Aggregate(lo, hi, &traced, &stats).ok());

    EXPECT_EQ(plain.count, traced.count);
    EXPECT_EQ(plain.sum, traced.sum);  // bitwise: same code path, same order
    EXPECT_EQ(plain.min, traced.min);
    EXPECT_EQ(plain.max, traced.max);
    EXPECT_EQ(plain.first_time, traced.first_time);
    EXPECT_EQ(plain.last_time, traced.last_time);
  }
}

TEST_F(ExplainEquivalenceTest, FuzzedDownsamplesBitIdentical) {
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    int64_t lo = rng.UniformInt(0, 5999);
    int64_t hi = rng.UniformInt(lo, 6000);
    int64_t bucket = rng.UniformInt(1, 300);

    std::vector<TimeBucket> plain;
    ASSERT_TRUE(db_->Downsample(lo, hi, bucket, &plain).ok());

    storage::QueryExplain explain;
    QueryStats stats;
    stats.explain = &explain;
    std::vector<TimeBucket> traced;
    ASSERT_TRUE(db_->Downsample(lo, hi, bucket, &traced, &stats).ok());

    ASSERT_EQ(plain.size(), traced.size());
    for (size_t k = 0; k < plain.size(); ++k) {
      EXPECT_EQ(plain[k].bucket_start, traced[k].bucket_start);
      EXPECT_EQ(plain[k].aggregates.count, traced[k].aggregates.count);
      EXPECT_EQ(plain[k].aggregates.sum, traced[k].aggregates.sum);
      EXPECT_EQ(plain[k].aggregates.min, traced[k].aggregates.min);
      EXPECT_EQ(plain[k].aggregates.max, traced[k].aggregates.max);
    }
  }
}

TEST_F(ExplainEquivalenceTest, AggregatesMatchPruningStats) {
  // The completeness invariant: explain totals == the PruningStats of the
  // very same query, for every fuzzed range and both read shapes.
  Rng rng(17);
  bool saw_file_skip = false, saw_summary = false;
  for (int i = 0; i < 60; ++i) {
    int64_t lo = rng.UniformInt(0, 5999);
    int64_t hi = rng.UniformInt(lo, 6000);

    storage::QueryExplain explain;
    QueryStats stats;
    stats.explain = &explain;
    if (i % 2 == 0) {
      std::vector<DataPoint> out;
      ASSERT_TRUE(db_->Query(lo, hi, &out, &stats).ok());
    } else {
      Aggregates agg;
      ASSERT_TRUE(db_->Aggregate(lo, hi, &agg, &stats).ok());
    }
    EXPECT_EQ(explain.files_skipped(), stats.pruning.files_skipped);
    EXPECT_EQ(explain.blocks_skipped(), stats.pruning.blocks_skipped);
    EXPECT_EQ(explain.blooms_negative(), stats.pruning.blooms_negative);
    EXPECT_EQ(explain.summary_hits(), stats.pruning.summary_hits);
    saw_file_skip = saw_file_skip || explain.files_skipped() > 0;
    saw_summary = saw_summary || explain.summary_hits() > 0;
  }
  // The workload must actually exercise the pruning paths, or the
  // equalities above are vacuous.
  EXPECT_TRUE(saw_file_skip);
  EXPECT_TRUE(saw_summary);
}

TEST_F(ExplainEquivalenceTest, EventBoundKeepsTotals) {
  storage::QueryExplain small(/*max_events=*/4);
  QueryStats stats;
  stats.explain = &small;
  std::vector<DataPoint> out;
  ASSERT_TRUE(db_->Query(0, 6000, &out, &stats).ok());
  EXPECT_LE(small.events().size(), 4u);
  EXPECT_GT(small.dropped_events(), 0u);
  // Aggregates keep counting past the bound.
  EXPECT_EQ(small.files_skipped(), stats.pruning.files_skipped);
  EXPECT_EQ(small.blocks_skipped(), stats.pruning.blocks_skipped);
  EXPECT_GT(small.files_opened(), 4u);

  small.Clear();
  EXPECT_TRUE(small.events().empty());
  EXPECT_EQ(small.dropped_events(), 0u);
  EXPECT_EQ(small.files_opened(), 0u);
}

TEST_F(ExplainEquivalenceTest, JsonAndTextRenderEvents) {
  storage::QueryExplain explain;
  QueryStats stats;
  stats.explain = &explain;
  Aggregates agg;
  ASSERT_TRUE(db_->Aggregate(100, 2000, &agg, &stats).ok());
  ASSERT_FALSE(explain.events().empty());
  std::string json = explain.ToJson();
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_FALSE(explain.ToText().empty());
}

TEST(ExplainBloomTest, SeriesBloomRejectionIsTraced) {
  MemEnv env;
  MultiSeriesDB::MultiOptions mopts;
  mopts.base = BaseOptions(&env, "/multi");
  mopts.series_bloom = true;
  auto db = MultiSeriesDB::Open(std::move(mopts));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Append("exists", {1, 1, 1.0}).ok());

  storage::QueryExplain explain;
  QueryStats stats;
  stats.explain = &explain;
  std::vector<DataPoint> out;
  Status st = (*db)->Query("never-written", 0, 10, &out, &stats);
  EXPECT_TRUE(st.IsNotFound());
  // The bloom-negative path resets *stats; the explain attachment and its
  // event must survive that reset.
  EXPECT_EQ(stats.explain, &explain);
  EXPECT_EQ(stats.pruning.blooms_negative, 1u);
  EXPECT_EQ(explain.blooms_negative(), 1u);
  ASSERT_EQ(explain.events().size(), 1u);
  EXPECT_EQ(explain.events()[0].kind,
            storage::QueryExplain::EventKind::kBloomNegative);
  EXPECT_EQ(explain.events()[0].detail, "never-written");
}

}  // namespace
}  // namespace seplsm::engine
