// Property sweeps over the WA models across every Table II configuration:
// finiteness, lower bounds, directional monotonicity, numeric-option
// robustness of ζ, and simulator-vs-model coherence at scale.

#include <gtest/gtest.h>

#include <cmath>

#include "dist/parametric.h"
#include "model/subsequent_model.h"
#include "model/tuner.h"
#include "model/wa_model.h"
#include "model/wa_simulator.h"
#include "workload/datasets.h"

namespace seplsm::model {
namespace {

class TableIIModelTest
    : public ::testing::TestWithParam<workload::TableIIConfig> {};

TEST_P(TableIIModelTest, PredictionsWellFormed) {
  const auto& config = GetParam();
  auto delay = workload::MakeTableIIDistribution(config);
  WaModel model(*delay, config.delta_t);
  double rc = model.ConventionalWa(512);
  EXPECT_TRUE(std::isfinite(rc));
  EXPECT_GE(rc, 1.0);
  for (size_t nseq : {64u, 256u, 448u}) {
    double rs = model.SeparationWa(512, nseq);
    EXPECT_TRUE(std::isfinite(rs)) << "nseq=" << nseq;
    EXPECT_GE(rs, 1.0);
    // A phase writes every arrival at least once and at most ~twice plus
    // the pre-phase rewrites; sanity-cap against runaway estimates.
    EXPECT_LT(rs, 1000.0);
  }
}

TEST_P(TableIIModelTest, ZetaRobustToQuadratureOptions) {
  const auto& config = GetParam();
  auto delay = workload::MakeTableIIDistribution(config);
  SubsequentModelOptions coarse;
  coarse.quad_segments = 12;
  coarse.quad_points = 6;
  SubsequentModelOptions fine;
  fine.quad_segments = 24;
  fine.quad_points = 12;
  SubsequentModel a(*delay, config.delta_t, coarse);
  SubsequentModel b(*delay, config.delta_t, fine);
  double za = a.Estimate(256);
  double zb = b.Estimate(256);
  // Quadrature resolution shifts the estimate a little; it must stay in a
  // band far narrower than the model-vs-measurement tolerance.
  EXPECT_NEAR(za / std::max(zb, 1e-9), 1.0, 0.25)
      << "coarse=" << za << " fine=" << zb;
}

TEST_P(TableIIModelTest, ZetaRobustToTailSwitch) {
  const auto& config = GetParam();
  auto delay = workload::MakeTableIIDistribution(config);
  SubsequentModelOptions eager;
  eager.tail_switch = 0.05;  // hand off to the union bound earlier
  SubsequentModelOptions patient;
  patient.tail_switch = 0.005;
  SubsequentModel a(*delay, config.delta_t, eager);
  SubsequentModel b(*delay, config.delta_t, patient);
  double za = a.Estimate(128);
  double zb = b.Estimate(128);
  EXPECT_NEAR(za / std::max(zb, 1e-9), 1.0, 0.15);
}

TEST_P(TableIIModelTest, SimulatorAgreesWithModelRanking) {
  // At 200k points the simulator is the ground truth the models must rank
  // correctly whenever the predicted gap is decisive (>25%). This is the
  // granularity-aware model's job — the paper-form model knowingly
  // under-prices whole-SSTable rewrites on mildly disordered data.
  const auto& config = GetParam();
  auto delay = workload::MakeTableIIDistribution(config);
  WaModel model(*delay, config.delta_t);
  model.set_granularity_sstable_points(512);
  double rc = model.ConventionalWa(512);
  double rs = model.SeparationWa(512, 256);

  auto points = workload::GenerateTableII(config, 200'000);
  WaSimulator sim_c(engine::PolicyConfig::Conventional(512), 512);
  sim_c.AppendStream(points);
  WaSimulator sim_s(engine::PolicyConfig::Separation(512, 256), 512);
  sim_s.AppendStream(points);
  double wa_c = sim_c.result().WriteAmplification();
  double wa_s = sim_s.result().WriteAmplification();

  if (rs < rc / 1.25) {
    EXPECT_LT(wa_s, wa_c) << config.name << ": model says pi_s decisively";
  } else if (rc < rs / 1.25) {
    EXPECT_LT(wa_c, wa_s) << config.name << ": model says pi_c decisively";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, TableIIModelTest,
                         ::testing::ValuesIn(workload::TableII()),
                         [](const auto& info) { return info.param.name; });

TEST(ModelScalePropertyTest, SimulatedWaStableAcrossScale) {
  // WA is a ratio: doubling the stream length must not move it much once
  // past warm-up.
  auto config = workload::TableIIByName("M5");
  auto delay = workload::MakeTableIIDistribution(config);
  double wa[2];
  size_t sizes[2] = {150'000, 300'000};
  for (int i = 0; i < 2; ++i) {
    auto points = workload::GenerateTableII(config, sizes[i], /*seed=*/3);
    WaSimulator sim(engine::PolicyConfig::Conventional(512), 512);
    sim.AppendStream(points);
    wa[i] = sim.result().WriteAmplification();
  }
  EXPECT_NEAR(wa[0] / wa[1], 1.0, 0.12) << wa[0] << " vs " << wa[1];
}

TEST(ModelScalePropertyTest, GranularityCorrectionShrinksWithScale) {
  // As ζ per merge grows (heavier disorder), the granularity correction
  // must monotonically lose influence.
  double previous_gap = 1e9;
  for (double sigma : {1.0, 1.5, 2.0}) {
    dist::LognormalDistribution d(5.0, sigma);
    WaModel plain(d, 50.0);
    WaModel corrected(d, 50.0);
    corrected.set_granularity_sstable_points(512);
    double gap = corrected.ConventionalWa(512) - plain.ConventionalWa(512);
    EXPECT_LE(gap, previous_gap + 1e-9) << "sigma=" << sigma;
    previous_gap = gap;
  }
}

}  // namespace
}  // namespace seplsm::model
