#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "stats/histogram.h"
#include "telemetry/trace_export.h"
#include "telemetry/trace_recorder.h"

namespace seplsm::telemetry {
namespace {

TraceEvent MakeEvent(SpanType type, uint32_t series, int64_t start,
                     int64_t end) {
  TraceEvent e;
  e.type = type;
  e.series_id = series;
  e.start_nanos = start;
  e.end_nanos = end;
  return e;
}

// --- TraceRecorder -------------------------------------------------------

TEST(TraceRecorderTest, RingWraparoundKeepsNewestEvents) {
  // One shard makes eviction order deterministic: the ring holds exactly
  // the last `capacity` events.
  TraceRecorder recorder(/*capacity=*/8, /*num_shards=*/1);
  for (int64_t i = 0; i < 20; ++i) {
    recorder.Record(MakeEvent(SpanType::kFlush, 1, i, i + 1));
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_nanos, static_cast<int64_t>(12 + i));
  }
}

TEST(TraceRecorderTest, SnapshotSortsAcrossShards) {
  TraceRecorder recorder(/*capacity=*/64, /*num_shards=*/4);
  // All records from this thread land in one shard, but Snapshot must sort
  // by (start_nanos, seq) regardless of shard layout.
  for (int64_t i = 10; i > 0; --i) {
    recorder.Record(MakeEvent(SpanType::kQuery, 1, i * 100, i * 100 + 1));
  }
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_nanos, events[i].start_nanos);
  }
}

TEST(TraceRecorderTest, DisabledRecorderRetainsNothing) {
  TraceRecorder recorder(/*capacity=*/8, /*num_shards=*/1);
  recorder.set_enabled(false);
  recorder.Record(MakeEvent(SpanType::kFlush, 1, 0, 1));
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceRecorderTest, ConcurrentRecordingLosesNoCounts) {
  // 8 writer threads hammer the sharded ring while a reader snapshots;
  // run under TSan this is the data-race check for the recorder.
  TraceRecorder recorder(/*capacity=*/1024, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)recorder.Snapshot();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(
            MakeEvent(SpanType::kAppend, static_cast<uint32_t>(t), i, i + 1));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.recorded(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.dropped() + recorder.Snapshot().size(),
            recorder.recorded());
}

// --- Telemetry + ScopedSpan ----------------------------------------------

TEST(TelemetryTest, SeriesRegistrationIsIdempotent) {
  Telemetry telemetry;
  uint32_t a = telemetry.RegisterSeries("cpu.load");
  uint32_t b = telemetry.RegisterSeries("mem.used");
  EXPECT_NE(a, b);
  EXPECT_EQ(telemetry.RegisterSeries("cpu.load"), a);
  EXPECT_EQ(telemetry.SeriesName(a), "cpu.load");
  EXPECT_EQ(telemetry.SeriesName(0), "");
  EXPECT_EQ(telemetry.SeriesName(999), "");
}

TEST(TelemetryTest, NestedScopedSpansRecordProperIntervals) {
  TelemetryOptions topts;
  topts.trace_enabled = true;
  topts.trace_shards = 1;
  Telemetry telemetry(topts);
  ManualClock clock(1000);
  uint32_t id = telemetry.RegisterSeries("s");

  {
    ScopedSpan outer(&telemetry, &clock, SpanType::kCompaction, id);
    clock.AdvanceNanos(100);
    {
      ScopedSpan inner(&telemetry, &clock, SpanType::kFlush, id);
      inner.set_points(7);
      clock.AdvanceNanos(50);
    }  // inner finishes at 1150
    clock.AdvanceNanos(100);
  }  // outer finishes at 1250

  std::vector<TraceEvent> events = telemetry.tracer().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer first (it started earlier).
  EXPECT_EQ(events[0].type, SpanType::kCompaction);
  EXPECT_EQ(events[0].start_nanos, 1000);
  EXPECT_EQ(events[0].end_nanos, 1250);
  EXPECT_EQ(events[1].type, SpanType::kFlush);
  EXPECT_EQ(events[1].start_nanos, 1100);
  EXPECT_EQ(events[1].end_nanos, 1150);
  EXPECT_EQ(events[1].points, 7u);
  // The inner interval nests strictly inside the outer one.
  EXPECT_GE(events[1].start_nanos, events[0].start_nanos);
  EXPECT_LE(events[1].end_nanos, events[0].end_nanos);
  // Both latencies reached the registry.
  EXPECT_EQ(telemetry.registry().Summary(SpanType::kCompaction).count, 1u);
  EXPECT_EQ(telemetry.registry().Summary(SpanType::kFlush).count, 1u);
}

TEST(TelemetryTest, FinishIsIdempotent) {
  TelemetryOptions topts;
  topts.trace_enabled = true;
  Telemetry telemetry(topts);
  ManualClock clock(0);
  ScopedSpan span(&telemetry, &clock, SpanType::kQuery, 0);
  clock.AdvanceNanos(10);
  span.Finish();
  span.Finish();  // destructor will be the third call
  EXPECT_EQ(telemetry.tracer().recorded(), 1u);
}

TEST(TelemetryTest, NullTelemetryCostsNothing) {
  // The disabled/zero-overhead contract: Active(nullptr) is false and a
  // ScopedSpan over a null hub never touches the clock.
  EXPECT_FALSE(Active(nullptr));
  ScopedSpan span(nullptr, nullptr, SpanType::kAppend, 0);
  span.set_points(1);
  span.Finish();  // must not dereference the null clock
}

// --- Golden exports -------------------------------------------------------

TEST(TraceExportTest, JsonlGolden) {
  TelemetryOptions topts;
  topts.trace_enabled = true;
  topts.trace_shards = 1;
  Telemetry telemetry(topts);
  uint32_t id = telemetry.RegisterSeries("cpu");
  TraceEvent e = MakeEvent(SpanType::kFlush, id, 2000, 5000);
  e.points = 256;
  e.bytes = 4096;
  telemetry.tracer().Record(e);

  EXPECT_EQ(ToJsonl(telemetry.tracer().Snapshot(), &telemetry),
            "{\"type\":\"flush\",\"series\":\"cpu\",\"start_nanos\":2000,"
            "\"end_nanos\":5000,\"duration_nanos\":3000,\"points\":256,"
            "\"bytes\":4096}\n");
}

TEST(TraceExportTest, ChromeTraceGolden) {
  TelemetryOptions topts;
  topts.trace_enabled = true;
  topts.trace_shards = 1;
  Telemetry telemetry(topts);
  uint32_t id = telemetry.RegisterSeries("cpu");
  TraceEvent e = MakeEvent(SpanType::kCompaction, id, 1500, 4000);
  e.files = 3;
  telemetry.tracer().Record(e);

  // ts/dur are microseconds with explicit 3-digit nano fractions — full
  // precision, no scientific notation (chrome://tracing's unit contract).
  EXPECT_EQ(
      ToChromeTrace(telemetry.tracer().Snapshot(), &telemetry),
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"cpu\"}},"
      "{\"name\":\"compaction\",\"cat\":\"seplsm\",\"ph\":\"X\","
      "\"ts\":1.500,\"dur\":2.500,\"pid\":1,\"tid\":1,"
      "\"args\":{\"points\":0,\"bytes\":0,\"files\":3,\"level\":0}}"
      "]}");
}

// --- Histogram quantiles vs oracle ---------------------------------------

TEST(MetricsRegistryTest, QuantilesTrackSortedVectorOracle) {
  MetricsRegistry registry;
  std::mt19937 rng(42);
  // Log-uniform latencies across five orders of magnitude — the regime the
  // geometric bucketing is built for.
  std::uniform_real_distribution<double> exponent(0.0, 5.0);
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    double v = std::pow(10.0, exponent(rng));
    values.push_back(v);
    registry.AddLatency(SpanType::kQuery, v);
  }
  std::sort(values.begin(), values.end());
  LatencySummary s = registry.Summary(SpanType::kQuery);
  ASSERT_EQ(s.count, values.size());
  auto oracle = [&](double q) {
    return values[static_cast<size_t>(q * (values.size() - 1))];
  };
  // Geometric buckets at growth 1.5: a quantile is exact to within one
  // bucket, i.e. within a factor of 1.5 of the true order statistic.
  for (auto [q, got] : {std::pair{0.50, s.p50_micros},
                        std::pair{0.95, s.p95_micros},
                        std::pair{0.99, s.p99_micros}}) {
    double want = oracle(q);
    EXPECT_GE(got, want / 1.5) << "q=" << q;
    EXPECT_LE(got, want * 1.5) << "q=" << q;
  }
  EXPECT_NEAR(s.max_micros, values.back(), values.back() * 0.01);
}

TEST(MetricsRegistryTest, CountersAndMerge) {
  MetricsRegistry a;
  a.GetCounter("hits")->Add(3);
  a.AddLatency(SpanType::kFlush, 100.0);
  MetricsRegistry b;
  b.GetCounter("hits")->Add(2);
  b.GetCounter("misses")->Add(1);
  b.AddLatency(SpanType::kFlush, 300.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("hits")->value(), 5u);
  EXPECT_EQ(a.GetCounter("misses")->value(), 1u);
  EXPECT_EQ(a.Summary(SpanType::kFlush).count, 2u);
  // Pointer stability: the pre-merge pointer still works.
  Counter* hits = a.GetCounter("hits");
  hits->Add(1);
  EXPECT_EQ(a.GetCounter("hits")->value(), 6u);
}

// --- Engine integration ---------------------------------------------------

TEST(TelemetryEngineTest, EngineEmitsFlushCompactionAndQueueWaitSpans) {
  MemEnv env;
  TelemetryOptions topts;
  topts.trace_enabled = true;
  topts.append_span_sample_every = 64;
  auto telemetry = std::make_shared<Telemetry>(topts);

  engine::Options options;
  options.env = &env;
  options.dir = "/tele";
  options.policy = engine::PolicyConfig::Conventional(128);
  options.sstable_points = 64;
  options.background_mode = true;
  options.telemetry = telemetry;
  options.series_name = "tele.series";
  auto open = engine::TsEngine::Open(options);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  auto& db = *open;

  // Mildly out-of-order ingest so flushes AND real compactions happen.
  std::mt19937 rng(7);
  std::vector<int64_t> keys(4'000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<int64_t>(i);
  for (size_t b = 0; b < keys.size(); b += 16) {
    std::shuffle(keys.begin() + b,
                 keys.begin() + std::min(b + 16, keys.size()), rng);
  }
  for (int64_t t : keys) {
    ASSERT_TRUE(db->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 4'000, &out).ok());
  EXPECT_EQ(out.size(), keys.size());

  bool saw[kSpanTypeCount] = {};
  for (const TraceEvent& e : telemetry->tracer().Snapshot()) {
    saw[static_cast<size_t>(e.type)] = true;
    EXPECT_EQ(telemetry->SeriesName(e.series_id), "tele.series");
    EXPECT_GE(e.end_nanos, e.start_nanos);
  }
  EXPECT_TRUE(saw[static_cast<size_t>(SpanType::kFlush)]);
  EXPECT_TRUE(saw[static_cast<size_t>(SpanType::kCompaction)]);
  EXPECT_TRUE(saw[static_cast<size_t>(SpanType::kQueueWait)]);
  EXPECT_TRUE(saw[static_cast<size_t>(SpanType::kQuery)]);
  EXPECT_TRUE(saw[static_cast<size_t>(SpanType::kAppend)]);  // sampled

  // Histograms saw every append, not one in sample_every.
  EXPECT_EQ(telemetry->registry().Summary(SpanType::kAppend).count,
            keys.size());
  EXPECT_GT(telemetry->registry().Summary(SpanType::kFlush).count, 0u);
  EXPECT_GT(telemetry->registry().Summary(SpanType::kQueueWait).count, 0u);

  // Scheduler-side counters mirrored the executed jobs.
  EXPECT_GT(
      telemetry->registry().GetCounter("scheduler_flush_jobs_executed")->value() +
          telemetry->registry()
              .GetCounter("scheduler_compaction_jobs_executed")
              ->value(),
      0u);
}

TEST(TelemetryEngineTest, TracingOffStillFeedsHistograms) {
  MemEnv env;
  auto telemetry = std::make_shared<Telemetry>();  // trace_enabled=false
  engine::Options options;
  options.env = &env;
  options.dir = "/quiet";
  options.policy = engine::PolicyConfig::Conventional(64);
  options.sstable_points = 64;
  options.telemetry = telemetry;
  auto open = engine::TsEngine::Open(options);
  ASSERT_TRUE(open.ok());
  for (int64_t t = 0; t < 500; ++t) {
    ASSERT_TRUE((*open)->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE((*open)->FlushAll().ok());
  EXPECT_EQ(telemetry->tracer().recorded(), 0u);  // no spans retained
  EXPECT_EQ(telemetry->registry().Summary(SpanType::kAppend).count, 500u);
  // Synchronous π_c drains the memtable through the merge path, so the
  // work shows up as COMPACTION latencies.
  EXPECT_GT(telemetry->registry().Summary(SpanType::kCompaction).count, 0u);
}

}  // namespace
}  // namespace seplsm::telemetry
