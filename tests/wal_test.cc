#include "storage/wal.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "common/random.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"

namespace seplsm {
namespace {

using storage::ReadWal;
using storage::WalWriter;

std::vector<DataPoint> SamplePoints() {
  return {{100, 105, 1.5}, {50, 106, -3.25}, {200, 207, 0.0}};
}

TEST(WalTest, RoundTrip) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "/wal");
  ASSERT_TRUE(writer.ok());
  for (const auto& p : SamplePoints()) {
    ASSERT_TRUE((*writer)->Append(p).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  auto back = ReadWal(&env, "/wal");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, SamplePoints());
}

TEST(WalTest, MissingFileIsEmpty) {
  MemEnv env;
  auto back = ReadWal(&env, "/nope");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(WalTest, TornTailTruncated) {
  MemEnv env;
  {
    auto writer = WalWriter::Open(&env, "/wal");
    ASSERT_TRUE(writer.ok());
    for (const auto& p : SamplePoints()) {
      ASSERT_TRUE((*writer)->Append(p).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  // Chop bytes off the end: the last record must be dropped, earlier ones
  // must survive.
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env.NewRandomAccessFile("/wal", &f).ok());
  std::string contents;
  ASSERT_TRUE(f->Read(0, f->Size() - 3, &contents).ok());
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/wal", &w).ok());
  ASSERT_TRUE(w->Append(contents).ok());
  ASSERT_TRUE(w->Close().ok());

  bool truncated = false;
  auto back = ReadWal(&env, "/wal", &truncated);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], SamplePoints()[0]);
  EXPECT_EQ((*back)[1], SamplePoints()[1]);
}

TEST(WalTest, CorruptMiddleStopsReplay) {
  MemEnv env;
  {
    auto writer = WalWriter::Open(&env, "/wal");
    ASSERT_TRUE(writer.ok());
    for (const auto& p : SamplePoints()) {
      ASSERT_TRUE((*writer)->Append(p).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env.NewRandomAccessFile("/wal", &f).ok());
  std::string contents;
  ASSERT_TRUE(f->Read(0, f->Size(), &contents).ok());
  contents[10] ^= 0x7F;  // corrupt inside the first record's payload
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/wal", &w).ok());
  ASSERT_TRUE(w->Append(contents).ok());
  ASSERT_TRUE(w->Close().ok());

  bool truncated = false;
  auto back = ReadWal(&env, "/wal", &truncated);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(back->empty());
}

TEST(WalTest, BatchRecordRoundTrip) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "/wal");
  ASSERT_TRUE(writer.ok());
  // One multi-point record followed by a single-point record: replay walks
  // through both framings in one log.
  ASSERT_TRUE((*writer)->AppendBatch(SamplePoints()).ok());
  ASSERT_TRUE((*writer)->Append({999, 1000, 7.0}).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  auto back = ReadWal(&env, "/wal");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 4u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ((*back)[i], SamplePoints()[i]);
  EXPECT_EQ((*back)[3], (DataPoint{999, 1000, 7.0}));
}

TEST(WalTest, EmptyBatchIsNoOp) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "/wal");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBatch(nullptr, 0).ok());
  EXPECT_EQ((*writer)->bytes_written(), 0u);
}

TEST(WalTest, TornBatchRecordDropsWholeBatch) {
  MemEnv env;
  {
    auto writer = WalWriter::Open(&env, "/wal");
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append({1, 2, 1.0}).ok());
    ASSERT_TRUE((*writer)->AppendBatch(SamplePoints()).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  // Chop into the batch record: its CRC fails, so ALL of its points are
  // distrusted — only the intact first record survives.
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env.NewRandomAccessFile("/wal", &f).ok());
  std::string contents;
  ASSERT_TRUE(f->Read(0, f->Size() - 2, &contents).ok());
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/wal", &w).ok());
  ASSERT_TRUE(w->Append(contents).ok());
  ASSERT_TRUE(w->Close().ok());

  bool truncated = false;
  auto back = ReadWal(&env, "/wal", &truncated);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0], (DataPoint{1, 2, 1.0}));
}

TEST(WalTest, OpenAppendContinuesExistingLog) {
  MemEnv env;
  uint64_t first_size = 0;
  {
    auto writer = WalWriter::Open(&env, "/wal");
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append({1, 2, 1.0}).ok());
    ASSERT_TRUE((*writer)->Close().ok());
    first_size = (*writer)->bytes_written();
  }
  {
    auto writer = WalWriter::OpenAppend(&env, "/wal");
    ASSERT_TRUE(writer.ok());
    // bytes_written starts at the existing size, so checkpoint policies see
    // the true log length.
    EXPECT_EQ((*writer)->bytes_written(), first_size);
    ASSERT_TRUE((*writer)->Append({2, 3, 2.0}).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto back = ReadWal(&env, "/wal");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], (DataPoint{1, 2, 1.0}));
  EXPECT_EQ((*back)[1], (DataPoint{2, 3, 2.0}));
}

TEST(WalTest, CloseIsIdempotentAndSurfacesState) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "/wal");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({1, 2, 1.0}).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  ASSERT_TRUE((*writer)->Close().ok());  // second close: no-op
}

TEST(WalTest, BytesWrittenGrows) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "/wal");
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->bytes_written(), 0u);
  ASSERT_TRUE((*writer)->Append({1, 2, 3.0}).ok());
  uint64_t after_one = (*writer)->bytes_written();
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE((*writer)->Append({2, 3, 4.0}).ok());
  EXPECT_GT((*writer)->bytes_written(), after_one);
}

class EngineWalTest : public ::testing::Test {
 protected:
  engine::Options BaseOptions() {
    engine::Options o;
    o.env = &env_;
    o.dir = "/db";
    o.policy = engine::PolicyConfig::Conventional(8);
    o.sstable_points = 16;
    o.enable_wal = true;
    return o;
  }

  MemEnv env_;
};

TEST_F(EngineWalTest, BufferedPointsSurviveReopen) {
  {
    auto db = engine::TsEngine::Open(BaseOptions());
    ASSERT_TRUE(db.ok());
    // 5 points: below MemTable capacity, so nothing reaches an SSTable.
    for (int64_t t = 0; t < 5; ++t) {
      ASSERT_TRUE((*db)->Append({t, t + 1, static_cast<double>(t)}).ok());
    }
    // Simulate a crash: no FlushAll, engine just destroyed. MemEnv keeps
    // the WAL because MemWritableFile publishes on destruction (a real
    // PosixEnv would need wal_sync_every_append for full crash safety).
  }
  auto db = engine::TsEngine::Open(BaseOptions());
  ASSERT_TRUE(db.ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)->Query(0, 10, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  for (int64_t t = 0; t < 5; ++t) {
    EXPECT_EQ(out[t].generation_time, t);
    EXPECT_EQ(out[t].value, static_cast<double>(t));
  }
}

TEST_F(EngineWalTest, ReplayIsIdempotentWithPersistedData) {
  {
    auto db = engine::TsEngine::Open(BaseOptions());
    ASSERT_TRUE(db.ok());
    // 20 points: some flushed to SSTables, the rest still buffered; the WAL
    // covers everything since the last checkpoint.
    for (int64_t t = 0; t < 20; ++t) {
      ASSERT_TRUE((*db)->Append({t, t + 1, static_cast<double>(t)}).ok());
    }
  }
  auto db = engine::TsEngine::Open(BaseOptions());
  ASSERT_TRUE(db.ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)->Query(0, 100, &out).ok());
  EXPECT_EQ(out.size(), 20u);  // no duplicates despite double coverage
}

TEST_F(EngineWalTest, CheckpointTruncatesLog) {
  auto db = engine::TsEngine::Open(BaseOptions());
  ASSERT_TRUE(db.ok());
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE((*db)->Append({t, t + 1, 0.0}).ok());
  }
  ASSERT_TRUE((*db)->Checkpoint().ok());
  engine::Metrics m = (*db)->GetMetrics();
  EXPECT_GE(m.wal_checkpoints, 1u);
  auto wal = storage::ReadWal(&env_, "/db/wal.log");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->empty());
  // Data still fully readable after the checkpoint.
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)->Query(0, 100, &out).ok());
  EXPECT_EQ(out.size(), 20u);
}

TEST_F(EngineWalTest, AutomaticCheckpointOnSizeThreshold) {
  auto options = BaseOptions();
  options.wal_checkpoint_bytes = 256;  // tiny: trips after ~12 records
  auto db = engine::TsEngine::Open(options);
  ASSERT_TRUE(db.ok());
  for (int64_t t = 0; t < 200; ++t) {
    ASSERT_TRUE((*db)->Append({t, t + 1, 0.0}).ok());
  }
  engine::Metrics m = (*db)->GetMetrics();
  EXPECT_GE(m.wal_checkpoints, 2u);
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)->Query(0, 1000, &out).ok());
  EXPECT_EQ(out.size(), 200u);
}

TEST_F(EngineWalTest, WalMetricsPopulated) {
  auto db = engine::TsEngine::Open(BaseOptions());
  ASSERT_TRUE(db.ok());
  for (int64_t t = 0; t < 5; ++t) {
    ASSERT_TRUE((*db)->Append({t, t + 1, 0.0}).ok());
  }
  engine::Metrics m = (*db)->GetMetrics();
  EXPECT_EQ(m.wal_records, 5u);
  EXPECT_GT(m.wal_bytes, 0u);
}

TEST_F(EngineWalTest, SeparationPolicyWithWal) {
  auto options = BaseOptions();
  options.policy = engine::PolicyConfig::Separation(8, 4);
  {
    auto db = engine::TsEngine::Open(options);
    ASSERT_TRUE(db.ok());
    for (int64_t t = 0; t < 30; ++t) {
      ASSERT_TRUE((*db)->Append({t * 10, t * 10 + 1, 0.0}).ok());
    }
    int64_t last = (*db)->MaxPersistedGenerationTime();
    ASSERT_TRUE((*db)->Append({last - 5, last + 100, 42.0}).ok());
  }
  auto db = engine::TsEngine::Open(options);
  ASSERT_TRUE(db.ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)->Query(0, 1000, &out).ok());
  EXPECT_EQ(out.size(), 31u);
  ASSERT_TRUE((*db)->CheckInvariants().ok());
}

// Crash-point sweep: write K points, "crash" (destroy without flushing),
// reopen, and verify every point is present — for many K values straddling
// MemTable and SSTable boundaries.
class WalCrashPointTest : public ::testing::TestWithParam<int> {};

TEST_P(WalCrashPointTest, AllPointsSurvive) {
  int crash_after = GetParam();
  MemEnv env;
  engine::Options o;
  o.env = &env;
  o.dir = "/db";
  o.policy = engine::PolicyConfig::Separation(8, 4);
  o.sstable_points = 16;
  o.enable_wal = true;
  {
    auto db = engine::TsEngine::Open(o);
    ASSERT_TRUE(db.ok());
    Rng rng(static_cast<uint64_t>(crash_after));
    for (int i = 0; i < crash_after; ++i) {
      // Mildly disordered keys so both MemTables see traffic.
      int64_t key = i * 10 - static_cast<int64_t>(rng.UniformU64(30));
      ASSERT_TRUE((*db)->Append({key, 10000 + i, static_cast<double>(i)})
                      .ok());
    }
  }
  auto db = engine::TsEngine::Open(o);
  ASSERT_TRUE(db.ok());
  // Re-drive the same keys into a reference set.
  std::map<int64_t, bool> keys;
  Rng rng(static_cast<uint64_t>(crash_after));
  for (int i = 0; i < crash_after; ++i) {
    keys[i * 10 - static_cast<int64_t>(rng.UniformU64(30))] = true;
  }
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)
                  ->Query(std::numeric_limits<int64_t>::min() / 2,
                          std::numeric_limits<int64_t>::max() / 2, &out)
                  .ok());
  EXPECT_EQ(out.size(), keys.size());
  for (const auto& p : out) {
    EXPECT_TRUE(keys.count(p.generation_time)) << p.generation_time;
  }
  ASSERT_TRUE((*db)->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, WalCrashPointTest,
                         ::testing::Values(1, 3, 4, 7, 8, 9, 15, 16, 17, 31,
                                           50, 100));

}  // namespace
}  // namespace seplsm
