#include "storage/wal_committer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/point.h"
#include "env/fault_env.h"
#include "env/mem_env.h"
#include "storage/wal.h"

namespace seplsm::storage {
namespace {

DataPoint MakePoint(int64_t tg) {
  DataPoint p;
  p.generation_time = tg;
  p.arrival_time = tg + 1;
  p.value = tg * 2.0;
  return p;
}

std::unique_ptr<WalWriter> MustOpen(Env* env, const std::string& path) {
  auto w = WalWriter::Open(env, path);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(*w);
}

std::vector<DataPoint> MustRead(Env* env, const std::string& path) {
  bool truncated = false;
  auto pts = ReadWal(env, path, &truncated);
  EXPECT_TRUE(pts.ok()) << pts.status().ToString();
  EXPECT_FALSE(truncated);
  return *pts;
}

TEST(GroupCommitterTest, SingleCommitIsDurableAndReadable) {
  MemEnv env;
  auto wal = MustOpen(&env, "wal.log");
  GroupCommitter committer;
  auto* handle = committer.Register(wal.get());

  ASSERT_TRUE(committer.Commit(handle, MakePoint(7)).ok());
  committer.Deregister(handle);

  // An OK Commit means synced: readable through a fresh handle with no
  // further Flush/Sync on the writer.
  auto pts = MustRead(&env, "wal.log");
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].generation_time, 7);

  auto stats = committer.GetStats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_GE(stats.syncs, 1u);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_GT(stats.durable_bytes, 0u);
}

TEST(GroupCommitterTest, ConcurrentCommitsAllSurvive) {
  MemEnv env;
  auto wal = MustOpen(&env, "wal.log");
  GroupCommitter committer;
  auto* handle = committer.Register(wal.get());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!committer.Commit(handle, MakePoint(t * kPerThread + i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  committer.Deregister(handle);
  EXPECT_EQ(failures.load(), 0);

  auto pts = MustRead(&env, "wal.log");
  std::set<int64_t> seen;
  for (const auto& p : pts) seen.insert(p.generation_time);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));

  auto stats = committer.GetStats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(stats.syncs, stats.commits);
  EXPECT_GE(stats.max_group_points, 1u);
}

/// Env whose WritableFile::Sync blocks until the test grants a permit —
/// makes commit-round boundaries deterministic so batching is observable.
class GatedSyncEnv final : public Env {
 public:
  explicit GatedSyncEnv(Env* base) : base_(base) {}

  void GrantSync() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++permits_;
    cv_.notify_all();
  }
  /// Blocks until a Sync call is parked waiting for a permit.
  void AwaitSyncParked() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return parked_ > 0; });
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::unique_ptr<WritableFile> base_file;
    SEPLSM_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
    *file = std::make_unique<GatedFile>(this, std::move(base_file));
    return Status::OK();
  }
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override {
    std::unique_ptr<WritableFile> base_file;
    SEPLSM_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &base_file));
    *file = std::make_unique<GatedFile>(this, std::move(base_file));
    return Status::OK();
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    return base_->NewRandomAccessFile(fname, file);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status RenameFile(const std::string& src, const std::string& dst) override {
    return base_->RenameFile(src, dst);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status ListDir(const std::string& dirname,
                 std::vector<std::string>* children) override {
    return base_->ListDir(dirname, children);
  }
  Status SyncDir(const std::string& dirname) override {
    return base_->SyncDir(dirname);
  }

 private:
  class GatedFile final : public WritableFile {
   public:
    GatedFile(GatedSyncEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}
    Status Append(std::string_view data) override {
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      env_->TakePermit();
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    GatedSyncEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  void TakePermit() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++parked_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return permits_ > 0; });
    --permits_;
    --parked_;
  }

  Env* base_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int permits_ = 0;
  int parked_ = 0;
};

TEST(GroupCommitterTest, PiledUpWaitersShareOneFsync) {
  MemEnv base;
  GatedSyncEnv env(&base);
  auto wal = MustOpen(&env, "wal.log");
  GroupCommitter committer;
  auto* handle = committer.Register(wal.get());

  // Round 1: a single point; the commit thread parks inside its fsync.
  auto first = committer.Enqueue(handle, MakePoint(0));
  ASSERT_NE(first, nullptr);
  env.AwaitSyncParked();

  // While round 1 is stuck in fsync, eight more writers pile into the
  // queue. They MUST all land in one commit round: one record, one fsync.
  constexpr int kPiled = 8;
  std::vector<GroupCommitter::Ticket> tickets;
  for (int i = 1; i <= kPiled; ++i) {
    auto t = committer.Enqueue(handle, MakePoint(i));
    ASSERT_NE(t, nullptr);
    tickets.push_back(std::move(t));
  }

  env.GrantSync();  // finish round 1
  env.GrantSync();  // finish round 2
  ASSERT_TRUE(committer.Wait(first).ok());
  for (auto& t : tickets) ASSERT_TRUE(committer.Wait(t).ok());
  committer.Deregister(handle);

  auto stats = committer.GetStats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(kPiled) + 1);
  EXPECT_EQ(stats.syncs, 2u);
  EXPECT_EQ(stats.records, 2u);  // batch of 8 = ONE multi-point record
  EXPECT_EQ(stats.max_group_points, static_cast<uint64_t>(kPiled));

  auto pts = MustRead(&base, "wal.log");
  EXPECT_EQ(pts.size(), static_cast<size_t>(kPiled) + 1);
}

TEST(GroupCommitterTest, OversizedRoundSplitsIntoCappedRecords) {
  MemEnv base;
  GatedSyncEnv env(&base);
  auto wal = MustOpen(&env, "wal.log");
  GroupCommitter::Options opts;
  opts.max_record_points = 4;
  GroupCommitter committer(opts);
  auto* handle = committer.Register(wal.get());

  auto first = committer.Enqueue(handle, MakePoint(0));
  env.AwaitSyncParked();
  std::vector<GroupCommitter::Ticket> tickets;
  for (int i = 1; i <= 10; ++i) {
    tickets.push_back(committer.Enqueue(handle, MakePoint(i)));
  }
  env.GrantSync();
  env.GrantSync();
  ASSERT_TRUE(committer.Wait(first).ok());
  for (auto& t : tickets) ASSERT_TRUE(committer.Wait(t).ok());
  committer.Deregister(handle);

  auto stats = committer.GetStats();
  // Round 2 had 10 points at a 4-point record cap: 3 records, still 1 fsync.
  EXPECT_EQ(stats.records, 4u);  // 1 (round 1) + 3 (round 2)
  EXPECT_EQ(stats.syncs, 2u);
  EXPECT_EQ(MustRead(&base, "wal.log").size(), 11u);
}

TEST(GroupCommitterTest, SyncFailureFailsEveryWaiterInTheRound) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  auto wal = MustOpen(&env, "wal.log");
  GroupCommitter committer;
  auto* handle = committer.Register(wal.get());

  env.SetFailSyncs(true);
  EXPECT_FALSE(committer.Commit(handle, MakePoint(1)).ok());
  EXPECT_FALSE(committer.Commit(handle, MakePoint(2)).ok());

  // The committer survives the failure: clearing the fault, commits work
  // again on the same handle.
  env.SetFailSyncs(false);
  EXPECT_TRUE(committer.Commit(handle, MakePoint(3)).ok());
  committer.Deregister(handle);

  auto stats = committer.GetStats();
  EXPECT_EQ(stats.commits, 1u);  // only the successful point counts
}

TEST(GroupCommitterTest, BarrierThenSetWriterRotatesUnderTraffic) {
  MemEnv env;
  auto old_wal = MustOpen(&env, "wal.log");
  GroupCommitter committer;
  auto* handle = committer.Register(old_wal.get());

  // Concurrent writer hammering the handle while the main thread rotates.
  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::thread writer([&] {
    int64_t tg = 1000;
    while (!stop.load()) {
      if (committer.Commit(handle, MakePoint(tg++)).ok()) {
        committed.fetch_add(1);
      }
    }
  });

  while (committed.load() < 5) std::this_thread::yield();

  // Rotation protocol: quiesce, swap, resume. (A real engine holds its
  // write lock here so nothing enqueues during the swap; the test tolerates
  // the race by checking totals across both logs instead.)
  committer.Barrier(handle);
  auto new_wal = MustOpen(&env, "wal2.log");
  committer.SetWriter(handle, new_wal.get());

  const int at_rotation = committed.load();
  while (committed.load() < at_rotation + 5) std::this_thread::yield();
  stop.store(true);
  writer.join();
  committer.Deregister(handle);
  ASSERT_TRUE(old_wal->Close().ok());
  ASSERT_TRUE(new_wal->Close().ok());

  auto pts_old = MustRead(&env, "wal.log");
  auto pts_new = MustRead(&env, "wal2.log");
  EXPECT_GT(pts_new.size(), 0u);  // traffic moved to the new log
  EXPECT_GE(pts_old.size() + pts_new.size(),
            static_cast<size_t>(committed.load()));
}

TEST(GroupCommitterTest, TwoHandlesGetTheirOwnLogs) {
  MemEnv env;
  auto wal_a = MustOpen(&env, "a.log");
  auto wal_b = MustOpen(&env, "b.log");
  GroupCommitter committer;
  auto* ha = committer.Register(wal_a.get());
  auto* hb = committer.Register(wal_b.get());

  std::thread ta([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(committer.Commit(ha, MakePoint(i)).ok());
    }
  });
  std::thread tb([&] {
    for (int i = 100; i < 120; ++i) {
      ASSERT_TRUE(committer.Commit(hb, MakePoint(i)).ok());
    }
  });
  ta.join();
  tb.join();
  committer.Deregister(ha);
  committer.Deregister(hb);

  auto pts_a = MustRead(&env, "a.log");
  auto pts_b = MustRead(&env, "b.log");
  ASSERT_EQ(pts_a.size(), 20u);
  ASSERT_EQ(pts_b.size(), 20u);
  for (const auto& p : pts_a) EXPECT_LT(p.generation_time, 100);
  for (const auto& p : pts_b) EXPECT_GE(p.generation_time, 100);
}

TEST(GroupCommitterTest, StatsAreMonotone) {
  MemEnv env;
  auto wal = MustOpen(&env, "wal.log");
  GroupCommitter committer;
  auto* handle = committer.Register(wal.get());

  auto before = committer.GetStats();
  ASSERT_TRUE(committer.Commit(handle, MakePoint(1)).ok());
  auto mid = committer.GetStats();
  ASSERT_TRUE(committer.Commit(handle, MakePoint(2)).ok());
  auto after = committer.GetStats();
  committer.Deregister(handle);

  EXPECT_LE(before.commits, mid.commits);
  EXPECT_LE(mid.commits, after.commits);
  EXPECT_LE(mid.syncs, after.syncs);
  EXPECT_LE(mid.durable_bytes, after.durable_bytes);
  EXPECT_EQ(after.commits, 2u);
}

}  // namespace
}  // namespace seplsm::storage
