#include <gtest/gtest.h>

#include <cmath>

#include "dist/parametric.h"
#include "model/arrival_model.h"
#include "model/subsequent_model.h"
#include "model/tuner.h"
#include "model/wa_model.h"

namespace seplsm::model {
namespace {

TEST(SubsequentModelTest, ZetaZeroForEmptyBuffer) {
  dist::LognormalDistribution d(4.0, 1.5);
  SubsequentModel m(d, 50.0);
  EXPECT_EQ(m.Estimate(0), 0.0);
}

TEST(SubsequentModelTest, ZetaMonotoneInBufferSize) {
  dist::LognormalDistribution d(4.0, 1.5);
  SubsequentModel m(d, 50.0);
  double prev = 0.0;
  for (size_t n : {1u, 4u, 16u, 64u, 256u}) {
    double z = m.Estimate(n);
    EXPECT_GE(z, prev - 1e-6) << "n=" << n;
    prev = z;
  }
}

TEST(SubsequentModelTest, ZetaGrowsWithSigma) {
  dist::LognormalDistribution d1(4.0, 1.5);
  dist::LognormalDistribution d2(4.0, 1.75);
  SubsequentModel m1(d1, 50.0), m2(d2, 50.0);
  EXPECT_GT(m2.Estimate(128), m1.Estimate(128));
}

TEST(SubsequentModelTest, ZetaGrowsWithMu) {
  dist::LognormalDistribution d1(4.0, 1.5);
  dist::LognormalDistribution d2(5.0, 1.5);
  SubsequentModel m1(d1, 50.0), m2(d2, 50.0);
  EXPECT_GT(m2.Estimate(128), m1.Estimate(128));
}

TEST(SubsequentModelTest, LargerDeltaTReducesZeta) {
  dist::LognormalDistribution d(4.0, 1.5);
  SubsequentModel m50(d, 50.0), m10(d, 10.0);
  EXPECT_GT(m10.Estimate(128), m50.Estimate(128));
}

TEST(SubsequentModelTest, TinyDelaysGiveNearZeroZeta) {
  // Delays far below Δt: essentially no disorder.
  dist::UniformDistribution d(0.0, 1.0);
  SubsequentModel m(d, 1000.0);
  EXPECT_LT(m.Estimate(256), 0.01);
}

struct McCase {
  std::string label;
  double mu;
  double sigma;
  double delta_t;
  size_t n;
};

class ZetaVsMonteCarloTest : public ::testing::TestWithParam<McCase> {};

TEST_P(ZetaVsMonteCarloTest, ModelWithinToleranceOfOracle) {
  const auto& c = GetParam();
  dist::LognormalDistribution d(c.mu, c.sigma);
  SubsequentModel m(d, c.delta_t);
  double analytic = m.Estimate(c.n);
  double oracle = ZetaMonteCarlo(d, c.delta_t, c.n, /*disk_points=*/20000,
                                 /*rounds=*/300, /*seed=*/42);
  // The arrival-gap approximation and MC noise both contribute; the paper's
  // Fig. 5 shows the same order of agreement.
  double tolerance = std::max(2.0, 0.30 * oracle);
  EXPECT_NEAR(analytic, oracle, tolerance)
      << "analytic=" << analytic << " oracle=" << oracle;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZetaVsMonteCarloTest,
    ::testing::Values(McCase{"fig5_a_n64", 4.0, 1.5, 50.0, 64},
                      McCase{"fig5_a_n256", 4.0, 1.5, 50.0, 256},
                      McCase{"fig5_b_n128", 4.0, 1.75, 50.0, 128},
                      McCase{"small_delay", 2.0, 1.0, 50.0, 128},
                      McCase{"dense_interval", 4.0, 1.5, 10.0, 64}),
    [](const auto& info) { return info.param.label; });

TEST(ArrivalModelTest, ExpectedInOrderBetweenZeroAndAlpha) {
  dist::LognormalDistribution d(4.0, 1.5);
  ArrivalRateModel m(d, 50.0);
  for (double alpha : {1.0, 10.0, 100.0}) {
    double x = m.ExpectedInOrder(alpha);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, alpha);
  }
}

TEST(ArrivalModelTest, ExpectedInOrderMonotone) {
  dist::LognormalDistribution d(4.0, 1.5);
  ArrivalRateModel m(d, 50.0);
  EXPECT_LT(m.ExpectedInOrder(10), m.ExpectedInOrder(20));
}

TEST(ArrivalModelTest, InversionRoundTrip) {
  dist::LognormalDistribution d(4.0, 1.5);
  ArrivalRateModel m(d, 50.0);
  for (double target : {5.0, 50.0, 500.0}) {
    double alpha = m.ArrivalsForInOrder(target);
    EXPECT_NEAR(m.ExpectedInOrder(alpha), target, 0.05 * target + 0.5);
  }
}

TEST(ArrivalModelTest, GNonNegativeAndGrowsWithDisorder) {
  dist::LognormalDistribution mild(3.0, 1.0);
  dist::LognormalDistribution severe(5.0, 2.0);
  ArrivalRateModel m1(mild, 50.0), m2(severe, 50.0);
  double g1 = m1.G(256);
  double g2 = m2.G(256);
  EXPECT_GE(g1, 0.0);
  EXPECT_GT(g2, g1);
}

TEST(ArrivalModelTest, NoDisorderMeansNoOutOfOrder) {
  dist::UniformDistribution d(0.0, 1.0);  // delays << Δt
  ArrivalRateModel m(d, 1000.0);
  EXPECT_NEAR(m.G(100), 0.0, 1e-6);
}

TEST(ArrivalModelTest, FractionalAlphaInterpolates) {
  dist::UniformDistribution d(0.0, 100.0);
  ArrivalRateModel m(d, 50.0);
  // F(50)=0.5, F(100)=1: x(1)=0.5, x(2)=1.5. Target 1.0 -> alpha=1.5.
  EXPECT_NEAR(m.ArrivalsForInOrder(1.0), 1.5, 1e-9);
}

TEST(WaModelTest, ConventionalWaAtLeastOne) {
  dist::LognormalDistribution d(4.0, 1.5);
  WaModel m(d, 50.0);
  for (size_t n : {8u, 64u, 512u}) {
    EXPECT_GE(m.ConventionalWa(n), 1.0);
  }
}

TEST(WaModelTest, ConventionalWaOneWithoutDisorder) {
  dist::UniformDistribution d(0.0, 1.0);
  WaModel m(d, 1000.0);
  EXPECT_NEAR(m.ConventionalWa(512), 1.0, 1e-3);
}

TEST(WaModelTest, SeparationWaApproachesTwoWithoutDisorder) {
  // With almost no out-of-order data, π_s still eventually pays one giant
  // merge: r_s -> 2 while r_c -> 1 (the paper's Fig. 2 pathology).
  dist::UniformDistribution d(0.0, 1.0);
  WaModel m(d, 1000.0);
  double rs = m.SeparationWa(512, 256);
  double rc = m.ConventionalWa(512);
  EXPECT_GT(rs, 1.5);
  EXPECT_LT(rs, 2.3);
  EXPECT_LT(rc, rs);
}

TEST(WaModelTest, SeparationBreakdownConsistent) {
  dist::LognormalDistribution d(5.0, 2.0);
  WaModel m(d, 50.0);
  auto b = m.SeparationDetail(512, 256);
  EXPECT_GT(b.g, 0.0);
  EXPECT_GT(b.fills, 0.0);
  EXPECT_NEAR(b.n_arrive, 256.0 * b.fills + 256.0, 1e-6);
  EXPECT_GE(b.n_cur, 0.0);
  EXPECT_GE(b.n_bef, 0.0);
  EXPECT_NEAR(b.wa, (b.n_arrive + b.n_cur + b.n_bef) / b.n_arrive, 1e-12);
}

TEST(WaModelTest, MultiLevelMigrationZeroAtTwoLevels) {
  // The N-level extension must be exactly the paper's estimator at the
  // default configuration: no migration term at num_levels <= 2.
  dist::LognormalDistribution d(4.0, 1.5);
  WaModel m(d, 50.0);
  EXPECT_EQ(m.MultiLevelMigration(512, 2), 0.0);
  EXPECT_EQ(m.ConventionalWaMultiLevel(512, 2), m.ConventionalWa(512));
  EXPECT_EQ(m.SeparationWaMultiLevel(512, 256, 2),
            m.SeparationWa(512, 256));
}

TEST(WaModelTest, MultiLevelMigrationGrowsWithDepthAndDisorder) {
  dist::LognormalDistribution d(5.0, 2.0);
  WaModel m(d, 50.0);
  double hop3 = m.MultiLevelMigration(512, 3);
  double hop4 = m.MultiLevelMigration(512, 4);
  EXPECT_GT(hop3, 0.0);
  // Each extra level adds one hop of identical expected cost.
  EXPECT_NEAR(hop4, 2.0 * hop3, 1e-12);
  // At most one rewrite per hop without the granularity correction.
  EXPECT_LE(hop3, 1.0);
  // Purely in-order data migrates through gap-inserts for free.
  dist::UniformDistribution ordered(0.0, 1.0);
  WaModel m2(ordered, 1000.0);
  EXPECT_NEAR(m2.MultiLevelMigration(512, 4), 0.0, 1e-3);
}

TEST(WaModelTest, MultiLevelMigrationPreservesPolicyGap) {
  // The migration term is shared by both policies, so the tuner's
  // objective — the r_c - r_s gap — is unchanged by the extension.
  dist::LognormalDistribution d(6.0, 2.0);
  WaModel m(d, 10.0);
  double gap2 = m.ConventionalWa(512) - m.SeparationWa(512, 256);
  double gap4 = m.ConventionalWaMultiLevel(512, 4) -
                m.SeparationWaMultiLevel(512, 256, 4);
  EXPECT_NEAR(gap2, gap4, 1e-12);
}

TEST(WaModelTest, SeverelyDisorderedFavorsSeparation) {
  // Heavy disorder: out-of-order points are common and π_c merges on every
  // MemTable fill; accumulating them (π_s) must help.
  dist::LognormalDistribution d(6.0, 2.0);
  WaModel m(d, 10.0);
  TuningOptions topt;
  topt.sweep_step = 16;
  auto result = TunePolicy(m, 512, topt);
  EXPECT_EQ(result.recommended.kind, engine::PolicyKind::kSeparation)
      << "r_c=" << result.wa_conventional
      << " r_s*=" << result.wa_separation_best;
}

TEST(WaModelTest, NearlyOrderedFavorsConventional) {
  dist::UniformDistribution d(0.0, 5.0);
  WaModel m(d, 1000.0);
  TuningOptions topt;
  topt.sweep_step = 16;
  auto result = TunePolicy(m, 512, topt);
  EXPECT_EQ(result.recommended.kind, engine::PolicyKind::kConventional);
}

TEST(TunerTest, CurveCoversSweep) {
  dist::LognormalDistribution d(4.0, 1.5);
  WaModel m(d, 50.0);
  TuningOptions topt;
  topt.sweep_step = 8;
  topt.keep_curve = true;
  auto result = TunePolicy(m, 64, topt);
  ASSERT_FALSE(result.separation_curve.empty());
  // Curve is sorted by n_seq and includes the best point.
  bool found_best = false;
  for (size_t i = 0; i < result.separation_curve.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(result.separation_curve[i].first,
                result.separation_curve[i - 1].first);
    }
    if (result.separation_curve[i].first == result.best_nseq) {
      found_best = true;
      EXPECT_DOUBLE_EQ(result.separation_curve[i].second,
                       result.wa_separation_best);
    }
  }
  EXPECT_TRUE(found_best);
}

TEST(TunerTest, BestNseqWithinRange) {
  dist::LognormalDistribution d(5.0, 2.0);
  WaModel m(d, 50.0);
  TuningOptions topt;
  topt.sweep_step = 8;
  auto result = TunePolicy(m, 128, topt);
  EXPECT_GE(result.best_nseq, 1u);
  EXPECT_LE(result.best_nseq, 127u);
}

TEST(TunerTest, RecommendedSeparationCarriesBestNseq) {
  dist::LognormalDistribution d(6.0, 2.0);
  auto result = TunePolicy(d, 10.0, 128,
                           TuningOptions{.sweep_step = 8});
  if (result.recommended.kind == engine::PolicyKind::kSeparation) {
    EXPECT_EQ(result.recommended.nseq_capacity, result.best_nseq);
    EXPECT_EQ(result.recommended.memtable_capacity, 128u);
  }
}

TEST(GranularityCorrectionTest, PenalizesTinyNonseq) {
  // Mild disorder, tiny C_nonseq: short phases whose merges are dominated
  // by boundary-file rewrites. The corrected model must reflect that.
  dist::LognormalDistribution d(5.0, 1.0);
  WaModel plain(d, 50.0);
  WaModel corrected(d, 50.0);
  corrected.set_granularity_sstable_points(512);
  double rs_plain = plain.SeparationWa(512, 504);
  double rs_corrected = corrected.SeparationWa(512, 504);
  EXPECT_GT(rs_corrected, rs_plain + 0.5)
      << "plain=" << rs_plain << " corrected=" << rs_corrected;
}

TEST(GranularityCorrectionTest, NegligibleUnderHeavyDisorder) {
  // Heavy disorder: ζ per merge already exceeds one SSTable, so the
  // correction must vanish.
  dist::LognormalDistribution d(5.0, 2.0);
  WaModel plain(d, 50.0);
  WaModel corrected(d, 50.0);
  corrected.set_granularity_sstable_points(512);
  double rc_plain = plain.ConventionalWa(512);
  double rc_corrected = corrected.ConventionalWa(512);
  EXPECT_NEAR(rc_corrected, rc_plain, 0.05);
}

TEST(GranularityCorrectionTest, ConventionalNoOverlapNoPenalty) {
  // Fully ordered stream: flushes never overlap the run, so even with
  // granularity awareness r_c stays ~1.
  dist::UniformDistribution d(0.0, 1.0);
  WaModel corrected(d, 1000.0);
  corrected.set_granularity_sstable_points(512);
  EXPECT_NEAR(corrected.ConventionalWa(512), 1.0, 0.01);
}

TEST(GranularityCorrectionTest, CorrectedAtLeastPlain) {
  dist::LognormalDistribution d(4.0, 1.5);
  WaModel plain(d, 50.0);
  WaModel corrected(d, 50.0);
  corrected.set_granularity_sstable_points(512);
  for (size_t nseq : {64u, 256u, 448u}) {
    EXPECT_GE(corrected.SeparationWa(512, nseq),
              plain.SeparationWa(512, nseq) - 1e-9);
  }
  EXPECT_GE(corrected.ConventionalWa(512), plain.ConventionalWa(512) - 1e-9);
}

TEST(GranularityCorrectionTest, TunerAvoidsDegenerateSplit) {
  // With the correction the tuner must not recommend n_nonseq so small
  // that each phase rewrites a whole file for a handful of points.
  dist::LognormalDistribution d(5.0, 1.25);
  TuningOptions topt;
  topt.sweep_step = 16;
  topt.granularity_sstable_points = 512;
  auto result = TunePolicy(d, 50.0, 512, topt);
  if (result.recommended.kind == engine::PolicyKind::kSeparation) {
    EXPECT_GE(result.recommended.nonseq_capacity(), 16u);
  }
}

TEST(TunerTest, FineSweepNoWorseThanCoarse) {
  dist::LognormalDistribution d(5.0, 1.75);
  WaModel m(d, 50.0);
  auto coarse = TunePolicy(m, 64, TuningOptions{.sweep_step = 16,
                                                .refine = false});
  auto fine = TunePolicy(m, 64, TuningOptions{.sweep_step = 1});
  EXPECT_LE(fine.wa_separation_best, coarse.wa_separation_best + 1e-9);
}

}  // namespace
}  // namespace seplsm::model
