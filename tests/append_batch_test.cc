// AppendBatch must be observationally identical to the same points fed one
// Append at a time: same query answers, same WAL contents modulo record
// framing (one N-point record vs N one-point records), same deterministic
// metrics deltas, and the same in-order/out-of-order classification under
// both write policies — Definition 3 is stateful, so the per-point
// persisted-horizon re-read inside the batch loop is what these tests pin.
//
// The AppendBatchConcurrency suite runs under the TSan CI job (both pool
// sizes) and fuzzes concurrent batches across and within MultiSeriesDB
// shards.

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/multi_series_db.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "storage/wal.h"

namespace seplsm::engine {
namespace {

/// Deterministic mostly-in-order stream with occasional late points, so
/// both π policies exercise their seq/nonseq split.
std::vector<DataPoint> OooStream(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<DataPoint> points;
  int64_t now = 0;
  for (size_t i = 0; i < n; ++i) {
    now += 1 + static_cast<int64_t>(rng() % 3);
    int64_t generated = now;
    if (rng() % 8 == 0) {
      generated = std::max<int64_t>(0, now - static_cast<int64_t>(rng() % 64));
    }
    points.push_back(
        {generated, now, static_cast<double>(generated % 1024) / 8.0});
  }
  return points;
}

Options BaseOptions(Env* env, const std::string& dir, PolicyConfig policy) {
  Options o;
  o.env = env;
  o.dir = dir;
  o.policy = policy;
  o.sstable_points = 256;
  o.background_mode = false;  // deterministic flush points
  o.enable_wal = true;
  return o;
}

std::vector<DataPoint> QueryAll(TsEngine* db) {
  std::vector<DataPoint> out;
  EXPECT_TRUE(db->Query(0, int64_t{1} << 40, &out).ok());
  return out;
}

/// Feeds `points` to one engine via single Appends and to a twin via
/// AppendBatch calls of `batch` points, then asserts the two engines are
/// indistinguishable where determinism is guaranteed.
void CheckEquivalence(PolicyConfig policy, size_t batch) {
  const std::vector<DataPoint> points = OooStream(600, 7);

  MemEnv env_single, env_batch;
  auto open_s =
      TsEngine::Open(BaseOptions(&env_single, "/single", policy));
  auto open_b = TsEngine::Open(BaseOptions(&env_batch, "/batch", policy));
  ASSERT_TRUE(open_s.ok() && open_b.ok());
  auto& db_s = *open_s;
  auto& db_b = *open_b;

  for (const auto& p : points) ASSERT_TRUE(db_s->Append(p).ok());
  for (size_t i = 0; i < points.size(); i += batch) {
    const size_t n = std::min(batch, points.size() - i);
    ASSERT_TRUE(db_b->AppendBatch(points.data() + i, n).ok());
  }

  // Same answers.
  EXPECT_EQ(QueryAll(db_s.get()), QueryAll(db_b.get()));

  // Same deterministic metrics. (wal_bytes differs by design — framing —
  // and is exactly what "modulo framing" excludes.)
  const Metrics ms = db_s->GetMetrics();
  const Metrics mb = db_b->GetMetrics();
  EXPECT_EQ(ms.points_ingested, mb.points_ingested);
  EXPECT_EQ(mb.points_ingested, points.size());
  EXPECT_EQ(ms.wal_records, mb.wal_records);
  EXPECT_EQ(mb.wal_records, points.size());
  EXPECT_EQ(ms.flush_count, mb.flush_count);
  EXPECT_EQ(ms.points_flushed, mb.points_flushed);
  EXPECT_EQ(ms.merge_count, mb.merge_count);

  // Same WAL contents modulo framing: decoding both logs must yield the
  // same point stream even though the batch log packs many points per
  // record.
  auto wal_s = storage::ReadWal(&env_single, "/single/wal.log");
  auto wal_b = storage::ReadWal(&env_batch, "/batch/wal.log");
  ASSERT_TRUE(wal_s.ok() && wal_b.ok());
  EXPECT_EQ(*wal_s, *wal_b);
}

TEST(AppendBatchTest, EquivalentToSingleAppendsConventional) {
  CheckEquivalence(PolicyConfig::Conventional(128), 64);
}

TEST(AppendBatchTest, EquivalentToSingleAppendsSeparation) {
  CheckEquivalence(PolicyConfig::Separation(128, 64), 64);
}

TEST(AppendBatchTest, OddBatchSizesStillEquivalent) {
  CheckEquivalence(PolicyConfig::Conventional(128), 7);
}

TEST(AppendBatchTest, EmptyBatchIsANoOp) {
  MemEnv env;
  auto open =
      TsEngine::Open(BaseOptions(&env, "/db", PolicyConfig::Conventional(64)));
  ASSERT_TRUE(open.ok());
  auto& db = *open;
  const DataPoint p{1, 1, 0.5};
  EXPECT_TRUE(db->AppendBatch(&p, 0).ok());
  EXPECT_TRUE(db->AppendBatch(nullptr, 0).ok());
  EXPECT_EQ(db->GetMetrics().points_ingested, 0u);
  EXPECT_EQ(db->GetMetrics().wal_records, 0u);
  EXPECT_TRUE(QueryAll(db.get()).empty());
}

TEST(AppendBatchTest, OnePointBatchEqualsAppend) {
  MemEnv env;
  auto open =
      TsEngine::Open(BaseOptions(&env, "/db", PolicyConfig::Conventional(64)));
  ASSERT_TRUE(open.ok());
  auto& db = *open;
  const DataPoint p{5, 6, 1.25};
  ASSERT_TRUE(db->AppendBatch(&p, 1).ok());
  EXPECT_EQ(db->GetMetrics().points_ingested, 1u);
  EXPECT_EQ(db->GetMetrics().wal_records, 1u);
  auto got = QueryAll(db.get());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], p);
}

/// A mid-batch flush moves the persisted horizon, which can flip the
/// classification of later points in the same batch (Definition 3 is
/// stateful). The batch path must flush exactly where the single-append
/// path would.
TEST(AppendBatchTest, MidBatchFlushesMatchSinglePath) {
  const std::vector<DataPoint> points = OooStream(1000, 11);
  MemEnv env;
  auto open =
      TsEngine::Open(BaseOptions(&env, "/db", PolicyConfig::Separation(64, 32)));
  ASSERT_TRUE(open.ok());
  auto& db = *open;
  ASSERT_TRUE(db->AppendBatch(points.data(), points.size()).ok());
  const Metrics m = db->GetMetrics();
  EXPECT_GT(m.flush_count, 0u) << "batch must trip the budget mid-flight";
  EXPECT_EQ(m.points_ingested, points.size());
  EXPECT_EQ(QueryAll(db.get()).size(), QueryAll(db.get()).size());

  // Twin engine, single appends: identical flush schedule.
  MemEnv env2;
  auto open2 =
      TsEngine::Open(BaseOptions(&env2, "/db2",
                                 PolicyConfig::Separation(64, 32)));
  ASSERT_TRUE(open2.ok());
  auto& db2 = *open2;
  for (const auto& p : points) ASSERT_TRUE(db2->Append(p).ok());
  EXPECT_EQ(db2->GetMetrics().flush_count, m.flush_count);
  EXPECT_EQ(QueryAll(db.get()), QueryAll(db2.get()));
}

/// One batch larger than the group committer's max_record_points must
/// still ack durably, log every point, and replay whole on reopen.
TEST(AppendBatchTest, StraddlesMaxRecordPointsUnderGroupCommit) {
  const std::vector<DataPoint> points = OooStream(2600, 13);  // > 1024
  MemEnv env;
  Options o = BaseOptions(&env, "/db", PolicyConfig::Conventional(8192));
  o.wal_group_commit = true;
  {
    auto open = TsEngine::Open(o);
    ASSERT_TRUE(open.ok());
    auto& db = *open;
    ASSERT_TRUE(db->AppendBatch(points.data(), points.size()).ok());
    EXPECT_EQ(db->GetMetrics().wal_records, points.size());
    EXPECT_EQ(QueryAll(db.get()).size(),
              QueryAll(db.get()).size());  // self-consistent under load
  }
  // Reopen without flushing: every point must come back from the WAL.
  auto reopen = TsEngine::Open(o);
  ASSERT_TRUE(reopen.ok());
  auto& db2 = *reopen;
  std::vector<DataPoint> expected;
  {
    // The stream upserts by generation time; replay must agree with a
    // reference engine fed the same stream.
    MemEnv env_ref;
    auto ref = TsEngine::Open(
        BaseOptions(&env_ref, "/ref", PolicyConfig::Conventional(8192)));
    ASSERT_TRUE(ref.ok());
    for (const auto& p : points) ASSERT_TRUE((*ref)->Append(p).ok());
    expected = QueryAll(ref->get());
  }
  EXPECT_EQ(QueryAll(db2.get()), expected);
}

/// Concurrent batched appends across shards: the TSan job's bread and
/// butter. ingest_shards is pinned to 2 so shard sharing is guaranteed
/// regardless of host core count.
TEST(AppendBatchConcurrencyTest, ConcurrentBatchesAcrossShards) {
  MemEnv env;
  MultiSeriesDB::MultiOptions o;
  o.base.env = &env;
  o.base.dir = "/fleet";
  o.base.policy = PolicyConfig::Conventional(256);
  o.base.background_mode = true;
  o.base.enable_wal = true;
  o.base.wal_group_commit = true;
  o.ingest_shards = 2;
  auto open = MultiSeriesDB::Open(std::move(o));
  ASSERT_TRUE(open.ok());
  auto& db = *open;
  ASSERT_EQ(db->shard_count(), 2u);

  constexpr size_t kThreads = 4;
  constexpr size_t kSeries = 8;
  constexpr size_t kBatches = 40;
  constexpr size_t kBatch = 32;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<uint32_t>(t) * 7919 + 1);
      for (size_t b = 0; b < kBatches; ++b) {
        const size_t s = rng() % kSeries;
        std::vector<DataPoint> buf;
        buf.reserve(kBatch);
        // Per-thread disjoint time ranges keep every point distinct.
        const int64_t base =
            static_cast<int64_t>((t * kBatches + b) * kBatch);
        for (size_t i = 0; i < kBatch; ++i) {
          const int64_t ts = base + static_cast<int64_t>(i);
          buf.push_back({ts, ts, static_cast<double>(ts)});
        }
        if (!db->AppendBatch("s" + std::to_string(s), buf.data(), kBatch)
                 .ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(db->FlushAll().ok());
  const Metrics m = db->GetAggregateMetrics();
  EXPECT_EQ(m.points_ingested, kThreads * kBatches * kBatch);
  EXPECT_EQ(m.wal_records, kThreads * kBatches * kBatch);
}

/// All threads hammer ONE series: the engine mutex serializes batches, the
/// shard lock sees maximal contention, and nothing may tear or deadlock.
TEST(AppendBatchConcurrencyTest, ConcurrentBatchesSameSeries) {
  MemEnv env;
  MultiSeriesDB::MultiOptions o;
  o.base.env = &env;
  o.base.dir = "/fleet";
  o.base.policy = PolicyConfig::Conventional(512);
  o.base.background_mode = true;
  o.base.enable_wal = true;
  o.ingest_shards = 1;
  auto open = MultiSeriesDB::Open(std::move(o));
  ASSERT_TRUE(open.ok());
  auto& db = *open;

  constexpr size_t kThreads = 4;
  constexpr size_t kBatches = 50;
  constexpr size_t kBatch = 16;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<DataPoint> buf;
        const int64_t base =
            static_cast<int64_t>((t * kBatches + b) * kBatch);
        for (size_t i = 0; i < kBatch; ++i) {
          const int64_t ts = base + static_cast<int64_t>(i);
          buf.push_back({ts, ts, static_cast<double>(ts)});
        }
        if (!db->AppendBatch("hot", buf.data(), kBatch).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query("hot", 0, int64_t{1} << 40, &out).ok());
  EXPECT_EQ(out.size(), kThreads * kBatches * kBatch);
  EXPECT_EQ(db->GetAggregateMetrics().points_ingested,
            kThreads * kBatches * kBatch);
}

}  // namespace
}  // namespace seplsm::engine
