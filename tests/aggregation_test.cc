#include "engine/aggregation.h"

#include <gtest/gtest.h>

#include "engine/ts_engine.h"
#include "env/mem_env.h"

namespace seplsm::engine {
namespace {

TEST(AggregatesTest, AccumulateBasics) {
  Aggregates a;
  a.Accumulate({10, 11, 5.0});
  a.Accumulate({20, 21, -1.0});
  a.Accumulate({30, 31, 2.0});
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min, -1.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
  EXPECT_EQ(a.first_time, 10);
  EXPECT_EQ(a.last_time, 30);
  EXPECT_DOUBLE_EQ(a.first_value, 5.0);
  EXPECT_DOUBLE_EQ(a.last_value, 2.0);
}

TEST(AggregatesTest, EmptyMeanIsZero) {
  Aggregates a;
  EXPECT_EQ(a.count, 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(BucketizeTest, AlignsToLowerBound) {
  std::vector<DataPoint> points;
  for (int64_t t = 0; t < 100; t += 10) points.push_back({t, t, 1.0});
  auto buckets = BucketizePoints(points, 0, 99, 30);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].bucket_start, 0);
  EXPECT_EQ(buckets[0].bucket_end, 30);
  EXPECT_EQ(buckets[0].aggregates.count, 3u);  // 0,10,20
  EXPECT_EQ(buckets[3].bucket_start, 90);
  EXPECT_EQ(buckets[3].aggregates.count, 1u);  // 90
}

TEST(BucketizeTest, SkipsEmptyBuckets) {
  std::vector<DataPoint> points = {{0, 0, 1.0}, {95, 95, 2.0}};
  auto buckets = BucketizePoints(points, 0, 99, 10);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].bucket_start, 0);
  EXPECT_EQ(buckets[1].bucket_start, 90);
}

TEST(BucketizeTest, IgnoresOutOfRangePoints) {
  std::vector<DataPoint> points = {{-5, 0, 1.0}, {5, 5, 2.0}, {200, 200, 3.0}};
  auto buckets = BucketizePoints(points, 0, 99, 50);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].aggregates.count, 1u);
}

TEST(BucketizeTest, NonPositiveWidthEmpty) {
  std::vector<DataPoint> points = {{0, 0, 1.0}};
  EXPECT_TRUE(BucketizePoints(points, 0, 10, 0).empty());
  EXPECT_TRUE(BucketizePoints(points, 0, 10, -5).empty());
}

class EngineAggregationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Options o;
    o.env = &env_;
    o.dir = "/agg";
    o.policy = PolicyConfig::Conventional(16);
    o.sstable_points = 32;
    auto open = TsEngine::Open(o);
    ASSERT_TRUE(open.ok());
    db_ = std::move(open).value();
    // 100 points: value = t, every 10th point overwritten to 1000 later.
    for (int64_t t = 0; t < 100; ++t) {
      ASSERT_TRUE(db_->Append({t, t, static_cast<double>(t)}).ok());
    }
    for (int64_t t = 0; t < 100; t += 10) {
      ASSERT_TRUE(db_->Append({t, 1000 + t, 1000.0}).ok());
    }
  }

  MemEnv env_;
  std::unique_ptr<TsEngine> db_;
};

TEST_F(EngineAggregationTest, AggregateRespectsUpserts) {
  Aggregates a;
  ASSERT_TRUE(db_->Aggregate(0, 99, &a).ok());
  EXPECT_EQ(a.count, 100u);  // no duplicates despite rewrites
  EXPECT_DOUBLE_EQ(a.max, 1000.0);
  // Sum: 0..99 minus overwritten (0,10,...,90 -> originally 450) plus
  // 10 * 1000.
  EXPECT_DOUBLE_EQ(a.sum, 4950.0 - 450.0 + 10000.0);
}

TEST_F(EngineAggregationTest, AggregateSubRange) {
  Aggregates a;
  ASSERT_TRUE(db_->Aggregate(25, 29, &a).ok());
  EXPECT_EQ(a.count, 5u);
  EXPECT_DOUBLE_EQ(a.min, 25.0);
  EXPECT_DOUBLE_EQ(a.max, 29.0);
  EXPECT_EQ(a.first_time, 25);
  EXPECT_EQ(a.last_time, 29);
}

TEST_F(EngineAggregationTest, AggregateEmptyRange) {
  Aggregates a;
  ASSERT_TRUE(db_->Aggregate(5000, 6000, &a).ok());
  EXPECT_EQ(a.count, 0u);
}

TEST_F(EngineAggregationTest, DownsampleBuckets) {
  std::vector<TimeBucket> buckets;
  ASSERT_TRUE(db_->Downsample(0, 99, 25, &buckets).ok());
  ASSERT_EQ(buckets.size(), 4u);
  uint64_t total = 0;
  for (const auto& b : buckets) {
    EXPECT_EQ(b.bucket_end - b.bucket_start, 25);
    total += b.aggregates.count;
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(EngineAggregationTest, DownsampleInvalidWidth) {
  std::vector<TimeBucket> buckets;
  EXPECT_TRUE(db_->Downsample(0, 99, 0, &buckets).IsInvalidArgument());
}

TEST_F(EngineAggregationTest, QueryStatsPropagated) {
  QueryStats stats;
  Aggregates a;
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->Aggregate(0, 99, &a, &stats).ok());
  EXPECT_EQ(stats.points_returned, 100u);
  EXPECT_GT(stats.disk_points_scanned, 0u);
}

}  // namespace
}  // namespace seplsm::engine
