#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "dist/empirical.h"
#include "dist/gamma.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "dist/shifted.h"
#include "numeric/integration.h"

namespace seplsm::dist {
namespace {

using Factory = std::function<DistributionPtr()>;

struct DistCase {
  std::string label;
  Factory make;
};

std::vector<DistCase> AllCases() {
  return {
      {"lognormal_4_15",
       [] { return std::make_unique<LognormalDistribution>(4.0, 1.5); }},
      {"lognormal_5_2",
       [] { return std::make_unique<LognormalDistribution>(5.0, 2.0); }},
      {"exponential_100",
       [] { return std::make_unique<ExponentialDistribution>(100.0); }},
      {"uniform_10_200",
       [] { return std::make_unique<UniformDistribution>(10.0, 200.0); }},
      {"pareto_50_25",
       [] { return std::make_unique<ParetoDistribution>(50.0, 2.5); }},
      {"weibull_80_14",
       [] { return std::make_unique<WeibullDistribution>(80.0, 1.4); }},
      {"gamma_2_50",
       [] { return std::make_unique<GammaDistribution>(2.0, 50.0); }},
      {"gamma_05_200",
       [] { return std::make_unique<GammaDistribution>(0.5, 200.0); }},
      {"mixture",
       [] {
         return MakeMixture(
             0.7, std::make_unique<LognormalDistribution>(3.0, 0.5), 0.3,
             std::make_unique<ExponentialDistribution>(500.0));
       }},
      {"shifted",
       [] {
         return std::make_unique<ShiftedScaledDistribution>(
             std::make_unique<ExponentialDistribution>(50.0), 20.0, 2.0);
       }},
  };
}

class DistributionContractTest
    : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionContractTest, CdfMonotoneAndBounded) {
  auto d = GetParam().make();
  double prev = -1.0;
  for (double x = 0.0; x <= 10000.0; x += 97.0) {
    double f = d->Cdf(x);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_EQ(d->Cdf(-5.0), 0.0);
}

TEST_P(DistributionContractTest, QuantileInvertsCdf) {
  auto d = GetParam().make();
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    double x = d->Quantile(q);
    EXPECT_NEAR(d->Cdf(x), q, 5e-3) << "q=" << q;
  }
}

TEST_P(DistributionContractTest, PdfIntegratesToCdfDifference) {
  auto d = GetParam().make();
  double a = d->Quantile(0.1);
  double b = d->Quantile(0.8);
  double integral = numeric::AdaptiveSimpson(
      [&](double x) { return d->Pdf(x); }, a, b);
  // Empirical-style densities are piecewise; allow some slack.
  EXPECT_NEAR(integral, d->Cdf(b) - d->Cdf(a), 2e-2);
}

TEST_P(DistributionContractTest, SampleMatchesCdfAtMedian) {
  auto d = GetParam().make();
  Rng rng(1234);
  double median = d->Quantile(0.5);
  int below = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (d->Sample(rng) <= median) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST_P(DistributionContractTest, SamplesNonNegative) {
  auto d = GetParam().make();
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) EXPECT_GE(d->Sample(rng), 0.0);
}

TEST_P(DistributionContractTest, CloneIsIndependentAndEquivalent) {
  auto d = GetParam().make();
  auto c = d->Clone();
  for (double q : {0.2, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(d->Quantile(q), c->Quantile(q));
  }
  EXPECT_EQ(d->Name(), c->Name());
}

TEST_P(DistributionContractTest, SampleMeanMatchesMean) {
  auto d = GetParam().make();
  if (!std::isfinite(d->Mean())) GTEST_SKIP() << "infinite mean";
  Rng rng(555);
  const int n = 400000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += d->Sample(rng);
  double sample_mean = sum / n;
  // Heavy tails converge slowly; 12% relative tolerance.
  EXPECT_NEAR(sample_mean, d->Mean(),
              std::max(0.12 * d->Mean(), 1.0))
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionContractTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const auto& info) { return info.param.label; });

TEST(LognormalTest, ClosedFormMoments) {
  LognormalDistribution d(2.0, 0.5);
  EXPECT_NEAR(d.Mean(), std::exp(2.0 + 0.125), 1e-9);
  EXPECT_NEAR(d.Quantile(0.5), std::exp(2.0), 1e-6);
}

TEST(LognormalTest, CdfAtMedianIsHalf) {
  LognormalDistribution d(4.0, 1.5);
  EXPECT_NEAR(d.Cdf(std::exp(4.0)), 0.5, 1e-9);
}

TEST(StdNormalTest, CdfKnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(StdNormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(StdNormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.3, 0.5, 0.7, 0.99, 0.999}) {
    EXPECT_NEAR(StdNormalCdf(StdNormalQuantile(p)), p, 1e-7);
  }
}

TEST(ExponentialTest, Memorylessness) {
  ExponentialDistribution d(10.0);
  // P(X > s+t | X > s) == P(X > t)
  double s = 5.0, t = 7.0;
  double lhs = (1.0 - d.Cdf(s + t)) / (1.0 - d.Cdf(s));
  EXPECT_NEAR(lhs, 1.0 - d.Cdf(t), 1e-12);
}

TEST(UniformTest, DensityFlat) {
  UniformDistribution d(10.0, 20.0);
  EXPECT_DOUBLE_EQ(d.Pdf(15.0), 0.1);
  EXPECT_DOUBLE_EQ(d.Pdf(5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Pdf(25.0), 0.0);
}

TEST(ParetoTest, InfiniteMeanWhenShapeBelowOne) {
  ParetoDistribution d(100.0, 0.9);
  EXPECT_TRUE(std::isinf(d.Mean()));
}

TEST(ParetoTest, SurvivalPowerLaw) {
  ParetoDistribution d(100.0, 2.0);
  double s1 = 1.0 - d.Cdf(100.0);   // (100/200)^2 = 0.25
  EXPECT_NEAR(s1, 0.25, 1e-12);
}

TEST(GammaTest, ShapeOneIsExponential) {
  GammaDistribution g(1.0, 100.0);
  ExponentialDistribution e(100.0);
  for (double x : {1.0, 50.0, 200.0, 1000.0}) {
    EXPECT_NEAR(g.Cdf(x), e.Cdf(x), 1e-10);
    EXPECT_NEAR(g.Pdf(x), e.Pdf(x), 1e-10);
  }
}

TEST(GammaTest, KnownCdfValues) {
  // Erlang-2 CDF: 1 - e^{-u}(1+u), u = x/theta.
  GammaDistribution g(2.0, 1.0);
  for (double u : {0.5, 1.0, 3.0}) {
    double want = 1.0 - std::exp(-u) * (1.0 + u);
    EXPECT_NEAR(g.Cdf(u), want, 1e-10);
  }
}

TEST(GammaTest, MeanAndSampleAgree) {
  GammaDistribution g(3.0, 40.0);
  EXPECT_DOUBLE_EQ(g.Mean(), 120.0);
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += g.Sample(rng);
  EXPECT_NEAR(sum / n, 120.0, 1.5);
}

TEST(GammaTest, SmallShapeSamplesValid) {
  GammaDistribution g(0.3, 10.0);
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double s = g.Sample(rng);
    ASSERT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(PointMassTest, StepCdf) {
  PointMassDistribution d(42.0);
  EXPECT_EQ(d.Cdf(41.999), 0.0);
  EXPECT_EQ(d.Cdf(42.0), 1.0);
  Rng rng(1);
  EXPECT_EQ(d.Sample(rng), 42.0);
  EXPECT_EQ(d.Quantile(0.77), 42.0);
}

TEST(MixtureTest, CdfIsWeightedSum) {
  auto a = std::make_unique<UniformDistribution>(0.0, 10.0);
  auto b = std::make_unique<UniformDistribution>(100.0, 110.0);
  auto m = MakeMixture(0.25, std::move(a), 0.75, std::move(b));
  EXPECT_NEAR(m->Cdf(10.0), 0.25, 1e-12);
  EXPECT_NEAR(m->Cdf(105.0), 0.25 + 0.75 * 0.5, 1e-12);
}

TEST(MixtureTest, WeightsNormalized) {
  auto m = MakeMixture(2.0, std::make_unique<ExponentialDistribution>(1.0),
                       6.0, std::make_unique<ExponentialDistribution>(1.0));
  auto* mix = dynamic_cast<MixtureDistribution*>(m.get());
  ASSERT_NE(mix, nullptr);
  EXPECT_NEAR(mix->weight(0), 0.25, 1e-12);
  EXPECT_NEAR(mix->weight(1), 0.75, 1e-12);
}

TEST(MixtureTest, QuantileBisectionConsistent) {
  auto m = MakeMixture(0.5, std::make_unique<LognormalDistribution>(2.0, 1.0),
                       0.5, std::make_unique<ExponentialDistribution>(50.0));
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(m->Cdf(m->Quantile(q)), q, 1e-6);
  }
}

TEST(ShiftedTest, OffsetMovesSupport) {
  ShiftedScaledDistribution d(std::make_unique<ExponentialDistribution>(10.0),
                              100.0);
  EXPECT_EQ(d.Cdf(99.0), 0.0);
  EXPECT_GT(d.Cdf(101.0), 0.0);
  EXPECT_NEAR(d.Mean(), 110.0, 1e-9);
}

TEST(ShiftedTest, ScaleStretches) {
  ShiftedScaledDistribution d(std::make_unique<UniformDistribution>(0.0, 1.0),
                              0.0, 10.0);
  EXPECT_NEAR(d.Quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(d.Pdf(5.0), 0.1, 1e-9);
}

TEST(EmpiricalTest, MatchesSampleQuantiles) {
  Rng rng(77);
  LognormalDistribution source(3.0, 1.0);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(source.Sample(rng));
  EmpiricalDistribution d(sample);
  for (double q : {0.1, 0.5, 0.9}) {
    double got = d.Quantile(q);
    double want = source.Quantile(q);
    EXPECT_NEAR(got / want, 1.0, 0.08) << "q=" << q;
  }
}

TEST(EmpiricalTest, CdfOfSampleValuesConsistent) {
  EmpiricalDistribution d(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_NEAR(d.Cdf(3.0), 0.6, 1e-9);
  EXPECT_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_EQ(d.Cdf(5.0), 1.0);
}

TEST(EmpiricalTest, NegativeSamplesClamped) {
  EmpiricalDistribution d(std::vector<double>{-5.0, -1.0, 2.0});
  EXPECT_EQ(d.Quantile(0.01), 0.0);
}

TEST(EmpiricalTest, ConstantSampleDegenerate) {
  EmpiricalDistribution d(std::vector<double>{7.0, 7.0, 7.0});
  EXPECT_NEAR(d.Mean(), 7.0, 1e-9);
  Rng rng(2);
  EXPECT_NEAR(d.Sample(rng), 7.0, 1e-6);
}

TEST(EmpiricalTest, PdfIntegratesToOne) {
  Rng rng(31);
  ExponentialDistribution source(20.0);
  std::vector<double> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back(source.Sample(rng));
  EmpiricalDistribution d(sample);
  double mass = numeric::AdaptiveSimpson(
      [&](double x) { return d.Pdf(x); }, 0.0, d.Quantile(0.9999) * 1.01);
  EXPECT_NEAR(mass, 1.0, 0.05);
}

}  // namespace
}  // namespace seplsm::dist
