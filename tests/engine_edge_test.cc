// Edge-case and boundary tests for TsEngine beyond the main behavioural
// suite: extreme capacities, empty-state queries, key-space gaps, negative
// timestamps, background-mode shutdown/backpressure.

#include <gtest/gtest.h>

#include "engine/ts_engine.h"
#include "env/mem_env.h"

namespace seplsm::engine {
namespace {

class EngineEdgeTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options o;
    o.env = &env_;
    o.dir = "/db";
    o.sstable_points = 16;
    o.points_per_block = 4;
    return o;
  }

  std::unique_ptr<TsEngine> MustOpen(Options o) {
    auto e = TsEngine::Open(std::move(o));
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  MemEnv env_;
};

TEST_F(EngineEdgeTest, QueryEmptyEngine) {
  auto db = MustOpen(BaseOptions());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(-1000, 1000, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(EngineEdgeTest, FlushAllOnEmptyEngine) {
  auto db = MustOpen(BaseOptions());
  EXPECT_TRUE(db->FlushAll().ok());
  EXPECT_TRUE(db->Checkpoint().ok());
}

TEST_F(EngineEdgeTest, NegativeGenerationTimes) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o);
  for (int64_t t = -100; t < -50; ++t) {
    ASSERT_TRUE(db->Append({t, t + 5, 1.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(-100, -51, &out).ok());
  EXPECT_EQ(out.size(), 50u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineEdgeTest, MemTableCapacityOne) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(1);
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
  }
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 19, &out).ok());
  EXPECT_EQ(out.size(), 20u);
  // Every point flushed individually, nothing buffered.
  EXPECT_EQ(db->GetMetrics().points_flushed, 20u);
}

TEST_F(EngineEdgeTest, SSTablePointsOne) {
  Options o = BaseOptions();
  o.num_levels = 2;  // RunFileCount is shape-sensitive: pin the seed tree
  o.policy = PolicyConfig::Conventional(4);
  o.sstable_points = 1;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 12; ++t) {
    ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  EXPECT_EQ(db->RunFileCount(), 12u);
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 11, &out).ok());
  EXPECT_EQ(out.size(), 12u);
}

TEST_F(EngineEdgeTest, QuerySpanningRunGaps) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(8, 4);
  auto db = MustOpen(o);
  // In-order points with large key gaps: files [0..30], [40..70], ...
  for (int64_t t = 0; t < 16; ++t) {
    ASSERT_TRUE(db->Append({t * 10, t * 10, 0.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  // A query entirely inside a gap.
  ASSERT_TRUE(db->Query(41, 49, &out).ok());
  EXPECT_TRUE(out.empty());
  // A query straddling gaps.
  ASSERT_TRUE(db->Query(35, 95, &out).ok());
  EXPECT_EQ(out.size(), 6u);  // 40,50,60,70,80,90
}

TEST_F(EngineEdgeTest, OutOfOrderPointIntoRunGap) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(8, 6);  // C_nonseq = 2
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 36; ++t) {
    ASSERT_TRUE(db->Append({t * 100, t * 100, 0.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  // Two stale points whose keys fall between existing keys.
  ASSERT_TRUE(db->Append({155, 100000, 7.0}).ok());
  ASSERT_TRUE(db->Append({255, 100001, 8.0}).ok());  // fills C_nonseq
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->CheckInvariants().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(150, 260, &out).ok());
  ASSERT_EQ(out.size(), 3u);  // 155 (merged in), 200 (original), 255
  EXPECT_EQ(out[0].generation_time, 155);
  EXPECT_EQ(out[1].generation_time, 200);
  EXPECT_EQ(out[2].generation_time, 255);
}

TEST_F(EngineEdgeTest, SeparationAllPointsOutOfOrderAfterSeed) {
  Options o = BaseOptions();
  o.num_levels = 2;  // merge accounting is shape-sensitive: pin the seed tree
  o.policy = PolicyConfig::Separation(8, 4);
  auto db = MustOpen(o);
  // Seed the disk with a high key, then send only stale points.
  ASSERT_TRUE(db->Append({1'000'000, 1'000'000, 0.0}).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  for (int64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(db->Append({t, 2'000'000 + t, 0.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 2'000'000, &out).ok());
  EXPECT_EQ(out.size(), 41u);
  Metrics m = db->GetMetrics();
  EXPECT_GT(m.merge_count, 0u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineEdgeTest, BackpressureBoundsLevel0) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(4);
  o.background_mode = true;
  o.max_level0_files = 2;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 400; ++t) {
    ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
    ASSERT_LE(db->Level0FileCount(), 3u);  // cap + one in-flight flush
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 399, &out).ok());
  EXPECT_EQ(out.size(), 400u);
}

TEST_F(EngineEdgeTest, DestructorWithPendingLevel0ThenReopen) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(4);
  o.background_mode = true;
  {
    auto db = MustOpen(o);
    for (int64_t t = 0; t < 100; ++t) {
      ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
    }
    // Destroy without waiting: the background thread must finish its queue.
  }
  Options o2 = BaseOptions();
  o2.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o2);
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 99, &out).ok());
  // Everything flushed to level 0 before destruction is recovered; only
  // the final partial MemTable (< 4 points) may be missing.
  EXPECT_GE(out.size(), 96u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineEdgeTest, SwitchPolicyInBackgroundMode) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  o.background_mode = true;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 50; ++t) {
    ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
  }
  ASSERT_TRUE(db->SwitchPolicy(PolicyConfig::Separation(8, 4)).ok());
  for (int64_t t = 50; t < 100; ++t) {
    ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 99, &out).ok());
  EXPECT_EQ(out.size(), 100u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineEdgeTest, SingleKeyRewrittenManyTimes) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(2);
  auto db = MustOpen(o);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Append({42, 1000 + i, static_cast<double>(i)}).ok());
    ASSERT_TRUE(db->Append({43, 1000 + i, static_cast<double>(-i)}).ok());
  }
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(42, 43, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, 99.0);
  EXPECT_EQ(out[1].value, -99.0);
}

TEST_F(EngineEdgeTest, LargeTimestampMagnitudes) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o);
  const int64_t base = 1'600'000'000'000'000'000LL;  // ~ns epoch scale
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(db->Append({base + t, base + t + 7, 0.5}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(base, base + 19, &out).ok());
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(out[0].generation_time, base);
}

TEST_F(EngineEdgeTest, RecoversTablesWithWideFileNumbers) {
  // Regression: recovery used to accept only exactly-8-digit "NNNNNNNN.sst"
  // names, but TableFilePath prints numbers past 99'999'999 with 9+ digits.
  // Those tables were silently skipped on reopen — durable, acknowledged
  // data vanishing without any error.
  const std::string dir = "/db";
  ASSERT_TRUE(env_.CreateDirIfMissing(dir).ok());
  std::vector<DataPoint> points;
  for (int64_t t = 0; t < 32; ++t) points.push_back({t, t, 4.0});
  uint64_t next_file_no = 100'000'000;  // first 9-digit file number
  std::vector<storage::FileMetadata> files;
  ASSERT_TRUE(storage::WriteSortedPointsAsTables(&env_, dir, points, 16, 4,
                                                 &next_file_no, &files)
                  .ok());
  ASSERT_EQ(files.size(), 2u);

  auto db = MustOpen(BaseOptions());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 31, &out).ok());
  ASSERT_EQ(out.size(), 32u) << "recovery dropped wide-numbered tables";
  EXPECT_EQ(out[0].value, 4.0);

  // New files must be numbered above the recovered ones, not under them.
  for (int64_t t = 100; t < 140; ++t) {
    ASSERT_TRUE(db->Append({t, t, 5.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->Query(0, 200, &out).ok());
  EXPECT_EQ(out.size(), 72u);
  EXPECT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineEdgeTest, MetricsMergeEventsDisabled) {
  Options o = BaseOptions();
  o.num_levels = 2;  // merge accounting is shape-sensitive: pin the seed tree
  o.policy = PolicyConfig::Conventional(4);
  o.record_merge_events = false;
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 16; ++t) ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
  ASSERT_TRUE(db->Append({2, 100, 0.0}).ok());
  for (int64_t t = 16; t < 19; ++t) {
    ASSERT_TRUE(db->Append({t, t, 0.0}).ok());
  }
  Metrics m = db->GetMetrics();
  EXPECT_GT(m.merge_count, 0u);
  EXPECT_TRUE(m.merge_events.empty());
}

}  // namespace
}  // namespace seplsm::engine
