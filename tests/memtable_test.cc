#include "storage/memtable.h"

#include <gtest/gtest.h>

namespace seplsm::storage {
namespace {

TEST(MemTableTest, InsertAndDrainSorted) {
  MemTable m(10);
  EXPECT_TRUE(m.Add({30, 31, 3.0}));
  EXPECT_TRUE(m.Add({10, 11, 1.0}));
  EXPECT_TRUE(m.Add({20, 21, 2.0}));
  EXPECT_EQ(m.size(), 3u);
  auto points = m.Drain();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].generation_time, 10);
  EXPECT_EQ(points[1].generation_time, 20);
  EXPECT_EQ(points[2].generation_time, 30);
  EXPECT_TRUE(m.empty());
}

TEST(MemTableTest, UpsertReplacesValue) {
  MemTable m(10);
  EXPECT_TRUE(m.Add({5, 6, 1.0}));
  EXPECT_FALSE(m.Add({5, 7, 2.0}));  // same key
  EXPECT_EQ(m.size(), 1u);
  auto points = m.Drain();
  EXPECT_EQ(points[0].value, 2.0);
  EXPECT_EQ(points[0].arrival_time, 7);
}

TEST(MemTableTest, FullAtCapacity) {
  MemTable m(3);
  m.Add({1, 1, 0});
  m.Add({2, 2, 0});
  EXPECT_FALSE(m.full());
  m.Add({3, 3, 0});
  EXPECT_TRUE(m.full());
}

TEST(MemTableTest, MinMaxGenerationTime) {
  MemTable m(10);
  m.Add({50, 51, 0});
  m.Add({-3, 0, 0});
  m.Add({17, 18, 0});
  EXPECT_EQ(m.min_generation_time(), -3);
  EXPECT_EQ(m.max_generation_time(), 50);
}

TEST(MemTableTest, CollectRangeInclusive) {
  MemTable m(10);
  for (int64_t t : {10, 20, 30, 40}) m.Add({t, t, 0});
  std::vector<DataPoint> out;
  m.CollectRange(20, 30, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].generation_time, 20);
  EXPECT_EQ(out[1].generation_time, 30);
}

TEST(MemTableTest, CollectRangeEmptyOutside) {
  MemTable m(10);
  m.Add({10, 10, 0});
  std::vector<DataPoint> out;
  m.CollectRange(100, 200, &out);
  EXPECT_TRUE(out.empty());
}

TEST(MemTableTest, ClearEmpties) {
  MemTable m(5);
  m.Add({1, 1, 0});
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(MemTableSnapshotTest, ViewFrozenAcrossAdd) {
  MemTable m(10);
  m.Add({10, 10, 1.0});
  m.Add({20, 20, 2.0});
  MemTable::View view = m.SnapshotView();

  m.Add({30, 30, 3.0});       // new key after the snapshot
  m.Add({10, 11, 9.0});       // overwrite after the snapshot

  ASSERT_EQ(view->size(), 2u);  // view still sees the snapshot state
  EXPECT_EQ(view->at(10).value, 1.0);
  EXPECT_EQ(view->count(30), 0u);

  EXPECT_EQ(m.size(), 3u);  // the live table sees the new data
  std::vector<DataPoint> out;
  m.CollectRange(10, 10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 9.0);
}

TEST(MemTableSnapshotTest, ViewFrozenAcrossDrainAndClear) {
  MemTable m(10);
  m.Add({1, 1, 1.0});
  MemTable::View v1 = m.SnapshotView();
  auto drained = m.Drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(v1->size(), 1u);  // drain did not disturb the view

  m.Add({2, 2, 2.0});
  MemTable::View v2 = m.SnapshotView();
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(v2->size(), 1u);
  EXPECT_EQ(v2->count(2), 1u);
}

TEST(MemTableSnapshotTest, AtMostOneClonePerSnapshot) {
  MemTable m(10);
  m.Add({1, 1, 0});
  MemTable::View view = m.SnapshotView();
  m.Add({2, 2, 0});  // detaches once
  MemTable::View after_first = m.SnapshotView();
  m.Add({3, 3, 0});  // detaches again (a new view was just taken) ...
  m.Add({4, 4, 0});  // ... but further Adds reuse the same map
  std::vector<DataPoint> out;
  m.CollectRange(1, 4, &out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(view->size(), 1u);
  EXPECT_EQ(after_first->size(), 2u);
}

TEST(MemTableSnapshotTest, NoSnapshotMeansNoClone) {
  MemTable m(4);
  m.Add({1, 1, 0});
  MemTable::View view = m.SnapshotView();
  const MemTable::PointMap* before = view.get();
  view.reset();  // reader finished before the next mutation
  // The flag is still set (the table cannot know the reader is gone), so
  // the next Add clones once — correctness over micro-optimization.
  m.Add({2, 2, 0});
  std::vector<DataPoint> out;
  m.CollectRange(1, 2, &out);
  EXPECT_EQ(out.size(), 2u);
  (void)before;
}

}  // namespace
}  // namespace seplsm::storage
