// The scalar kernels in format::scalar define the on-disk byte format; the
// dispatched (possibly SIMD) kernels must match them bit for bit. These
// fuzz loops run the two side by side in one binary — >= 1000 seeded
// iterations per property — and the golden blocks in tests/data/ pin the
// absolute bytes so neither path can drift even in lockstep. Corrupt and
// truncated inputs must always come back as a Status (or a false), never a
// crash; the loops also run under the ASan job.

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "env/env.h"
#include "format/block.h"
#include "format/simd.h"
#include "format/value_codec.h"

namespace seplsm::format {
namespace {

constexpr size_t kFuzzIters = 1200;

/// Random signed value whose magnitude spans the full varint width range:
/// small deltas (the hot path) through 10-byte encodings.
int64_t RandomValue(std::mt19937_64& rng) {
  const int shift = static_cast<int>(rng() % 64);
  int64_t v = static_cast<int64_t>(rng() >> shift);
  if (rng() % 2 == 0) v = -v;
  return v;
}

TEST(CodecSimdTest, DispatchReportsAConsistentLevel) {
  const SimdLevel level = ActiveSimdLevel();
  const std::string name = SimdLevelName();
  switch (level) {
    case SimdLevel::kScalar:
      EXPECT_EQ(name, "scalar");
      break;
    case SimdLevel::kSSE2:
      EXPECT_EQ(name, "sse2");
      break;
    case SimdLevel::kNEON:
      EXPECT_EQ(name, "neon");
      break;
  }
}

TEST(CodecSimdTest, ZigZagEncodeMatchesScalarFuzz) {
  std::mt19937_64 rng(20220811);
  for (size_t iter = 0; iter < kFuzzIters; ++iter) {
    const size_t count = rng() % 300;
    std::vector<int64_t> values(count);
    const bool all_small = iter % 3 == 0;  // stress the 8-lane fast path
    for (auto& v : values) {
      v = all_small ? static_cast<int64_t>(rng() % 64) : RandomValue(rng);
    }
    std::string dispatched, reference;
    EncodeZigZagVarints(values.data(), count, &dispatched);
    scalar::EncodeZigZagVarints(values.data(), count, &reference);
    ASSERT_EQ(dispatched, reference) << "iter " << iter;

    // Cross-decode: each decoder over the shared bytes, identical output
    // and identical leftover input.
    std::string_view in_d(dispatched), in_s(reference);
    std::vector<int64_t> out_d(count), out_s(count);
    ASSERT_TRUE(DecodeZigZagVarints(&in_d, count, out_d.data()));
    ASSERT_TRUE(scalar::DecodeZigZagVarints(&in_s, count, out_s.data()));
    ASSERT_EQ(out_d, values) << "iter " << iter;
    ASSERT_EQ(out_s, values) << "iter " << iter;
    ASSERT_EQ(in_d.size(), in_s.size());
  }
}

TEST(CodecSimdTest, ZigZagDecodeTruncationMatchesScalar) {
  std::mt19937_64 rng(99);
  for (size_t iter = 0; iter < kFuzzIters; ++iter) {
    const size_t count = 1 + rng() % 64;
    std::vector<int64_t> values(count);
    for (auto& v : values) v = RandomValue(rng);
    std::string encoded;
    scalar::EncodeZigZagVarints(values.data(), count, &encoded);
    // Cut anywhere, including zero: both decoders must agree on success,
    // on decoded prefix, and on bytes consumed.
    const size_t cut = rng() % (encoded.size() + 1);
    std::string_view in_d(encoded.data(), cut), in_s(encoded.data(), cut);
    std::vector<int64_t> out_d(count, -1), out_s(count, -1);
    const bool ok_d = DecodeZigZagVarints(&in_d, count, out_d.data());
    const bool ok_s = scalar::DecodeZigZagVarints(&in_s, count, out_s.data());
    ASSERT_EQ(ok_d, ok_s) << "iter " << iter << " cut " << cut;
    ASSERT_EQ(in_d.size(), in_s.size()) << "iter " << iter;
    ASSERT_EQ(out_d, out_s) << "iter " << iter;
    if (cut == encoded.size()) ASSERT_TRUE(ok_d);
  }
}

TEST(CodecSimdTest, F64ColumnMatchesScalarFuzz) {
  std::mt19937_64 rng(4242);
  for (size_t iter = 0; iter < kFuzzIters; ++iter) {
    const size_t count = rng() % 200;
    // Arbitrary bit patterns: NaNs, infinities, denormals included — the
    // copy kernels must be bit-transparent.
    std::vector<double> values(count);
    for (auto& v : values) {
      const uint64_t bits = rng();
      std::memcpy(&v, &bits, sizeof(v));
    }
    std::string enc_d, enc_s;
    EncodeF64LE(values.data(), count, &enc_d);
    scalar::EncodeF64LE(values.data(), count, &enc_s);
    ASSERT_EQ(enc_d, enc_s) << "iter " << iter;

    if (count == 0) continue;  // memcmp on a null data() is UB
    std::vector<double> dec_d(count), dec_s(count);
    DecodeF64LE(enc_d.data(), count, dec_d.data());
    scalar::DecodeF64LE(enc_s.data(), count, dec_s.data());
    ASSERT_EQ(std::memcmp(dec_d.data(), values.data(), count * 8), 0);
    ASSERT_EQ(std::memcmp(dec_s.data(), values.data(), count * 8), 0);
  }
}

TEST(CodecSimdTest, CountOneByteVarintsMatchesScalar) {
  std::mt19937_64 rng(31337);
  for (size_t iter = 0; iter < kFuzzIters; ++iter) {
    const size_t len = rng() % 128;
    std::vector<uint8_t> data(len);
    for (auto& b : data) {
      // Bias toward long one-byte runs so the vector path's early-exit and
      // full-run branches both fire.
      b = static_cast<uint8_t>(rng() % (iter % 2 == 0 ? 128 : 256));
    }
    ASSERT_EQ(CountOneByteVarints(data.data(), len),
              scalar::CountOneByteVarints(data.data(), len))
        << "iter " << iter;
  }
}

std::vector<DataPoint> RandomSortedPoints(std::mt19937_64& rng, size_t n) {
  std::vector<DataPoint> points;
  int64_t t = static_cast<int64_t>(rng() % 1000);
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<int64_t>(rng() % 1000);
    // Exact-in-double values so equality comparison is exact.
    points.push_back({t, t + static_cast<int64_t>(rng() % 100),
                      static_cast<double>(rng() % (1 << 20)) / 16.0});
  }
  return points;
}

TEST(CodecSimdTest, BlockRoundTripFuzzBothEncodings) {
  std::mt19937_64 rng(777);
  for (size_t iter = 0; iter < 1000; ++iter) {
    const auto points = RandomSortedPoints(rng, 1 + rng() % 200);
    for (ValueEncoding enc :
         {ValueEncoding::kRaw, ValueEncoding::kGorilla}) {
      BlockBuilder builder(enc);
      for (const auto& p : points) builder.Add(p);
      const std::string block = builder.Finish();
      std::vector<DataPoint> out;
      ASSERT_TRUE(DecodeBlock(block, &out).ok()) << "iter " << iter;
      ASSERT_EQ(out, points) << "iter " << iter;
    }
  }
}

TEST(CodecSimdTest, TruncatedBlocksNeverCrash) {
  std::mt19937_64 rng(555);
  const auto points = RandomSortedPoints(rng, 150);
  for (ValueEncoding enc : {ValueEncoding::kRaw, ValueEncoding::kGorilla}) {
    BlockBuilder builder(enc);
    for (const auto& p : points) builder.Add(p);
    const std::string block = builder.Finish();
    for (size_t len = 0; len < block.size(); ++len) {
      std::vector<DataPoint> out;
      const Status st = DecodeBlock(std::string_view(block.data(), len), &out);
      EXPECT_FALSE(st.ok()) << "prefix " << len << " must not verify";
    }
  }
}

TEST(CodecSimdTest, CorruptBlocksNeverCrash) {
  std::mt19937_64 rng(12321);
  const auto points = RandomSortedPoints(rng, 120);
  for (ValueEncoding enc : {ValueEncoding::kRaw, ValueEncoding::kGorilla}) {
    BlockBuilder builder(enc);
    for (const auto& p : points) builder.Add(p);
    const std::string block = builder.Finish();
    for (size_t iter = 0; iter < kFuzzIters; ++iter) {
      std::string bad = block;
      const size_t flips = 1 + rng() % 4;
      for (size_t f = 0; f < flips; ++f) {
        bad[rng() % bad.size()] ^= static_cast<char>(1 + rng() % 255);
      }
      std::vector<DataPoint> out;
      DecodeBlock(bad, &out).ok();  // any Status is fine; crashing is not
    }
  }
}

/// The Gorilla bit-reader sits below the CRC, so feed it raw garbage too —
/// the decoder must stop with a Status on any input.
TEST(CodecSimdTest, GorillaDecodeOnGarbageNeverCrashes) {
  std::mt19937_64 rng(88);
  for (size_t iter = 0; iter < kFuzzIters; ++iter) {
    const size_t len = rng() % 256;
    std::string data(len, '\0');
    for (auto& c : data) c = static_cast<char>(rng());
    std::vector<double> out;
    DecodeValues(ValueEncoding::kGorilla, data, 1 + rng() % 64, &out).ok();
    ASSERT_LE(out.size(), 64u);
  }
}

// ---------------------------------------------------------------------------
// Golden blocks: absolute bytes committed in tests/data/. A change here
// means the on-disk format changed — that is a format revision, not a
// refactor. Regeneration steps live in tests/data/README.md.
// ---------------------------------------------------------------------------

/// Must match the generator in tests/data/README.md exactly.
std::vector<DataPoint> GoldenBlockPoints() {
  std::vector<DataPoint> points;
  int64_t t = 0;
  for (int i = 0; i < 400; ++i) {
    t += (i % 7 == 0) ? 1'000'000 + i : 1 + (i % 5);
    points.push_back({t, t + (i % 11),
                      static_cast<double>((i * i) % 1000) / 16.0});
  }
  return points;
}

std::string ReadWhole(const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_TRUE(Env::Default()->NewRandomAccessFile(path, &file).ok())
      << path << " missing — regenerate per tests/data/README.md";
  std::string data;
  EXPECT_TRUE(file->Read(0, file->Size(), &data).ok());
  return data;
}

class CodecGoldenTest : public ::testing::TestWithParam<ValueEncoding> {};

TEST_P(CodecGoldenTest, GoldenBlockDecodesAndReencodesIdentically) {
  const ValueEncoding enc = GetParam();
  const std::string path =
      std::string(SEPLSM_TEST_DATA_DIR) +
      (enc == ValueEncoding::kRaw ? "/golden_block_raw.blk"
                                  : "/golden_block_gorilla.blk");
  const std::string golden = ReadWhole(path);
  ASSERT_FALSE(golden.empty());

  const std::vector<DataPoint> expected = GoldenBlockPoints();
  std::vector<DataPoint> out;
  ASSERT_TRUE(DecodeBlock(golden, &out).ok());
  EXPECT_EQ(out, expected);

  BlockBuilder builder(enc);
  for (const auto& p : expected) builder.Add(p);
  EXPECT_EQ(builder.Finish(), golden)
      << "re-encoded bytes drifted from the committed golden block";
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, CodecGoldenTest,
                         ::testing::Values(ValueEncoding::kRaw,
                                           ValueEncoding::kGorilla));

}  // namespace
}  // namespace seplsm::format
