#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/job_scheduler.h"

namespace seplsm {
namespace {

using engine::JobScheduler;

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit(ThreadPool::Priority::kLow, [&] { ++ran; }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 10);
  ThreadPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.executed_low, 10u);
  EXPECT_EQ(stats.queued_low, 0u);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(
      pool.Submit(ThreadPool::Priority::kHigh, [&] { ran = true; }).ok());
  pool.Shutdown();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, HighPriorityDispatchesBeforeLow) {
  // One worker, held busy while both queues fill: when it frees up, every
  // high-priority task must run before any low-priority one.
  ThreadPool pool(1);
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit(ThreadPool::Priority::kLow,
                          [&] {
                            pinned = true;
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  // Submit() alone doesn't mean the worker has *started* the pin job; if
  // it is still queued, the high-priority tasks below would jump it.
  while (!pinned.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::mutex order_mutex;
  std::vector<int> order;
  auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
  };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        pool.Submit(ThreadPool::Priority::kLow, [&, i] { record(100 + i); })
            .ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        pool.Submit(ThreadPool::Priority::kHigh, [&, i] { record(i); }).ok());
  }
  release = true;
  pool.Shutdown();
  ASSERT_EQ(order.size(), 6u);
  // FIFO within each class, high first.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 100, 101, 102}));
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsAborted) {
  ThreadPool pool(1);
  pool.Shutdown();
  Status st = pool.Submit(ThreadPool::Priority::kHigh, [] {});
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit(ThreadPool::Priority::kLow,
                          [&] {
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit(ThreadPool::Priority::kLow, [&] { ++ran; }).ok());
  }
  release = true;
  pool.Shutdown();  // must not drop the 20 queued tasks
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, HammerManyThreadsSubmitting) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  constexpr int kSubmitters = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ThreadPool::Priority p = (t + i) % 2 == 0
                                     ? ThreadPool::Priority::kHigh
                                     : ThreadPool::Priority::kLow;
        ASSERT_TRUE(pool.Submit(p, [&] { ++ran; }).ok());
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), kSubmitters * kPerThread);
  ThreadPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.executed_high + stats.executed_low,
            static_cast<uint64_t>(kSubmitters * kPerThread));
}

TEST(JobSchedulerTest, SameTokenJobsNeverOverlap) {
  JobScheduler scheduler(4);
  auto token = scheduler.RegisterToken();
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(token, JobScheduler::JobKind::kCompaction,
                            [&](uint64_t) {
                              int now = ++concurrent;
                              int seen = max_concurrent.load();
                              while (now > seen &&
                                     !max_concurrent.compare_exchange_weak(
                                         seen, now)) {
                              }
                              std::this_thread::sleep_for(
                                  std::chrono::microseconds(100));
                              --concurrent;
                              ++ran;
                            })
                    .ok());
  }
  // Wait for all 50 (DrainToken would cancel whatever is still queued).
  for (int i = 0; i < 20000 && ran.load() < 50; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.DrainToken(token);
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(max_concurrent.load(), 1);
}

TEST(JobSchedulerTest, DistinctTokensRunInParallel) {
  // Two tokens, two workers: job A holds its slot until job B (other
  // token) has demonstrably started — impossible if tokens shared a lane.
  if (std::thread::hardware_concurrency() < 1) GTEST_SKIP();
  JobScheduler scheduler(2);
  ASSERT_EQ(scheduler.thread_count(), 2u);
  auto ta = scheduler.RegisterToken();
  auto tb = scheduler.RegisterToken();
  std::atomic<bool> b_started{false};
  ASSERT_TRUE(scheduler
                  .Submit(ta, JobScheduler::JobKind::kCompaction,
                          [&](uint64_t) {
                            while (!b_started.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(tb, JobScheduler::JobKind::kCompaction,
                          [&](uint64_t) { b_started = true; })
                  .ok());
  scheduler.DrainToken(ta);
  scheduler.DrainToken(tb);
  EXPECT_TRUE(b_started.load());
}

TEST(JobSchedulerTest, FlushRunsBeforeQueuedCompaction) {
  // Single worker pinned; a token queues a compaction then a flush. When
  // the worker reaches the token, the flush must be picked first.
  JobScheduler scheduler(1);
  auto pin = scheduler.RegisterToken();
  auto token = scheduler.RegisterToken();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  ASSERT_TRUE(scheduler
                  .Submit(pin, JobScheduler::JobKind::kCompaction,
                          [&](uint64_t) {
                            pinned = true;
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  // Wait until the worker is demonstrably inside the pin job — otherwise
  // token's jobs below could run before it is picked up.
  while (!pinned.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::mutex order_mutex;
  std::vector<std::string> order;
  auto record = [&](const char* what) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.emplace_back(what);
  };
  ASSERT_TRUE(scheduler
                  .Submit(token, JobScheduler::JobKind::kCompaction,
                          [&](uint64_t) { record("compaction"); })
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(token, JobScheduler::JobKind::kFlush,
                          [&](uint64_t) { record("flush"); })
                  .ok());
  release = true;
  scheduler.DrainToken(pin);
  // Wait for both of token's jobs (DrainToken would cancel them).
  for (int i = 0; i < 10000; ++i) {
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      if (order.size() == 2) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.DrainToken(token);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "flush");
  EXPECT_EQ(order[1], "compaction");
}

TEST(JobSchedulerTest, DrainTokenDropsQueuedJobsAndBlocksNewOnes) {
  JobScheduler scheduler(1);
  auto pin = scheduler.RegisterToken();
  auto token = scheduler.RegisterToken();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  ASSERT_TRUE(scheduler
                  .Submit(pin, JobScheduler::JobKind::kCompaction,
                          [&](uint64_t) {
                            pinned = true;
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  // Wait until the worker is demonstrably inside the pin job — otherwise
  // token's jobs below could run (ran != 0) before it is picked up.
  while (!pinned.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(token, JobScheduler::JobKind::kFlush,
                            [&](uint64_t) { ++ran; })
                    .ok());
  }
  // DrainToken cancels token's queued jobs immediately, then blocks until
  // the worker (still pinned) no-ops token's queued pool task. Release the
  // pin only once the cancellation is observable, so none of the 5 jobs
  // can sneak in ahead of the drain.
  std::thread unpin([&] {
    while (scheduler.GetStats().canceled_jobs < 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    release = true;
  });
  scheduler.DrainToken(token);  // all 5 still queued behind the pinned job
  unpin.join();
  scheduler.DrainToken(pin);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_GE(scheduler.GetStats().canceled_jobs, 5u);
  Status st =
      scheduler.Submit(token, JobScheduler::JobKind::kFlush, [](uint64_t) {});
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
}

TEST(JobSchedulerTest, QueueWaitIsReportedToTheJob) {
  JobScheduler scheduler(1);
  auto token = scheduler.RegisterToken();
  std::atomic<uint64_t> reported{~0ull};
  ASSERT_TRUE(scheduler
                  .Submit(token, JobScheduler::JobKind::kFlush,
                          [&](uint64_t wait) { reported = wait; })
                  .ok());
  for (int i = 0; i < 20000 && reported.load() == ~0ull; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.DrainToken(token);
  EXPECT_NE(reported.load(), ~0ull);  // the job ran and received a value
}

TEST(JobSchedulerTest, HammerManyTokens) {
  JobScheduler scheduler(4);
  constexpr int kTokens = 8;
  constexpr int kJobsPerToken = 100;
  std::vector<std::shared_ptr<JobScheduler::Token>> tokens;
  std::vector<std::atomic<int>> running(kTokens);
  std::vector<std::thread> submitters;
  std::atomic<bool> overlap{false};
  for (int t = 0; t < kTokens; ++t) {
    tokens.push_back(scheduler.RegisterToken());
  }
  for (int t = 0; t < kTokens; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerToken; ++i) {
        JobScheduler::JobKind kind = i % 3 == 0
                                         ? JobScheduler::JobKind::kFlush
                                         : JobScheduler::JobKind::kCompaction;
        (void)scheduler.Submit(tokens[t], kind, [&, t](uint64_t) {
          if (++running[t] != 1) overlap = true;
          --running[t];
        });
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& token : tokens) scheduler.DrainToken(token);
  EXPECT_FALSE(overlap.load()) << "same-token jobs overlapped";
}

}  // namespace
}  // namespace seplsm
