#include "model/wa_simulator.h"

#include <gtest/gtest.h>

#include "dist/parametric.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "workload/synthetic.h"

namespace seplsm::model {
namespace {

struct SimCase {
  std::string label;
  engine::PolicyConfig policy;
  size_t sstable_points;
  double sigma;
  uint64_t seed;
};

std::vector<SimCase> Cases() {
  return {
      {"conv_small", engine::PolicyConfig::Conventional(16), 32, 1.5, 1},
      {"conv_large_tables", engine::PolicyConfig::Conventional(32), 128, 2.0,
       2},
      {"sep_even", engine::PolicyConfig::Separation(32, 16), 32, 1.5, 3},
      {"sep_tiny_nonseq", engine::PolicyConfig::Separation(32, 28), 64, 2.0,
       4},
      {"sep_tiny_seq", engine::PolicyConfig::Separation(32, 4), 64, 1.0, 5},
  };
}

class WaSimulatorTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(WaSimulatorTest, MatchesEngineExactly) {
  const SimCase& c = GetParam();
  workload::SyntheticConfig sc;
  sc.num_points = 4000;
  sc.delta_t = 20.0;
  sc.seed = c.seed;
  dist::LognormalDistribution delay(3.0, c.sigma);
  auto points = workload::GenerateSynthetic(sc, delay);

  // Real engine.
  MemEnv env;
  engine::Options o;
  o.env = &env;
  o.dir = "/sim";
  o.num_levels = 2;  // the keys-only simulator models the two-level tree
  o.policy = c.policy;
  o.sstable_points = c.sstable_points;
  auto db = engine::TsEngine::Open(o);
  ASSERT_TRUE(db.ok());
  for (const auto& p : points) ASSERT_TRUE((*db)->Append(p).ok());
  ASSERT_TRUE((*db)->FlushAll().ok());
  engine::Metrics real = (*db)->GetMetrics();

  // Keys-only simulator.
  WaSimulator sim(c.policy, c.sstable_points);
  sim.AppendStream(points);
  sim.FlushAll();
  const SimulatedWa& simulated = sim.result();

  EXPECT_EQ(simulated.points_ingested, real.points_ingested);
  EXPECT_EQ(simulated.points_flushed, real.points_flushed);
  EXPECT_EQ(simulated.points_rewritten, real.points_rewritten);
  EXPECT_EQ(simulated.flush_count, real.flush_count);
  EXPECT_EQ(simulated.merge_count, real.merge_count);
  EXPECT_EQ(sim.run_file_count(), (*db)->RunFileCount());
  EXPECT_DOUBLE_EQ(simulated.WriteAmplification(),
                   real.WriteAmplification());
}

INSTANTIATE_TEST_SUITE_P(Configs, WaSimulatorTest,
                         ::testing::ValuesIn(Cases()),
                         [](const auto& info) { return info.param.label; });

TEST(WaSimulatorBasicsTest, OrderedStreamWaOne) {
  WaSimulator sim(engine::PolicyConfig::Conventional(8), 16);
  for (int64_t t = 0; t < 256; ++t) sim.Append(t);
  EXPECT_EQ(sim.result().points_rewritten, 0u);
  EXPECT_DOUBLE_EQ(sim.result().WriteAmplification(), 1.0);
}

TEST(WaSimulatorBasicsTest, DuplicateKeysAreUpserts) {
  WaSimulator sim(engine::PolicyConfig::Conventional(8), 16);
  for (int i = 0; i < 100; ++i) sim.Append(42);
  // Never fills the MemTable: one unique key.
  EXPECT_EQ(sim.result().points_ingested, 100u);
  EXPECT_EQ(sim.result().points_flushed, 0u);
  sim.FlushAll();
  EXPECT_EQ(sim.result().points_flushed, 1u);
}

TEST(WaSimulatorBasicsTest, SeparationAccumulatesBeforeMerge) {
  WaSimulator sim(engine::PolicyConfig::Separation(8, 4), 16);
  // Establish a run, then feed out-of-order points below it.
  for (int64_t t = 0; t < 40; ++t) sim.Append(t * 10);
  uint64_t merges_before = sim.result().merge_count;
  sim.Append(5);
  sim.Append(15);
  sim.Append(25);
  EXPECT_EQ(sim.result().merge_count, merges_before);  // C_nonseq not full
  sim.Append(35);  // fills C_nonseq (capacity 4)
  EXPECT_EQ(sim.result().merge_count, merges_before + 1);
  ASSERT_FALSE(sim.merge_rewrites().empty());
  EXPECT_GT(sim.merge_rewrites().back(), 0u);
}

TEST(WaSimulatorBasicsTest, MuchFasterPathStillCountsFig5) {
  // Sanity: the per-merge rewrite log is populated for model validation.
  workload::SyntheticConfig sc;
  sc.num_points = 20000;
  sc.delta_t = 50.0;
  dist::LognormalDistribution delay(4.0, 1.5);
  auto points = workload::GenerateSynthetic(sc, delay);
  WaSimulator sim(engine::PolicyConfig::Conventional(128), 512);
  sim.AppendStream(points);
  EXPECT_GT(sim.merge_rewrites().size(), 10u);
}

}  // namespace
}  // namespace seplsm::model
