// The embedded HTTP exporter (DESIGN.md §15): lifecycle, protocol edges
// (404/405/400/HEAD/index), the deregistration drain guarantee, and the
// engine/MultiSeriesDB endpoint integration — including concurrent scrapes
// while writers append.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/multi_series_db.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "obs/http_exporter.h"

namespace seplsm::obs {
namespace {

/// Minimal blocking HTTP/1.1 client: one request, reads to EOF (the
/// exporter always closes), returns the raw response.
std::string HttpGet(uint16_t port, const std::string& request_text) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  size_t sent = 0;
  while (sent < request_text.size()) {
    ssize_t n = ::send(fd, request_text.data() + sent,
                       request_text.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpGet(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int StatusOf(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(HttpExporterTest, LifecycleAndEphemeralPort) {
  HttpExporter exporter;
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.port(), 0);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(exporter.running());
  EXPECT_NE(exporter.port(), 0);
  ASSERT_TRUE(exporter.Start().ok());  // idempotent
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // idempotent
}

TEST(HttpExporterTest, DispatchAndProtocolEdges) {
  HttpExporter exporter;
  exporter.RegisterHandler("/hello", [](const HttpExporter::Request& req) {
    HttpExporter::Response resp;
    resp.body = "hi " + req.query;
    return resp;
  });
  ASSERT_TRUE(exporter.Start().ok());
  const uint16_t port = exporter.port();

  std::string ok = Get(port, "/hello?who=x");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_EQ(BodyOf(ok), "hi who=x");

  EXPECT_EQ(StatusOf(Get(port, "/missing")), 404);
  EXPECT_EQ(StatusOf(HttpGet(port,
                             "POST /hello HTTP/1.1\r\nHost: t\r\n\r\n")),
            405);
  EXPECT_EQ(StatusOf(HttpGet(port, "garbage\r\n\r\n")), 400);

  // HEAD: headers with the true Content-Length, no body.
  std::string head =
      HttpGet(port, "HEAD /hello HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusOf(head), 200);
  EXPECT_NE(head.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(BodyOf(head), "");

  // The index lists registered paths.
  std::string index = Get(port, "/");
  EXPECT_EQ(StatusOf(index), 200);
  EXPECT_NE(BodyOf(index).find("/hello"), std::string::npos);

  const HttpExporter::Stats stats = exporter.GetStats();
  EXPECT_GE(stats.connections_accepted, 5u);
  EXPECT_GE(stats.requests_served, 3u);
  EXPECT_GE(stats.not_found, 1u);
  EXPECT_GE(stats.rejected, 2u);
  exporter.Stop();
}

TEST(HttpExporterTest, HandlerExceptionBecomes500) {
  HttpExporter exporter;
  exporter.RegisterHandler("/throws", [](const HttpExporter::Request&) {
    throw std::runtime_error("boom");
    return HttpExporter::Response{};
  });
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_EQ(StatusOf(Get(exporter.port(), "/throws")), 500);
  exporter.Stop();
}

TEST(HttpExporterTest, DeregisterBlocksUntilHandlerDrains) {
  HttpExporter exporter;
  std::mutex mutex;
  std::condition_variable cv;
  bool handler_entered = false;
  bool release_handler = false;
  std::atomic<bool> handler_finished{false};

  exporter.RegisterHandler("/slow", [&](const HttpExporter::Request&) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      handler_entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release_handler; });
    }
    handler_finished.store(true, std::memory_order_release);
    return HttpExporter::Response{};
  });
  ASSERT_TRUE(exporter.Start().ok());
  const uint16_t port = exporter.port();

  std::thread client([&] { Get(port, "/slow"); });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return handler_entered; });
  }
  // Handler is now parked inside the slot; releasing it shortly after the
  // deregistration started lets the drain actually block first.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::lock_guard<std::mutex> lock(mutex);
    release_handler = true;
    cv.notify_all();
  });
  exporter.DeregisterHandler("/slow");
  // The guarantee under test: deregistration returned only after the
  // in-flight invocation left the handler.
  EXPECT_TRUE(handler_finished.load(std::memory_order_acquire));
  client.join();
  releaser.join();
  EXPECT_EQ(StatusOf(Get(port, "/slow")), 404);
  exporter.Stop();
}

TEST(HttpExporterTest, EngineEndpointsServeAndDeregister) {
  MemEnv env;
  auto exporter = std::make_shared<HttpExporter>();
  ASSERT_TRUE(exporter->Start().ok());

  engine::Options options;
  options.env = &env;
  options.dir = "/db";
  options.num_levels = 2;
  options.series_name = "sensor\"a\\b";  // exercises label escaping too
  options.http_exporter = exporter;
  telemetry::TelemetryOptions topts;
  options.telemetry = std::make_shared<telemetry::Telemetry>(topts);
  {
    auto db = engine::TsEngine::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int64_t t = 0; t < 2000; ++t) {
      ASSERT_TRUE((*db)->Append({t, t, 0.5 * t}).ok());
    }
    ASSERT_TRUE((*db)->FlushAll().ok());

    std::string metrics = Get(exporter->port(), "/metrics");
    EXPECT_EQ(StatusOf(metrics), 200);
    EXPECT_NE(metrics.find("seplsm_points_ingested_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("seplsm_level_compaction_debt_bytes"),
              std::string::npos);
    EXPECT_NE(metrics.find("sensor\\\"a\\\\b"), std::string::npos);

    std::string stats = Get(exporter->port(), "/stats");
    EXPECT_EQ(StatusOf(stats), 200);
    EXPECT_NE(stats.find("\"levels\""), std::string::npos);
    EXPECT_NE(stats.find("\"health\""), std::string::npos);

    std::string healthz = Get(exporter->port(), "/healthz");
    EXPECT_EQ(StatusOf(healthz), 200);
    EXPECT_NE(BodyOf(healthz).find("\"ok\":true"), std::string::npos);

    std::string lsm = Get(exporter->port(), "/debug/lsm");
    EXPECT_EQ(StatusOf(lsm), 200);
    EXPECT_NE(BodyOf(lsm).find("\"levels\""), std::string::npos);
  }
  // Engine death deregistered every path; the exporter lives on.
  EXPECT_TRUE(exporter->running());
  EXPECT_EQ(StatusOf(Get(exporter->port(), "/metrics")), 404);
  exporter->Stop();
}

TEST(HttpExporterMultiSeriesTest, AggregateEndpointsUnderConcurrentIngest) {
  MemEnv env;
  auto exporter = std::make_shared<HttpExporter>();
  ASSERT_TRUE(exporter->Start().ok());

  engine::MultiSeriesDB::MultiOptions mopts;
  mopts.base.env = &env;
  mopts.base.dir = "/multi";
  mopts.base.num_levels = 2;
  mopts.base.http_exporter = exporter;
  mopts.adaptive = true;
  mopts.adaptive_options.warmup_points = 256;
  mopts.adaptive_options.check_interval = 256;
  telemetry::TelemetryOptions topts;
  mopts.base.telemetry = std::make_shared<telemetry::Telemetry>(topts);
  auto db = engine::MultiSeriesDB::Open(std::move(mopts));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      std::string series = "s" + std::to_string(w);
      int64_t t = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<DataPoint> batch;
        batch.reserve(64);
        for (int i = 0; i < 64; ++i) {
          ++t;
          int64_t delay = (t % 9 == 0) ? 4 : 0;
          batch.push_back({t - delay, t, static_cast<double>(t % 100)});
        }
        if (!(*db)->AppendBatch(series, batch.data(), batch.size()).ok()) {
          return;
        }
      }
    });
  }

  // Scrape every endpoint repeatedly while the writers run.
  const uint16_t port = exporter->port();
  for (int round = 0; round < 10; ++round) {
    for (const char* path :
         {"/metrics", "/stats", "/healthz", "/debug/lsm", "/debug/policy"}) {
      std::string response = Get(port, path);
      EXPECT_EQ(StatusOf(response), 200) << path;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();

  std::string metrics = BodyOf(Get(port, "/metrics"));
  EXPECT_NE(metrics.find("seplsm_points_ingested_total"), std::string::npos);
  std::string policy = BodyOf(Get(port, "/debug/policy"));
  EXPECT_NE(policy.find("\"adaptive\":true"), std::string::npos);
  // Warmup is 256 points and the writers pushed far more, so each series
  // controller recorded at least one audited decision.
  EXPECT_NE(policy.find("\"trigger\":\"warmup\""), std::string::npos);
  EXPECT_NE(policy.find("\"ooo_rate\""), std::string::npos);
  std::string lsm = BodyOf(Get(port, "/debug/lsm"));
  EXPECT_NE(lsm.find("\"series_count\":2"), std::string::npos);

  db->reset();  // deregisters the DB paths
  EXPECT_EQ(StatusOf(Get(port, "/debug/policy")), 404);
  exporter->Stop();
}

}  // namespace
}  // namespace seplsm::obs
