// Unit tests for the streaming iterator layer (storage/iterator.h): the
// adapters, the block-streaming SSTable cursor, concatenation over disjoint
// children, the k-way dedup merge, and the iterator-driven table writer the
// compaction path is built on. The dedup tie-break rules are pinned here as
// API contract — the engine's newer-wins upsert semantics depend on them.

#include "storage/iterator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "common/random.h"
#include "env/fault_env.h"
#include "env/mem_env.h"
#include "storage/block_cache.h"
#include "storage/memtable.h"
#include "storage/sstable.h"

namespace seplsm::storage {
namespace {

std::vector<DataPoint> MakePoints(size_t n, int64_t start = 0,
                                  int64_t step = 10) {
  std::vector<DataPoint> points(n);
  for (size_t i = 0; i < n; ++i) {
    points[i].generation_time = start + static_cast<int64_t>(i) * step;
    points[i].arrival_time = points[i].generation_time + 5;
    points[i].value = static_cast<double>(i);
  }
  return points;
}

std::vector<DataPoint> DrainIterator(PointIterator* it) {
  std::vector<DataPoint> out;
  while (it->Valid()) {
    out.push_back(it->point());
    it->Next();
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  return out;
}

/// Yields `points`, then turns invalid carrying `error` — models a child
/// whose backing read failed partway through.
class FailingIterator final : public PointIterator {
 public:
  FailingIterator(std::vector<DataPoint> points, Status error)
      : points_(std::move(points)), error_(std::move(error)) {}

  bool Valid() const override { return pos_ < points_.size(); }
  void Next() override { ++pos_; }
  const DataPoint& point() const override { return points_[pos_]; }
  Status status() const override {
    return Valid() ? Status::OK() : error_;
  }

 private:
  std::vector<DataPoint> points_;
  Status error_;
  size_t pos_ = 0;
};

TEST(VectorIteratorTest, BorrowedScanYieldsAll) {
  auto points = MakePoints(25);
  VectorIterator it(&points);
  EXPECT_EQ(DrainIterator(&it), points);
}

TEST(VectorIteratorTest, OwnedScanYieldsAll) {
  auto points = MakePoints(7);
  VectorIterator it(points);  // copy: iterator owns its storage
  EXPECT_EQ(DrainIterator(&it), points);
}

TEST(VectorIteratorTest, EmptyIsImmediatelyInvalid) {
  std::vector<DataPoint> empty;
  VectorIterator it(&empty);
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());
}

TEST(MemTableViewIteratorTest, YieldsSortedUpsertedContents) {
  MemTable mem(64);
  mem.Add({30, 1, 3.0});
  mem.Add({10, 2, 1.0});
  mem.Add({20, 3, 2.0});
  mem.Add({10, 4, 9.0});  // upsert: replaces the first value at t=10
  MemTableViewIterator it(mem.SnapshotView());
  auto out = DrainIterator(&it);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].generation_time, 10);
  EXPECT_EQ(out[0].value, 9.0);
  EXPECT_EQ(out[1].generation_time, 20);
  EXPECT_EQ(out[2].generation_time, 30);
}

TEST(MemTableViewIteratorTest, EmptyViewIsInvalid) {
  MemTable mem(4);
  MemTableViewIterator it(mem.SnapshotView());
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());
}

class SSTableIteratorTest : public ::testing::Test {
 protected:
  FileMetadata WriteTable(const std::vector<DataPoint>& points,
                          const std::string& path,
                          size_t points_per_block = 16) {
    SSTableWriter writer(&env_, path, points_per_block);
    for (const auto& p : points) EXPECT_TRUE(writer.Add(p).ok());
    auto meta = writer.Finish();
    EXPECT_TRUE(meta.ok()) << meta.status().ToString();
    return *meta;
  }

  std::unique_ptr<SSTableReader> MustOpen(const std::string& path,
                                          BlockCacheHandle cache = {}) {
    auto reader = SSTableReader::Open(&env_, path, cache);
    EXPECT_TRUE(reader.ok()) << reader.status().ToString();
    return std::move(reader).value();
  }

  MemEnv env_;
};

TEST_F(SSTableIteratorTest, FullScanMatchesReadAll) {
  auto points = MakePoints(100);
  WriteTable(points, "/t.sst");
  auto reader = MustOpen("/t.sst");
  auto it = reader->NewIterator();
  EXPECT_EQ(DrainIterator(it.get()), points);
}

TEST_F(SSTableIteratorTest, RangeScanMatchesReadRange) {
  Rng rng(7);
  std::vector<DataPoint> points;
  int64_t t = 0;
  for (int i = 0; i < 1500; ++i) {
    t += 1 + static_cast<int64_t>(rng.UniformU64(9));
    points.push_back({t, t + 1, static_cast<double>(i)});
  }
  WriteTable(points, "/t.sst", 32);
  auto reader = MustOpen("/t.sst");
  for (int trial = 0; trial < 40; ++trial) {
    ReadOptions opts;
    opts.lo = rng.UniformInt(0, t);
    opts.hi = opts.lo + rng.UniformInt(0, 400);
    auto it = reader->NewIterator(opts);
    std::vector<DataPoint> want;
    ASSERT_TRUE(reader->ReadRange(opts.lo, opts.hi, &want).ok());
    EXPECT_EQ(DrainIterator(it.get()), want)
        << "[" << opts.lo << ", " << opts.hi << "]";
  }
}

TEST_F(SSTableIteratorTest, StatsAccountScannedPointsAndBlocks) {
  auto points = MakePoints(100);  // 7 blocks of 16
  WriteTable(points, "/t.sst", 16);
  auto reader = MustOpen("/t.sst");
  ReadStats stats;
  ReadOptions opts;
  opts.stats = &stats;
  auto it = reader->NewIterator(opts);
  DrainIterator(it.get());
  EXPECT_EQ(stats.points_scanned, 100u);
  EXPECT_EQ(stats.blocks_read, 7u);
  EXPECT_GT(stats.device_bytes_read, 0u);
}

TEST_F(SSTableIteratorTest, LoadsBlocksLazilyOneAtATime) {
  auto points = MakePoints(100, 0, 10);  // keys 0..990, 7 blocks of 16
  WriteTable(points, "/t.sst", 16);
  auto reader = MustOpen("/t.sst");
  // Touching only the first point must read only the first block — the
  // bounded-memory claim rests on blocks being pulled on demand.
  ReadStats stats;
  ReadOptions opts;
  opts.stats = &stats;
  auto it = reader->NewIterator(opts);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->point().generation_time, 0);
  EXPECT_EQ(stats.blocks_read, 1u);
  // A range confined to one middle block skips the rest via the index.
  ReadStats mid_stats;
  ReadOptions mid;
  mid.lo = 500;
  mid.hi = 510;
  mid.stats = &mid_stats;
  auto mid_it = reader->NewIterator(mid);
  auto got = DrainIterator(mid_it.get());
  ASSERT_EQ(got.size(), 2u);  // 500, 510
  EXPECT_EQ(mid_stats.blocks_read, 1u);
}

TEST_F(SSTableIteratorTest, FillCacheFalseServesHitsButNeverInserts) {
  BlockCache cache(1 << 20, 1);
  auto points = MakePoints(64);
  WriteTable(points, "/a.sst", 16);
  WriteTable(MakePoints(64, 10000), "/b.sst", 16);
  auto a = MustOpen("/a.sst", {&cache, 1, 1});
  auto b = MustOpen("/b.sst", {&cache, 1, 2});

  // Warm the cache with table a (default fill_cache=true).
  {
    auto it = a->NewIterator();
    DrainIterator(it.get());
  }
  const size_t entries_after_warm = cache.TotalEntries();
  const uint64_t inserts_after_warm = cache.inserts();
  EXPECT_EQ(entries_after_warm, 4u);  // 64 points / 16 per block

  // A fill_cache=false scan of table b reads the device but inserts nothing.
  {
    ReadStats stats;
    ReadOptions opts;
    opts.fill_cache = false;
    opts.stats = &stats;
    auto it = b->NewIterator(opts);
    DrainIterator(it.get());
    EXPECT_EQ(stats.cache_misses, 4u);
    EXPECT_GT(stats.device_bytes_read, 0u);
  }
  EXPECT_EQ(cache.TotalEntries(), entries_after_warm);
  EXPECT_EQ(cache.inserts(), inserts_after_warm);

  // Cached blocks are still served to a fill_cache=false scan: zero device
  // reads for table a the second time around.
  {
    ReadStats stats;
    ReadOptions opts;
    opts.fill_cache = false;
    opts.stats = &stats;
    auto it = a->NewIterator(opts);
    EXPECT_EQ(DrainIterator(it.get()), points);
    EXPECT_EQ(stats.cache_hits, 4u);
    EXPECT_EQ(stats.device_bytes_read, 0u);
  }
}

TEST(ConcatenatingIteratorTest, ChainsDisjointChildrenInOrder) {
  auto all = MakePoints(30);
  std::vector<std::unique_ptr<PointIterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<DataPoint>(all.begin(), all.begin() + 10)));
  children.push_back(
      std::make_unique<VectorIterator>(std::vector<DataPoint>{}));  // empty
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<DataPoint>(all.begin() + 10, all.end())));
  ConcatenatingIterator it(std::move(children));
  EXPECT_EQ(DrainIterator(&it), all);
}

TEST(ConcatenatingIteratorTest, OrderViolationSurfacesInternal) {
  std::vector<std::unique_ptr<PointIterator>> children;
  children.push_back(
      std::make_unique<VectorIterator>(MakePoints(5, 100)));  // 100..140
  children.push_back(
      std::make_unique<VectorIterator>(MakePoints(5, 0)));  // 0..40: earlier!
  ConcatenatingIterator it(std::move(children));
  size_t emitted = 0;
  while (it.Valid()) {
    ++emitted;
    it.Next();
  }
  EXPECT_EQ(emitted, 5u);  // the first child streams fine
  EXPECT_TRUE(it.status().IsInternal()) << it.status().ToString();
}

std::unique_ptr<MergingIterator> MergeOf(
    std::vector<std::vector<DataPoint>> sources) {
  std::vector<std::unique_ptr<PointIterator>> children;
  for (auto& s : sources) {
    children.push_back(std::make_unique<VectorIterator>(std::move(s)));
  }
  return std::make_unique<MergingIterator>(std::move(children));
}

TEST(MergingIteratorTest, NoChildrenIsEmptyAndOk) {
  MergingIterator it({});
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());
}

TEST(MergingIteratorTest, AllEmptyChildren) {
  auto it = MergeOf({{}, {}, {}});
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST(MergingIteratorTest, SingleSourcePassesThrough) {
  auto points = MakePoints(50);
  auto it = MergeOf({points});
  EXPECT_EQ(DrainIterator(it.get()), points);
}

TEST(MergingIteratorTest, TwoWayInterleave) {
  std::vector<DataPoint> odd, even;
  for (int64_t t = 0; t < 40; ++t) {
    ((t % 2 == 0) ? even : odd).push_back({t, t, static_cast<double>(t)});
  }
  auto it = MergeOf({odd, even});
  auto out = DrainIterator(it.get());
  ASSERT_EQ(out.size(), 40u);
  for (int64_t t = 0; t < 40; ++t) {
    EXPECT_EQ(out[static_cast<size_t>(t)].generation_time, t);
  }
}

TEST(MergingIteratorTest, EqualTimesLowestIndexChildWins) {
  // Children are given newest-first; pinning this tie-break is what makes
  // the streaming merge reproduce the engine's newer-wins upsert exactly.
  std::vector<DataPoint> newer = {{5, 50, 1.0}};
  std::vector<DataPoint> older = {{5, 40, 2.0}};
  {
    auto it = MergeOf({newer, older});
    auto out = DrainIterator(it.get());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 1.0);
  }
  {
    // Reversing the child order flips the winner: precedence is positional.
    auto it = MergeOf({older, newer});
    auto out = DrainIterator(it.get());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 2.0);
  }
}

TEST(MergingIteratorTest, WithinChildDuplicatesCollapse) {
  // A single child carrying the same generation time twice emits only the
  // first occurrence — Next() consumes every point at the emitted time.
  std::vector<DataPoint> child = {{5, 1, 1.0}, {5, 2, 2.0}, {7, 3, 3.0}};
  auto it = MergeOf({child});
  auto out = DrainIterator(it.get());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].generation_time, 5);
  EXPECT_EQ(out[0].value, 1.0);
  EXPECT_EQ(out[1].generation_time, 7);
}

TEST(MergingIteratorTest, SixteenWayStripedMerge) {
  std::vector<std::vector<DataPoint>> sources(16);
  for (int64_t t = 0; t < 1000; ++t) {
    sources[static_cast<size_t>(t % 16)].push_back(
        {t, t, static_cast<double>(t)});
  }
  auto it = MergeOf(std::move(sources));
  auto out = DrainIterator(it.get());
  ASSERT_EQ(out.size(), 1000u);
  for (int64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(out[static_cast<size_t>(t)].generation_time, t);
  }
}

TEST(MergingIteratorTest, ChildErrorStopsMergeWithStatus) {
  std::vector<std::unique_ptr<PointIterator>> children;
  children.push_back(std::make_unique<FailingIterator>(
      MakePoints(2, 0), Status::IOError("read failed")));
  children.push_back(std::make_unique<VectorIterator>(MakePoints(5, 100)));
  MergingIterator it(std::move(children));
  size_t emitted = 0;
  while (it.Valid()) {
    ++emitted;
    it.Next();
  }
  // The failing child's own points stream out, but the moment it reports an
  // error the merge stops — it must NOT silently continue with the healthy
  // child and produce a table missing the failed child's tail.
  EXPECT_LE(emitted, 2u);
  EXPECT_TRUE(it.status().IsIOError()) << it.status().ToString();
}

class TableWriterIteratorTest : public ::testing::Test {
 protected:
  std::vector<DataPoint> ReadBack(Env* env, const FileMetadata& meta) {
    auto reader = SSTableReader::Open(env, meta.path);
    EXPECT_TRUE(reader.ok()) << reader.status().ToString();
    std::vector<DataPoint> out;
    EXPECT_TRUE((*reader)->ReadAll(&out).ok());
    return out;
  }

  std::vector<std::string> SstFiles(Env* env, const std::string& dir) {
    std::vector<std::string> children;
    EXPECT_TRUE(env->ListDir(dir, &children).ok());
    std::vector<std::string> ssts;
    for (const auto& c : children) {
      if (c.size() > 4 && c.substr(c.size() - 4) == ".sst") {
        ssts.push_back(c);
      }
    }
    return ssts;
  }

  MemEnv env_;
};

TEST_F(TableWriterIteratorTest, MatchesVectorOverload) {
  auto points = MakePoints(1000);
  uint64_t next_vec = 1;
  std::vector<FileMetadata> vec_files;
  ASSERT_TRUE(WriteSortedPointsAsTables(&env_, "/vec", points, 300, 64,
                                        &next_vec, &vec_files)
                  .ok());
  uint64_t next_it = 1;
  std::vector<FileMetadata> it_files;
  VectorIterator input(&points);
  ASSERT_TRUE(WriteSortedPointsAsTables(&env_, "/it", &input, 300, 64,
                                        &next_it, &it_files)
                  .ok());
  ASSERT_EQ(it_files.size(), vec_files.size());
  EXPECT_EQ(next_it, next_vec);
  for (size_t i = 0; i < it_files.size(); ++i) {
    EXPECT_EQ(it_files[i].point_count, vec_files[i].point_count);
    EXPECT_EQ(it_files[i].min_generation_time,
              vec_files[i].min_generation_time);
    EXPECT_EQ(it_files[i].max_generation_time,
              vec_files[i].max_generation_time);
    EXPECT_EQ(ReadBack(&env_, it_files[i]), ReadBack(&env_, vec_files[i]));
  }
}

TEST_F(TableWriterIteratorTest, EmptyInputWritesNothing) {
  std::vector<DataPoint> empty;
  VectorIterator input(&empty);
  uint64_t next = 7;
  std::vector<FileMetadata> files;
  ASSERT_TRUE(
      WriteSortedPointsAsTables(&env_, "/db", &input, 10, 4, &next, &files)
          .ok());
  EXPECT_TRUE(files.empty());
  EXPECT_EQ(next, 7u);
}

TEST_F(TableWriterIteratorTest, CancelAbortsAndRemovesPartialFiles) {
  auto points = MakePoints(100);
  VectorIterator input(&points);
  uint64_t next = 1;
  std::vector<FileMetadata> files;
  std::atomic<bool> cancel{true};
  Status st = WriteSortedPointsAsTables(&env_, "/db", &input, 30, 8, &next,
                                        &files, format::ValueEncoding::kRaw,
                                        {}, &cancel);
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_TRUE(files.empty());
  EXPECT_TRUE(SstFiles(&env_, "/db").empty());
}

TEST_F(TableWriterIteratorTest, SourceErrorRemovesEverythingItCreated) {
  auto points = MakePoints(100);
  std::vector<std::unique_ptr<PointIterator>> children;
  children.push_back(std::make_unique<FailingIterator>(
      points, Status::IOError("source died")));
  MergingIterator input(std::move(children));
  uint64_t next = 1;
  std::vector<FileMetadata> files;
  // 30 per file: three complete tables land before the source error hits on
  // the fourth — all of them must be gone afterwards, not just the partial.
  Status st =
      WriteSortedPointsAsTables(&env_, "/db", &input, 30, 8, &next, &files);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(files.empty());
  EXPECT_TRUE(SstFiles(&env_, "/db").empty());
}

TEST_F(TableWriterIteratorTest, WriteFaultLeavesNoPartialTables) {
  FaultInjectionEnv fault(&env_);
  auto points = MakePoints(200);
  // Let the first file (and a bit of the second) succeed, then fail every
  // append. RemoveFile is not faulted, so cleanup proceeds.
  fault.SetFailAfterOps(30);
  VectorIterator input(&points);
  uint64_t next = 1;
  std::vector<FileMetadata> files;
  Status st =
      WriteSortedPointsAsTables(&fault, "/db", &input, 50, 8, &next, &files);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(files.empty());
  EXPECT_TRUE(SstFiles(&env_, "/db").empty());
}

TEST_F(TableWriterIteratorTest, AppendsAfterExistingEntriesOnSuccess) {
  // *files may already carry earlier outputs (the engine accumulates across
  // merge steps): success appends, failure restores exactly the old size.
  auto points = MakePoints(20);
  std::vector<FileMetadata> files(3);
  files[0].file_number = 99;
  uint64_t next = 10;
  VectorIterator input(&points);
  ASSERT_TRUE(
      WriteSortedPointsAsTables(&env_, "/db", &input, 10, 4, &next, &files)
          .ok());
  ASSERT_EQ(files.size(), 5u);
  EXPECT_EQ(files[0].file_number, 99u);  // pre-existing entries untouched
  EXPECT_EQ(files[3].file_number, 10u);

  auto more = MakePoints(40, 1000);
  VectorIterator input2(&more);
  std::atomic<bool> cancel{true};
  Status st = WriteSortedPointsAsTables(&env_, "/db", &input2, 10, 4, &next,
                                        &files, format::ValueEncoding::kRaw,
                                        {}, &cancel);
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(files.size(), 5u);  // restored to the pre-call state
}

}  // namespace
}  // namespace seplsm::storage
