#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace seplsm {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  std::string_view in = buf;
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xDEADBEEFu);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  std::string_view in = buf;
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFull);
}

TEST(CodingTest, FixedUnderflowFails) {
  std::string buf = "abc";
  std::string_view in = buf;
  uint32_t v32;
  uint64_t v64;
  EXPECT_FALSE(GetFixed32(&in, &v32));
  EXPECT_FALSE(GetFixed64(&in, &v64));
}

TEST(CodingTest, VarintSmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 127ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
  }
}

TEST(CodingTest, VarintBoundaries) {
  std::vector<uint64_t> values = {0, 127, 128, 16383, 16384,
                                  (1ull << 32) - 1, 1ull << 32,
                                  std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  std::string_view in = buf;
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&in, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  std::string_view in = buf;
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(CodingTest, ZigZagMapsSmallMagnitudes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

TEST(CodingTest, ZigZagRoundTripExtremes) {
  for (int64_t v : {std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max(), int64_t{0},
                    int64_t{-123456789}}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(CodingTest, SignedVarintRoundTripRandom) {
  Rng rng(7);
  std::string buf;
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = static_cast<int64_t>(rng.NextU64());
    values.push_back(v);
    PutVarint64Signed(&buf, v);
  }
  std::string_view in = buf;
  for (int64_t expected : values) {
    int64_t v;
    ASSERT_TRUE(GetVarint64Signed(&in, &v));
    EXPECT_EQ(v, expected);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  std::string big(100000, 'x');
  PutLengthPrefixed(&buf, big);
  std::string_view in = buf;
  std::string_view v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v, "");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v, big);
}

TEST(CodingTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  std::string_view in = buf;
  std::string_view v;
  EXPECT_FALSE(GetLengthPrefixed(&in, &v));
}

}  // namespace
}  // namespace seplsm
