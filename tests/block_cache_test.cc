#include "storage/block_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/multi_series_db.h"
#include "engine/ts_engine.h"
#include "env/fault_env.h"
#include "env/latency_env.h"
#include "env/mem_env.h"
#include "storage/sstable.h"

namespace seplsm::storage {
namespace {

std::shared_ptr<CachedBlock> MakeBlock(size_t n_points) {
  auto block = std::make_shared<CachedBlock>();
  block->points.resize(n_points);
  return block;
}

TEST(BlockCacheTest, LookupMissThenHit) {
  BlockCache cache(1 << 20, 4);
  uint64_t owner = cache.NewOwnerId();
  EXPECT_EQ(cache.Lookup(owner, 1, 0), nullptr);
  cache.Insert(owner, 1, 0, MakeBlock(8));
  auto got = cache.Lookup(owner, 1, 0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->points.size(), 8u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.inserts(), 1u);
}

TEST(BlockCacheTest, ChargeBasedEviction) {
  // One shard so the LRU order is fully observable.
  size_t block_charge = MakeBlock(100)->Charge();
  BlockCache cache(3 * block_charge, 1);
  uint64_t owner = cache.NewOwnerId();
  for (uint64_t off = 0; off < 4; ++off) {
    cache.Insert(owner, 1, off, MakeBlock(100));
  }
  // Four inserts into a three-block budget: the oldest (offset 0) is gone.
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.TotalEntries(), 3u);
  EXPECT_LE(cache.TotalCharge(), cache.capacity_bytes());
  EXPECT_EQ(cache.Lookup(owner, 1, 0), nullptr);
  EXPECT_NE(cache.Lookup(owner, 1, 3), nullptr);
}

TEST(BlockCacheTest, LookupRefreshesLruPosition) {
  size_t block_charge = MakeBlock(100)->Charge();
  BlockCache cache(2 * block_charge, 1);
  uint64_t owner = cache.NewOwnerId();
  cache.Insert(owner, 1, 0, MakeBlock(100));
  cache.Insert(owner, 1, 1, MakeBlock(100));
  ASSERT_NE(cache.Lookup(owner, 1, 0), nullptr);  // 0 is now most recent
  cache.Insert(owner, 1, 2, MakeBlock(100));      // evicts 1, not 0
  EXPECT_NE(cache.Lookup(owner, 1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(owner, 1, 1), nullptr);
}

TEST(BlockCacheTest, OversizedBlockDoesNotStick) {
  BlockCache cache(256, 1);
  uint64_t owner = cache.NewOwnerId();
  cache.Insert(owner, 1, 0, MakeBlock(1000));  // charge >> capacity
  EXPECT_EQ(cache.TotalEntries(), 0u);
  EXPECT_EQ(cache.TotalCharge(), 0u);
}

TEST(BlockCacheTest, ReplaceSameKeyKeepsChargeConsistent) {
  BlockCache cache(1 << 20, 2);
  uint64_t owner = cache.NewOwnerId();
  cache.Insert(owner, 1, 0, MakeBlock(10));
  size_t charge_small = cache.TotalCharge();
  cache.Insert(owner, 1, 0, MakeBlock(500));
  EXPECT_EQ(cache.TotalEntries(), 1u);
  EXPECT_GT(cache.TotalCharge(), charge_small);
  auto got = cache.Lookup(owner, 1, 0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->points.size(), 500u);
}

TEST(BlockCacheTest, OwnerIdsIsolateKeySpaces) {
  BlockCache cache(1 << 20, 4);
  uint64_t a = cache.NewOwnerId();
  uint64_t b = cache.NewOwnerId();
  ASSERT_NE(a, b);
  auto block = MakeBlock(3);
  cache.Insert(a, 7, 42, block);
  EXPECT_EQ(cache.Lookup(b, 7, 42), nullptr)
      << "same (file, offset) under another owner must be a distinct key";
  EXPECT_NE(cache.Lookup(a, 7, 42), nullptr);
}

TEST(BlockCacheTest, EraseFileDropsAllItsBlocks) {
  BlockCache cache(1 << 20, 4);
  uint64_t owner = cache.NewOwnerId();
  for (uint64_t off = 0; off < 16; ++off) {
    cache.Insert(owner, 1, off * 100, MakeBlock(4));
    cache.Insert(owner, 2, off * 100, MakeBlock(4));
  }
  cache.EraseFile(owner, 1);
  for (uint64_t off = 0; off < 16; ++off) {
    EXPECT_EQ(cache.Lookup(owner, 1, off * 100), nullptr);
    EXPECT_NE(cache.Lookup(owner, 2, off * 100), nullptr);
  }
  EXPECT_EQ(cache.TotalEntries(), 16u);
  cache.EraseFile(owner, 99);  // unknown file: no-op
  EXPECT_EQ(cache.TotalEntries(), 16u);
}

TEST(BlockCacheTest, EvictionNeverInvalidatesHeldBlock) {
  size_t block_charge = MakeBlock(100)->Charge();
  BlockCache cache(block_charge, 1);
  uint64_t owner = cache.NewOwnerId();
  cache.Insert(owner, 1, 0, MakeBlock(100));
  auto held = cache.Lookup(owner, 1, 0);
  ASSERT_NE(held, nullptr);
  cache.Insert(owner, 1, 1, MakeBlock(100));  // evicts offset 0
  EXPECT_EQ(cache.Lookup(owner, 1, 0), nullptr);
  EXPECT_EQ(held->points.size(), 100u) << "shared_ptr keeps the block alive";
}

TEST(BlockCacheTest, ShardedCapacitySpreadsBudget) {
  // With S shards each shard gets capacity/S; keys spread across shards, so
  // the cache as a whole respects the total budget (within one block of
  // slack per shard, by construction).
  size_t block_charge = MakeBlock(64)->Charge();
  size_t capacity = 8 * block_charge;
  BlockCache cache(capacity, 4);
  uint64_t owner = cache.NewOwnerId();
  for (uint64_t off = 0; off < 64; ++off) {
    cache.Insert(owner, 1, off * 1000, MakeBlock(64));
  }
  EXPECT_LE(cache.TotalCharge(), capacity);
  EXPECT_GT(cache.TotalEntries(), 0u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(BlockCacheTest, ConcurrentHammerFromEightThreads) {
  size_t block_charge = MakeBlock(32)->Charge();
  BlockCache cache(64 * block_charge, 8);
  uint64_t owner = cache.NewOwnerId();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, owner, t, &served] {
      // Deterministic per-thread key walk over a shared key space, with
      // overlapping ranges so threads contend on the same shards.
      uint64_t state = 0x9e3779b9u * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t file = 1 + (state >> 33) % 8;
        uint64_t offset = ((state >> 17) % 128) * 64;
        auto got = cache.Lookup(owner, file, offset);
        if (got == nullptr) {
          cache.Insert(owner, file, offset, MakeBlock(32));
        } else {
          served.fetch_add(got->points.size(), std::memory_order_relaxed);
        }
        if (i % 512 == 0) cache.EraseFile(owner, file);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(cache.TotalCharge(), cache.capacity_bytes());
  EXPECT_GT(cache.hits(), 0u);
}

TEST(BlockCacheTest, ClearEmptiesEveryShard) {
  BlockCache cache(1 << 20, 4);
  uint64_t owner = cache.NewOwnerId();
  for (uint64_t off = 0; off < 32; ++off) {
    cache.Insert(owner, 1, off, MakeBlock(4));
  }
  cache.Clear();
  EXPECT_EQ(cache.TotalEntries(), 0u);
  EXPECT_EQ(cache.TotalCharge(), 0u);
}

// --- Reader-level integration -------------------------------------------

TEST(SSTableBlockCacheTest, RepeatedReadsHitCacheAndSkipDevice) {
  MemEnv env;
  SSTableWriter writer(&env, "/t.sst", 16);
  for (int64_t t = 0; t < 128; ++t) {
    ASSERT_TRUE(writer.Add({t, t, static_cast<double>(t)}).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  BlockCache cache(1 << 20, 2);
  uint64_t owner = cache.NewOwnerId();
  auto reader =
      SSTableReader::Open(&env, "/t.sst", BlockCacheHandle{&cache, owner, 1});
  ASSERT_TRUE(reader.ok());

  std::vector<DataPoint> out;
  ReadStats first;
  ASSERT_TRUE((*reader)->ReadRange(0, 127, &out, &first).ok());
  EXPECT_EQ(out.size(), 128u);
  EXPECT_GT(first.device_bytes_read, 0u);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_misses, 8u);  // 128 points / 16 per block

  out.clear();
  ReadStats second;
  ASSERT_TRUE((*reader)->ReadRange(0, 127, &out, &second).ok());
  EXPECT_EQ(out.size(), 128u);
  EXPECT_EQ(second.device_bytes_read, 0u) << "second pass must be in-memory";
  EXPECT_EQ(second.cache_hits, 8u);
  EXPECT_EQ(second.cache_misses, 0u);
}

// --- Engine-level integration -------------------------------------------

std::vector<DataPoint> DisorderedWorkload(int64_t n) {
  std::vector<DataPoint> points;
  points.reserve(static_cast<size_t>(n) + static_cast<size_t>(n) / 7);
  for (int64_t t = 0; t < n; ++t) {
    points.push_back({t, t + 2, static_cast<double>(t) * 0.5});
    if (t % 7 == 6 && t >= 20) {
      // Late arrival that overwrites an older key — forces merges.
      points.push_back({t - 20, t + 3, 1e6 + static_cast<double>(t)});
    }
  }
  return points;
}

engine::Options EngineOptions(Env* env, const std::string& dir,
                              size_t cache_bytes) {
  engine::Options o;
  o.env = env;
  o.dir = dir;
  o.policy = engine::PolicyConfig::Separation(64, 32);
  o.sstable_points = 64;
  o.points_per_block = 16;
  o.table_cache_entries = 64;
  o.block_cache_bytes = cache_bytes;
  return o;
}

TEST(EngineBlockCacheTest, IdenticalResultsWithCacheOnAndOff) {
  MemEnv env;
  auto points = DisorderedWorkload(2000);

  auto run = [&](const std::string& dir,
                 size_t cache_bytes) -> std::vector<std::vector<DataPoint>> {
    auto db = engine::TsEngine::Open(EngineOptions(&env, dir, cache_bytes));
    EXPECT_TRUE(db.ok());
    std::vector<std::vector<DataPoint>> results;
    size_t i = 0;
    for (const auto& p : points) {
      EXPECT_TRUE((*db)->Append(p).ok());
      // Interleave queries with ingest so the cache sees files being
      // created and deleted by merges mid-stream; repeat each query to
      // exercise the hit path.
      if (++i % 200 == 0) {
        for (int rep = 0; rep < 2; ++rep) {
          std::vector<DataPoint> out;
          EXPECT_TRUE((*db)->Query(0, static_cast<int64_t>(i), &out).ok());
          results.push_back(std::move(out));
        }
      }
    }
    EXPECT_TRUE((*db)->FlushAll().ok());
    std::vector<DataPoint> full;
    EXPECT_TRUE((*db)->Query(0, 1 << 20, &full).ok());
    results.push_back(std::move(full));
    EXPECT_TRUE((*db)->CheckInvariants().ok());
    return results;
  };

  auto uncached = run("/off", 0);
  auto cached = run("/on", 4 << 20);
  ASSERT_EQ(uncached.size(), cached.size());
  for (size_t i = 0; i < uncached.size(); ++i) {
    EXPECT_EQ(uncached[i], cached[i]) << "query " << i;
  }
}

TEST(EngineBlockCacheTest, CacheCountersSurfaceInMetrics) {
  MemEnv env;
  auto db = engine::TsEngine::Open(EngineOptions(&env, "/db", 4 << 20));
  ASSERT_TRUE(db.ok());
  for (int64_t t = 0; t < 1000; ++t) {
    ASSERT_TRUE((*db)->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE((*db)->FlushAll().ok());
  for (int rep = 0; rep < 4; ++rep) {
    std::vector<DataPoint> out;
    engine::QueryStats stats;
    ASSERT_TRUE((*db)->Query(0, 999, &out, &stats).ok());
    EXPECT_EQ(out.size(), 1000u);
    if (rep > 0) {
      EXPECT_EQ(stats.device_bytes_read, 0u);
      EXPECT_GT(stats.block_cache_hits, 0u);
      EXPECT_EQ(stats.block_cache_misses, 0u);
      EXPECT_EQ(stats.BlockCacheHitRate(), 1.0);
    }
  }
  engine::Metrics m = (*db)->GetMetrics();
  EXPECT_GT(m.block_cache_hits, 0u);
  EXPECT_GT(m.block_cache_misses, 0u);
  EXPECT_GT(m.BlockCacheHitRate(), 0.5);
  ASSERT_NE((*db)->block_cache(), nullptr);
  EXPECT_GT((*db)->block_cache()->hits(), 0u);
  // The human-readable summary mentions the cache once it was consulted.
  EXPECT_NE(m.ToString().find("cache_hits"), std::string::npos);
}

TEST(EngineBlockCacheTest, RepeatedQueriesStopTouchingTheDevice) {
  MemEnv base;
  DeviceLatencyModel model;
  model.seek_nanos = 1000;
  model.transfer_nanos_per_byte = 1.0;
  LatencyEnv latency(&base, model);

  auto run_repeats = [&](const std::string& dir, size_t cache_bytes) {
    auto db = engine::TsEngine::Open(
        EngineOptions(&latency, dir, cache_bytes));
    EXPECT_TRUE(db.ok());
    for (int64_t t = 0; t < 2000; ++t) {
      EXPECT_TRUE((*db)->Append({t, t, 0.0}).ok());
    }
    EXPECT_TRUE((*db)->FlushAll().ok());
    // Warm pass, then measure the repeats.
    std::vector<DataPoint> out;
    EXPECT_TRUE((*db)->Query(0, 1999, &out).ok());
    uint64_t bytes_before = latency.bytes_read();
    for (int rep = 0; rep < 5; ++rep) {
      out.clear();
      EXPECT_TRUE((*db)->Query(0, 1999, &out).ok());
      EXPECT_EQ(out.size(), 2000u);
    }
    return latency.bytes_read() - bytes_before;
  };

  uint64_t uncached_bytes = run_repeats("/off", 0);
  uint64_t cached_bytes = run_repeats("/on", 4 << 20);
  EXPECT_GT(uncached_bytes, 0u);
  EXPECT_EQ(cached_bytes, 0u)
      << "warm repeats must be served entirely from the block cache";
}

TEST(EngineBlockCacheTest, IoErrorsDoNotPoisonCachedEntries) {
  MemEnv base;
  FaultInjectionEnv fault(&base);
  auto db = engine::TsEngine::Open(EngineOptions(&fault, "/db", 4 << 20));
  ASSERT_TRUE(db.ok());
  for (int64_t t = 0; t < 500; ++t) {
    ASSERT_TRUE((*db)->Append({t, t, 2.0}).ok());
  }
  ASSERT_TRUE((*db)->FlushAll().ok());

  // Reference result + warm cache.
  std::vector<DataPoint> want;
  ASSERT_TRUE((*db)->Query(0, 499, &want).ok());
  ASSERT_EQ(want.size(), 500u);

  // With the device failing hard, the warm query is served entirely from
  // the open readers + block cache.
  fault.SetFailAfterOps(0);
  std::vector<DataPoint> cached_out;
  EXPECT_TRUE((*db)->Query(0, 499, &cached_out).ok());
  EXPECT_EQ(cached_out, want);

  // A cold query (fresh engine, same dir, cache empty) must surface the
  // IOError as a Status...
  {
    auto cold = engine::TsEngine::Open(EngineOptions(&fault, "/db", 4 << 20));
    EXPECT_FALSE(cold.ok());
  }

  // ...and after the fault clears, results are correct again — no poisoned
  // entries survived the error window.
  fault.SetFailAfterOps(-1);
  std::vector<DataPoint> after;
  EXPECT_TRUE((*db)->Query(0, 499, &after).ok());
  EXPECT_EQ(after, want);
}

// --- MultiSeriesDB sharing ----------------------------------------------

TEST(MultiSeriesBlockCacheTest, OneCacheSharedAcrossSeries) {
  MemEnv env;
  engine::MultiSeriesDB::MultiOptions mo;
  mo.base.env = &env;
  mo.base.dir = "/multi";
  mo.base.policy = engine::PolicyConfig::Conventional(64);
  mo.base.sstable_points = 64;
  mo.base.points_per_block = 16;
  mo.base.table_cache_entries = 64;
  mo.base.block_cache_bytes = 4 << 20;
  auto db = engine::MultiSeriesDB::Open(std::move(mo));
  ASSERT_TRUE(db.ok());
  ASSERT_NE((*db)->block_cache(), nullptr);

  for (const char* series : {"sensor.a", "sensor.b", "sensor.c"}) {
    for (int64_t t = 0; t < 500; ++t) {
      ASSERT_TRUE(
          (*db)->Append(series, {t, t, static_cast<double>(t)}).ok());
    }
  }
  ASSERT_TRUE((*db)->FlushAll().ok());

  // Same (file_number, offset) pairs exist in every series directory; the
  // owner-id key space must keep them apart.
  for (int rep = 0; rep < 2; ++rep) {
    for (const char* series : {"sensor.a", "sensor.b", "sensor.c"}) {
      std::vector<DataPoint> out;
      ASSERT_TRUE((*db)->Query(series, 0, 499, &out).ok());
      ASSERT_EQ(out.size(), 500u);
      for (const auto& p : out) {
        EXPECT_EQ(p.value, static_cast<double>(p.generation_time));
      }
    }
  }
  engine::Metrics total = (*db)->GetAggregateMetrics();
  EXPECT_GT(total.block_cache_hits, 0u);
  // All three engines fed the same cache instance. The cache's own counters
  // also see merge-time reads (which query metrics exclude), so they bound
  // the aggregate from above.
  EXPECT_GE((*db)->block_cache()->hits(), total.block_cache_hits);
  EXPECT_GE((*db)->block_cache()->misses(), total.block_cache_misses);
}

}  // namespace
}  // namespace seplsm::storage
