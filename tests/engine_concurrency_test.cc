// Concurrency tests for the snapshot-isolated read path: readers must see a
// consistent prefix of the writer's history while flushes and background
// compaction churn the file set underneath them, and a dead background
// compactor must fail writers instead of hanging them.
//
// These tests are the primary targets of the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "engine/ts_engine.h"
#include "env/fault_env.h"
#include "env/mem_env.h"

namespace seplsm::engine {
namespace {

class EngineConcurrencyTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options o;
    o.env = &env_;
    o.dir = "/db";
    o.sstable_points = 32;
    o.points_per_block = 8;
    return o;
  }

  std::unique_ptr<TsEngine> MustOpen(Options o) {
    auto e = TsEngine::Open(std::move(o));
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  MemEnv env_;
};

double ValueFor(int64_t t) { return static_cast<double>(t) * 0.25 + 1.0; }

// Keys 0..n-1, shuffled inside fixed-size windows: mostly increasing with a
// bounded delay, so the separation policy exercises both C_seq and C_nonseq
// and the conventional policy produces overlapping merges.
std::vector<int64_t> LocallyShuffledKeys(int64_t n, int64_t window,
                                         uint32_t seed) {
  std::vector<int64_t> keys(n);
  for (int64_t i = 0; i < n; ++i) keys[i] = i;
  std::mt19937 rng(seed);
  for (int64_t b = 0; b < n; b += window) {
    int64_t e = std::min(b + window, n);
    std::shuffle(keys.begin() + b, keys.begin() + e, rng);
  }
  return keys;
}

// The fuzzed snapshot-consistency check. One writer appends `keys` in order,
// publishing how many appends completed; a reader brackets every query with
// two loads of that counter and asserts the result contains at least what
// was durably appended before the query (m1) and at most what was appended
// by its end (m2) — i.e. every query observes some consistent point of the
// history, never a torn one, while compaction replaces files underneath it.
void RunSnapshotConsistencyFuzz(TsEngine* db, const std::vector<int64_t>& keys,
                                uint32_t seed) {
  std::atomic<size_t> appended{0};
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (size_t i = 0; i < keys.size(); ++i) {
      Status st = db->Append({keys[i], keys[i] + 7, ValueFor(keys[i])});
      ASSERT_TRUE(st.ok()) << st.ToString();
      appended.store(i + 1, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::mt19937 rng(seed);
  const int64_t n = static_cast<int64_t>(keys.size());
  int queries = 0;
  while (!done.load(std::memory_order_acquire) || queries < 20) {
    int64_t lo = std::uniform_int_distribution<int64_t>(0, n - 1)(rng);
    int64_t hi =
        std::min<int64_t>(n - 1, lo + std::uniform_int_distribution<int64_t>(
                                          0, n / 4)(rng));
    if (queries % 8 == 0) {  // some full-range scans
      lo = 0;
      hi = n - 1;
    }
    size_t m1 = appended.load(std::memory_order_acquire);
    std::vector<DataPoint> out;
    Status st = db->Query(lo, hi, &out);
    ASSERT_TRUE(st.ok()) << st.ToString();
    size_t m2 = appended.load(std::memory_order_acquire);

    // Well-formed: sorted, unique, in range, correct values.
    std::vector<bool> present(static_cast<size_t>(n), false);
    int64_t prev = std::numeric_limits<int64_t>::min();
    for (const auto& p : out) {
      ASSERT_GT(p.generation_time, prev);
      prev = p.generation_time;
      ASSERT_GE(p.generation_time, lo);
      ASSERT_LE(p.generation_time, hi);
      ASSERT_EQ(p.value, ValueFor(p.generation_time));
      present[static_cast<size_t>(p.generation_time)] = true;
    }
    // Lower bound: everything appended before the query started.
    for (size_t i = 0; i < m1; ++i) {
      if (keys[i] >= lo && keys[i] <= hi) {
        ASSERT_TRUE(present[static_cast<size_t>(keys[i])])
            << "query lost key " << keys[i] << " (appended at " << i
            << " < m1=" << m1 << ")";
      }
    }
    // Upper bound: nothing from the future. A point becomes visible inside
    // Append, before the writer bumps the counter, so allow the single
    // append that may be in flight when m2 is read.
    size_t m2_vis = std::min(m2 + 1, keys.size());
    std::vector<bool> could_exist(static_cast<size_t>(n), false);
    for (size_t i = 0; i < m2_vis; ++i) {
      could_exist[static_cast<size_t>(keys[i])] = true;
    }
    for (const auto& p : out) {
      ASSERT_TRUE(could_exist[static_cast<size_t>(p.generation_time)])
          << "query returned key " << p.generation_time
          << " that was not yet appended (m2=" << m2 << ")";
    }
    ++queries;
  }
  writer.join();

  // The final state is complete.
  std::vector<DataPoint> all;
  ASSERT_TRUE(db->Query(0, n - 1, &all).ok());
  ASSERT_EQ(all.size(), static_cast<size_t>(n));
  ASSERT_TRUE(db->CheckInvariants().ok());
}

TEST_F(EngineConcurrencyTest, SnapshotConsistencyFuzzConventional) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  o.background_mode = true;
  o.max_level0_files = 4;
  auto db = MustOpen(o);
  RunSnapshotConsistencyFuzz(db.get(), LocallyShuffledKeys(3000, 16, 11), 42);
}

TEST_F(EngineConcurrencyTest, SnapshotConsistencyFuzzSeparation) {
  Options o = BaseOptions();
  o.policy = PolicyConfig::Separation(8, 6);
  o.background_mode = true;
  o.max_level0_files = 4;
  auto db = MustOpen(o);
  RunSnapshotConsistencyFuzz(db.get(), LocallyShuffledKeys(3000, 16, 13), 77);
}

TEST_F(EngineConcurrencyTest, SnapshotConsistencyFuzzSynchronousMode) {
  // Synchronous mode merges inline under the writer; queries still capture
  // snapshots and read without the lock.
  Options o = BaseOptions();
  o.policy = PolicyConfig::Conventional(8);
  auto db = MustOpen(o);
  RunSnapshotConsistencyFuzz(db.get(), LocallyShuffledKeys(2000, 16, 17), 99);
}

TEST_F(EngineConcurrencyTest, ManyReadersWritersChurn) {
  // Two writers on disjoint key ranges plus three readers mixing Query,
  // Aggregate and Downsample while level 0 stays tiny (maximum compaction
  // churn). Readers only assert well-formedness; the point is that TSan
  // sees heavy snapshot/compaction overlap with zero races and that every
  // retired file is eventually collected.
  Options o = BaseOptions();
  o.num_levels = 2;  // tiering retires no files: pin the rewriting seed tree
  o.policy = PolicyConfig::Conventional(8);
  o.background_mode = true;
  o.max_level0_files = 2;
  o.sstable_points = 16;
  auto db = MustOpen(o);

  constexpr int64_t kPerWriter = 1500;
  std::atomic<bool> done{false};
  auto writer = [&](int64_t base) {
    auto keys = LocallyShuffledKeys(kPerWriter, 8,
                                    static_cast<uint32_t>(base + 1));
    for (int64_t k : keys) {
      Status st = db->Append({base + k, base + k, ValueFor(base + k)});
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  };
  std::thread w1(writer, int64_t{0});
  std::thread w2(writer, int64_t{1'000'000});

  auto reader = [&](uint32_t seed) {
    std::mt19937 rng(seed);
    while (!done.load(std::memory_order_acquire)) {
      int64_t base = (rng() % 2 == 0) ? 0 : 1'000'000;
      int64_t lo = base + static_cast<int64_t>(rng() % kPerWriter);
      int64_t hi = lo + static_cast<int64_t>(rng() % 500);
      std::vector<DataPoint> out;
      ASSERT_TRUE(db->Query(lo, hi, &out).ok());
      int64_t prev = std::numeric_limits<int64_t>::min();
      for (const auto& p : out) {
        ASSERT_GT(p.generation_time, prev);
        prev = p.generation_time;
        ASSERT_EQ(p.value, ValueFor(p.generation_time));
      }
      Aggregates agg;
      ASSERT_TRUE(db->Aggregate(lo, hi, &agg).ok());
      // Aggregate runs on a newer snapshot than the Query above; keys are
      // only ever added, so the count can only have grown.
      ASSERT_GE(agg.count, out.size());
      std::vector<TimeBucket> buckets;
      ASSERT_TRUE(db->Downsample(lo, hi, 64, &buckets).ok());
    }
  };
  std::thread r1(reader, 1);
  std::thread r2(reader, 2);
  std::thread r3(reader, 3);

  w1.join();
  w2.join();
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  r3.join();

  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> all;
  ASSERT_TRUE(db->Query(0, 2'000'000, &all).ok());
  EXPECT_EQ(all.size(), 2 * static_cast<size_t>(kPerWriter));
  ASSERT_TRUE(db->CheckInvariants().ok());

  // No reader is outstanding, so every compaction-retired file has been
  // physically unlinked by the sweeps at the end of FlushAll/Query.
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.files_deleted, m.files_deferred_deleted);
  EXPECT_GT(m.files_deferred_deleted, 0u);
}

TEST_F(EngineConcurrencyTest, WriterUnblocksOnBackgroundCompactionError) {
  // Regression: if the background compactor dies while level 0 is at
  // max_level0_files, Append used to wait on writer_cv_ forever — the wait
  // predicate only looked at the level-0 file count. Writers must instead
  // be failed with the stored background error.
  FaultInjectionEnv fault_env(&env_);
  Options o = BaseOptions();
  o.env = &fault_env;
  o.num_levels = 2;  // the fault fires on compaction reads: pin the seed tree
  o.policy = PolicyConfig::Conventional(4);
  o.sstable_points = 16;
  o.background_mode = true;
  o.max_level0_files = 2;
  auto db = MustOpen(o);

  // Build a run so a later out-of-order batch needs a real (reading)
  // compaction. In-order level-0 files are adopted without any read.
  for (int64_t t = 0; t < 64; ++t) {
    ASSERT_TRUE(db->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
  ASSERT_GT(db->RunFileCount(), 0u);

  // Writes keep succeeding, reads fail: flushes still land in level 0 but
  // the compactor cannot read its inputs and exits with an error.
  fault_env.SetFailReads(true);

  auto outcome = std::async(std::launch::async, [&] {
    // Re-write existing keys: overlaps the run, so draining level 0 now
    // requires reads. Pre-fix this loop hangs once level 0 is full and the
    // compactor is dead; post-fix it returns the background error.
    for (int i = 0; i < 10'000; ++i) {
      Status st = db->Append({i % 64, 100 + i, 2.0});
      if (!st.ok()) return st;
    }
    return Status::OK();
  });

  ASSERT_EQ(outcome.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "Append hung after the background compactor died";
  Status st = outcome.get();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();

  fault_env.SetFailReads(false);  // let shutdown clean up
}

// Worker count for shared-scheduler tests; the TSan CI job runs these
// suites at both extremes (SEPLSM_BG_THREADS=1 and =8) to cover the
// fully-serialized and maximally-parallel interleavings.
size_t SchedulerThreadsFromEnv() {
  const char* v = std::getenv("SEPLSM_BG_THREADS");
  if (v != nullptr) {
    int n = std::atoi(v);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 4;
}

TEST_F(EngineConcurrencyTest, SharedSchedulerTwoEnginesFuzz) {
  // Two engines on one scheduler, each under the snapshot-consistency
  // fuzz concurrently: per-token serialization must keep each engine's
  // single-compactor invariant while their jobs interleave in the pool.
  auto scheduler = std::make_shared<JobScheduler>(SchedulerThreadsFromEnv());
  Options oa = BaseOptions();
  oa.dir = "/db_a";
  oa.policy = PolicyConfig::Conventional(8);
  oa.background_mode = true;
  oa.max_level0_files = 4;
  oa.job_scheduler = scheduler;
  Options ob = oa;
  ob.dir = "/db_b";
  ob.policy = PolicyConfig::Separation(8, 6);
  auto a = MustOpen(oa);
  auto b = MustOpen(ob);

  std::thread ta([&] {
    RunSnapshotConsistencyFuzz(a.get(), LocallyShuffledKeys(2000, 16, 21), 5);
  });
  std::thread tb([&] {
    RunSnapshotConsistencyFuzz(b.get(), LocallyShuffledKeys(2000, 16, 23), 6);
  });
  ta.join();
  tb.join();

  ASSERT_TRUE(a->WaitForBackgroundIdle().ok());
  ASSERT_TRUE(b->WaitForBackgroundIdle().ok());
  Metrics ma = a->GetMetrics();
  Metrics mb = b->GetMetrics();
  EXPECT_GT(ma.bg_flush_jobs, 0u);
  EXPECT_GT(mb.bg_flush_jobs, 0u);
  // A no-op job dispatched just before idle may still be counting, so the
  // scheduler totals are compared loosely — what matters is that both
  // engines' work went through the one shared pool.
  JobScheduler::Stats stats = scheduler->GetStats();
  EXPECT_GT(stats.executed_flush, 0u);
  EXPECT_EQ(stats.threads, SchedulerThreadsFromEnv());
}

TEST_F(EngineConcurrencyTest, CloseOneEngineWhileOtherCompacts) {
  // Regression for shutdown ordering: destroying engine A must drain only
  // A's jobs. Engine B — possibly mid-compaction on the same scheduler —
  // keeps ingesting and stays fully readable afterwards.
  auto scheduler = std::make_shared<JobScheduler>(SchedulerThreadsFromEnv());
  Options oa = BaseOptions();
  oa.dir = "/db_a";
  oa.policy = PolicyConfig::Conventional(8);
  oa.background_mode = true;
  oa.max_level0_files = 2;  // keep both engines constantly compacting
  oa.sstable_points = 16;
  oa.job_scheduler = scheduler;
  Options ob = oa;
  ob.dir = "/db_b";
  auto a = MustOpen(oa);
  auto b = MustOpen(ob);

  constexpr int64_t kPoints = 1200;
  std::atomic<bool> a_closed{false};
  std::thread writer_b([&] {
    auto keys = LocallyShuffledKeys(kPoints, 8, 31);
    for (size_t i = 0; i < keys.size(); ++i) {
      Status st = b->Append({keys[i], keys[i], ValueFor(keys[i])});
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    // B must be able to finish its work after A is gone.
    while (!a_closed.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(b->FlushAll().ok());
  });

  // Load A until it surely has level-0 files / a compaction in flight,
  // then destroy it mid-churn.
  auto keys_a = LocallyShuffledKeys(600, 8, 37);
  for (int64_t k : keys_a) {
    ASSERT_TRUE(a->Append({k, k, ValueFor(k)}).ok());
  }
  a.reset();  // drains only A's token
  a_closed.store(true, std::memory_order_release);

  writer_b.join();
  std::vector<DataPoint> all;
  ASSERT_TRUE(b->Query(0, kPoints - 1, &all).ok());
  EXPECT_EQ(all.size(), static_cast<size_t>(kPoints));
  ASSERT_TRUE(b->CheckInvariants().ok());

  // A closed cleanly: reopening it recovers every accepted point.
  Options oa2 = BaseOptions();
  oa2.dir = "/db_a";
  oa2.policy = PolicyConfig::Conventional(8);
  oa2.background_mode = true;
  oa2.job_scheduler = scheduler;
  auto a2 = MustOpen(oa2);
  std::vector<DataPoint> a_all;
  ASSERT_TRUE(a2->Query(0, 599, &a_all).ok());
  EXPECT_EQ(a_all.size(), 600u);
}

TEST_F(EngineConcurrencyTest, BackgroundErrorStaysOnItsEngine) {
  // A failed compaction on series A must poison only A: B shares the
  // scheduler (and possibly the worker that hit the error) but keeps
  // flushing, compacting, and serving reads.
  FaultInjectionEnv fault_env(&env_);
  auto scheduler = std::make_shared<JobScheduler>(SchedulerThreadsFromEnv());
  Options oa = BaseOptions();
  oa.env = &fault_env;
  oa.dir = "/db_a";
  oa.num_levels = 2;  // the fault fires on compaction reads: pin the seed tree
  oa.policy = PolicyConfig::Conventional(4);
  oa.sstable_points = 16;
  oa.background_mode = true;
  oa.max_level0_files = 2;
  oa.job_scheduler = scheduler;
  Options ob = BaseOptions();
  ob.dir = "/db_b";
  ob.policy = PolicyConfig::Conventional(4);
  ob.sstable_points = 16;
  ob.background_mode = true;
  ob.max_level0_files = 2;
  ob.job_scheduler = scheduler;
  auto a = MustOpen(oa);
  auto b = MustOpen(ob);

  // Give A a run so an out-of-order batch needs a reading compaction.
  for (int64_t t = 0; t < 64; ++t) {
    ASSERT_TRUE(a->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE(a->WaitForBackgroundIdle().ok());
  fault_env.SetFailReads(true);  // A's compactions now die; B is untouched

  auto outcome = std::async(std::launch::async, [&] {
    for (int i = 0; i < 10'000; ++i) {
      Status st = a->Append({i % 64, 100 + i, 2.0});
      if (!st.ok()) return st;
    }
    return Status::OK();
  });

  // B keeps working the whole time.
  auto keys = LocallyShuffledKeys(800, 8, 41);
  for (int64_t k : keys) {
    ASSERT_TRUE(b->Append({k, k, ValueFor(k)}).ok());
  }

  ASSERT_EQ(outcome.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "Append on the failing engine hung";
  EXPECT_TRUE(outcome.get().IsIOError());

  ASSERT_TRUE(b->FlushAll().ok()) << "healthy engine was poisoned";
  std::vector<DataPoint> all;
  ASSERT_TRUE(b->Query(0, 799, &all).ok());
  EXPECT_EQ(all.size(), 800u);
  Metrics mb = b->GetMetrics();
  EXPECT_GT(mb.bg_flush_jobs, 0u);

  fault_env.SetFailReads(false);  // let A's shutdown clean up
}

}  // namespace
}  // namespace seplsm::engine
