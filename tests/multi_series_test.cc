#include "engine/multi_series_db.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <string>
#include <thread>

#include "dist/parametric.h"
#include "env/mem_env.h"
#include "workload/synthetic.h"

namespace seplsm::engine {
namespace {

class MultiSeriesTest : public ::testing::Test {
 protected:
  MultiSeriesDB::MultiOptions BaseOptions() {
    MultiSeriesDB::MultiOptions o;
    o.base.env = &env_;
    o.base.dir = "/fleet";
    o.base.policy = PolicyConfig::Conventional(8);
    o.base.sstable_points = 16;
    return o;
  }

  std::unique_ptr<MultiSeriesDB> MustOpen(MultiSeriesDB::MultiOptions o) {
    auto db = MultiSeriesDB::Open(std::move(o));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  MemEnv env_;
};

TEST_F(MultiSeriesTest, SeriesCreatedOnFirstWrite) {
  auto db = MustOpen(BaseOptions());
  EXPECT_EQ(db->series_count(), 0u);
  ASSERT_TRUE(db->Append("engine.temp", {1, 2, 90.0}).ok());
  ASSERT_TRUE(db->Append("engine.rpm", {1, 2, 3000.0}).ok());
  EXPECT_EQ(db->series_count(), 2u);
}

TEST_F(MultiSeriesTest, SeriesAreIsolated) {
  auto db = MustOpen(BaseOptions());
  for (int64_t t = 0; t < 50; ++t) {
    ASSERT_TRUE(db->Append("a", {t, t, 1.0}).ok());
    ASSERT_TRUE(db->Append("b", {t, t, 2.0}).ok());
  }
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query("a", 0, 100, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  for (const auto& p : out) EXPECT_EQ(p.value, 1.0);
  ASSERT_TRUE(db->Query("b", 0, 100, &out).ok());
  for (const auto& p : out) EXPECT_EQ(p.value, 2.0);
}

TEST_F(MultiSeriesTest, QueryUnknownSeriesNotFound) {
  auto db = MustOpen(BaseOptions());
  std::vector<DataPoint> out;
  EXPECT_TRUE(db->Query("ghost", 0, 1, &out).IsNotFound());
  EXPECT_TRUE(db->GetSeriesMetrics("ghost").status().IsNotFound());
  EXPECT_TRUE(db->GetSeriesPolicy("ghost").status().IsNotFound());
}

TEST_F(MultiSeriesTest, SpecialCharactersInSeriesNames) {
  auto db = MustOpen(BaseOptions());
  const std::string weird = "vehicle/7#sensor temp&raw%2F";
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(db->Append(weird, {t, t, 5.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(weird, 0, 100, &out).ok());
  EXPECT_EQ(out.size(), 20u);
}

TEST_F(MultiSeriesTest, ReopenRecoversAllSeries) {
  const std::string weird = "a/b c%d";
  {
    auto db = MustOpen(BaseOptions());
    for (int64_t t = 0; t < 40; ++t) {
      ASSERT_TRUE(db->Append("x", {t, t, 1.0}).ok());
      ASSERT_TRUE(db->Append(weird, {t, t, 2.0}).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
  }
  auto db = MustOpen(BaseOptions());
  EXPECT_EQ(db->series_count(), 2u);
  auto names = db->ListSeries();
  EXPECT_NE(std::find(names.begin(), names.end(), weird), names.end());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(weird, 0, 100, &out).ok());
  EXPECT_EQ(out.size(), 40u);
}

TEST_F(MultiSeriesTest, AggregateMetricsSumSeries) {
  auto db = MustOpen(BaseOptions());
  for (int64_t t = 0; t < 64; ++t) {
    ASSERT_TRUE(db->Append("a", {t, t, 0.0}).ok());
    ASSERT_TRUE(db->Append("b", {t, t, 0.0}).ok());
  }
  Metrics total = db->GetAggregateMetrics();
  EXPECT_EQ(total.points_ingested, 128u);
  auto a = db->GetSeriesMetrics("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->points_ingested, 64u);
}

TEST_F(MultiSeriesTest, PerSeriesAdaptivePolicies) {
  auto options = BaseOptions();
  options.base.policy = PolicyConfig::Conventional(64);
  options.adaptive = true;
  options.adaptive_options.warmup_points = 1024;
  options.adaptive_options.check_interval = 1024;
  options.adaptive_options.tuning.sweep_step = 8;
  auto db = MustOpen(std::move(options));

  // Series "ordered": near-zero delays; series "chaotic": severe disorder.
  workload::SyntheticConfig sc;
  sc.num_points = 4000;
  sc.delta_t = 1000.0;
  dist::UniformDistribution mild(0.0, 5.0);
  auto ordered = workload::GenerateSynthetic(sc, mild);
  sc.delta_t = 10.0;
  sc.seed = 2;
  dist::LognormalDistribution severe(6.0, 2.0);
  auto chaotic = workload::GenerateSynthetic(sc, severe);

  for (size_t i = 0; i < ordered.size(); ++i) {
    ASSERT_TRUE(db->Append("ordered", ordered[i]).ok());
    ASSERT_TRUE(db->Append("chaotic", chaotic[i]).ok());
  }
  auto ordered_policy = db->GetSeriesPolicy("ordered");
  auto chaotic_policy = db->GetSeriesPolicy("chaotic");
  ASSERT_TRUE(ordered_policy.ok());
  ASSERT_TRUE(chaotic_policy.ok());
  EXPECT_EQ(ordered_policy->kind, PolicyKind::kConventional);
  EXPECT_EQ(chaotic_policy->kind, PolicyKind::kSeparation)
      << "per-series tuning should separate only the disordered series";
}

TEST_F(MultiSeriesTest, ConcurrentAppendsSameSeriesWithController) {
  // Regression: Append used to call AdaptiveController::Observe outside any
  // lock, so two threads writing the same series raced on the controller's
  // DelayCollector/DriftDetector state (a TSan-visible data race and, at
  // worst, a policy switch decided on torn statistics). The per-series
  // observe mutex serializes it; this test is run under the TSan CI job.
  auto options = BaseOptions();
  options.base.policy = PolicyConfig::Conventional(64);
  options.adaptive = true;
  options.adaptive_options.warmup_points = 256;
  options.adaptive_options.check_interval = 256;
  auto db = MustOpen(std::move(options));

  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      // Interleaved, distinct generation times per thread.
      for (int64_t i = 0; i < kPerThread; ++i) {
        int64_t t = i * kThreads + w;
        Status st = db->Append("shared", {t, t + 3, 1.0});
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query("shared", 0, kThreads * kPerThread, &out).ok());
  EXPECT_EQ(out.size(), static_cast<size_t>(kThreads * kPerThread));
  Metrics m = db->GetAggregateMetrics();
  EXPECT_EQ(m.points_ingested, static_cast<uint64_t>(kThreads * kPerThread));
}

// Threads of the current process, from /proc (Linux-only; 0 elsewhere).
size_t CurrentThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

TEST_F(MultiSeriesTest, BackgroundSeriesShareOneBoundedPool) {
  // The tentpole claim: S series in background mode use one scheduler with
  // at most background_threads workers — not S background threads. Thread
  // accounting via /proc pins it down exactly.
  size_t before = CurrentThreadCount();
  auto options = BaseOptions();
  options.base.background_mode = true;
  options.base.background_threads = 2;
  auto db = MustOpen(std::move(options));

  constexpr size_t kSeries = 16;
  for (int64_t t = 0; t < 40; ++t) {
    for (size_t s = 0; s < kSeries; ++s) {
      ASSERT_TRUE(
          db->Append("s" + std::to_string(s), {t, t, 1.0}).ok());
    }
  }
  ASSERT_NE(db->job_scheduler(), nullptr);
  EXPECT_EQ(db->job_scheduler()->thread_count(), 2u);
  if (before > 0) {
    // 16 engines, but only the 2 scheduler workers were added.
    EXPECT_LE(CurrentThreadCount(), before + 2);
  }
  ASSERT_TRUE(db->FlushAll().ok());
  for (size_t s = 0; s < kSeries; ++s) {
    std::vector<DataPoint> out;
    ASSERT_TRUE(db->Query("s" + std::to_string(s), 0, 100, &out).ok());
    EXPECT_EQ(out.size(), 40u);
  }
  Metrics m = db->GetAggregateMetrics();
  EXPECT_GT(m.bg_flush_jobs, 0u);
}

TEST_F(MultiSeriesTest, SchedulerIsSharedAcrossSeries) {
  auto options = BaseOptions();
  options.base.background_mode = true;
  options.base.background_threads = 1;
  auto db = MustOpen(std::move(options));
  ASSERT_TRUE(db->Append("a", {1, 1, 1.0}).ok());
  ASSERT_TRUE(db->Append("b", {1, 1, 1.0}).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  JobScheduler* shared = db->job_scheduler();
  ASSERT_NE(shared, nullptr);
  // Both engines submit into the one scheduler the DB owns; with
  // background mode off it would not exist at all.
  EXPECT_EQ(shared->thread_count(), 1u);
  auto no_bg = MustOpen(BaseOptions());
  EXPECT_EQ(no_bg->job_scheduler(), nullptr);
}

TEST_F(MultiSeriesTest, CloseSeriesWhileOthersKeepWriting) {
  auto options = BaseOptions();
  options.base.background_mode = true;
  options.base.background_threads = 2;
  options.base.max_level0_files = 2;  // constant compaction churn
  auto db = MustOpen(std::move(options));

  EXPECT_TRUE(db->CloseSeries("ghost").IsNotFound());

  std::atomic<bool> closed{false};
  std::thread writer([&] {
    for (int64_t t = 0; t < 800; ++t) {
      Status st = db->Append("keeper", {t, t, 1.0});
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    while (!closed.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (int64_t t = 800; t < 900; ++t) {
      ASSERT_TRUE(db->Append("keeper", {t, t, 1.0}).ok());
    }
  });

  // Load the doomed series so it very likely has jobs in flight, then
  // close it mid-churn.
  for (int64_t t = 0; t < 400; ++t) {
    ASSERT_TRUE(db->Append("doomed", {t, t, 2.0}).ok());
  }
  // The writer thread creates "keeper" on its first append; wait for that
  // so series_count() below is deterministic.
  while (db->series_count() < 2) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(db->CloseSeries("doomed").ok());
  EXPECT_EQ(db->series_count(), 1u);
  closed.store(true, std::memory_order_release);
  writer.join();

  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query("keeper", 0, 1000, &out).ok());
  EXPECT_EQ(out.size(), 900u);

  // The closed series reopens from disk with everything it accepted.
  ASSERT_TRUE(db->Append("doomed", {400, 400, 2.0}).ok());
  ASSERT_TRUE(db->Query("doomed", 0, 1000, &out).ok());
  EXPECT_EQ(out.size(), 401u);
}

TEST_F(MultiSeriesTest, ManySeriesStress) {
  auto db = MustOpen(BaseOptions());
  const size_t kSeries = 64;
  for (int64_t t = 0; t < 30; ++t) {
    for (size_t s = 0; s < kSeries; ++s) {
      ASSERT_TRUE(db->Append("sensor." + std::to_string(s),
                             {t, t, static_cast<double>(s)})
                      .ok());
    }
  }
  ASSERT_TRUE(db->FlushAll().ok());
  EXPECT_EQ(db->series_count(), kSeries);
  for (size_t s = 0; s < kSeries; s += 7) {
    std::vector<DataPoint> out;
    ASSERT_TRUE(db->Query("sensor." + std::to_string(s), 0, 100, &out).ok());
    EXPECT_EQ(out.size(), 30u);
  }
}

}  // namespace
}  // namespace seplsm::engine
