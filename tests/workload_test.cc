#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dist/parametric.h"
#include "env/mem_env.h"
#include "stats/autocorrelation.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"
#include "workload/synthetic.h"
#include "workload/trace_io.h"

namespace seplsm::workload {
namespace {

TEST(SyntheticTest, SortedByArrival) {
  SyntheticConfig c;
  c.num_points = 5000;
  c.delta_t = 50.0;
  dist::LognormalDistribution d(4.0, 1.5);
  auto points = GenerateSynthetic(c, d);
  ASSERT_EQ(points.size(), 5000u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].arrival_time, points[i].arrival_time);
  }
}

TEST(SyntheticTest, GenerationTimesUnique) {
  SyntheticConfig c;
  c.num_points = 5000;
  c.delta_t = 10.0;
  c.interval_jitter = 0.5;  // forces rounding collisions
  dist::LognormalDistribution d(3.0, 1.0);
  auto points = GenerateSynthetic(c, d);
  std::set<int64_t> keys;
  for (const auto& p : points) keys.insert(p.generation_time);
  EXPECT_EQ(keys.size(), points.size());
}

TEST(SyntheticTest, DelaysNonNegative) {
  SyntheticConfig c;
  c.num_points = 2000;
  dist::ExponentialDistribution d(100.0);
  auto points = GenerateSynthetic(c, d);
  for (const auto& p : points) EXPECT_GE(p.delay(), 0);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig c;
  c.num_points = 100;
  c.seed = 77;
  dist::LognormalDistribution d(4.0, 1.5);
  auto a = GenerateSynthetic(c, d);
  auto b = GenerateSynthetic(c, d);
  EXPECT_EQ(a, b);
}

TEST(SyntheticTest, ConstantIntervalWithoutJitter) {
  SyntheticConfig c;
  c.num_points = 100;
  c.delta_t = 50.0;
  dist::UniformDistribution d(0.0, 1.0);
  auto points = GenerateSynthetic(c, d);
  std::sort(points.begin(), points.end(), OrderByGenerationTime());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_EQ(points[i].generation_time - points[i - 1].generation_time, 50);
  }
}

TEST(DisorderStatsTest, OrderedStreamIsClean) {
  std::vector<DataPoint> stream;
  for (int64_t i = 0; i < 100; ++i) stream.push_back({i, i + 1, 0.0});
  auto s = ComputeDisorderStats(stream);
  EXPECT_EQ(s.late_event_fraction, 0.0);
  EXPECT_EQ(s.out_of_order_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_delay, 1.0);
}

TEST(DisorderStatsTest, CountsDefinitionThreeCorrectly) {
  // Arrival order: g=0, g=10, g=5 (ooo), g=20, g=7 (ooo).
  std::vector<DataPoint> stream = {
      {0, 0, 0.0}, {10, 11, 0.0}, {5, 12, 0.0}, {20, 21, 0.0}, {7, 25, 0.0}};
  auto s = ComputeDisorderStats(stream);
  EXPECT_DOUBLE_EQ(s.out_of_order_fraction, 2.0 / 5.0);
  // Late events: g=5 after g=10, g=7 after g=20.
  EXPECT_DOUBLE_EQ(s.late_event_fraction, 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.mean_out_of_order_delay, (7.0 + 18.0) / 2.0);
}

TEST(TableIITest, TwelveConfigsInPaperOrder) {
  const auto& table = TableII();
  ASSERT_EQ(table.size(), 12u);
  EXPECT_EQ(table[0].name, "M1");
  EXPECT_EQ(table[11].name, "M12");
  // M1-M6: Δt=50; M7-M12: Δt=10.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(table[i].delta_t, 50.0);
  for (int i = 6; i < 12; ++i) EXPECT_EQ(table[i].delta_t, 10.0);
  // Within each Δt group μ goes 4,4,4,5,5,5 and σ cycles 1.5,1.75,2.
  EXPECT_EQ(table[0].mu, 4.0);
  EXPECT_EQ(table[3].mu, 5.0);
  EXPECT_EQ(table[0].sigma, 1.5);
  EXPECT_EQ(table[2].sigma, 2.0);
}

TEST(TableIITest, LookupByName) {
  EXPECT_EQ(TableIIByName("M5").mu, 5.0);
  EXPECT_EQ(TableIIByName("M5").sigma, 1.75);
  EXPECT_EQ(TableIIByName("M10").delta_t, 10.0);
}

TEST(TableIITest, MoreSigmaMoreDisorder) {
  auto m1 = GenerateTableII(TableIIByName("M1"), 20000);
  auto m3 = GenerateTableII(TableIIByName("M3"), 20000);
  EXPECT_GT(ComputeDisorderStats(m3).out_of_order_fraction,
            ComputeDisorderStats(m1).out_of_order_fraction);
}

TEST(TableIITest, SmallerDeltaTMoreDisorder) {
  auto m1 = GenerateTableII(TableIIByName("M1"), 20000);
  auto m7 = GenerateTableII(TableIIByName("M7"), 20000);
  EXPECT_GT(ComputeDisorderStats(m7).out_of_order_fraction,
            ComputeDisorderStats(m1).out_of_order_fraction);
}

TEST(S9Test, HasSkewedTailAndModerateDisorder) {
  auto points = GenerateS9Simulated(30000);
  ASSERT_EQ(points.size(), 30000u);
  auto s = ComputeDisorderStats(points);
  // Paper: 7.05% out of order; accept a loose band around it.
  EXPECT_GT(s.out_of_order_fraction, 0.02);
  EXPECT_LT(s.out_of_order_fraction, 0.20);
  // Skew: max delay far above the mean.
  EXPECT_GT(s.max_delay, 20.0 * s.mean_delay);
}

TEST(S9Test, VariableIntervalsWhenJittered) {
  auto points = GenerateS9Simulated(5000, /*jitter_intervals=*/true);
  std::sort(points.begin(), points.end(), OrderByGenerationTime());
  std::set<int64_t> intervals;
  for (size_t i = 1; i < points.size(); ++i) {
    intervals.insert(points[i].generation_time -
                     points[i - 1].generation_time);
  }
  EXPECT_GT(intervals.size(), 50u);
}

TEST(HTest, TinyOutOfOrderFractionAndSystematicDelays) {
  HSimConfig c;
  c.num_points = 200000;
  auto points = GenerateHSimulated(c);
  auto s = ComputeDisorderStats(points);
  // Paper: 0.0375% out of order for H; ours should be well below 1%.
  EXPECT_GT(s.out_of_order_fraction, 0.0);
  EXPECT_LT(s.out_of_order_fraction, 0.01);
  // Systematic mode: some delays reach toward the re-send boundary.
  EXPECT_GT(s.max_delay, 10000.0);
}

TEST(HTest, DelaysAreAutocorrelated) {
  HSimConfig c;
  c.num_points = 100000;
  c.outage_start_probability = 2e-3;  // denser outages for the ACF signal
  auto points = GenerateHSimulated(c);
  // Delays in generation order.
  std::sort(points.begin(), points.end(), OrderByGenerationTime());
  std::vector<double> delays;
  delays.reserve(points.size());
  for (const auto& p : points) {
    delays.push_back(static_cast<double>(p.delay()));
  }
  auto acf = stats::Autocorrelation(delays, 5);
  ASSERT_FALSE(acf.acf.empty());
  EXPECT_GT(acf.acf[1], 3.0 * acf.conf_bound);
}

TEST(QueryWorkloadTest, RecentWindowAnchorsToMax) {
  RecentQueryGenerator gen(5000);
  auto q = gen.Next(100000);
  EXPECT_EQ(q.lo, 95000);
  EXPECT_EQ(q.hi, 100000);
}

TEST(QueryWorkloadTest, HistoricalWithinBounds) {
  HistoricalQueryGenerator gen(1000, 3);
  for (int i = 0; i < 200; ++i) {
    auto q = gen.Next(0, 100000);
    EXPECT_GE(q.lo, 0);
    EXPECT_LE(q.hi, 100000);
    EXPECT_EQ(q.hi - q.lo, 1000);
  }
}

TEST(QueryWorkloadTest, HistoricalDegenerateSpan) {
  HistoricalQueryGenerator gen(1000);
  auto q = gen.Next(0, 500);  // window longer than history
  EXPECT_EQ(q.lo, 0);
}

TEST(TraceIoTest, CsvRoundTrip) {
  MemEnv env;
  std::vector<DataPoint> points = {
      {0, 5, 1.5}, {-10, 3, -2.75}, {1000000007, 1000000008, 0.1}};
  ASSERT_TRUE(WriteTraceCsv(&env, "/t.csv", points).ok());
  auto back = ReadTraceCsv(&env, "/t.csv");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, points);
}

TEST(TraceIoTest, MalformedRowRejected) {
  MemEnv env;
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/bad.csv", &f).ok());
  ASSERT_TRUE(f->Append("generation_time,arrival_time,value\n1,2\n").ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_TRUE(ReadTraceCsv(&env, "/bad.csv").status().IsCorruption());
}

TEST(TraceIoTest, LargeTraceRoundTrip) {
  MemEnv env;
  SyntheticConfig c;
  c.num_points = 20000;
  dist::LognormalDistribution d(4.0, 1.5);
  auto points = GenerateSynthetic(c, d);
  ASSERT_TRUE(WriteTraceCsv(&env, "/big.csv", points).ok());
  auto back = ReadTraceCsv(&env, "/big.csv");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, points);
}

}  // namespace
}  // namespace seplsm::workload
