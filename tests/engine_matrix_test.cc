// Configuration-matrix test: one disordered workload driven through every
// combination of {policy} x {WAL} x {value encoding} x {table cache} x
// {sstable size}, each verified for (a) exact query correctness against a
// brute-force reference and (b) engine invariants. Guards against feature
// interactions (e.g. WAL replay + Gorilla blocks + cache eviction).

#include <gtest/gtest.h>

#include <map>

#include "dist/parametric.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "workload/synthetic.h"

namespace seplsm::engine {
namespace {

struct MatrixCase {
  std::string label;
  PolicyConfig policy;
  bool wal;
  format::ValueEncoding encoding;
  size_t cache;
  size_t sstable_points;
};

std::vector<MatrixCase> Cases() {
  std::vector<MatrixCase> cases;
  int i = 0;
  for (auto policy : {PolicyConfig::Conventional(16),
                      PolicyConfig::Separation(16, 8)}) {
    for (bool wal : {false, true}) {
      for (auto encoding :
           {format::ValueEncoding::kRaw, format::ValueEncoding::kGorilla}) {
        for (size_t cache : {size_t{0}, size_t{4}}) {
          for (size_t sstable : {size_t{8}, size_t{64}}) {
            MatrixCase c;
            c.label = "case_" + std::to_string(i++) +
                      (policy.kind == PolicyKind::kSeparation ? "_sep"
                                                              : "_conv") +
                      (wal ? "_wal" : "") +
                      (encoding == format::ValueEncoding::kGorilla
                           ? "_gorilla"
                           : "") +
                      (cache ? "_cache" : "") + "_sst" +
                      std::to_string(sstable);
            c.policy = policy;
            c.wal = wal;
            c.encoding = encoding;
            c.cache = cache;
            c.sstable_points = sstable;
            cases.push_back(c);
          }
        }
      }
    }
  }
  return cases;
}

class EngineMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EngineMatrixTest, CorrectUnderAllFeatureCombinations) {
  const MatrixCase& c = GetParam();
  MemEnv env;
  Options o;
  o.env = &env;
  o.dir = "/matrix";
  o.policy = c.policy;
  o.enable_wal = c.wal;
  o.value_encoding = c.encoding;
  o.table_cache_entries = c.cache;
  o.sstable_points = c.sstable_points;
  o.points_per_block = 4;
  auto open = TsEngine::Open(o);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  auto& db = *open;

  workload::SyntheticConfig sc;
  sc.num_points = 1200;
  sc.delta_t = 20.0;
  sc.seed = 99;
  dist::LognormalDistribution delay(3.5, 1.5);
  auto points = workload::GenerateSynthetic(sc, delay);

  std::map<int64_t, DataPoint> reference;
  for (const auto& p : points) {
    ASSERT_TRUE(db->Append(p).ok());
    reference.insert_or_assign(p.generation_time, p);
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->CheckInvariants().ok());

  std::vector<DataPoint> all;
  ASSERT_TRUE(db->Query(-1000, 1 << 30, &all).ok());
  ASSERT_EQ(all.size(), reference.size());
  size_t idx = 0;
  for (const auto& [tg, p] : reference) {
    ASSERT_EQ(all[idx], p) << "key " << tg;
    ++idx;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, EngineMatrixTest,
                         ::testing::ValuesIn(Cases()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace seplsm::engine
