#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "env/env.h"
#include "env/fault_env.h"
#include "env/latency_env.h"
#include "env/mem_env.h"

namespace seplsm {
namespace {

std::string WriteFile(Env* env, const std::string& path,
                      const std::string& data) {
  std::unique_ptr<WritableFile> f;
  EXPECT_TRUE(env->NewWritableFile(path, &f).ok());
  EXPECT_TRUE(f->Append(data).ok());
  EXPECT_TRUE(f->Close().ok());
  return path;
}

std::string ReadWhole(Env* env, const std::string& path) {
  std::unique_ptr<RandomAccessFile> f;
  EXPECT_TRUE(env->NewRandomAccessFile(path, &f).ok());
  std::string out;
  EXPECT_TRUE(f->Read(0, f->Size(), &out).ok());
  return out;
}

class EnvContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "posix") {
      env_ = Env::Default();
      dir_ = (std::filesystem::temp_directory_path() /
              ("seplsm_env_test_" + std::to_string(::getpid())))
                 .string();
      ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
    } else {
      owned_ = std::make_unique<MemEnv>();
      env_ = owned_.get();
      dir_ = "/db";
    }
  }

  void TearDown() override {
    if (GetParam() == "posix") {
      std::filesystem::remove_all(dir_);
    }
  }

  std::unique_ptr<MemEnv> owned_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvContractTest, WriteReadRoundTrip) {
  std::string path = dir_ + "/a.bin";
  WriteFile(env_, path, "hello world");
  EXPECT_EQ(ReadWhole(env_, path), "hello world");
}

TEST_P(EnvContractTest, PositionedReads) {
  std::string path = dir_ + "/b.bin";
  WriteFile(env_, path, "0123456789");
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_->NewRandomAccessFile(path, &f).ok());
  std::string out;
  ASSERT_TRUE(f->Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
}

TEST_P(EnvContractTest, ReadPastEofShortens) {
  std::string path = dir_ + "/c.bin";
  WriteFile(env_, path, "abc");
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_->NewRandomAccessFile(path, &f).ok());
  std::string out;
  ASSERT_TRUE(f->Read(2, 100, &out).ok());
  EXPECT_EQ(out, "c");
  ASSERT_TRUE(f->Read(50, 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(EnvContractTest, FileExistsAndSize) {
  std::string path = dir_ + "/d.bin";
  EXPECT_FALSE(env_->FileExists(path));
  WriteFile(env_, path, "12345");
  EXPECT_TRUE(env_->FileExists(path));
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(path, &size).ok());
  EXPECT_EQ(size, 5u);
}

TEST_P(EnvContractTest, RemoveFile) {
  std::string path = dir_ + "/e.bin";
  WriteFile(env_, path, "x");
  ASSERT_TRUE(env_->RemoveFile(path).ok());
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_FALSE(env_->RemoveFile(path).ok());
}

TEST_P(EnvContractTest, RenameFile) {
  std::string src = dir_ + "/f.bin";
  std::string dst = dir_ + "/g.bin";
  WriteFile(env_, src, "payload");
  ASSERT_TRUE(env_->RenameFile(src, dst).ok());
  EXPECT_FALSE(env_->FileExists(src));
  EXPECT_EQ(ReadWhole(env_, dst), "payload");
}

TEST_P(EnvContractTest, ListDirSeesFiles) {
  WriteFile(env_, dir_ + "/one.sst", "1");
  WriteFile(env_, dir_ + "/two.sst", "2");
  std::vector<std::string> children;
  ASSERT_TRUE(env_->ListDir(dir_, &children).ok());
  EXPECT_NE(std::find(children.begin(), children.end(), "one.sst"),
            children.end());
  EXPECT_NE(std::find(children.begin(), children.end(), "two.sst"),
            children.end());
}

TEST_P(EnvContractTest, OpenMissingFileFails) {
  std::unique_ptr<RandomAccessFile> f;
  EXPECT_FALSE(env_->NewRandomAccessFile(dir_ + "/missing", &f).ok());
}

TEST_P(EnvContractTest, OverwriteReplacesContents) {
  std::string path = dir_ + "/h.bin";
  WriteFile(env_, path, "first version");
  WriteFile(env_, path, "v2");
  EXPECT_EQ(ReadWhole(env_, path), "v2");
}

TEST_P(EnvContractTest, AppendableFileCreatesWhenMissing) {
  std::string path = dir_ + "/app.bin";
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewAppendableFile(path, &f).ok());
  ASSERT_TRUE(f->Append("abc").ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(ReadWhole(env_, path), "abc");
}

TEST_P(EnvContractTest, AppendableFileContinuesExisting) {
  std::string path = dir_ + "/app2.bin";
  WriteFile(env_, path, "head-");
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewAppendableFile(path, &f).ok());
  ASSERT_TRUE(f->Append("tail").ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(ReadWhole(env_, path), "head-tail");
}

TEST_P(EnvContractTest, SyncMakesDataReadable) {
  // The functional half of the durability contract (crash semantics are
  // covered by the fault env): after Sync, a concurrent reader sees every
  // appended byte even while the file stays open for writing.
  std::string path = dir_ + "/sync.bin";
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(path, &f).ok());
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(ReadWhole(env_, path), "durable");
  ASSERT_TRUE(f->Append("+more").ok());
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(ReadWhole(env_, path), "durable+more");
  ASSERT_TRUE(f->Close().ok());
}

TEST_P(EnvContractTest, SyncDirSucceeds) {
  WriteFile(env_, dir_ + "/x.bin", "x");
  EXPECT_TRUE(env_->SyncDir(dir_).ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, EnvContractTest,
                         ::testing::Values("mem", "posix"),
                         [](const auto& info) { return info.param; });

TEST(MemEnvTest, TotalBytes) {
  MemEnv env;
  WriteFile(&env, "/a", "12345");
  WriteFile(&env, "/b", "123");
  EXPECT_EQ(env.TotalBytes(), 8u);
}

TEST(MemEnvTest, ListDirDirectChildrenAndDirs) {
  MemEnv env;
  WriteFile(&env, "/d/a.txt", "x");
  WriteFile(&env, "/d/sub/b.txt", "x");
  WriteFile(&env, "/d/sub/c.txt", "x");
  std::vector<std::string> children;
  ASSERT_TRUE(env.ListDir("/d", &children).ok());
  // Files and implicit child directories, each reported once.
  ASSERT_EQ(children.size(), 2u);
  EXPECT_NE(std::find(children.begin(), children.end(), "a.txt"),
            children.end());
  EXPECT_NE(std::find(children.begin(), children.end(), "sub"),
            children.end());
}

TEST(LatencyEnvTest, ChargesSeekPerOpen) {
  MemEnv base;
  WriteFile(&base, "/f", "0123456789");
  DeviceLatencyModel model;
  model.seek_nanos = 1000;
  model.transfer_nanos_per_byte = 0.0;
  LatencyEnv env(&base, model);
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &f).ok());
  EXPECT_EQ(env.simulated_nanos(), 1000);
  EXPECT_EQ(env.opens(), 1u);
}

TEST(LatencyEnvTest, SequentialReadsAvoidExtraSeeks) {
  MemEnv base;
  WriteFile(&base, "/f", std::string(100, 'x'));
  DeviceLatencyModel model;
  model.seek_nanos = 1000;
  model.transfer_nanos_per_byte = 1.0;
  LatencyEnv env(&base, model);
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &f).ok());
  std::string out;
  ASSERT_TRUE(f->Read(0, 10, &out).ok());   // seek (first read) + 10 bytes
  ASSERT_TRUE(f->Read(10, 10, &out).ok());  // contiguous: no seek
  ASSERT_TRUE(f->Read(50, 10, &out).ok());  // jump: seek
  // open seek + first-read seek + jump seek = 3000; transfer 30.
  EXPECT_EQ(env.simulated_nanos(), 3000 + 30);
  EXPECT_EQ(env.bytes_read(), 30u);
}

TEST(LatencyEnvTest, ResetCountersZeroes) {
  MemEnv base;
  WriteFile(&base, "/f", "abc");
  LatencyEnv env(&base, DeviceLatencyModel{});
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &f).ok());
  env.ResetCounters();
  EXPECT_EQ(env.simulated_nanos(), 0);
  EXPECT_EQ(env.opens(), 0u);
}

TEST(FaultEnvTest, FailsAfterArmedThreshold) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  env.SetFailAfterOps(2);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());  // op 1
  ASSERT_TRUE(f->Append("a").ok());                 // op 2
  EXPECT_TRUE(f->Append("b").IsIOError());          // op 3 -> fail
  EXPECT_TRUE(f->Append("c").IsIOError());
}

TEST(FaultEnvTest, DisarmedPassesThrough) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  WriteFile(&env, "/f", "data");
  EXPECT_EQ(ReadWhole(&env, "/f"), "data");
}

TEST(FaultEnvTest, FailSyncsBreaksOnlySyncs) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  env.SetFailSyncs(true);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/db/f", &f).ok());
  ASSERT_TRUE(f->Append("abc").ok());       // buffered writes still succeed
  EXPECT_TRUE(f->Sync().IsIOError());       // flush command errors
  EXPECT_TRUE(env.SyncDir("/db").IsIOError());
  env.SetFailSyncs(false);
  EXPECT_TRUE(f->Sync().ok());
}

// --- SimulateCrash: the power-loss model the WAL crash matrix relies on ---

TEST(FaultEnvCrashTest, UnsyncedTailIsDropped) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewWritableFile("/db/f", &f).ok());
    ASSERT_TRUE(f->Append("synced").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Append("-volatile").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.SyncDir("/db").ok());  // entry durable, tail still volatile
  ASSERT_TRUE(env.SimulateCrash().ok());
  EXPECT_EQ(ReadWhole(&base, "/db/f"), "synced");
}

TEST(FaultEnvCrashTest, FileWithoutDirSyncLosesItsEntry) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewWritableFile("/db/f", &f).ok());
    ASSERT_TRUE(f->Append("content").ok());
    ASSERT_TRUE(f->Sync().ok());  // content durable, entry not
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.SimulateCrash().ok());
  EXPECT_FALSE(base.FileExists("/db/f"));
}

TEST(FaultEnvCrashTest, PreexistingFilesAreDurableAsIs) {
  MemEnv base;
  WriteFile(&base, "/db/old", "ancient");
  FaultInjectionEnv env(&base);
  ASSERT_TRUE(env.SimulateCrash().ok());
  EXPECT_EQ(ReadWhole(&base, "/db/old"), "ancient");
}

TEST(FaultEnvCrashTest, TruncatingCreateIsImmediatelyEmpty) {
  // The harsh model that exposes truncate-in-place WAL rotation: re-creating
  // a durable file truncates it on the device at once, so a crash right
  // after leaves an empty file, not the old bytes.
  MemEnv base;
  FaultInjectionEnv env(&base);
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewWritableFile("/db/f", &f).ok());
    ASSERT_TRUE(f->Append("v1").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.SyncDir("/db").ok());
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewWritableFile("/db/f", &f).ok());  // truncating create
    ASSERT_TRUE(f->Append("v2-unsynced").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.SimulateCrash().ok());
  ASSERT_TRUE(base.FileExists("/db/f"));
  EXPECT_EQ(ReadWhole(&base, "/db/f"), "");
}

TEST(FaultEnvCrashTest, UnsyncedRenameRollsBack) {
  MemEnv base;
  WriteFile(&base, "/db/dst", "old-dst");
  FaultInjectionEnv env(&base);
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewWritableFile("/db/src", &f).ok());
    ASSERT_TRUE(f->Append("new").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.RenameFile("/db/src", "/db/dst").ok());
  ASSERT_TRUE(env.SimulateCrash().ok());  // no SyncDir: rename undone
  // The pre-rename destination is restored; the source was created in this
  // epoch without a directory sync, so its entry is gone too.
  EXPECT_EQ(ReadWhole(&base, "/db/dst"), "old-dst");
  EXPECT_FALSE(base.FileExists("/db/src"));
}

TEST(FaultEnvCrashTest, UnsyncedRenameOfDurableSourceKeepsTheSource) {
  // A rename of a previously-durable file, crash before SyncDir: the file
  // must still exist under its OLD name — a crash can undo the rename, but
  // never delete both names.
  MemEnv base;
  WriteFile(&base, "/db/src", "payload");
  FaultInjectionEnv env(&base);
  ASSERT_TRUE(env.RenameFile("/db/src", "/db/dst").ok());
  ASSERT_TRUE(env.SimulateCrash().ok());
  EXPECT_EQ(ReadWhole(&base, "/db/src"), "payload");
  EXPECT_FALSE(base.FileExists("/db/dst"));
}

TEST(FaultEnvCrashTest, DirSyncedRenameSurvives) {
  MemEnv base;
  WriteFile(&base, "/db/dst", "old-dst");
  FaultInjectionEnv env(&base);
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewWritableFile("/db/src", &f).ok());
    ASSERT_TRUE(f->Append("new").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.RenameFile("/db/src", "/db/dst").ok());
  ASSERT_TRUE(env.SyncDir("/db").ok());
  ASSERT_TRUE(env.SimulateCrash().ok());
  EXPECT_EQ(ReadWhole(&base, "/db/dst"), "new");
  EXPECT_FALSE(base.FileExists("/db/src"));
}

TEST(FaultEnvCrashTest, RemoveIsImmediatelyDurable) {
  MemEnv base;
  WriteFile(&base, "/db/f", "x");
  FaultInjectionEnv env(&base);
  ASSERT_TRUE(env.RemoveFile("/db/f").ok());
  ASSERT_TRUE(env.SimulateCrash().ok());
  EXPECT_FALSE(base.FileExists("/db/f"));  // no unlink resurrection
}

TEST(FaultEnvCrashTest, AppendableFileFirstTouchKeepsExistingDurable) {
  MemEnv base;
  WriteFile(&base, "/db/log", "prefix");
  FaultInjectionEnv env(&base);
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewAppendableFile("/db/log", &f).ok());
    ASSERT_TRUE(f->Append("-unsynced").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.SimulateCrash().ok());
  // The pre-existing prefix predates the env and stays; the un-synced
  // appended tail is dropped.
  EXPECT_EQ(ReadWhole(&base, "/db/log"), "prefix");
}

}  // namespace
}  // namespace seplsm
