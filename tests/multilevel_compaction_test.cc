// N-level tree tests: Version invariants under the multi-level mutation
// API, equivalence of the deep tree against the two-level seed shape
// (identical query results, bounded per-job compaction inputs), the
// layout/file-pick design-space knobs, and snapshot stability while
// background cascades churn every level. The *MultiLevel* suites run under
// the ThreadSanitizer CI job (both SEPLSM_BG_THREADS extremes).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"
#include "storage/version.h"

namespace seplsm::engine {
namespace {

using storage::FileMetadata;
using storage::FilePtr;
using storage::LevelLayout;
using storage::Version;

// --- Version-level invariant fuzz -----------------------------------------

FileMetadata MakeFile(uint64_t number, int64_t min_tg, int64_t max_tg) {
  FileMetadata f;
  f.file_number = number;
  f.path = "/f" + std::to_string(number);
  f.min_generation_time = min_tg;
  f.max_generation_time = max_tg;
  f.point_count = static_cast<uint64_t>(max_tg - min_tg + 1);
  f.file_bytes = 64 * f.point_count;
  return f;
}

TEST(MultiLevelVersionTest, InvariantFuzzAcrossLayouts) {
  // Random valid mutations through the whole multi-level API; every
  // accepted operation must leave every level's invariant intact, for
  // leveling, tiering, and hybrid trees alike.
  const std::vector<std::vector<LevelLayout>> shapes = {
      {},  // default: all sorted below level 0
      {LevelLayout::kStacked, LevelLayout::kStacked, LevelLayout::kStacked,
       LevelLayout::kStacked},  // tiering
      {LevelLayout::kStacked, LevelLayout::kStacked, LevelLayout::kSorted,
       LevelLayout::kStacked},  // hybrid
  };
  for (size_t shape = 0; shape < shapes.size(); ++shape) {
    Version v(4, shapes[shape]);
    Rng rng(1234 + shape);
    uint64_t next_file = 1;
    for (int step = 0; step < 2000; ++step) {
      const size_t op = rng.UniformU64(5);
      const size_t level = 1 + rng.UniformU64(v.num_levels() - 1);
      const auto& lvl = v.level(level);
      const bool sorted = v.layout(level) == LevelLayout::kSorted;
      if (op == 0) {
        // Append: above the back for sorted levels, anywhere for stacked.
        int64_t lo = sorted && !lvl.empty()
                         ? lvl.back()->max_generation_time + 1 +
                               rng.UniformInt(0, 10)
                         : rng.UniformInt(0, 1000);
        int64_t hi = lo + rng.UniformInt(0, 20);
        ASSERT_TRUE(
            v.AppendToLevel(level, MakeFile(next_file++, lo, hi)).ok());
      } else if (op == 1 && !lvl.empty()) {
        FilePtr removed = v.RemoveFileAt(level, rng.UniformU64(lvl.size()));
        ASSERT_NE(removed, nullptr);
      } else if (op == 2 && !lvl.empty()) {
        // MoveFile into any deeper stacked level.
        for (size_t to = level + 1; to < v.num_levels(); ++to) {
          if (v.layout(to) == LevelLayout::kStacked) {
            ASSERT_TRUE(
                v.MoveFile(level, rng.UniformU64(lvl.size()), to).ok());
            break;
          }
        }
      } else if (op == 3 && sorted) {
        // Gap insert: a fresh file strictly between neighbours (or at
        // either end) — the compaction fast path's adoption move.
        size_t idx = rng.UniformU64(lvl.size() + 1);
        int64_t lo_bound = idx == 0 ? -100000
                                    : lvl[idx - 1]->max_generation_time + 1;
        int64_t hi_bound = idx == lvl.size()
                               ? lo_bound + 50
                               : lvl[idx]->min_generation_time - 1;
        if (lo_bound <= hi_bound) {
          int64_t lo = lo_bound + rng.UniformInt(0, hi_bound - lo_bound);
          FilePtr f =
              std::make_shared<const FileMetadata>(MakeFile(next_file++, lo,
                                                            hi_bound));
          ASSERT_TRUE(v.InsertFileAt(level, idx, f).ok());
        }
      } else if (op == 4 && sorted && !lvl.empty()) {
        // Replace a slice with files re-cut to fit the same key space —
        // what installing a compaction output does.
        size_t begin = rng.UniformU64(lvl.size());
        size_t end = begin + 1 + rng.UniformU64(lvl.size() - begin);
        int64_t lo = lvl[begin]->min_generation_time;
        int64_t hi = lvl[end - 1]->max_generation_time;
        std::vector<FileMetadata> cut;
        int64_t mid = lo + (hi - lo) / 2;
        cut.push_back(MakeFile(next_file++, lo, mid));
        if (mid < hi) cut.push_back(MakeFile(next_file++, mid + 1, hi));
        ASSERT_TRUE(v.ReplaceLevelSlice(level, begin, end, cut).ok());
      }
      ASSERT_TRUE(v.CheckInvariants().ok())
          << "shape " << shape << " step " << step;
    }
    // The snapshot sees exactly the live levels.
    auto snap = v.Snapshot();
    ASSERT_EQ(snap.num_levels(), v.num_levels());
    uint64_t snap_files = 0;
    for (size_t n = 0; n < snap.num_levels(); ++n) {
      snap_files += snap.level(n).size();
    }
    EXPECT_EQ(snap_files, v.TotalFiles());
  }
}

TEST(MultiLevelVersionTest, MutationApiRejectsInvalidTargets) {
  Version v(3);
  EXPECT_FALSE(v.AppendToLevel(3, MakeFile(1, 0, 9)).ok());
  EXPECT_FALSE(v.InsertFileAt(3, 0, nullptr).ok());
  EXPECT_FALSE(v.InsertFileAt(1, 5, nullptr).ok());
  EXPECT_FALSE(v.MoveFile(0, 0, 1).ok());  // index out of range
  ASSERT_TRUE(v.AppendToLevel(1, MakeFile(2, 0, 9)).ok());
  // Sorted levels refuse MoveFile targets (back-append could interleave).
  EXPECT_FALSE(v.MoveFile(1, 0, 2).ok());
  // Sorted levels refuse overlapping appends with the seed's error string.
  Status st = v.AppendToLevel(1, MakeFile(3, 5, 12));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("overlaps or is below"), std::string::npos);
  ASSERT_TRUE(v.CheckInvariants().ok());
}

// --- Engine equivalence against the two-level seed shape -------------------

class MultiLevelCompactionTest : public ::testing::Test {
 protected:
  Options BaseOptions(const std::string& dir) {
    Options o;
    o.env = &env_;
    o.dir = dir;
    o.sstable_points = 16;
    o.points_per_block = 4;
    return o;
  }

  std::unique_ptr<TsEngine> MustOpen(Options o) {
    auto e = TsEngine::Open(std::move(o));
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  /// Full-range engine contents vs a last-write-wins model.
  void ExpectMatchesModel(TsEngine* db,
                          const std::map<int64_t, double>& model) {
    std::vector<DataPoint> out;
    ASSERT_TRUE(db->Query(std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max(), &out)
                    .ok());
    ASSERT_EQ(out.size(), model.size());
    size_t i = 0;
    for (const auto& [t, value] : model) {
      ASSERT_EQ(out[i].generation_time, t);
      ASSERT_EQ(out[i].value, value) << "at t=" << t;
      ++i;
    }
  }

  /// A mixed in-order/out-of-order workload; returns the reference model.
  std::map<int64_t, double> Ingest(TsEngine* db, int points, uint32_t seed) {
    std::map<int64_t, double> model;
    Rng rng(seed);
    int64_t t = 0;
    for (int i = 0; i < points; ++i) {
      t += 1 + rng.UniformInt(0, 2);
      int64_t gt = rng.Bernoulli(0.4)
                       ? std::max<int64_t>(0, t - 1 - rng.UniformInt(0, 400))
                       : t;
      double value = static_cast<double>(i);
      EXPECT_TRUE(db->Append({gt, i, value}).ok());
      model[gt] = value;
    }
    return model;
  }

  MemEnv env_;
};

TEST_F(MultiLevelCompactionTest, TwoLevelExplicitMatchesGoldenAccounting) {
  // The hand-computed golden scenario from CompactionEquivalenceTest, with
  // num_levels pinned to 2 explicitly: the N-level generalization must
  // reproduce the seed's accounting bit-for-bit — including under the CI
  // leg that points $SEPLSM_NUM_LEVELS at a deeper tree, which an explicit
  // setting ignores.
  Options o = BaseOptions("/golden2");
  o.num_levels = 2;
  o.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o);
  ASSERT_EQ(db->NumLevels(), 2u);
  for (int64_t t = 0; t < 4; ++t) ASSERT_TRUE(db->Append({t, t, 2.0 * t}).ok());
  for (int64_t t = 4; t < 8; ++t) ASSERT_TRUE(db->Append({t, t, 2.0 * t}).ok());
  ASSERT_TRUE(db->Append({2, 100, 99.0}).ok());
  for (int64_t t = 9; t < 12; ++t) {
    ASSERT_TRUE(db->Append({t, 101, 2.0 * t}).ok());
  }
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.merge_count, 3u);
  EXPECT_EQ(m.points_flushed, 12u);
  EXPECT_EQ(m.points_rewritten, 8u);
  ASSERT_EQ(m.merge_events.size(), 3u);
  const MergeEvent& e = m.merge_events[2];
  EXPECT_EQ(e.buffered_points, 4u);
  EXPECT_EQ(e.disk_points_rewritten, 8u);
  EXPECT_EQ(e.disk_points_subsequent, 5u);
  EXPECT_EQ(e.input_files, 2u);
  EXPECT_EQ(e.output_points, 11u);
  EXPECT_EQ(e.level, 1u);
  // Per-level stats agree with the legacy counters at the seed shape.
  ASSERT_EQ(m.level_stats.size(), 2u);
  EXPECT_EQ(m.level_stats[1].compactions, m.merge_count);
  EXPECT_EQ(m.level_stats[1].compaction_bytes_read, m.compaction_bytes_read);
  EXPECT_EQ(m.level_stats[0].files, 0u);
  EXPECT_EQ(m.level_stats[1].files, db->RunFileCount());
  ASSERT_TRUE(db->CheckInvariants().ok());
}

TEST_F(MultiLevelCompactionTest, DeepTreeMatchesTwoLevelQueries) {
  // Same fuzzed workload into a two-level and a deep four-level engine
  // (tight triggers so every level actually fills): point queries,
  // aggregates, and invariants must be indistinguishable.
  for (uint32_t seed : {7u, 21u}) {
    Options o2 = BaseOptions("/two_" + std::to_string(seed));
    o2.num_levels = 2;
    o2.policy = PolicyConfig::Conventional(16);
    auto two = MustOpen(o2);

    Options o4 = BaseOptions("/four_" + std::to_string(seed));
    o4.num_levels = 4;
    o4.level_base_files = 2;
    o4.level_size_ratio = 2.0;
    o4.policy = PolicyConfig::Conventional(16);
    auto four = MustOpen(o4);

    auto model2 = Ingest(two.get(), 800, seed);
    auto model4 = Ingest(four.get(), 800, seed);
    ASSERT_EQ(model2, model4);
    ASSERT_TRUE(two->FlushAll().ok());
    ASSERT_TRUE(four->FlushAll().ok());
    ExpectMatchesModel(two.get(), model2);
    ExpectMatchesModel(four.get(), model4);

    // Sub-range queries and aggregates agree engine-to-engine.
    Rng rng(seed * 31);
    for (int q = 0; q < 20; ++q) {
      int64_t lo = rng.UniformInt(0, 1500);
      int64_t hi = lo + rng.UniformInt(0, 500);
      std::vector<DataPoint> a, b;
      ASSERT_TRUE(two->Query(lo, hi, &a).ok());
      ASSERT_TRUE(four->Query(lo, hi, &b).ok());
      ASSERT_EQ(a.size(), b.size()) << "[" << lo << "," << hi << "]";
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].generation_time, b[i].generation_time);
        ASSERT_EQ(a[i].value, b[i].value);
      }
      Aggregates agg2, agg4;
      ASSERT_TRUE(two->Aggregate(lo, hi, &agg2).ok());
      ASSERT_TRUE(four->Aggregate(lo, hi, &agg4).ok());
      ASSERT_EQ(agg2.count, agg4.count);
      ASSERT_EQ(agg2.sum, agg4.sum);
    }

    // The deep tree really is deep: data migrated below level 1.
    uint64_t below_l1 = 0;
    for (size_t n = 2; n < four->NumLevels(); ++n) {
      below_l1 += four->LevelFileCount(n);
    }
    EXPECT_GT(below_l1, 0u) << "cascade never ran at seed " << seed;
    ASSERT_TRUE(two->CheckInvariants().ok());
    ASSERT_TRUE(four->CheckInvariants().ok());
  }
}

TEST_F(MultiLevelCompactionTest, InputCapBoundsEveryJobAndStall) {
  // Options::max_compaction_input_files is the stall bound: no job — and
  // therefore no synchronous write stall — may read more than cap files,
  // and capping must not change what queries see.
  constexpr uint64_t kCap = 4;
  Options capped = BaseOptions("/capped");
  capped.num_levels = 4;
  capped.level_base_files = 2;
  capped.level_size_ratio = 2.0;
  capped.max_compaction_input_files = kCap;
  capped.policy = PolicyConfig::Conventional(16);
  auto db = MustOpen(capped);

  Options uncapped = BaseOptions("/uncapped");
  uncapped.num_levels = 4;
  uncapped.level_base_files = 2;
  uncapped.level_size_ratio = 2.0;
  uncapped.policy = PolicyConfig::Conventional(16);
  auto ref = MustOpen(uncapped);

  auto model = Ingest(db.get(), 1200, 5);
  auto model_ref = Ingest(ref.get(), 1200, 5);
  ASSERT_EQ(model, model_ref);
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(ref->FlushAll().ok());

  Metrics m = db->GetMetrics();
  ASSERT_FALSE(m.merge_events.empty());
  uint64_t max_inputs = 0;
  for (const auto& e : m.merge_events) {
    // Level >= 2 events are file compactions, subject to the cap; the
    // level-1 events are MemTable merges, bounded by the L1 trigger
    // instead (the cascade drains L1 below it before the next merge).
    if (e.level >= 2) {
      ASSERT_LE(e.input_files, kCap) << "job exceeded the input cap";
    }
    max_inputs = std::max(max_inputs, e.input_files);
  }
  EXPECT_GT(max_inputs, 0u);
  ExpectMatchesModel(db.get(), model);
  ExpectMatchesModel(ref.get(), model_ref);
  ASSERT_TRUE(db->CheckInvariants().ok());
}

TEST_F(MultiLevelCompactionTest, LayoutAndPickKnobsPreserveQueries) {
  // Every point of the design space — tiering, hybrid, and all three
  // file-pick policies — must serve the same answers as plain leveling.
  struct Config {
    const char* name;
    std::vector<LevelLayout> layouts;
    CompactionFilePick pick;
  };
  const std::vector<Config> configs = {
      {"tiering",
       {LevelLayout::kStacked, LevelLayout::kStacked, LevelLayout::kStacked,
        LevelLayout::kStacked},
       CompactionFilePick::kOldest},
      {"hybrid",
       {LevelLayout::kStacked, LevelLayout::kStacked, LevelLayout::kStacked,
        LevelLayout::kSorted},
       CompactionFilePick::kOldest},
      {"most_overlap", {}, CompactionFilePick::kMostOverlap},
      {"round_robin", {}, CompactionFilePick::kRoundRobin},
  };
  Options base = BaseOptions("/leveling");
  base.num_levels = 2;
  base.policy = PolicyConfig::Conventional(16);
  auto ref = MustOpen(base);
  auto model = Ingest(ref.get(), 900, 13);
  ASSERT_TRUE(ref->FlushAll().ok());
  ExpectMatchesModel(ref.get(), model);

  for (const auto& cfg : configs) {
    Options o = BaseOptions(std::string("/cfg_") + cfg.name);
    o.num_levels = 4;
    o.level_base_files = 2;
    o.level_size_ratio = 2.0;
    o.level_layouts = cfg.layouts;
    o.file_pick = cfg.pick;
    o.policy = PolicyConfig::Conventional(16);
    auto db = MustOpen(o);
    auto m = Ingest(db.get(), 900, 13);
    ASSERT_EQ(m, model);
    ASSERT_TRUE(db->FlushAll().ok());
    ExpectMatchesModel(db.get(), model);
    ASSERT_TRUE(db->CheckInvariants().ok()) << cfg.name;
  }
}

TEST_F(MultiLevelCompactionTest, OpenValidatesAndResolvesNumLevels) {
  // Explicit num_levels < 2 (other than the 0 = auto sentinel) is refused.
  Options bad = BaseOptions("/bad");
  bad.num_levels = 1;
  auto r = TsEngine::Open(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("num_levels"), std::string::npos);

  // Auto resolution follows $SEPLSM_NUM_LEVELS / $SEPLSM_LEVEL_LAYOUT; an
  // explicit setting ignores both (how accounting-pinned tests opt out of
  // the CI matrix leg).
  ::setenv("SEPLSM_NUM_LEVELS", "3", 1);
  ::setenv("SEPLSM_LEVEL_LAYOUT", "tiering", 1);
  Options autoo = BaseOptions("/auto");
  auto db = MustOpen(autoo);
  EXPECT_EQ(db->NumLevels(), 3u);
  Options pinned = BaseOptions("/pinned");
  pinned.num_levels = 2;
  auto db2 = MustOpen(pinned);
  EXPECT_EQ(db2->NumLevels(), 2u);
  ::unsetenv("SEPLSM_NUM_LEVELS");
  ::unsetenv("SEPLSM_LEVEL_LAYOUT");
  Options plain = BaseOptions("/plain");
  auto db3 = MustOpen(plain);
  EXPECT_EQ(db3->NumLevels(), 2u);
}

TEST_F(MultiLevelCompactionTest, ReopenRecoversDeepTree) {
  // A deep tree must survive close/reopen: recovery flattens what it finds
  // into the run shape it can prove safe, then re-cascades — no data loss,
  // invariants intact.
  std::map<int64_t, double> model;
  {
    Options o = BaseOptions("/reopen");
    o.num_levels = 4;
    o.level_base_files = 2;
    o.level_size_ratio = 2.0;
    o.policy = PolicyConfig::Conventional(16);
    auto db = MustOpen(o);
    model = Ingest(db.get(), 700, 3);
    ASSERT_TRUE(db->FlushAll().ok());
  }
  {
    Options o = BaseOptions("/reopen");
    o.num_levels = 4;
    o.level_base_files = 2;
    o.level_size_ratio = 2.0;
    o.policy = PolicyConfig::Conventional(16);
    auto db = MustOpen(o);
    ExpectMatchesModel(db.get(), model);
    ASSERT_TRUE(db->CheckInvariants().ok());
  }
}

// --- Concurrency: cascaded compactions vs snapshot readers (TSan) ----------

class MultiLevelConcurrencyTest : public ::testing::Test {
 protected:
  MemEnv env_;
};

TEST_F(MultiLevelConcurrencyTest, BackgroundCascadesKeepSnapshotsStable) {
  // Writers push an out-of-order stream through a 4-level background-mode
  // tree while readers hammer a frozen prefix: every query over the prefix
  // must return exactly its contents no matter which files the cascading
  // compactions are retiring at that instant.
  Options o;
  o.env = &env_;
  o.dir = "/db";
  o.sstable_points = 32;
  o.points_per_block = 8;
  o.num_levels = 4;
  o.level_base_files = 2;
  o.level_size_ratio = 2.0;
  o.background_mode = true;
  o.policy = PolicyConfig::Conventional(32);
  auto open = TsEngine::Open(o);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  auto db = std::move(open).value();

  // Frozen prefix: keys 0..499, fully persisted before readers start.
  constexpr int64_t kPrefix = 500;
  for (int64_t t = 0; t < kPrefix; ++t) {
    ASSERT_TRUE(db->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    // Out-of-order keys above the prefix keep every level churning.
    Rng rng(17);
    for (int i = 0; i < 3000; ++i) {
      int64_t gt = kPrefix + rng.UniformInt(0, 1500);
      if (!db->Append({gt, i, 2.0}).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::vector<DataPoint> out;
        if (!db->Query(0, kPrefix - 1, &out).ok() ||
            out.size() != static_cast<size_t>(kPrefix)) {
          failures.fetch_add(1);
          return;
        }
        Aggregates agg;
        if (!db->Aggregate(0, kPrefix - 1, &agg).ok() ||
            agg.count != static_cast<uint64_t>(kPrefix)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
  ASSERT_TRUE(db->CheckInvariants().ok());
  // After the dust settles the prefix is still exactly intact.
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, kPrefix - 1, &out).ok());
  ASSERT_EQ(out.size(), static_cast<size_t>(kPrefix));
}

}  // namespace
}  // namespace seplsm::engine
