#include "storage/version.h"

#include <gtest/gtest.h>

namespace seplsm::storage {
namespace {

FileMetadata File(uint64_t number, int64_t min_tg, int64_t max_tg,
                  uint64_t points = 10) {
  FileMetadata f;
  f.file_number = number;
  f.path = "/db/" + std::to_string(number);
  f.point_count = points;
  f.min_generation_time = min_tg;
  f.max_generation_time = max_tg;
  return f;
}

TEST(VersionTest, EmptyVersion) {
  Version v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.TotalPoints(), 0u);
  EXPECT_TRUE(v.CheckInvariants().ok());
}

TEST(VersionTest, AppendToRunKeepsOrder) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  ASSERT_TRUE(v.AppendToRun(File(2, 100, 199)).ok());
  EXPECT_TRUE(v.CheckInvariants().ok());
  EXPECT_EQ(v.MaxPersistedGenerationTime(), 199);
}

TEST(VersionTest, AppendOverlappingRejected) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 100)).ok());
  EXPECT_TRUE(v.AppendToRun(File(2, 100, 200)).IsInvalidArgument());
  EXPECT_TRUE(v.AppendToRun(File(3, 50, 60)).IsInvalidArgument());
}

TEST(VersionTest, OverlappingRunRange) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  ASSERT_TRUE(v.AppendToRun(File(2, 100, 199)).ok());
  ASSERT_TRUE(v.AppendToRun(File(3, 200, 299)).ok());
  size_t begin, end;
  v.OverlappingRunRange(150, 250, &begin, &end);
  EXPECT_EQ(begin, 1u);
  EXPECT_EQ(end, 3u);
  v.OverlappingRunRange(0, 10, &begin, &end);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 1u);
  v.OverlappingRunRange(500, 600, &begin, &end);
  EXPECT_EQ(begin, 3u);
  EXPECT_EQ(end, 3u);
}

TEST(VersionTest, OverlappingRangeInGap) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  ASSERT_TRUE(v.AppendToRun(File(2, 200, 299)).ok());
  size_t begin, end;
  v.OverlappingRunRange(120, 150, &begin, &end);
  EXPECT_EQ(begin, end);  // empty slice between files 1 and 2
  EXPECT_EQ(begin, 1u);
}

TEST(VersionTest, ReplaceRunSliceMiddle) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  ASSERT_TRUE(v.AppendToRun(File(2, 100, 199)).ok());
  ASSERT_TRUE(v.AppendToRun(File(3, 200, 299)).ok());
  std::vector<FileMetadata> replacements = {File(10, 100, 150),
                                            File(11, 151, 199)};
  ASSERT_TRUE(v.ReplaceRunSlice(1, 2, std::move(replacements)).ok());
  ASSERT_EQ(v.run().size(), 4u);
  EXPECT_EQ(v.run()[1]->file_number, 10u);
  EXPECT_EQ(v.run()[2]->file_number, 11u);
  EXPECT_TRUE(v.CheckInvariants().ok());
}

TEST(VersionTest, ReplaceRunSliceRejectsOverlapResult) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  ASSERT_TRUE(v.AppendToRun(File(2, 100, 199)).ok());
  // Replacement overlaps the untouched file 2.
  std::vector<FileMetadata> replacements = {File(10, 0, 150)};
  EXPECT_FALSE(v.ReplaceRunSlice(0, 1, std::move(replacements)).ok());
}

TEST(VersionTest, ReplaceRunSliceBadIndices) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  EXPECT_TRUE(v.ReplaceRunSlice(2, 1, {}).IsInvalidArgument());
  EXPECT_TRUE(v.ReplaceRunSlice(0, 5, {}).IsInvalidArgument());
}

TEST(VersionTest, Level0Fifo) {
  Version v;
  v.AddLevel0(File(5, 0, 10));
  v.AddLevel0(File(6, 5, 15));
  EXPECT_EQ(v.level0().size(), 2u);
  FilePtr f = v.PopLevel0Front();
  EXPECT_EQ(f->file_number, 5u);
  EXPECT_EQ(v.level0().size(), 1u);
}

TEST(VersionTest, MaxPersistedIncludesLevel0) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  v.AddLevel0(File(2, 50, 500));
  EXPECT_EQ(v.MaxPersistedGenerationTime(), 500);
}

TEST(VersionTest, OverlappingLevel0) {
  Version v;
  v.AddLevel0(File(1, 0, 100));
  v.AddLevel0(File(2, 200, 300));
  v.AddLevel0(File(3, 50, 250));
  auto hits = v.OverlappingLevel0(90, 210);
  ASSERT_EQ(hits.size(), 3u);
  hits = v.OverlappingLevel0(120, 150);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);  // index of file 3
}

TEST(VersionTest, TotalPointsSumsBothLevels) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 9, 100)).ok());
  v.AddLevel0(File(2, 0, 9, 50));
  EXPECT_EQ(v.TotalPoints(), 150u);
}

TEST(VersionSnapshotTest, StableAcrossReplaceRunSlice) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  ASSERT_TRUE(v.AppendToRun(File(2, 100, 199)).ok());
  v.AddLevel0(File(3, 50, 150));

  VersionSnapshot snap = v.Snapshot();

  // Mutate the live version: compact away file 2 and pop the level-0 file.
  std::vector<FileMetadata> replacements = {File(10, 100, 199)};
  ASSERT_TRUE(v.ReplaceRunSlice(1, 2, std::move(replacements)).ok());
  FilePtr popped = v.PopLevel0Front();
  EXPECT_EQ(popped->file_number, 3u);

  // The snapshot still sees the pre-compaction state.
  ASSERT_EQ(snap.run().size(), 2u);
  EXPECT_EQ(snap.run()[0]->file_number, 1u);
  EXPECT_EQ(snap.run()[1]->file_number, 2u);
  ASSERT_EQ(snap.level0().size(), 1u);
  EXPECT_EQ(snap.level0()[0]->file_number, 3u);

  // And the live version sees the new state.
  ASSERT_EQ(v.run().size(), 2u);
  EXPECT_EQ(v.run()[1]->file_number, 10u);
  EXPECT_TRUE(v.level0().empty());
}

TEST(VersionSnapshotTest, OverlapHelpersMatchLive) {
  Version v;
  ASSERT_TRUE(v.AppendToRun(File(1, 0, 99)).ok());
  ASSERT_TRUE(v.AppendToRun(File(2, 100, 199)).ok());
  v.AddLevel0(File(3, 50, 150));
  VersionSnapshot snap = v.Snapshot();
  size_t begin, end;
  snap.OverlappingRunRange(120, 130, &begin, &end);
  EXPECT_EQ(begin, 1u);
  EXPECT_EQ(end, 2u);
  auto hits = snap.OverlappingLevel0(140, 160);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(DeferredFileDeleterTest, DeletesOnlyUnreferencedFiles) {
  std::vector<uint64_t> deleted;
  DeferredFileDeleter deleter([&](const FileMetadata& f) {
    deleted.push_back(f.file_number);
    return Status::OK();
  });

  FilePtr held = std::make_shared<const FileMetadata>(File(1, 0, 9));
  FilePtr loose = std::make_shared<const FileMetadata>(File(2, 10, 19));
  deleter.Schedule(held);  // test still holds a reference (a "snapshot")
  deleter.Schedule(std::move(loose));
  EXPECT_EQ(deleter.pending(), 2u);

  EXPECT_EQ(deleter.CollectGarbage(), 1u);
  ASSERT_EQ(deleted.size(), 1u);
  EXPECT_EQ(deleted[0], 2u);
  EXPECT_EQ(deleter.pending(), 1u);

  held.reset();  // the last snapshot drops its reference
  EXPECT_EQ(deleter.CollectGarbage(), 1u);
  ASSERT_EQ(deleted.size(), 2u);
  EXPECT_EQ(deleted[1], 1u);
  EXPECT_EQ(deleter.pending(), 0u);
}

TEST(DeferredFileDeleterTest, FailedDeleteIsRetried) {
  int attempts = 0;
  DeferredFileDeleter deleter([&](const FileMetadata&) {
    ++attempts;
    return attempts == 1 ? Status::IOError("transient") : Status::OK();
  });
  deleter.Schedule(std::make_shared<const FileMetadata>(File(7, 0, 9)));
  EXPECT_EQ(deleter.CollectGarbage(), 0u);  // first attempt fails
  EXPECT_EQ(deleter.pending(), 1u);
  EXPECT_EQ(deleter.CollectGarbage(), 1u);  // retried and succeeds
  EXPECT_EQ(deleter.pending(), 0u);
  EXPECT_EQ(attempts, 2);
}

}  // namespace
}  // namespace seplsm::storage
