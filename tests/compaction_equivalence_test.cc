// Equivalence and robustness tests for the streaming k-way merge compaction
// path: the rewritten merge must be point-for-point identical to the old
// materialize-everything merge — same query results, same WA accounting,
// same determinism — and must clean up after itself when I/O fails midway.
// Also the cache-pollution regression test for fill_cache=false compaction
// reads (a big merge must not evict hot query blocks).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "engine/ts_engine.h"
#include "env/fault_env.h"
#include "env/mem_env.h"
#include "storage/iterator.h"

namespace seplsm::engine {
namespace {

class CompactionEquivalenceTest : public ::testing::Test {
 protected:
  Options BaseOptions(const std::string& dir = "/db") {
    Options o;
    o.env = &env_;
    o.dir = dir;
    o.sstable_points = 16;
    o.points_per_block = 4;
    return o;
  }

  std::unique_ptr<TsEngine> MustOpen(Options o) {
    auto e = TsEngine::Open(std::move(o));
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  /// Full-range engine contents vs a last-write-wins model.
  void ExpectMatchesModel(TsEngine* db,
                          const std::map<int64_t, DataPoint>& model) {
    std::vector<DataPoint> out;
    ASSERT_TRUE(db->Query(std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max(), &out)
                    .ok());
    ASSERT_EQ(out.size(), model.size());
    size_t i = 0;
    for (const auto& [t, p] : model) {
      EXPECT_EQ(out[i].generation_time, t);
      EXPECT_EQ(out[i].value, p.value) << "at t=" << t;
      ++i;
    }
  }

  MemEnv env_;
};

// --- Storage level: streaming merge == materialized reference merge ---

TEST_F(CompactionEquivalenceTest, StreamingMergeMatchesMaterializedReference) {
  // Two overlapping sorted sources with duplicate keys. Reference result:
  // materialize via a map where the newer source wins, then cut tables with
  // the vector writer (the seed's code path). Streaming result: a
  // MergingIterator (newer first) driving the iterator writer directly.
  Rng rng(42);
  std::vector<DataPoint> older, newer;
  int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    t += 1 + static_cast<int64_t>(rng.UniformU64(5));
    older.push_back({t, t, static_cast<double>(i)});
  }
  t = 100;
  for (int i = 0; i < 300; ++i) {
    t += 1 + static_cast<int64_t>(rng.UniformU64(8));
    newer.push_back({t, 100000 + t, 1000.0 + i});
  }

  std::map<int64_t, DataPoint> merged;
  for (const auto& p : older) merged[p.generation_time] = p;
  for (const auto& p : newer) merged[p.generation_time] = p;  // newer wins
  std::vector<DataPoint> reference;
  for (const auto& [key, p] : merged) {
    (void)key;
    reference.push_back(p);
  }

  uint64_t next_ref = 1;
  std::vector<storage::FileMetadata> ref_files;
  ASSERT_TRUE(storage::WriteSortedPointsAsTables(&env_, "/ref", reference, 64,
                                                 8, &next_ref, &ref_files)
                  .ok());

  std::vector<std::unique_ptr<storage::PointIterator>> children;
  children.push_back(std::make_unique<storage::VectorIterator>(&newer));
  children.push_back(std::make_unique<storage::VectorIterator>(&older));
  storage::MergingIterator input(std::move(children));
  uint64_t next_stream = 1;
  std::vector<storage::FileMetadata> stream_files;
  ASSERT_TRUE(storage::WriteSortedPointsAsTables(&env_, "/stream", &input, 64,
                                                 8, &next_stream,
                                                 &stream_files)
                  .ok());

  ASSERT_EQ(stream_files.size(), ref_files.size());
  for (size_t i = 0; i < stream_files.size(); ++i) {
    EXPECT_EQ(stream_files[i].point_count, ref_files[i].point_count);
    EXPECT_EQ(stream_files[i].min_generation_time,
              ref_files[i].min_generation_time);
    EXPECT_EQ(stream_files[i].max_generation_time,
              ref_files[i].max_generation_time);
    auto ref_r = storage::SSTableReader::Open(&env_, ref_files[i].path);
    auto str_r = storage::SSTableReader::Open(&env_, stream_files[i].path);
    ASSERT_TRUE(ref_r.ok() && str_r.ok());
    std::vector<DataPoint> ref_pts, str_pts;
    ASSERT_TRUE((*ref_r)->ReadAll(&ref_pts).ok());
    ASSERT_TRUE((*str_r)->ReadAll(&str_pts).ok());
    EXPECT_EQ(str_pts, ref_pts) << "file " << i;
  }
}

// --- Engine level: fuzzed workloads vs a last-write-wins model ---

TEST_F(CompactionEquivalenceTest, FuzzedWorkloadsMatchModelBothPolicies) {
  struct Config {
    const char* name;
    PolicyConfig policy;
  };
  const Config kConfigs[] = {
      {"conventional", PolicyConfig::Conventional(32)},
      {"separation", PolicyConfig::Separation(32, 16)},
  };
  for (const auto& cfg : kConfigs) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(testing::Message() << cfg.name << " seed=" << seed);
      Options o = BaseOptions(std::string("/fuzz_") + cfg.name + "_" +
                              std::to_string(seed));
      o.policy = cfg.policy;
      auto db = MustOpen(o);
      std::map<int64_t, DataPoint> model;
      Rng rng(seed);
      int64_t t = 0;
      for (int i = 0; i < 1500; ++i) {
        t += 1 + rng.UniformInt(0, 3);
        int64_t gt = t;
        // A fifth of the points arrive late, with mixed delays — short hops
        // and deep jumps both, so merges hit single- and many-file slices.
        if (rng.Bernoulli(0.2)) {
          gt = std::max<int64_t>(0, t - 1 - rng.UniformInt(0, 400));
        }
        DataPoint p{gt, i, 2.0 * static_cast<double>(gt) + 0.001 * i};
        ASSERT_TRUE(db->Append(p).ok());
        model[gt] = p;
        if (i % 300 == 299) {
          int64_t lo = rng.UniformInt(0, t);
          int64_t hi = lo + rng.UniformInt(0, 500);
          std::vector<DataPoint> out;
          ASSERT_TRUE(db->Query(lo, hi, &out).ok());
          std::vector<DataPoint> want;
          for (auto it = model.lower_bound(lo);
               it != model.end() && it->first <= hi; ++it) {
            want.push_back(it->second);
          }
          ASSERT_EQ(out.size(), want.size()) << "[" << lo << "," << hi << "]";
          for (size_t j = 0; j < out.size(); ++j) {
            EXPECT_EQ(out[j].generation_time, want[j].generation_time);
            EXPECT_EQ(out[j].value, want[j].value);
          }
        }
      }
      ASSERT_TRUE(db->FlushAll().ok());
      ASSERT_TRUE(db->CheckInvariants().ok());
      ExpectMatchesModel(db.get(), model);

      // Accounting identities the streaming rewrite must preserve: every
      // merge is recorded, and the cumulative rewrite counter is exactly
      // the sum over events.
      Metrics m = db->GetMetrics();
      EXPECT_EQ(m.merge_events.size(), m.merge_count);
      uint64_t rewritten = 0;
      for (const auto& e : m.merge_events) {
        rewritten += e.disk_points_rewritten;
        EXPECT_LE(e.disk_points_subsequent, e.disk_points_rewritten);
        EXPECT_LE(e.output_points,
                  e.buffered_points + e.disk_points_rewritten);
        EXPECT_GT(e.output_points, 0u);
      }
      EXPECT_EQ(m.points_rewritten, rewritten);
      EXPECT_EQ(m.points_ingested, 1500u);
    }
  }
}

TEST_F(CompactionEquivalenceTest, IdenticalWorkloadsAreDeterministic) {
  // Two engines fed the same byte-identical workload must agree on every
  // counter and every merge event — synchronous-mode WA measurements rely
  // on this reproducibility (ROADMAP: WA experiments are deterministic).
  auto run = [&](const std::string& dir) {
    Options o = BaseOptions(dir);
    o.policy = PolicyConfig::Separation(24, 12);
    auto db = MustOpen(o);
    Rng rng(99);
    int64_t t = 0;
    for (int i = 0; i < 1000; ++i) {
      t += 1 + rng.UniformInt(0, 2);
      int64_t gt = rng.Bernoulli(0.3)
                       ? std::max<int64_t>(0, t - 1 - rng.UniformInt(0, 300))
                       : t;
      EXPECT_TRUE(db->Append({gt, i, static_cast<double>(gt)}).ok());
    }
    EXPECT_TRUE(db->FlushAll().ok());
    return db->GetMetrics();
  };
  Metrics a = run("/det_a");
  Metrics b = run("/det_b");
  EXPECT_EQ(a.points_flushed, b.points_flushed);
  EXPECT_EQ(a.points_rewritten, b.points_rewritten);
  EXPECT_EQ(a.merge_count, b.merge_count);
  EXPECT_EQ(a.flush_count, b.flush_count);
  EXPECT_EQ(a.files_created, b.files_created);
  EXPECT_EQ(a.compaction_blocks_read, b.compaction_blocks_read);
  EXPECT_EQ(a.compaction_bytes_read, b.compaction_bytes_read);
  EXPECT_EQ(a.WriteAmplification(), b.WriteAmplification());
  ASSERT_EQ(a.merge_events.size(), b.merge_events.size());
  for (size_t i = 0; i < a.merge_events.size(); ++i) {
    EXPECT_EQ(a.merge_events[i].buffered_points,
              b.merge_events[i].buffered_points);
    EXPECT_EQ(a.merge_events[i].disk_points_rewritten,
              b.merge_events[i].disk_points_rewritten);
    EXPECT_EQ(a.merge_events[i].disk_points_subsequent,
              b.merge_events[i].disk_points_subsequent);
    EXPECT_EQ(a.merge_events[i].output_points,
              b.merge_events[i].output_points);
  }
}

TEST_F(CompactionEquivalenceTest, GoldenRewriteAccounting) {
  // Hand-computed scenario pinning the WA bookkeeping bit-for-bit.
  Options o = BaseOptions();
  o.num_levels = 2;  // the golden numbers assume the seed tree
  o.policy = PolicyConfig::Conventional(4);
  auto db = MustOpen(o);
  // Batch 1: t=0..3 -> empty-slice merge, one run file [0..3].
  for (int64_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(db->Append({t, t, 2.0 * t}).ok());
  }
  // Batch 2: t=4..7 -> no overlap, second run file [4..7].
  for (int64_t t = 4; t < 8; ++t) {
    ASSERT_TRUE(db->Append({t, t, 2.0 * t}).ok());
  }
  // Batch 3: {2, 9, 10, 11} -> lo=2 overlaps BOTH files: 8 points rewritten.
  ASSERT_TRUE(db->Append({2, 100, 99.0}).ok());
  for (int64_t t = 9; t < 12; ++t) {
    ASSERT_TRUE(db->Append({t, 101, 2.0 * t}).ok());
  }
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.merge_count, 3u);
  EXPECT_EQ(m.points_flushed, 12u);
  EXPECT_EQ(m.points_rewritten, 8u);
  ASSERT_EQ(m.merge_events.size(), 3u);
  EXPECT_EQ(m.merge_events[0].disk_points_rewritten, 0u);
  EXPECT_EQ(m.merge_events[1].disk_points_rewritten, 0u);
  const MergeEvent& e = m.merge_events[2];
  EXPECT_EQ(e.buffered_points, 4u);
  EXPECT_EQ(e.disk_points_rewritten, 8u);
  // Disk points newer than the oldest buffered point (t=2): 3,4,5,6,7.
  EXPECT_EQ(e.disk_points_subsequent, 5u);
  EXPECT_EQ(e.input_files, 2u);
  EXPECT_EQ(e.output_points, 11u);  // 12 keys, one duplicate (t=2)
  EXPECT_GT(m.compaction_bytes_read, 0u);
  EXPECT_GT(m.compaction_blocks_read, 0u);

  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(0, 100, &out).ok());
  ASSERT_EQ(out.size(), 11u);
  EXPECT_EQ(out[2].generation_time, 2);
  EXPECT_EQ(out[2].value, 99.0);  // the rewrite won over the original
  ASSERT_TRUE(db->CheckInvariants().ok());
}

TEST_F(CompactionEquivalenceTest, CompactionReadCountersStayZeroWithoutReads) {
  // A purely in-order workload never reads during run mutation — the new
  // counters must not pick up flush traffic.
  Options o = BaseOptions();
  o.num_levels = 2;  // counter expectations assume the seed tree
  o.policy = PolicyConfig::Conventional(8);
  auto db = MustOpen(o);
  for (int64_t t = 0; t < 64; ++t) {
    ASSERT_TRUE(db->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  Metrics m = db->GetMetrics();
  EXPECT_EQ(m.compaction_bytes_read, 0u);
  EXPECT_EQ(m.compaction_blocks_read, 0u);
  // The full-audit ToString prints every counter, zero or not.
  EXPECT_NE(m.ToString().find("compaction_bytes_read=0 "), std::string::npos);

  // One out-of-order point forces a reading merge; the counters move and
  // surface in ToString (what `seplsm_cli --stats` prints).
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(db->Append({i * 7 + 3, 1000 + i, 2.0}).ok());
  }
  m = db->GetMetrics();
  EXPECT_GT(m.compaction_bytes_read, 0u);
  EXPECT_GT(m.compaction_blocks_read, 0u);
  EXPECT_NE(m.ToString().find("compaction_bytes_read="), std::string::npos);
  EXPECT_EQ(m.ToString().find("compaction_bytes_read=0 "), std::string::npos);
}

// --- Fault injection: a failed merge must leave a recoverable directory ---

TEST_F(CompactionEquivalenceTest, FaultMidMergeThenReopenRecoversAckedPoints) {
  FaultInjectionEnv fault(&env_);
  Options o = BaseOptions();
  o.env = &fault;
  o.policy = PolicyConfig::Conventional(8);
  o.enable_wal = true;

  std::map<int64_t, DataPoint> acked, attempted;
  {
    auto db = MustOpen(o);
    // Phase 1: even keys, in order — builds a multi-file run.
    for (int64_t j = 0; j < 32; ++j) {
      DataPoint p{2 * j, j, static_cast<double>(2 * j)};
      ASSERT_TRUE(db->Append(p).ok());
      acked[p.generation_time] = p;
      attempted[p.generation_time] = p;
    }
    // Phase 2: odd keys overlap the run, so draining C0 needs a reading,
    // writing merge — which now dies partway through.
    fault.SetFailAfterOps(10);
    bool saw_failure = false;
    for (int64_t j = 0; j < 24; ++j) {
      DataPoint p{2 * j + 1, 100 + j, static_cast<double>(1000 + j)};
      attempted[p.generation_time] = p;
      Status st = db->Append(p);
      if (st.ok()) {
        acked[p.generation_time] = p;
      } else {
        saw_failure = true;
      }
    }
    EXPECT_TRUE(saw_failure);
    // Phase 3: fault clears; the engine must still be usable.
    fault.SetFailAfterOps(-1);
    DataPoint late{1001, 500, 7.0};
    ASSERT_TRUE(db->Append(late).ok());
    acked[late.generation_time] = late;
    attempted[late.generation_time] = late;
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->CheckInvariants().ok());
  }

  // Reopen: recovery scans every *.sst in the directory — an aborted merge
  // that left a partial table behind would fail right here.
  auto db = MustOpen(o);
  ASSERT_TRUE(db->CheckInvariants().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(std::numeric_limits<int64_t>::min(),
                        std::numeric_limits<int64_t>::max(), &out)
                  .ok());
  // Everything acknowledged survives with its exact value; nothing appears
  // that was never written (a failed append may legally survive via the
  // WAL, so the upper bound is `attempted`).
  std::map<int64_t, double> recovered;
  for (const auto& p : out) recovered[p.generation_time] = p.value;
  for (const auto& [t, p] : acked) {
    ASSERT_TRUE(recovered.count(t)) << "acked point lost, t=" << t;
    EXPECT_EQ(recovered[t], p.value) << "t=" << t;
  }
  for (const auto& [t, v] : recovered) {
    ASSERT_TRUE(attempted.count(t)) << "phantom point, t=" << t;
    EXPECT_EQ(attempted[t].value, v) << "t=" << t;
  }
}

TEST_F(CompactionEquivalenceTest, BackgroundReadFaultIsStickyAndRecoverable) {
  FaultInjectionEnv fault(&env_);
  Options o = BaseOptions();
  o.env = &fault;
  o.num_levels = 2;  // the fault fires on compaction reads: pin the seed tree
  o.policy = PolicyConfig::Conventional(8);
  o.sstable_points = 16;
  o.background_mode = true;
  o.max_level0_files = 2;
  o.enable_wal = true;

  std::map<int64_t, DataPoint> acked, attempted;
  {
    auto db = MustOpen(o);
    for (int64_t t = 0; t < 64; ++t) {
      DataPoint p{t, t, static_cast<double>(t)};
      ASSERT_TRUE(db->Append(p).ok());
      acked[t] = p;
      attempted[t] = p;
    }
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    ASSERT_GT(db->RunFileCount(), 0u);

    // Reads die: flushes keep landing in level 0 but the compactor cannot
    // read its inputs. Backpressure + the stored background error must
    // surface as a failed Append instead of a hang or a corrupt run.
    fault.SetFailReads(true);
    Status st;
    for (int i = 0; i < 10'000 && st.ok(); ++i) {
      DataPoint p{i % 64, 100 + i, 2.0};
      attempted[p.generation_time] = p;
      st = db->Append(p);
      if (st.ok()) acked[p.generation_time] = p;
    }
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    fault.SetFailReads(false);  // let shutdown clean up
  }

  // Reopen with healthy reads: every acknowledged point is recovered (the
  // WAL covers what never reached level 0), and the directory recovers
  // cleanly despite compactions having died mid-stream.
  auto db = MustOpen(o);
  ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
  ASSERT_TRUE(db->CheckInvariants().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(std::numeric_limits<int64_t>::min(),
                        std::numeric_limits<int64_t>::max(), &out)
                  .ok());
  std::map<int64_t, double> recovered;
  for (const auto& p : out) recovered[p.generation_time] = p.value;
  for (const auto& [t, p] : acked) {
    ASSERT_TRUE(recovered.count(t)) << "acked point lost, t=" << t;
  }
  for (const auto& [t, v] : recovered) {
    (void)v;
    ASSERT_TRUE(attempted.count(t)) << "phantom point, t=" << t;
  }
}

// --- Cache pollution: compaction reads must not evict hot query blocks ---

TEST_F(CompactionEquivalenceTest, LargeMergeDoesNotEvictHotBlocks) {
  Options o = BaseOptions();
  o.num_levels = 2;  // needs the seed tree's whole-run rewriting merge
  o.policy = PolicyConfig::Conventional(32);
  o.sstable_points = 64;
  o.points_per_block = 4;
  // Budget sized to hold the hot region comfortably but nowhere near the
  // merge's working set: if compaction reads were inserted, the merge
  // below (256 blocks) would sweep the whole cache several times over.
  o.block_cache_bytes = 8192;
  o.block_cache_shards = 1;
  auto db = MustOpen(o);

  // Hot region B, far above everything else.
  for (int64_t t = 100000; t < 100064; ++t) {
    ASSERT_TRUE(db->Append({t, t, 1.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE(db->Query(100000, 100063, &out).ok());  // warm the cache
  ASSERT_EQ(out.size(), 64u);
  storage::BlockCache* cache = db->block_cache();
  ASSERT_NE(cache, nullptr);
  const size_t entries_warm = cache->TotalEntries();
  ASSERT_GT(entries_warm, 0u);

  // Cold region A: 1024 in-order points (no reads — disjoint batches),
  // then one out-of-order batch spanning all of A, forcing a merge that
  // streams ~256 blocks through the compactor.
  for (int64_t t = 0; t < 1024; ++t) {
    ASSERT_TRUE(db->Append({t, 200000 + t, 0.5}).ok());
  }
  for (int64_t j = 0; j < 32; ++j) {
    ASSERT_TRUE(db->Append({5 + 32 * j, 300000 + j, 9.0}).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  Metrics m = db->GetMetrics();
  ASSERT_GE(m.compaction_blocks_read, 256u);
  ASSERT_GT(m.compaction_bytes_read, 0u);

  // The merge read far more than the cache budget, yet inserted nothing:
  // B's blocks are all still resident and the re-query does zero device I/O.
  EXPECT_EQ(cache->TotalEntries(), entries_warm);
  QueryStats stats;
  ASSERT_TRUE(db->Query(100000, 100063, &out, &stats).ok());
  ASSERT_EQ(out.size(), 64u);
  EXPECT_GT(stats.block_cache_hits, 0u);
  EXPECT_EQ(stats.block_cache_misses, 0u);
  EXPECT_EQ(stats.device_bytes_read, 0u);
}

}  // namespace
}  // namespace seplsm::engine
