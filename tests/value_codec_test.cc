#include "format/value_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/bits.h"
#include "common/random.h"
#include "engine/ts_engine.h"
#include "env/mem_env.h"

namespace seplsm::format {
namespace {

TEST(BitIoTest, RoundTripMixedWidths) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Write(0b101, 3);
  writer.Write(0xDEADBEEFCAFEF00Dull, 64);
  writer.WriteBit(true);
  writer.Write(0x3F, 6);
  writer.Finish();
  BitReader reader(buf);
  uint64_t v;
  ASSERT_TRUE(reader.Read(3, &v));
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(reader.Read(64, &v));
  EXPECT_EQ(v, 0xDEADBEEFCAFEF00Dull);
  bool bit;
  ASSERT_TRUE(reader.ReadBit(&bit));
  EXPECT_TRUE(bit);
  ASSERT_TRUE(reader.Read(6, &v));
  EXPECT_EQ(v, 0x3Fu);
}

TEST(BitIoTest, UnderflowFails) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Write(0xFF, 8);
  writer.Finish();
  BitReader reader(buf);
  uint64_t v;
  ASSERT_TRUE(reader.Read(8, &v));
  EXPECT_FALSE(reader.Read(1, &v));
}

class ValueCodecTest : public ::testing::TestWithParam<ValueEncoding> {};

TEST_P(ValueCodecTest, RoundTripRandomValues) {
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.NextGaussian() * 1e6);
  }
  std::string data;
  EncodeValues(GetParam(), values, &data);
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeValues(GetParam(), data, values.size(), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST_P(ValueCodecTest, RoundTripSpecialValues) {
  std::vector<double> values = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      1.0,
      1.0,
      1.0,
  };
  std::string data;
  EncodeValues(GetParam(), values, &data);
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeValues(GetParam(), data, values.size(), &decoded).ok());
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t a, b;
    std::memcpy(&a, &values[i], 8);
    std::memcpy(&b, &decoded[i], 8);
    EXPECT_EQ(a, b) << "index " << i;  // bit-exact, including -0.0
  }
}

TEST_P(ValueCodecTest, EmptyInput) {
  std::string data;
  EncodeValues(GetParam(), {}, &data);
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeValues(GetParam(), data, 0, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

INSTANTIATE_TEST_SUITE_P(Encodings, ValueCodecTest,
                         ::testing::Values(ValueEncoding::kRaw,
                                           ValueEncoding::kGorilla),
                         [](const auto& info) {
                           return info.param == ValueEncoding::kRaw
                                      ? "raw"
                                      : "gorilla";
                         });

TEST(GorillaTest, ConstantSeriesNearOneBitPerValue) {
  std::vector<double> values(10000, 42.5);
  std::string data;
  EncodeValues(ValueEncoding::kGorilla, values, &data);
  // 64 bits for the first + ~1 bit each after.
  EXPECT_LT(data.size(), 8 + 10000 / 8 + 16);
}

TEST(GorillaTest, QuantizedSensorSeriesCompressesWell) {
  // A slow signal quantized to the sensor's 0.1-unit resolution: long runs
  // of identical readings — the workload Gorilla was designed for.
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(std::round((20.0 + std::sin(i * 0.01)) * 10.0) / 10.0);
  }
  std::string raw, gorilla;
  EncodeValues(ValueEncoding::kRaw, values, &raw);
  EncodeValues(ValueEncoding::kGorilla, values, &gorilla);
  EXPECT_LT(gorilla.size() * 2, raw.size())
      << "gorilla=" << gorilla.size() << " raw=" << raw.size();
}

TEST(GorillaTest, TruncatedStreamDetected) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  std::string data;
  EncodeValues(ValueEncoding::kGorilla, values, &data);
  std::vector<double> decoded;
  EXPECT_TRUE(DecodeValues(ValueEncoding::kGorilla, data.substr(0, 4), 4,
                           &decoded)
                  .IsCorruption());
}

TEST(GorillaTest, RawSizeMismatchDetected) {
  std::vector<double> decoded;
  EXPECT_TRUE(
      DecodeValues(ValueEncoding::kRaw, "12345", 2, &decoded).IsCorruption());
}

TEST(EngineGorillaTest, EndToEndWithCompression) {
  MemEnv env;
  engine::Options o;
  o.env = &env;
  o.dir = "/gorilla";
  o.policy = engine::PolicyConfig::Conventional(64);
  o.sstable_points = 64;
  o.value_encoding = ValueEncoding::kGorilla;
  auto db = engine::TsEngine::Open(o);
  ASSERT_TRUE(db.ok());
  Rng rng(7);
  std::vector<DataPoint> expected;
  for (int64_t t = 0; t < 2000; ++t) {
    DataPoint p{t, t + static_cast<int64_t>(rng.UniformU64(100)),
                100.0 + std::sin(t * 0.005)};
    expected.push_back(p);
    ASSERT_TRUE((*db)->Append(p).ok());
  }
  ASSERT_TRUE((*db)->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)->Query(0, 1999, &out).ok());
  EXPECT_EQ(out, expected);
}

TEST(EngineGorillaTest, CompressionShrinksFiles) {
  auto run = [](ValueEncoding enc) -> uint64_t {
    MemEnv env;
    engine::Options o;
    o.env = &env;
    o.dir = "/x";
    o.policy = engine::PolicyConfig::Conventional(512);
    o.value_encoding = enc;
    auto db = engine::TsEngine::Open(o);
    EXPECT_TRUE(db.ok());
    for (int64_t t = 0; t < 8192; ++t) {
      double reading =
          std::round((20.0 + std::sin(t * 0.01)) * 10.0) / 10.0;
      EXPECT_TRUE((*db)->Append({t * 50, t * 50 + 10, reading}).ok());
    }
    EXPECT_TRUE((*db)->FlushAll().ok());
    return (*db)->GetMetrics().bytes_written;
  };
  uint64_t raw_bytes = run(ValueEncoding::kRaw);
  uint64_t gorilla_bytes = run(ValueEncoding::kGorilla);
  EXPECT_LT(gorilla_bytes * 3, raw_bytes * 2)
      << "gorilla=" << gorilla_bytes << " raw=" << raw_bytes;
}

}  // namespace
}  // namespace seplsm::format
