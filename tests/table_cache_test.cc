#include "storage/table_cache.h"

#include <gtest/gtest.h>

#include "engine/ts_engine.h"
#include "env/latency_env.h"
#include "env/mem_env.h"

namespace seplsm::storage {
namespace {

class TableCacheTest : public ::testing::Test {
 protected:
  FileMetadata WriteTable(uint64_t number, int64_t start) {
    std::string path = TableFilePath("/db", number);
    SSTableWriter writer(&env_, path, 16);
    for (int64_t t = 0; t < 32; ++t) {
      EXPECT_TRUE(writer.Add({start + t, start + t, 0.0}).ok());
    }
    auto meta = writer.Finish();
    EXPECT_TRUE(meta.ok());
    meta.value().file_number = number;
    return *meta;
  }

  MemEnv env_;
};

TEST_F(TableCacheTest, HitsOnRepeatedAccess) {
  auto f = WriteTable(1, 0);
  TableCache cache(&env_, 4);
  for (int i = 0; i < 5; ++i) {
    auto reader = cache.Get(1, f.path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ((*reader)->point_count(), 32u);
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 4u);
}

TEST_F(TableCacheTest, EvictsLeastRecentlyUsed) {
  std::vector<FileMetadata> files;
  for (uint64_t n = 1; n <= 4; ++n) {
    files.push_back(WriteTable(n, static_cast<int64_t>(n) * 1000));
  }
  TableCache cache(&env_, 2);
  ASSERT_TRUE(cache.Get(1, files[0].path).ok());
  ASSERT_TRUE(cache.Get(2, files[1].path).ok());
  ASSERT_TRUE(cache.Get(1, files[0].path).ok());  // 1 is now most recent
  ASSERT_TRUE(cache.Get(3, files[2].path).ok());  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  uint64_t misses_before = cache.misses();
  ASSERT_TRUE(cache.Get(1, files[0].path).ok());  // still cached
  EXPECT_EQ(cache.misses(), misses_before);
  ASSERT_TRUE(cache.Get(2, files[1].path).ok());  // was evicted: miss
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST_F(TableCacheTest, EraseDropsEntry) {
  auto f = WriteTable(1, 0);
  TableCache cache(&env_, 4);
  ASSERT_TRUE(cache.Get(1, f.path).ok());
  cache.Erase(1);
  EXPECT_EQ(cache.size(), 0u);
  cache.Erase(1);  // idempotent
}

TEST_F(TableCacheTest, SharedReaderSurvivesEviction) {
  auto f = WriteTable(1, 0);
  TableCache cache(&env_, 1);
  auto reader = cache.Get(1, f.path);
  ASSERT_TRUE(reader.ok());
  auto f2 = WriteTable(2, 5000);
  ASSERT_TRUE(cache.Get(2, f2.path).ok());  // evicts 1
  // The shared_ptr we hold is still valid.
  std::vector<DataPoint> out;
  EXPECT_TRUE((*reader)->ReadAll(&out).ok());
  EXPECT_EQ(out.size(), 32u);
}

TEST_F(TableCacheTest, MissingFileSurfacesError) {
  TableCache cache(&env_, 2);
  EXPECT_FALSE(cache.Get(9, "/db/nope.sst").ok());
}

TEST(EngineTableCacheTest, CachedQueriesSkipReopenSeeks) {
  MemEnv base;
  DeviceLatencyModel model;
  model.seek_nanos = 1000;
  model.transfer_nanos_per_byte = 0.0;
  LatencyEnv latency(&base, model);

  auto run_queries = [&](size_t cache_entries) -> int64_t {
    engine::Options o;
    o.env = &latency;
    o.dir = cache_entries ? "/cached" : "/uncached";
    o.policy = engine::PolicyConfig::Conventional(16);
    o.sstable_points = 16;
    o.table_cache_entries = cache_entries;
    auto db = engine::TsEngine::Open(o);
    EXPECT_TRUE(db.ok());
    for (int64_t t = 0; t < 160; ++t) {
      EXPECT_TRUE((*db)->Append({t, t, 0.0}).ok());
    }
    latency.ResetCounters();
    for (int round = 0; round < 10; ++round) {
      std::vector<DataPoint> out;
      EXPECT_TRUE((*db)->Query(0, 159, &out).ok());
      EXPECT_EQ(out.size(), 160u);
    }
    return latency.simulated_nanos();
  };

  int64_t uncached = run_queries(0);
  int64_t cached = run_queries(32);
  EXPECT_LT(cached, uncached)
      << "table cache should avoid footer/index re-reads";
}

TEST(EngineTableCacheTest, CorrectAcrossCompactions) {
  MemEnv env;
  engine::Options o;
  o.env = &env;
  o.dir = "/db";
  o.policy = engine::PolicyConfig::Conventional(8);
  o.sstable_points = 16;
  o.table_cache_entries = 4;
  auto db = engine::TsEngine::Open(o);
  ASSERT_TRUE(db.ok());
  // Out-of-order workload forces merges that delete cached files; stale
  // readers must never be served for replaced file numbers.
  for (int64_t t = 0; t < 200; ++t) {
    ASSERT_TRUE((*db)->Append({t, t, 1.0}).ok());
    if (t % 10 == 9) {
      ASSERT_TRUE((*db)->Append({t - 5, t + 1000, 2.0}).ok());
    }
    if (t % 25 == 24) {
      std::vector<DataPoint> out;
      ASSERT_TRUE((*db)->Query(0, t, &out).ok());
    }
  }
  ASSERT_TRUE((*db)->FlushAll().ok());
  std::vector<DataPoint> out;
  ASSERT_TRUE((*db)->Query(0, 10000, &out).ok());
  EXPECT_EQ(out.size(), 200u);
  for (const auto& p : out) {
    if ((p.generation_time % 10) == 4 && p.generation_time < 195 &&
        (p.generation_time + 6) % 10 == 0) {
      // keys t-5 where t % 10 == 9 got overwritten with value 2.
      EXPECT_EQ(p.value, 2.0) << p.generation_time;
    }
  }
  ASSERT_TRUE((*db)->CheckInvariants().ok());
}

}  // namespace
}  // namespace seplsm::storage
