#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace seplsm {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoubleOpen(), 0.0);
  }
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace seplsm
