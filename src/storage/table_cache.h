#ifndef SEPLSM_STORAGE_TABLE_CACHE_H_
#define SEPLSM_STORAGE_TABLE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "storage/sstable.h"

namespace seplsm::storage {

/// LRU cache of open `SSTableReader`s keyed by file number. Re-opening a
/// table costs a footer + index read (two device seeks under `LatencyEnv`);
/// hot query workloads hit the same run files repeatedly, so the engine can
/// keep readers open (`Options::table_cache_entries`).
///
/// Readers are shared; eviction or Erase only drops the cache's reference,
/// so in-flight reads stay valid. Thread-safe.
///
/// When a `BlockCache` is attached (cache + owner id), every reader this
/// cache opens is wired to it, so block reads through cached readers are
/// served from memory on a hit.
class TableCache {
 public:
  TableCache(Env* env, size_t capacity, BlockCache* block_cache = nullptr,
             uint64_t block_cache_owner_id = 0);

  /// Returns a cached reader or opens (and caches) one.
  Result<std::shared_ptr<SSTableReader>> Get(uint64_t file_number,
                                             const std::string& path);

  /// Drops the entry for a deleted file (no-op when absent).
  void Erase(uint64_t file_number);

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    uint64_t file_number;
    std::shared_ptr<SSTableReader> reader;
  };

  Env* env_;
  size_t capacity_;
  BlockCache* block_cache_;  // may be null
  uint64_t block_cache_owner_id_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  // Atomics: queries read hit/miss totals without taking the cache lock.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_TABLE_CACHE_H_
