#include "storage/table_cache.h"

#include <cassert>

namespace seplsm::storage {

TableCache::TableCache(Env* env, size_t capacity, BlockCache* block_cache,
                       uint64_t block_cache_owner_id)
    : env_(env), capacity_(capacity), block_cache_(block_cache),
      block_cache_owner_id_(block_cache_owner_id) {
  assert(capacity > 0);
}

Result<std::shared_ptr<SSTableReader>> TableCache::Get(
    uint64_t file_number, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(file_number);
    if (it != index_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second);  // move to front
      return it->second->reader;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  // Open outside the lock; concurrent misses on the same file may both
  // open, the second insert wins harmlessly.
  auto opened = SSTableReader::Open(
      env_, path,
      BlockCacheHandle{block_cache_, block_cache_owner_id_, file_number});
  if (!opened.ok()) return opened.status();
  std::shared_ptr<SSTableReader> reader = std::move(opened).value();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(file_number);
  if (it != index_.end()) return it->second->reader;
  lru_.push_front({file_number, reader});
  index_[file_number] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().file_number);
    lru_.pop_back();
  }
  return reader;
}

void TableCache::Erase(uint64_t file_number) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(file_number);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

size_t TableCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace seplsm::storage
