#ifndef SEPLSM_STORAGE_SSTABLE_H_
#define SEPLSM_STORAGE_SSTABLE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/result.h"
#include "common/status.h"
#include "env/env.h"
#include "format/block.h"
#include "format/table_format.h"
#include "storage/block_cache.h"

namespace seplsm::storage {

class PointIterator;  // storage/iterator.h
class QueryExplain;   // storage/query_explain.h

/// Per-read accounting filled in by SSTableReader::ReadRange and
/// SSTableIterator. All counters are deltas for the one call (the caller
/// accumulates).
struct ReadStats {
  /// Points decoded and scanned (from device or cache) — the
  /// read-amplification numerator.
  uint64_t points_scanned = 0;
  /// Bytes actually read from the device (block data only; cache hits read
  /// nothing).
  uint64_t device_bytes_read = 0;
  /// Blocks read from the device (cache hits excluded).
  uint64_t blocks_read = 0;
  /// Blocks pruned via index time ranges or metadata zone maps — bypassed
  /// without a device read OR a cache lookup.
  uint64_t blocks_skipped = 0;
  /// Block cache hits / misses for this read (both 0 without a cache).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// How a read consults the block cache and accounts itself.
struct ReadOptions {
  /// When false, device reads skip cache insertion (hits are still served):
  /// one-pass scans — compaction above all — must not evict hot query
  /// blocks.
  bool fill_cache = true;
  /// Optional accounting sink (counters are incremented, never reset).
  ReadStats* stats = nullptr;
  /// Generation-time range restriction, inclusive. Blocks entirely outside
  /// are skipped via the index without being read.
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  /// Value predicate, inclusive. With the defaults this is a no-op; when
  /// narrowed, points outside are filtered out and — on tables carrying v2
  /// zone maps — whole blocks whose value range cannot match are skipped
  /// without touching the cache or the device.
  double value_lo = -std::numeric_limits<double>::infinity();
  double value_hi = std::numeric_limits<double>::infinity();
  /// Optional per-query decision trace (storage/query_explain.h): block
  /// reads and index/zone-map skips are recorded alongside the `stats`
  /// counters. Not thread-safe — one QueryExplain per query invocation.
  QueryExplain* explain = nullptr;

  bool has_value_bounds() const {
    return value_lo != -std::numeric_limits<double>::infinity() ||
           value_hi != std::numeric_limits<double>::infinity();
  }
};

/// Immutable description of an on-disk SSTable (kept in the Version).
struct FileMetadata {
  uint64_t file_number = 0;
  std::string path;
  uint64_t point_count = 0;
  uint64_t file_bytes = 0;
  int64_t min_generation_time = 0;
  int64_t max_generation_time = 0;

  bool Overlaps(int64_t lo, int64_t hi) const {
    return min_generation_time <= hi && max_generation_time >= lo;
  }
};

/// Streams sorted points into an SSTable file.
class SSTableWriter {
 public:
  /// `points_per_block` controls index granularity within the file;
  /// `encoding` selects the value-column codec (see format/value_codec.h);
  /// `meta` controls the v2 pruning-metadata section (disabled, the output
  /// is byte-identical to the v1 format).
  SSTableWriter(Env* env, std::string path, size_t points_per_block = 128,
                format::ValueEncoding encoding = format::ValueEncoding::kRaw,
                format::TableMetadataConfig meta = {});

  /// Points must arrive in non-decreasing generation-time order.
  Status Add(const DataPoint& point);

  /// Flushes remaining data, writes metadata (v2) + index + footer, closes
  /// the file, and returns the metadata (file_number left 0 for the caller
  /// to assign).
  Result<FileMetadata> Finish();

  uint64_t points_added() const { return points_added_; }

 private:
  Status FlushBlock();
  /// Folds `point` into the running per-window summary, sealing the
  /// previous window when the point crosses a window boundary.
  void AccumulateSummary(const DataPoint& point);

  Env* env_;
  std::string path_;
  size_t points_per_block_;
  std::unique_ptr<WritableFile> file_;
  Status open_status_;
  format::BlockBuilder block_;
  std::vector<format::BlockIndexEntry> index_;
  format::TableMetadataConfig meta_config_;
  format::TableMetadata metadata_;
  format::WindowSummary cur_summary_;
  bool summary_open_ = false;
  uint64_t offset_ = 0;
  uint64_t points_added_ = 0;
  int64_t block_min_tg_ = 0;
  int64_t block_max_tg_ = 0;
  double block_min_value_ = 0.0;
  double block_max_value_ = 0.0;
  int64_t file_min_tg_ = 0;
  int64_t file_max_tg_ = 0;
  size_t block_count_ = 0;
};

/// Reads an SSTable written by SSTableWriter.
class SSTableReader {
 public:
  /// Opens the file and loads footer + index. When `block_cache` names a
  /// cache, ReadRange consults it before touching the device and inserts
  /// decoded blocks after a miss; a default handle keeps the uncached
  /// behaviour byte-for-byte.
  static Result<std::unique_ptr<SSTableReader>> Open(
      Env* env, const std::string& path, BlockCacheHandle block_cache = {});

  uint64_t point_count() const { return footer_.point_count; }
  int64_t min_generation_time() const { return footer_.min_generation_time; }
  int64_t max_generation_time() const { return footer_.max_generation_time; }
  size_t block_count() const { return index_.size(); }

  /// Appends every point to *out in generation-time order.
  Status ReadAll(std::vector<DataPoint>* out) const;

  /// Appends points with generation_time in [lo, hi]; reads only the blocks
  /// whose index range overlaps (served from the block cache when attached).
  /// *stats (optional) is incremented with scan/device/cache counters;
  /// *explain (optional) records the per-block outcomes.
  Status ReadRange(int64_t lo, int64_t hi, std::vector<DataPoint>* out,
                   ReadStats* stats = nullptr,
                   QueryExplain* explain = nullptr) const;

  /// The per-block index loaded at Open (sorted by generation time).
  const std::vector<format::BlockIndexEntry>& index() const { return index_; }

  /// True when the file carries a v2 pruning-metadata section.
  bool has_metadata() const { return has_metadata_; }
  /// The decoded metadata section (empty default for v1 files). Zone maps,
  /// when present, are parallel to index().
  const format::TableMetadata& metadata() const { return metadata_; }

  /// Returns the decoded block for one index entry — from the cache on a
  /// hit, from the device on a miss. A device-read block is inserted into
  /// the cache only when `fill_cache` is set (compaction scans pass false so
  /// a merge cannot evict hot query blocks).
  Result<std::shared_ptr<const CachedBlock>> ReadBlock(
      const format::BlockIndexEntry& entry, ReadStats* stats,
      bool fill_cache = true) const;

  /// Block-streaming cursor over [options.lo, options.hi] — at most one
  /// decoded block resident (storage/iterator.h).
  std::unique_ptr<PointIterator> NewIterator(ReadOptions options = {}) const;

 private:
  SSTableReader(std::unique_ptr<RandomAccessFile> file, format::Footer footer,
                std::vector<format::BlockIndexEntry> index,
                format::TableMetadata metadata, bool has_metadata,
                BlockCacheHandle block_cache)
      : file_(std::move(file)), footer_(footer), index_(std::move(index)),
        metadata_(std::move(metadata)), has_metadata_(has_metadata),
        block_cache_(block_cache) {}

  std::unique_ptr<RandomAccessFile> file_;
  format::Footer footer_;
  std::vector<format::BlockIndexEntry> index_;
  format::TableMetadata metadata_;
  bool has_metadata_ = false;
  BlockCacheHandle block_cache_;
};

/// Writes `points` (sorted) into one or more SSTables of at most
/// `points_per_file` points each, assigning file numbers via `next_file_no`.
/// File paths are `<dir>/<number>.sst`. Appends metadata to *files.
/// Delegates to the iterator overload below.
Status WriteSortedPointsAsTables(
    Env* env, const std::string& dir, const std::vector<DataPoint>& points,
    size_t points_per_file, size_t points_per_block, uint64_t* next_file_no,
    std::vector<FileMetadata>* files,
    format::ValueEncoding encoding = format::ValueEncoding::kRaw,
    format::TableMetadataConfig meta = {});

/// Iterator-driven overload: drains `input` block-in/block-out, so flush and
/// compaction share one writer loop and peak memory stays bounded by the
/// source's residency (one block per SSTable input) instead of the total
/// input size. `cancel` (optional) is polled between blocks; on cancellation
/// or any error, every file this call created is removed (best effort) and
/// *files is left exactly as passed in, so an aborted merge can never leave
/// partial tables for recovery to trip over. Returns Aborted on cancel.
Status WriteSortedPointsAsTables(
    Env* env, const std::string& dir, PointIterator* input,
    size_t points_per_file, size_t points_per_block, uint64_t* next_file_no,
    std::vector<FileMetadata>* files,
    format::ValueEncoding encoding = format::ValueEncoding::kRaw,
    format::TableMetadataConfig meta = {},
    const std::atomic<bool>* cancel = nullptr);

/// Path helpers: `<dir>/<number>.sst`.
std::string TableFilePath(const std::string& dir, uint64_t file_number);

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_SSTABLE_H_
