#ifndef SEPLSM_STORAGE_WAL_H_
#define SEPLSM_STORAGE_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/result.h"
#include "common/status.h"
#include "env/env.h"

namespace seplsm::storage {

/// Write-ahead log for MemTable durability (an engine extension; Apache
/// IoTDB ships one too — without it, points still buffered in C0/C_seq/
/// C_nonseq are lost on crash).
///
/// Record layout: fixed32 payload length | fixed32 masked CRC-32C of the
/// payload | payload (zigzag-varint generation_time, zigzag-varint
/// arrival_time delta from generation_time, fixed64 value bits).
/// Replay stops cleanly at the first torn or corrupt record (a crashed
/// writer can only damage the tail).
///
/// Because generation time uniquely keys a point and writes are upserts,
/// replaying a WAL that also covers already-persisted points is idempotent;
/// the engine therefore truncates the log only at explicit checkpoints
/// (after draining every MemTable).
class WalWriter {
 public:
  /// Creates/overwrites the log at `path`.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path);

  /// Appends one record (buffered; call Sync to force it to the device).
  Status Append(const DataPoint& point);

  Status Sync();

  /// Bytes appended so far (for checkpoint-size policies).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
};

/// Reads every intact record of a WAL file. A missing file yields an empty
/// vector (fresh database); a corrupt tail is truncated silently, matching
/// crash semantics. `tail_truncated` (optional) reports whether that
/// happened.
Result<std::vector<DataPoint>> ReadWal(Env* env, const std::string& path,
                                       bool* tail_truncated = nullptr);

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_WAL_H_
