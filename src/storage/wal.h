#ifndef SEPLSM_STORAGE_WAL_H_
#define SEPLSM_STORAGE_WAL_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/result.h"
#include "common/status.h"
#include "env/env.h"

namespace seplsm::storage {

/// Write-ahead log for MemTable durability (an engine extension; Apache
/// IoTDB ships one too — without it, points still buffered in C0/C_seq/
/// C_nonseq are lost on crash).
///
/// Record layout: fixed32 payload length | fixed32 masked CRC-32C of the
/// payload | payload of one or more point encodings back to back (each:
/// zigzag-varint generation_time, zigzag-varint arrival_time delta from
/// generation_time, fixed64 value bits). A single-point record is the N=1
/// case, so logs written before batch records existed replay unchanged;
/// group commit writes one N-point record per fsync. Replay stops cleanly
/// at the first torn or corrupt record (a crashed writer can only damage
/// the tail).
///
/// Because generation time uniquely keys a point and writes are upserts,
/// replaying a WAL that also covers already-persisted points is idempotent;
/// the engine therefore retires the log only at explicit checkpoints (after
/// draining every MemTable) — and never by truncating in place: a new log
/// is written beside the old one, synced, and renamed over it (see
/// TsEngine::RotateWalLocked).
class WalWriter {
 public:
  /// Creates/overwrites the log at `path`.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path);

  /// Opens an existing log (or creates it) and appends after its current
  /// contents; `bytes_written()` starts at the existing size so checkpoint
  /// policies see the true log length.
  static Result<std::unique_ptr<WalWriter>> OpenAppend(
      Env* env, const std::string& path);

  ~WalWriter();

  /// Appends one single-point record (buffered; call Sync to force it to
  /// the device).
  Status Append(const DataPoint& point);

  /// Appends `count` points starting at `points` as ONE record — one CRC,
  /// one length prefix, and (after the caller's Sync) one fsync covering
  /// the whole batch. No-op for count == 0.
  Status AppendBatch(const DataPoint* points, size_t count);
  Status AppendBatch(const std::vector<DataPoint>& points) {
    return AppendBatch(points.data(), points.size());
  }

  /// Flush + fsync: everything appended so far is crash-durable on success.
  Status Sync();

  /// Flushes and closes the file, surfacing the error a buffered write can
  /// defer to close time. Idempotent; the destructor closes best-effort for
  /// writers abandoned on error paths.
  Status Close();

  /// Bytes appended so far (for checkpoint-size policies). Atomic so the
  /// group-commit thread can append while the engine reads the size.
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, uint64_t existing_bytes)
      : file_(std::move(file)), bytes_written_(existing_bytes) {}

  std::unique_ptr<WritableFile> file_;
  std::atomic<uint64_t> bytes_written_;
};

/// Reads every intact record of a WAL file, decoding all points of each
/// record. A missing file yields an empty vector (fresh database); a corrupt
/// tail is truncated silently, matching crash semantics. `tail_truncated`
/// (optional) reports whether that happened.
Result<std::vector<DataPoint>> ReadWal(Env* env, const std::string& path,
                                       bool* tail_truncated = nullptr);

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_WAL_H_
