#ifndef SEPLSM_STORAGE_ITERATOR_H_
#define SEPLSM_STORAGE_ITERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "storage/block_cache.h"
#include "storage/memtable.h"
#include "storage/sstable.h"

namespace seplsm::storage {

/// A forward cursor over sorted points. The compaction/flush write loop is
/// written once against this interface (WriteSortedPointsAsTables below), so
/// memory stays bounded no matter how large the inputs are: an SSTable
/// source holds one decoded block, a merge holds one position per child.
///
/// Contract: `point()` and `Next()` require `Valid()`. When `Valid()` turns
/// false, `status()` distinguishes clean exhaustion (OK) from an error; a
/// caller must check it before trusting that the stream was complete.
class PointIterator {
 public:
  virtual ~PointIterator() = default;

  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual const DataPoint& point() const = 0;
  virtual Status status() const = 0;
};

/// Adapter over a sorted vector (borrowed or owned).
class VectorIterator final : public PointIterator {
 public:
  /// Borrows `points`; the vector must outlive the iterator.
  explicit VectorIterator(const std::vector<DataPoint>* points)
      : points_(points) {}
  /// Owning overload.
  explicit VectorIterator(std::vector<DataPoint> points)
      : owned_(std::move(points)), points_(&owned_) {}

  bool Valid() const override { return pos_ < points_->size(); }
  void Next() override { ++pos_; }
  const DataPoint& point() const override { return (*points_)[pos_]; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<DataPoint> owned_;
  const std::vector<DataPoint>* points_;
  size_t pos_ = 0;
};

/// Adapter over a frozen MemTable view (shared ownership keeps the map
/// alive, so the engine lock is not needed while iterating).
class MemTableViewIterator final : public PointIterator {
 public:
  explicit MemTableViewIterator(MemTable::View view)
      : view_(std::move(view)), it_(view_->begin()) {}

  bool Valid() const override { return it_ != view_->end(); }
  void Next() override { ++it_; }
  const DataPoint& point() const override { return it_->second; }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::View view_;
  MemTable::PointMap::const_iterator it_;
};

/// Streams an SSTable block by block: at most ONE decoded block is resident
/// at a time (plus a shared_ptr when the block came from the cache). Blocks
/// outside [options.lo, options.hi] are skipped via the index without being
/// read. With `options.fill_cache == false` device reads bypass cache
/// insertion — compaction scans use this so they cannot evict hot query
/// blocks — while cache *hits* are still served.
class SSTableIterator final : public PointIterator {
 public:
  /// Borrows `table`; the reader must outlive the iterator.
  explicit SSTableIterator(const SSTableReader* table,
                           ReadOptions options = {});
  /// Shares ownership of `table` (e.g. a TableCache entry), so the iterator
  /// keeps the reader alive across an LRU eviction.
  explicit SSTableIterator(std::shared_ptr<const SSTableReader> table,
                           ReadOptions options = {});

  bool Valid() const override;
  void Next() override;
  const DataPoint& point() const override;
  Status status() const override { return status_; }

 private:
  /// Advances `entry_`/`pos_` until they name a point in range, loading
  /// blocks lazily; sets `done_` at the end of the range.
  void SkipToNextInRange();

  std::shared_ptr<const SSTableReader> owner_;  // null when borrowing
  const SSTableReader* table_;
  ReadOptions options_;
  std::shared_ptr<const CachedBlock> block_;  // the single resident block
  size_t entry_ = 0;  ///< next index entry to load
  size_t pos_ = 0;    ///< position within `block_`
  bool done_ = false;
  Status status_;
};

/// Chains sorted children whose key ranges are non-decreasing across
/// boundaries (e.g. consecutive files of the run, which are disjoint by
/// invariant) into one sorted stream. This turns an N-file run slice into a
/// single merge child, so merging it with a buffer is a 2-way merge
/// regardless of how many files overlap. Ordering is verified as points are
/// consumed; a violation surfaces as an Internal status rather than a
/// silently mis-sorted output table.
class ConcatenatingIterator final : public PointIterator {
 public:
  /// Deferred child construction: each factory is invoked only when the
  /// chain reaches it (and may return null to mean "fully pruned, nothing
  /// to read"), so a chain over N files keeps at most one child — one
  /// resident block, one open table — alive at a time and never touches the
  /// block cache for files the scan finishes before.
  using ChildFactory = std::function<std::unique_ptr<PointIterator>()>;

  explicit ConcatenatingIterator(
      std::vector<std::unique_ptr<PointIterator>> children);
  explicit ConcatenatingIterator(std::vector<ChildFactory> factories);

  bool Valid() const override {
    return status_.ok() && cur_ < children_.size();
  }
  void Next() override;
  const DataPoint& point() const override { return children_[cur_]->point(); }
  Status status() const override { return status_; }

 private:
  void Settle();

  std::vector<std::unique_ptr<PointIterator>> children_;
  std::vector<ChildFactory> factories_;  ///< empty in the eager form
  size_t cur_ = 0;
  int64_t last_time_ = 0;
  bool has_last_ = false;
  Status status_;
};

/// Binary-heap k-way merge with LSM dedup semantics: children are given in
/// precedence order (newest first); on equal generation times the child with
/// the lowest index wins and every other point carrying that time — in later
/// children or later in the same child — is consumed and dropped. This is
/// exactly the "newer version wins" upsert rule the engine's materialized
/// MergeSorted implemented. A child error stops the merge: Valid() turns
/// false and status() carries the child's error.
class MergingIterator final : public PointIterator {
 public:
  explicit MergingIterator(
      std::vector<std::unique_ptr<PointIterator>> children);

  bool Valid() const override { return status_.ok() && !heap_.empty(); }
  void Next() override;
  const DataPoint& point() const override {
    return children_[heap_.top().child]->point();
  }
  Status status() const override { return status_; }

 private:
  struct HeapEntry {
    int64_t time;
    size_t child;
  };
  /// Min-heap on (time, child index): total order, so ties always surface
  /// the lowest-index (newest) child first.
  struct EntryGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.child > b.child;
    }
  };

  /// Re-inserts `child` if it still has points; captures its error if not.
  void PushChild(size_t child);

  std::vector<std::unique_ptr<PointIterator>> children_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, EntryGreater> heap_;
  Status status_;
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_ITERATOR_H_
