#ifndef SEPLSM_STORAGE_MEMTABLE_H_
#define SEPLSM_STORAGE_MEMTABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/point.h"

namespace seplsm::storage {

/// An in-memory buffer of points sorted by generation time with upsert
/// semantics (writing a point with an existing generation time replaces the
/// value — generation time is the key, per paper Definition 1).
///
/// The engine instantiates one (`C0`, conventional policy) or two (`C_seq`
/// and `C_nonseq`, separation policy). Capacity is counted in points, as in
/// the paper's memory-budget model.
///
/// Snapshot support: `SnapshotView()` returns a shared, immutable view of
/// the current contents in O(1) (copy-on-write — the next mutation after a
/// snapshot clones the map once, so a frozen view costs at most one clone
/// per snapshot and nothing when no snapshot is outstanding). Views can be
/// read without any lock while the owning engine keeps mutating the table.
/// The table itself is not thread-safe; the engine serializes mutation.
class MemTable {
 public:
  using PointMap = std::map<int64_t, DataPoint>;
  /// Immutable frozen view of the table's contents at snapshot time.
  using View = std::shared_ptr<const PointMap>;

  explicit MemTable(size_t capacity_points)
      : capacity_(capacity_points), points_(std::make_shared<PointMap>()) {}

  /// Inserts/overwrites. Returns true if this was a new key (the table
  /// grew), false if an existing generation time was overwritten.
  bool Add(const DataPoint& point) {
    DetachIfShared();
    auto [it, inserted] = points_->insert_or_assign(
        point.generation_time, point);
    (void)it;
    return inserted;
  }

  size_t size() const { return points_->size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return points_->empty(); }
  bool full() const { return points_->size() >= capacity_; }

  int64_t min_generation_time() const { return points_->begin()->first; }
  int64_t max_generation_time() const { return points_->rbegin()->first; }

  /// Extracts all points in generation-time order and clears the table.
  std::vector<DataPoint> Drain() {
    std::vector<DataPoint> out;
    out.reserve(points_->size());
    for (auto& [t, p] : *points_) {
      (void)t;
      out.push_back(p);
    }
    ResetMap();
    return out;
  }

  /// Copies points with generation_time in [lo, hi] into *out (sorted).
  void CollectRange(int64_t lo, int64_t hi,
                    std::vector<DataPoint>* out) const {
    CollectRange(*points_, lo, hi, out);
  }

  /// Same, over a frozen view (usable without the engine lock).
  static void CollectRange(const PointMap& points, int64_t lo, int64_t hi,
                           std::vector<DataPoint>* out) {
    for (auto it = points.lower_bound(lo);
         it != points.end() && it->first <= hi; ++it) {
      out->push_back(it->second);
    }
  }

  void Clear() { ResetMap(); }

  /// Freezes the current contents and returns a shared view. Must be called
  /// under the same serialization as mutations (the engine mutex); the
  /// returned view is then safe to read from any thread, lock-free.
  View SnapshotView() {
    shared_ = true;
    return points_;
  }

 private:
  /// Mutations go through here: once a snapshot holds the map, clone it so
  /// outstanding views stay frozen. The flag (not use_count) gates the
  /// clone, so no ordering is assumed about when readers drop their views.
  void DetachIfShared() {
    if (shared_) {
      points_ = std::make_shared<PointMap>(*points_);
      shared_ = false;
    }
  }

  void ResetMap() {
    if (shared_) {
      points_ = std::make_shared<PointMap>();
      shared_ = false;
    } else {
      points_->clear();
    }
  }

  size_t capacity_;
  std::shared_ptr<PointMap> points_;  // never null
  bool shared_ = false;               // a SnapshotView holds points_
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_MEMTABLE_H_
