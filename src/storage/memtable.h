#ifndef SEPLSM_STORAGE_MEMTABLE_H_
#define SEPLSM_STORAGE_MEMTABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/point.h"

namespace seplsm::storage {

/// An in-memory buffer of points sorted by generation time with upsert
/// semantics (writing a point with an existing generation time replaces the
/// value — generation time is the key, per paper Definition 1).
///
/// The engine instantiates one (`C0`, conventional policy) or two (`C_seq`
/// and `C_nonseq`, separation policy). Capacity is counted in points, as in
/// the paper's memory-budget model.
class MemTable {
 public:
  explicit MemTable(size_t capacity_points)
      : capacity_(capacity_points) {}

  /// Inserts/overwrites. Returns true if this was a new key (the table
  /// grew), false if an existing generation time was overwritten.
  bool Add(const DataPoint& point) {
    auto [it, inserted] = points_.insert_or_assign(
        point.generation_time, point);
    (void)it;
    return inserted;
  }

  size_t size() const { return points_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return points_.empty(); }
  bool full() const { return points_.size() >= capacity_; }

  int64_t min_generation_time() const { return points_.begin()->first; }
  int64_t max_generation_time() const { return points_.rbegin()->first; }

  /// Extracts all points in generation-time order and clears the table.
  std::vector<DataPoint> Drain() {
    std::vector<DataPoint> out;
    out.reserve(points_.size());
    for (auto& [t, p] : points_) {
      (void)t;
      out.push_back(p);
    }
    points_.clear();
    return out;
  }

  /// Copies points with generation_time in [lo, hi] into *out (sorted).
  void CollectRange(int64_t lo, int64_t hi,
                    std::vector<DataPoint>* out) const {
    for (auto it = points_.lower_bound(lo);
         it != points_.end() && it->first <= hi; ++it) {
      out->push_back(it->second);
    }
  }

  void Clear() { points_.clear(); }

 private:
  size_t capacity_;
  std::map<int64_t, DataPoint> points_;
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_MEMTABLE_H_
