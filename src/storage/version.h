#ifndef SEPLSM_STORAGE_VERSION_H_
#define SEPLSM_STORAGE_VERSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/sstable.h"

namespace seplsm::storage {

/// The persisted state of the tree:
///
/// - `level0`: recently flushed SSTables, in flush order; files may overlap
///   each other and the run. Only populated when the engine runs the
///   background-compaction variant (paper §V-C); empty in synchronous mode.
/// - `run`: level 1, kept sorted by min generation time with pairwise
///   disjoint ranges — the paper's single sorted *run* R.
///
/// Not thread-safe; the engine serializes access.
class Version {
 public:
  const std::vector<FileMetadata>& level0() const { return level0_; }
  const std::vector<FileMetadata>& run() const { return run_; }

  bool empty() const { return level0_.empty() && run_.empty(); }

  /// Max generation time across all persisted data: LAST(R).t_g in the
  /// paper (the engine also folds in level0 in background mode).
  /// Returns INT64_MIN when nothing is persisted.
  int64_t MaxPersistedGenerationTime() const;

  uint64_t TotalPoints() const;
  uint64_t TotalFiles() const { return level0_.size() + run_.size(); }

  void AddLevel0(FileMetadata file) { level0_.push_back(std::move(file)); }

  /// Removes and returns the oldest level-0 file metadata.
  FileMetadata PopLevel0Front();

  /// Appends a file strictly above the current run (C_seq flush fast path).
  /// Fails if the file overlaps the run.
  Status AppendToRun(FileMetadata file);

  /// Replaces run files [begin, end) with `replacements` (sorted,
  /// non-overlapping, and fitting the gap). Indices into run().
  Status ReplaceRunSlice(size_t begin, size_t end,
                         std::vector<FileMetadata> replacements);

  /// Returns [begin, end) indices of run files overlapping [lo, hi].
  void OverlappingRunRange(int64_t lo, int64_t hi, size_t* begin,
                           size_t* end) const;

  /// Indices of level0 files overlapping [lo, hi].
  std::vector<size_t> OverlappingLevel0(int64_t lo, int64_t hi) const;

  /// Verifies the run invariant (sorted, pairwise disjoint).
  Status CheckInvariants() const;

 private:
  std::vector<FileMetadata> level0_;
  std::vector<FileMetadata> run_;
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_VERSION_H_
