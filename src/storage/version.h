#ifndef SEPLSM_STORAGE_VERSION_H_
#define SEPLSM_STORAGE_VERSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/sstable.h"

namespace seplsm::storage {

/// Shared, immutable handle to one on-disk SSTable's metadata. The live
/// `Version` and every outstanding `VersionSnapshot` co-own the metadata;
/// the physical file may be unlinked only once no snapshot references it
/// (see DeferredFileDeleter).
using FilePtr = std::shared_ptr<const FileMetadata>;

/// How one level organizes its files (the compaction design space's
/// "layout" primitive):
///
/// - `kSorted` ("leveling"): one sorted run — files pairwise disjoint and
///   ordered by generation time, so a point query touches at most one file
///   and a range query a contiguous slice.
/// - `kStacked` ("tiering"): files stack in arrival order and may overlap;
///   writes into the level are O(1) appends (no merge), reads must consult
///   every overlapping file, newest (back) wins.
///
/// Level 0 is always stacked (flush order); level 1+ defaults to sorted.
enum class LevelLayout : uint8_t { kSorted, kStacked };

/// Returns [begin, end) indices of `run` files overlapping [lo, hi]; the
/// vector must satisfy the run invariant (sorted, pairwise disjoint).
void OverlappingRunRange(const std::vector<FilePtr>& run, int64_t lo,
                         int64_t hi, size_t* begin, size_t* end);

/// Indices of (possibly overlapping) `level0` files intersecting [lo, hi].
std::vector<size_t> OverlappingLevel0(const std::vector<FilePtr>& level0,
                                      int64_t lo, int64_t hi);

/// An immutable, reference-counted view of the tree's file state, captured
/// in O(files) under the engine mutex. Every `FilePtr` keeps its table's
/// metadata — and, through the deferred-delete protocol, the file itself —
/// alive for the snapshot's lifetime, so readers can perform all SSTable
/// I/O and merging without any engine lock while compaction replaces and
/// retires files concurrently.
class VersionSnapshot {
 public:
  VersionSnapshot() = default;
  /// Legacy two-level shape: level 0 plus the sorted run (level 1).
  VersionSnapshot(std::vector<FilePtr> run, std::vector<FilePtr> level0) {
    levels_.reserve(2);
    levels_.push_back(std::move(level0));
    levels_.push_back(std::move(run));
    layouts_ = {LevelLayout::kStacked, LevelLayout::kSorted};
  }
  VersionSnapshot(std::vector<std::vector<FilePtr>> levels,
                  std::vector<LevelLayout> layouts)
      : levels_(std::move(levels)), layouts_(std::move(layouts)) {}

  size_t num_levels() const { return levels_.size(); }
  const std::vector<FilePtr>& level(size_t n) const { return levels_[n]; }
  LevelLayout layout(size_t n) const { return layouts_[n]; }

  /// Legacy accessors: level 1 is "the run", level 0 the flush stack.
  const std::vector<FilePtr>& run() const {
    return levels_.size() > 1 ? levels_[1] : kEmptyLevel;
  }
  const std::vector<FilePtr>& level0() const {
    return levels_.empty() ? kEmptyLevel : levels_[0];
  }

  void OverlappingRunRange(int64_t lo, int64_t hi, size_t* begin,
                           size_t* end) const {
    storage::OverlappingRunRange(run(), lo, hi, begin, end);
  }
  std::vector<size_t> OverlappingLevel0(int64_t lo, int64_t hi) const {
    return storage::OverlappingLevel0(level0(), lo, hi);
  }
  /// Overlap slice of a sorted level; for stacked levels use
  /// storage::OverlappingLevel0 on level(n) instead.
  void OverlappingLevelRange(size_t n, int64_t lo, int64_t hi, size_t* begin,
                             size_t* end) const {
    storage::OverlappingRunRange(levels_[n], lo, hi, begin, end);
  }

 private:
  static const std::vector<FilePtr> kEmptyLevel;
  std::vector<std::vector<FilePtr>> levels_;
  std::vector<LevelLayout> layouts_;
};

/// The persisted state of the tree, generalized to N levels:
///
/// - Level 0: recently flushed SSTables, in flush order; files may overlap
///   each other and deeper levels. Only populated when the engine runs the
///   background-compaction variant (paper §V-C); empty in synchronous mode.
/// - Levels 1..N-1: time-partitioned runs. A `kSorted` level is kept sorted
///   by min generation time with pairwise disjoint ranges; level 1 in the
///   default two-level configuration is the paper's single sorted *run* R.
///   A `kStacked` level holds possibly-overlapping files in arrival order
///   (newest at the back).
///
/// Data always enters at level 1 (flush/merge) and migrates toward the
/// deepest level through bounded per-file compaction jobs. File metadata is
/// held by shared ownership so `Snapshot()` can hand out stable views. Not
/// thread-safe; the engine serializes mutation.
class Version {
 public:
  explicit Version(size_t num_levels = 2,
                   std::vector<LevelLayout> layouts = {});

  size_t num_levels() const { return levels_.size(); }
  LevelLayout layout(size_t n) const { return layouts_[n]; }
  const std::vector<FilePtr>& level(size_t n) const { return levels_[n]; }

  /// Legacy accessors: level 1 is "the run", level 0 the flush stack.
  const std::vector<FilePtr>& level0() const { return levels_[0]; }
  const std::vector<FilePtr>& run() const { return levels_[1]; }

  bool empty() const;

  /// Max generation time across all persisted data: LAST(R).t_g in the
  /// paper (the engine also folds in level0 in background mode).
  /// Returns INT64_MIN when nothing is persisted.
  int64_t MaxPersistedGenerationTime() const;

  uint64_t TotalPoints() const;
  uint64_t TotalFiles() const;

  /// O(files) copy of the current file lists with shared ownership.
  VersionSnapshot Snapshot() const {
    return VersionSnapshot(levels_, layouts_);
  }

  void AddLevel0(FileMetadata file) {
    levels_[0].push_back(
        std::make_shared<const FileMetadata>(std::move(file)));
  }

  /// Removes and returns the oldest level-0 file.
  FilePtr PopLevel0Front() { return RemoveFileAt(0, 0); }

  /// Removes and returns the file at `index` in `level`.
  FilePtr RemoveFileAt(size_t level, size_t index);

  /// Appends a file strictly above the current run (C_seq flush fast path).
  /// Fails if the file overlaps the run.
  Status AppendToRun(FileMetadata file) {
    return AppendToLevel(
        1, std::make_shared<const FileMetadata>(std::move(file)));
  }
  Status AppendToRun(FilePtr file) { return AppendToLevel(1, std::move(file)); }

  /// Appends a file to `level`. For a sorted level the file must lie
  /// strictly above the level's current max; a stacked level accepts any
  /// file (arrival order, newest at the back).
  Status AppendToLevel(size_t level, FileMetadata file) {
    return AppendToLevel(
        level, std::make_shared<const FileMetadata>(std::move(file)));
  }
  Status AppendToLevel(size_t level, FilePtr file);

  /// Replaces run files [begin, end) with `replacements` (sorted,
  /// non-overlapping, and fitting the gap). Indices into run().
  Status ReplaceRunSlice(size_t begin, size_t end,
                         std::vector<FileMetadata> replacements) {
    return ReplaceLevelSlice(1, begin, end, std::move(replacements));
  }

  /// Replaces files [begin, end) of `level` with `replacements`; with
  /// begin == end this inserts into a gap. The level invariant is
  /// re-checked after the splice.
  Status ReplaceLevelSlice(size_t level, size_t begin, size_t end,
                           std::vector<FileMetadata> replacements);

  /// Replaces the single file at `index` in `level` with `file`, returning
  /// the displaced FilePtr through `old_file` (for deferred deletion).
  Status ReplaceFileAt(size_t level, size_t index, FileMetadata file,
                       FilePtr* old_file);

  /// Inserts an existing file (same FilePtr, no metadata copy, no deletion
  /// involved) at `index` in `level` — the gap-adoption path when a
  /// compaction finds no next-level overlap. The level invariant is
  /// re-checked after the insert.
  Status InsertFileAt(size_t level, size_t index, FilePtr file);

  /// Moves the file at `index` in `from_level` to the back of `to_level`
  /// without any I/O (tiering's zero-copy data movement). The target must
  /// be a stacked level; with the forced oldest-first pick on stacked
  /// source levels, back-append preserves recency order.
  Status MoveFile(size_t from_level, size_t index, size_t to_level);

  /// Returns [begin, end) indices of run files overlapping [lo, hi].
  void OverlappingRunRange(int64_t lo, int64_t hi, size_t* begin,
                           size_t* end) const {
    storage::OverlappingRunRange(levels_[1], lo, hi, begin, end);
  }

  /// Overlap slice of a sorted level; for stacked levels use
  /// OverlappingLevel0-style linear scans on level(n) instead.
  void OverlappingLevelRange(size_t level, int64_t lo, int64_t hi,
                             size_t* begin, size_t* end) const {
    storage::OverlappingRunRange(levels_[level], lo, hi, begin, end);
  }

  /// Indices of level0 files overlapping [lo, hi].
  std::vector<size_t> OverlappingLevel0(int64_t lo, int64_t hi) const {
    return storage::OverlappingLevel0(levels_[0], lo, hi);
  }

  /// Verifies every level's invariant: no inverted ranges anywhere, and
  /// sorted levels pairwise disjoint and ordered.
  Status CheckInvariants() const;

 private:
  std::vector<std::vector<FilePtr>> levels_;
  std::vector<LevelLayout> layouts_;
};

/// Thread-safe list of files that left the live Version but may still be
/// referenced by snapshots. Compaction routes every table deletion through
/// `Schedule`; the physical unlink (`delete_fn`, which also evicts table-
/// and block-cache entries) runs from `CollectGarbage` only once the list
/// holds the last reference — i.e. after the last snapshot referencing the
/// file dropped. Failed deletions stay pending and are retried on the next
/// collection.
class DeferredFileDeleter {
 public:
  using DeleteFn = std::function<Status(const FileMetadata&)>;

  explicit DeferredFileDeleter(DeleteFn delete_fn)
      : delete_fn_(std::move(delete_fn)) {}

  /// Hands the file over for deletion. The caller must already have removed
  /// it from the live Version (so no new snapshot can reference it).
  void Schedule(FilePtr file);

  /// Physically deletes every scheduled file with no outstanding snapshot
  /// references; returns how many were deleted. Never call while holding a
  /// lock that `delete_fn` acquires.
  size_t CollectGarbage();

  /// Files still awaiting deletion (referenced by snapshots or retrying).
  size_t pending() const;

 private:
  DeleteFn delete_fn_;
  mutable std::mutex mutex_;
  std::vector<FilePtr> pending_;
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_VERSION_H_
