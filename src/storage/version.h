#ifndef SEPLSM_STORAGE_VERSION_H_
#define SEPLSM_STORAGE_VERSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/sstable.h"

namespace seplsm::storage {

/// Shared, immutable handle to one on-disk SSTable's metadata. The live
/// `Version` and every outstanding `VersionSnapshot` co-own the metadata;
/// the physical file may be unlinked only once no snapshot references it
/// (see DeferredFileDeleter).
using FilePtr = std::shared_ptr<const FileMetadata>;

/// Returns [begin, end) indices of `run` files overlapping [lo, hi]; the
/// vector must satisfy the run invariant (sorted, pairwise disjoint).
void OverlappingRunRange(const std::vector<FilePtr>& run, int64_t lo,
                         int64_t hi, size_t* begin, size_t* end);

/// Indices of (possibly overlapping) `level0` files intersecting [lo, hi].
std::vector<size_t> OverlappingLevel0(const std::vector<FilePtr>& level0,
                                      int64_t lo, int64_t hi);

/// An immutable, reference-counted view of the tree's file state, captured
/// in O(files) under the engine mutex. Every `FilePtr` keeps its table's
/// metadata — and, through the deferred-delete protocol, the file itself —
/// alive for the snapshot's lifetime, so readers can perform all SSTable
/// I/O and merging without any engine lock while compaction replaces and
/// retires files concurrently.
class VersionSnapshot {
 public:
  VersionSnapshot() = default;
  VersionSnapshot(std::vector<FilePtr> run, std::vector<FilePtr> level0)
      : run_(std::move(run)), level0_(std::move(level0)) {}

  const std::vector<FilePtr>& run() const { return run_; }
  const std::vector<FilePtr>& level0() const { return level0_; }

  void OverlappingRunRange(int64_t lo, int64_t hi, size_t* begin,
                           size_t* end) const {
    storage::OverlappingRunRange(run_, lo, hi, begin, end);
  }
  std::vector<size_t> OverlappingLevel0(int64_t lo, int64_t hi) const {
    return storage::OverlappingLevel0(level0_, lo, hi);
  }

 private:
  std::vector<FilePtr> run_;
  std::vector<FilePtr> level0_;
};

/// The persisted state of the tree:
///
/// - `level0`: recently flushed SSTables, in flush order; files may overlap
///   each other and the run. Only populated when the engine runs the
///   background-compaction variant (paper §V-C); empty in synchronous mode.
/// - `run`: level 1, kept sorted by min generation time with pairwise
///   disjoint ranges — the paper's single sorted *run* R.
///
/// File metadata is held by shared ownership so `Snapshot()` can hand out
/// stable views. Not thread-safe; the engine serializes mutation.
class Version {
 public:
  const std::vector<FilePtr>& level0() const { return level0_; }
  const std::vector<FilePtr>& run() const { return run_; }

  bool empty() const { return level0_.empty() && run_.empty(); }

  /// Max generation time across all persisted data: LAST(R).t_g in the
  /// paper (the engine also folds in level0 in background mode).
  /// Returns INT64_MIN when nothing is persisted.
  int64_t MaxPersistedGenerationTime() const;

  uint64_t TotalPoints() const;
  uint64_t TotalFiles() const { return level0_.size() + run_.size(); }

  /// O(files) copy of the current file lists with shared ownership.
  VersionSnapshot Snapshot() const { return VersionSnapshot(run_, level0_); }

  void AddLevel0(FileMetadata file) {
    level0_.push_back(std::make_shared<const FileMetadata>(std::move(file)));
  }

  /// Removes and returns the oldest level-0 file.
  FilePtr PopLevel0Front();

  /// Appends a file strictly above the current run (C_seq flush fast path).
  /// Fails if the file overlaps the run.
  Status AppendToRun(FileMetadata file) {
    return AppendToRun(std::make_shared<const FileMetadata>(std::move(file)));
  }
  Status AppendToRun(FilePtr file);

  /// Replaces run files [begin, end) with `replacements` (sorted,
  /// non-overlapping, and fitting the gap). Indices into run().
  Status ReplaceRunSlice(size_t begin, size_t end,
                         std::vector<FileMetadata> replacements);

  /// Returns [begin, end) indices of run files overlapping [lo, hi].
  void OverlappingRunRange(int64_t lo, int64_t hi, size_t* begin,
                           size_t* end) const {
    storage::OverlappingRunRange(run_, lo, hi, begin, end);
  }

  /// Indices of level0 files overlapping [lo, hi].
  std::vector<size_t> OverlappingLevel0(int64_t lo, int64_t hi) const {
    return storage::OverlappingLevel0(level0_, lo, hi);
  }

  /// Verifies the run invariant (sorted, pairwise disjoint).
  Status CheckInvariants() const;

 private:
  std::vector<FilePtr> level0_;
  std::vector<FilePtr> run_;
};

/// Thread-safe list of files that left the live Version but may still be
/// referenced by snapshots. Compaction routes every table deletion through
/// `Schedule`; the physical unlink (`delete_fn`, which also evicts table-
/// and block-cache entries) runs from `CollectGarbage` only once the list
/// holds the last reference — i.e. after the last snapshot referencing the
/// file dropped. Failed deletions stay pending and are retried on the next
/// collection.
class DeferredFileDeleter {
 public:
  using DeleteFn = std::function<Status(const FileMetadata&)>;

  explicit DeferredFileDeleter(DeleteFn delete_fn)
      : delete_fn_(std::move(delete_fn)) {}

  /// Hands the file over for deletion. The caller must already have removed
  /// it from the live Version (so no new snapshot can reference it).
  void Schedule(FilePtr file);

  /// Physically deletes every scheduled file with no outstanding snapshot
  /// references; returns how many were deleted. Never call while holding a
  /// lock that `delete_fn` acquires.
  size_t CollectGarbage();

  /// Files still awaiting deletion (referenced by snapshots or retrying).
  size_t pending() const;

 private:
  DeleteFn delete_fn_;
  mutable std::mutex mutex_;
  std::vector<FilePtr> pending_;
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_VERSION_H_
