#include "storage/version.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace seplsm::storage {

void OverlappingRunRange(const std::vector<FilePtr>& run, int64_t lo,
                         int64_t hi, size_t* begin, size_t* end) {
  // First file with max >= lo.
  auto first = std::partition_point(
      run.begin(), run.end(),
      [lo](const FilePtr& f) { return f->max_generation_time < lo; });
  // First file with min > hi.
  auto last = std::partition_point(
      first, run.end(),
      [hi](const FilePtr& f) { return f->min_generation_time <= hi; });
  *begin = static_cast<size_t>(first - run.begin());
  *end = static_cast<size_t>(last - run.begin());
}

std::vector<size_t> OverlappingLevel0(const std::vector<FilePtr>& level0,
                                      int64_t lo, int64_t hi) {
  std::vector<size_t> out;
  for (size_t i = 0; i < level0.size(); ++i) {
    if (level0[i]->Overlaps(lo, hi)) out.push_back(i);
  }
  return out;
}

int64_t Version::MaxPersistedGenerationTime() const {
  int64_t max_tg = std::numeric_limits<int64_t>::min();
  if (!run_.empty()) {
    max_tg = std::max(max_tg, run_.back()->max_generation_time);
  }
  for (const auto& f : level0_) {
    max_tg = std::max(max_tg, f->max_generation_time);
  }
  return max_tg;
}

uint64_t Version::TotalPoints() const {
  uint64_t total = 0;
  for (const auto& f : level0_) total += f->point_count;
  for (const auto& f : run_) total += f->point_count;
  return total;
}

FilePtr Version::PopLevel0Front() {
  FilePtr f = std::move(level0_.front());
  level0_.erase(level0_.begin());
  return f;
}

Status Version::AppendToRun(FilePtr file) {
  if (!run_.empty() &&
      file->min_generation_time <= run_.back()->max_generation_time) {
    return Status::InvalidArgument(
        "AppendToRun: file overlaps or is below the run");
  }
  run_.push_back(std::move(file));
  return Status::OK();
}

Status Version::ReplaceRunSlice(size_t begin, size_t end,
                                std::vector<FileMetadata> replacements) {
  if (begin > end || end > run_.size()) {
    return Status::InvalidArgument("ReplaceRunSlice: bad slice");
  }
  std::vector<FilePtr> next;
  next.reserve(run_.size() - (end - begin) + replacements.size());
  next.insert(next.end(), run_.begin(), run_.begin() + begin);
  for (auto& r : replacements) {
    next.push_back(std::make_shared<const FileMetadata>(std::move(r)));
  }
  next.insert(next.end(), run_.begin() + end, run_.end());
  run_ = std::move(next);
  return CheckInvariants();
}

Status Version::CheckInvariants() const {
  for (size_t i = 0; i < run_.size(); ++i) {
    if (run_[i]->min_generation_time > run_[i]->max_generation_time) {
      return Status::Corruption("run file with inverted range");
    }
    if (i > 0 && run_[i]->min_generation_time <=
                     run_[i - 1]->max_generation_time) {
      return Status::Corruption("run files overlap or are unsorted");
    }
  }
  return Status::OK();
}

void DeferredFileDeleter::Schedule(FilePtr file) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(std::move(file));
}

size_t DeferredFileDeleter::CollectGarbage() {
  std::vector<FilePtr> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto mid = std::partition(
        pending_.begin(), pending_.end(),
        // use_count() == 1 means the pending list is the sole owner: the
        // file left the live Version before Schedule, so no new snapshot
        // can ever re-reference it.
        [](const FilePtr& f) { return f.use_count() > 1; });
    ready.assign(std::make_move_iterator(mid),
                 std::make_move_iterator(pending_.end()));
    pending_.erase(mid, pending_.end());
  }
  size_t deleted = 0;
  std::vector<FilePtr> retry;
  for (auto& f : ready) {
    Status st = delete_fn_(*f);
    if (st.ok()) {
      ++deleted;
    } else {
      SEPLSM_LOG(Warn) << "deferred delete of " << f->path
                          << " failed (will retry): " << st.ToString();
      retry.push_back(std::move(f));
    }
  }
  if (!retry.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.insert(pending_.end(), std::make_move_iterator(retry.begin()),
                    std::make_move_iterator(retry.end()));
  }
  return deleted;
}

size_t DeferredFileDeleter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

}  // namespace seplsm::storage
