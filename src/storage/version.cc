#include "storage/version.h"

#include <algorithm>
#include <limits>

namespace seplsm::storage {

int64_t Version::MaxPersistedGenerationTime() const {
  int64_t max_tg = std::numeric_limits<int64_t>::min();
  if (!run_.empty()) {
    max_tg = std::max(max_tg, run_.back().max_generation_time);
  }
  for (const auto& f : level0_) {
    max_tg = std::max(max_tg, f.max_generation_time);
  }
  return max_tg;
}

uint64_t Version::TotalPoints() const {
  uint64_t total = 0;
  for (const auto& f : level0_) total += f.point_count;
  for (const auto& f : run_) total += f.point_count;
  return total;
}

FileMetadata Version::PopLevel0Front() {
  FileMetadata f = std::move(level0_.front());
  level0_.erase(level0_.begin());
  return f;
}

Status Version::AppendToRun(FileMetadata file) {
  if (!run_.empty() &&
      file.min_generation_time <= run_.back().max_generation_time) {
    return Status::InvalidArgument(
        "AppendToRun: file overlaps or is below the run");
  }
  run_.push_back(std::move(file));
  return Status::OK();
}

Status Version::ReplaceRunSlice(size_t begin, size_t end,
                                std::vector<FileMetadata> replacements) {
  if (begin > end || end > run_.size()) {
    return Status::InvalidArgument("ReplaceRunSlice: bad slice");
  }
  std::vector<FileMetadata> next;
  next.reserve(run_.size() - (end - begin) + replacements.size());
  next.insert(next.end(), run_.begin(), run_.begin() + begin);
  next.insert(next.end(), std::make_move_iterator(replacements.begin()),
              std::make_move_iterator(replacements.end()));
  next.insert(next.end(), run_.begin() + end, run_.end());
  run_ = std::move(next);
  return CheckInvariants();
}

void Version::OverlappingRunRange(int64_t lo, int64_t hi, size_t* begin,
                                  size_t* end) const {
  // First file with max >= lo.
  auto first = std::partition_point(
      run_.begin(), run_.end(),
      [lo](const FileMetadata& f) { return f.max_generation_time < lo; });
  // First file with min > hi.
  auto last = std::partition_point(
      first, run_.end(),
      [hi](const FileMetadata& f) { return f.min_generation_time <= hi; });
  *begin = static_cast<size_t>(first - run_.begin());
  *end = static_cast<size_t>(last - run_.begin());
}

std::vector<size_t> Version::OverlappingLevel0(int64_t lo, int64_t hi) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < level0_.size(); ++i) {
    if (level0_[i].Overlaps(lo, hi)) out.push_back(i);
  }
  return out;
}

Status Version::CheckInvariants() const {
  for (size_t i = 0; i < run_.size(); ++i) {
    if (run_[i].min_generation_time > run_[i].max_generation_time) {
      return Status::Corruption("run file with inverted range");
    }
    if (i > 0 && run_[i].min_generation_time <=
                     run_[i - 1].max_generation_time) {
      return Status::Corruption("run files overlap or are unsorted");
    }
  }
  return Status::OK();
}

}  // namespace seplsm::storage
