#include "storage/version.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace seplsm::storage {

const std::vector<FilePtr> VersionSnapshot::kEmptyLevel;

void OverlappingRunRange(const std::vector<FilePtr>& run, int64_t lo,
                         int64_t hi, size_t* begin, size_t* end) {
  // First file with max >= lo.
  auto first = std::partition_point(
      run.begin(), run.end(),
      [lo](const FilePtr& f) { return f->max_generation_time < lo; });
  // First file with min > hi.
  auto last = std::partition_point(
      first, run.end(),
      [hi](const FilePtr& f) { return f->min_generation_time <= hi; });
  *begin = static_cast<size_t>(first - run.begin());
  *end = static_cast<size_t>(last - run.begin());
}

std::vector<size_t> OverlappingLevel0(const std::vector<FilePtr>& level0,
                                      int64_t lo, int64_t hi) {
  std::vector<size_t> out;
  for (size_t i = 0; i < level0.size(); ++i) {
    if (level0[i]->Overlaps(lo, hi)) out.push_back(i);
  }
  return out;
}

Version::Version(size_t num_levels, std::vector<LevelLayout> layouts) {
  if (num_levels < 2) num_levels = 2;
  levels_.resize(num_levels);
  layouts_ = std::move(layouts);
  layouts_.resize(num_levels, LevelLayout::kSorted);
  // Level 0 is the flush stack regardless of configuration.
  layouts_[0] = LevelLayout::kStacked;
}

bool Version::empty() const {
  for (const auto& lvl : levels_) {
    if (!lvl.empty()) return false;
  }
  return true;
}

int64_t Version::MaxPersistedGenerationTime() const {
  int64_t max_tg = std::numeric_limits<int64_t>::min();
  for (size_t n = 0; n < levels_.size(); ++n) {
    const auto& lvl = levels_[n];
    if (lvl.empty()) continue;
    if (n > 0 && layouts_[n] == LevelLayout::kSorted) {
      max_tg = std::max(max_tg, lvl.back()->max_generation_time);
    } else {
      for (const auto& f : lvl) {
        max_tg = std::max(max_tg, f->max_generation_time);
      }
    }
  }
  return max_tg;
}

uint64_t Version::TotalPoints() const {
  uint64_t total = 0;
  for (const auto& lvl : levels_) {
    for (const auto& f : lvl) total += f->point_count;
  }
  return total;
}

uint64_t Version::TotalFiles() const {
  uint64_t total = 0;
  for (const auto& lvl : levels_) total += lvl.size();
  return total;
}

FilePtr Version::RemoveFileAt(size_t level, size_t index) {
  auto& lvl = levels_[level];
  FilePtr f = std::move(lvl[index]);
  lvl.erase(lvl.begin() + static_cast<std::ptrdiff_t>(index));
  return f;
}

Status Version::AppendToLevel(size_t level, FilePtr file) {
  if (level >= levels_.size()) {
    return Status::InvalidArgument("AppendToLevel: no such level");
  }
  auto& lvl = levels_[level];
  if (layouts_[level] == LevelLayout::kSorted && !lvl.empty() &&
      file->min_generation_time <= lvl.back()->max_generation_time) {
    return Status::InvalidArgument(
        "AppendToRun: file overlaps or is below the run");
  }
  lvl.push_back(std::move(file));
  return Status::OK();
}

Status Version::ReplaceLevelSlice(size_t level, size_t begin, size_t end,
                                  std::vector<FileMetadata> replacements) {
  if (level >= levels_.size()) {
    return Status::InvalidArgument("ReplaceLevelSlice: no such level");
  }
  auto& lvl = levels_[level];
  if (begin > end || end > lvl.size()) {
    return Status::InvalidArgument("ReplaceRunSlice: bad slice");
  }
  std::vector<FilePtr> next;
  next.reserve(lvl.size() - (end - begin) + replacements.size());
  next.insert(next.end(), lvl.begin(),
              lvl.begin() + static_cast<std::ptrdiff_t>(begin));
  for (auto& r : replacements) {
    next.push_back(std::make_shared<const FileMetadata>(std::move(r)));
  }
  next.insert(next.end(), lvl.begin() + static_cast<std::ptrdiff_t>(end),
              lvl.end());
  lvl = std::move(next);
  return CheckInvariants();
}

Status Version::ReplaceFileAt(size_t level, size_t index, FileMetadata file,
                              FilePtr* old_file) {
  if (level >= levels_.size() || index >= levels_[level].size()) {
    return Status::InvalidArgument("ReplaceFileAt: bad level or index");
  }
  FilePtr replacement = std::make_shared<const FileMetadata>(std::move(file));
  std::swap(levels_[level][index], replacement);
  if (old_file != nullptr) *old_file = std::move(replacement);
  return CheckInvariants();
}

Status Version::InsertFileAt(size_t level, size_t index, FilePtr file) {
  if (level >= levels_.size() || index > levels_[level].size()) {
    return Status::InvalidArgument("InsertFileAt: bad level or index");
  }
  auto& lvl = levels_[level];
  lvl.insert(lvl.begin() + static_cast<std::ptrdiff_t>(index),
             std::move(file));
  return CheckInvariants();
}

Status Version::MoveFile(size_t from_level, size_t index, size_t to_level) {
  if (from_level >= levels_.size() || to_level >= levels_.size() ||
      index >= levels_[from_level].size()) {
    return Status::InvalidArgument("MoveFile: bad level or index");
  }
  if (layouts_[to_level] != LevelLayout::kStacked) {
    return Status::InvalidArgument("MoveFile: target level is not stacked");
  }
  levels_[to_level].push_back(RemoveFileAt(from_level, index));
  return Status::OK();
}

Status Version::CheckInvariants() const {
  for (size_t n = 0; n < levels_.size(); ++n) {
    const auto& lvl = levels_[n];
    const bool sorted = n > 0 && layouts_[n] == LevelLayout::kSorted;
    for (size_t i = 0; i < lvl.size(); ++i) {
      if (lvl[i]->min_generation_time > lvl[i]->max_generation_time) {
        return Status::Corruption("run file with inverted range");
      }
      if (sorted && i > 0 &&
          lvl[i]->min_generation_time <= lvl[i - 1]->max_generation_time) {
        return Status::Corruption("run files overlap or are unsorted");
      }
    }
  }
  return Status::OK();
}

void DeferredFileDeleter::Schedule(FilePtr file) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(std::move(file));
}

size_t DeferredFileDeleter::CollectGarbage() {
  std::vector<FilePtr> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto mid = std::partition(
        pending_.begin(), pending_.end(),
        // use_count() == 1 means the pending list is the sole owner: the
        // file left the live Version before Schedule, so no new snapshot
        // can ever re-reference it.
        [](const FilePtr& f) { return f.use_count() > 1; });
    ready.assign(std::make_move_iterator(mid),
                 std::make_move_iterator(pending_.end()));
    pending_.erase(mid, pending_.end());
  }
  size_t deleted = 0;
  std::vector<FilePtr> retry;
  for (auto& f : ready) {
    Status st = delete_fn_(*f);
    if (st.ok()) {
      ++deleted;
    } else {
      SEPLSM_LOG(Warn) << "deferred delete of " << f->path
                          << " failed (will retry): " << st.ToString();
      retry.push_back(std::move(f));
    }
  }
  if (!retry.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.insert(pending_.end(), std::make_move_iterator(retry.begin()),
                    std::make_move_iterator(retry.end()));
  }
  return deleted;
}

size_t DeferredFileDeleter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

}  // namespace seplsm::storage
