#include "storage/query_explain.h"

#include <cstdio>
#include <sstream>

namespace seplsm::storage {

namespace {

/// JSON string escaping for the free-form `detail` field.
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* QueryExplain::KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kFilesSkippedTimeRange: return "files_skipped_time_range";
    case EventKind::kFileOpened: return "file_opened";
    case EventKind::kBlockSkippedIndex: return "block_skipped_index";
    case EventKind::kBlockSkippedZoneMap: return "block_skipped_zone_map";
    case EventKind::kBlockRead: return "block_read";
    case EventKind::kBloomNegative: return "bloom_negative";
    case EventKind::kSummaryWindowServed: return "summary_window_served";
    case EventKind::kWindowFallback: return "window_fallback";
    case EventKind::kMemtableScan: return "memtable_scan";
  }
  return "unknown";
}

void QueryExplain::Push(Event event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void QueryExplain::RecordFilesSkipped(int32_t level, uint64_t count,
                                      int64_t lo, int64_t hi) {
  if (count == 0) return;
  files_skipped_ += count;
  Event e;
  e.kind = EventKind::kFilesSkippedTimeRange;
  e.level = level;
  e.lo = lo;
  e.hi = hi;
  e.count = count;
  Push(std::move(e));
}

void QueryExplain::RecordFileOpened(uint64_t file_number, int32_t level,
                                    int64_t lo, int64_t hi) {
  ++files_opened_;
  context_file_ = file_number;
  context_level_ = level;
  Event e;
  e.kind = EventKind::kFileOpened;
  e.level = level;
  e.file_number = file_number;
  e.lo = lo;
  e.hi = hi;
  e.count = 1;
  Push(std::move(e));
}

void QueryExplain::RecordBlockSkippedIndex(uint64_t count) {
  blocks_skipped_ += count;
  Event e;
  e.kind = EventKind::kBlockSkippedIndex;
  e.level = context_level_;
  e.file_number = context_file_;
  e.count = count;
  Push(std::move(e));
}

void QueryExplain::RecordBlockSkippedZoneMap(uint64_t count) {
  blocks_skipped_ += count;
  Event e;
  e.kind = EventKind::kBlockSkippedZoneMap;
  e.level = context_level_;
  e.file_number = context_file_;
  e.count = count;
  Push(std::move(e));
}

void QueryExplain::RecordBlockRead(uint64_t count) {
  blocks_read_ += count;
  Event e;
  e.kind = EventKind::kBlockRead;
  e.level = context_level_;
  e.file_number = context_file_;
  e.count = count;
  Push(std::move(e));
}

void QueryExplain::RecordBloomNegative(const std::string& series) {
  ++blooms_negative_;
  Event e;
  e.kind = EventKind::kBloomNegative;
  e.count = 1;
  e.detail = series;
  Push(std::move(e));
}

void QueryExplain::RecordSummaryWindowServed(int64_t ws, int64_t we,
                                             uint64_t summary_count) {
  summary_hits_ += summary_count;
  Event e;
  e.kind = EventKind::kSummaryWindowServed;
  e.lo = ws;
  e.hi = we;
  e.count = summary_count;
  Push(std::move(e));
}

void QueryExplain::RecordWindowFallback(int64_t ws, int64_t we,
                                        const char* reason) {
  ++windows_fallback_;
  Event e;
  e.kind = EventKind::kWindowFallback;
  e.lo = ws;
  e.hi = we;
  e.count = 1;
  e.detail = reason;
  Push(std::move(e));
}

void QueryExplain::RecordMemtableScan(uint64_t points) {
  Event e;
  e.kind = EventKind::kMemtableScan;
  e.count = points;
  Push(std::move(e));
}

std::string QueryExplain::ToJson() const {
  std::ostringstream out;
  out << "{\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i > 0) out << ",";
    out << "{\"kind\":\"" << KindName(e.kind) << "\"";
    if (e.level >= 0) out << ",\"level\":" << e.level;
    if (e.file_number != 0) out << ",\"file\":" << e.file_number;
    if (e.lo != 0 || e.hi != 0) {
      out << ",\"lo\":" << e.lo << ",\"hi\":" << e.hi;
    }
    out << ",\"count\":" << e.count;
    if (!e.detail.empty()) {
      out << ",\"detail\":\"" << EscapeJson(e.detail) << "\"";
    }
    out << "}";
  }
  out << "],\"dropped\":" << dropped_ << ",\"totals\":{"
      << "\"files_skipped\":" << files_skipped_
      << ",\"blocks_skipped\":" << blocks_skipped_
      << ",\"blooms_negative\":" << blooms_negative_
      << ",\"summary_hits\":" << summary_hits_
      << ",\"files_opened\":" << files_opened_
      << ",\"blocks_read\":" << blocks_read_
      << ",\"windows_fallback\":" << windows_fallback_ << "}}";
  return out.str();
}

std::string QueryExplain::ToText() const {
  std::ostringstream out;
  for (const Event& e : events_) {
    out << KindName(e.kind);
    if (e.level >= 0) out << " level=" << e.level;
    if (e.file_number != 0) out << " file=" << e.file_number;
    if (e.lo != 0 || e.hi != 0) out << " range=[" << e.lo << "," << e.hi
                                    << "]";
    out << " count=" << e.count;
    if (!e.detail.empty()) out << " (" << e.detail << ")";
    out << "\n";
  }
  if (dropped_ > 0) out << "... " << dropped_ << " events dropped\n";
  out << "totals: files_skipped=" << files_skipped_
      << " blocks_skipped=" << blocks_skipped_
      << " blooms_negative=" << blooms_negative_
      << " summary_hits=" << summary_hits_
      << " files_opened=" << files_opened_
      << " blocks_read=" << blocks_read_
      << " windows_fallback=" << windows_fallback_ << "\n";
  return out.str();
}

void QueryExplain::Clear() {
  events_.clear();
  dropped_ = 0;
  context_file_ = 0;
  context_level_ = -1;
  files_skipped_ = blocks_skipped_ = blooms_negative_ = summary_hits_ = 0;
  files_opened_ = blocks_read_ = windows_fallback_ = 0;
}

}  // namespace seplsm::storage
