#include "storage/integrity.h"

#include "storage/sstable.h"
#include "storage/wal.h"

namespace seplsm::storage {

TableReport VerifySSTable(Env* env, const std::string& path) {
  TableReport report;
  report.path = path;
  auto reader = SSTableReader::Open(env, path);
  if (!reader.ok()) {
    report.error = reader.status().ToString();
    return report;
  }
  report.blocks = (*reader)->block_count();
  std::vector<DataPoint> points;
  Status st = (*reader)->ReadAll(&points);
  if (!st.ok()) {
    report.error = st.ToString();
    return report;
  }
  report.point_count = points.size();
  if (points.size() != (*reader)->point_count()) {
    report.error = "footer point count does not match decoded points";
    return report;
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].generation_time < points[i - 1].generation_time) {
      report.error = "keys out of order inside table";
      return report;
    }
  }
  if (!points.empty() &&
      (points.front().generation_time != (*reader)->min_generation_time() ||
       points.back().generation_time != (*reader)->max_generation_time())) {
    report.error = "footer key range does not match contents";
    return report;
  }
  report.ok = true;
  return report;
}

Result<DatabaseReport> VerifyDatabase(Env* env, const std::string& dir) {
  DatabaseReport report;
  std::vector<std::string> children;
  SEPLSM_RETURN_IF_ERROR(env->ListDir(dir, &children));
  for (const auto& name : children) {
    if (name.size() < 4 || name.substr(name.size() - 4) != ".sst") continue;
    TableReport table = VerifySSTable(env, dir + "/" + name);
    if (table.ok) {
      report.total_points += table.point_count;
    } else {
      ++report.corrupt_tables;
    }
    report.tables.push_back(std::move(table));
  }
  std::string wal_path = dir + "/wal.log";
  if (env->FileExists(wal_path)) {
    report.wal_present = true;
    auto wal = ReadWal(env, wal_path, &report.wal_tail_truncated);
    if (wal.ok()) report.wal_records = wal->size();
  }
  return report;
}

}  // namespace seplsm::storage
