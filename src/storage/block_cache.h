#ifndef SEPLSM_STORAGE_BLOCK_CACHE_H_
#define SEPLSM_STORAGE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/point.h"
#include "telemetry/telemetry.h"

namespace seplsm::storage {

/// A decoded SSTable block pinned in memory. Shared between the cache and
/// in-flight reads, so eviction never invalidates a block a query is still
/// iterating.
struct CachedBlock {
  std::vector<DataPoint> points;

  /// Approximate memory footprint used for charge-based eviction.
  size_t Charge() const {
    return sizeof(CachedBlock) + points.capacity() * sizeof(DataPoint);
  }
};

/// Sharded LRU cache of decoded SSTable blocks with a fixed byte budget.
///
/// Keys are `(owner_id, file_number, block_offset)`. File numbers are only
/// unique within one engine directory, so each engine acquires a distinct
/// `owner_id` via `NewOwnerId()`; that lets `MultiSeriesDB` share a single
/// cache (one memory budget) across thousands of per-series engines without
/// key collisions. SSTables are immutable and file numbers are never reused,
/// so a cached block can never go stale; deleting a file only requires
/// dropping its entries (`EraseFile`) to release memory early.
///
/// The byte budget is split evenly across `num_shards` shards, each with its
/// own mutex + LRU list + hash map, so concurrent readers on different
/// shards never contend. Hit/miss/insert/evict counters are lock-free
/// atomics. A block whose charge exceeds a shard's budget is evicted again
/// by the very insert that admitted it (callers keep their shared_ptr, so
/// the read still succeeds); the cache never retains more than
/// `capacity_bytes` across shards once an insert returns.
class BlockCache {
 public:
  /// `capacity_bytes` is the total budget across all shards. `num_shards`
  /// is clamped to at least 1; powers of two are not required.
  explicit BlockCache(size_t capacity_bytes, size_t num_shards = 16);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns a distinct id for key-space isolation (one per engine).
  uint64_t NewOwnerId() {
    return next_owner_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Returns the cached block or nullptr; a hit moves the entry to the
  /// front of its shard's LRU list.
  std::shared_ptr<const CachedBlock> Lookup(uint64_t owner_id,
                                            uint64_t file_number,
                                            uint64_t offset);

  /// Inserts (or replaces) the block for the key, charging
  /// `block->Charge()` bytes and evicting LRU entries in the same shard
  /// until the shard is back under budget.
  void Insert(uint64_t owner_id, uint64_t file_number, uint64_t offset,
              std::shared_ptr<const CachedBlock> block);

  /// Drops every cached block of `(owner_id, file_number)` — called when a
  /// compaction deletes the file. O(entries in the file's shards).
  void EraseFile(uint64_t owner_id, uint64_t file_number);

  /// Drops everything (tests).
  void Clear();

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t shard_count() const { return shards_.size(); }

  /// Current total charge across shards (takes every shard lock).
  size_t TotalCharge() const;
  /// Current number of cached blocks across shards.
  size_t TotalEntries() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// hits / (hits + misses); 0 when the cache was never consulted.
  double HitRate() const;

  /// One-line human-readable summary (CLI `stats` output).
  std::string StatsString() const;

  /// Mirrors every subsequent hit/miss into `telemetry`'s
  /// block_cache_hits / block_cache_misses named counters (live-updating
  /// exports, vs. the engine Metrics counters which accumulate per query).
  /// Safe to call while lookups race: the hot path reads one atomic
  /// pointer, so unattached cost is a relaxed load.
  void AttachTelemetry(std::shared_ptr<telemetry::Telemetry> telemetry);

 private:
  struct Key {
    uint64_t owner_id;
    uint64_t file_number;
    uint64_t offset;

    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  struct Entry {
    Key key;
    std::shared_ptr<const CachedBlock> block;
    size_t charge;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t charge = 0;
  };

  Shard& ShardFor(const Key& key);

  /// Removes LRU entries until `shard.charge <= shard_capacity_`.
  /// Caller holds the shard mutex.
  void EvictOverBudget(Shard& shard);

  size_t capacity_bytes_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Keeps the registry the cached counter pointers live in alive
  /// (write-once under telemetry_mutex_; hot paths only read the atomics).
  std::mutex telemetry_mutex_;
  std::shared_ptr<telemetry::Telemetry> telemetry_;
  std::atomic<telemetry::Counter*> hit_counter_{nullptr};
  std::atomic<telemetry::Counter*> miss_counter_{nullptr};

  std::atomic<uint64_t> next_owner_id_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// How a reader addresses the cache: which cache, which owner key space,
/// which file. Default-constructed handle means "no cache" — the read path
/// is byte-for-byte the pre-cache behaviour.
struct BlockCacheHandle {
  BlockCache* cache = nullptr;
  uint64_t owner_id = 0;
  uint64_t file_number = 0;

  bool enabled() const { return cache != nullptr; }
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_BLOCK_CACHE_H_
