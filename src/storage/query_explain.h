#ifndef SEPLSM_STORAGE_QUERY_EXPLAIN_H_
#define SEPLSM_STORAGE_QUERY_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seplsm::storage {

/// Per-query decision trace (DESIGN.md §15): every pruning choice the read
/// path makes — files excluded by time-range metadata, blocks bypassed via
/// index ranges or zone maps, series Bloom rejections, aggregation windows
/// served from summaries, and the reason any window fell back to point
/// reads — recorded as a bounded event list plus aggregate counters.
///
/// The aggregates mirror `engine::PruningStats` field-for-field, so a test
/// (tests/explain_test.cc) can prove the explain trace is complete: the
/// counts recorded here must equal the PruningStats deltas of the same
/// query. Events past `max_events` are dropped (counted in
/// `dropped_events`) — the aggregates keep counting, so truncation loses
/// detail, never totals.
///
/// NOT thread-safe: one QueryExplain belongs to one query invocation.
/// Attach via `engine::QueryStats::explain` (the engine threads it into
/// `storage::ReadOptions::explain` for per-block outcomes).
class QueryExplain {
 public:
  enum class EventKind : uint8_t {
    kFilesSkippedTimeRange,  ///< files pruned before any I/O (count = files)
    kFileOpened,             ///< an SSTable consulted for this query
    kBlockSkippedIndex,      ///< block bypassed via index time range
    kBlockSkippedZoneMap,    ///< block bypassed via value zone map
    kBlockRead,              ///< block decoded (device read or cache hit)
    kBloomNegative,          ///< series Bloom filter answered "absent"
    kSummaryWindowServed,    ///< window answered purely from summaries
    kWindowFallback,         ///< window fell back to point reads (detail=why)
    kMemtableScan,           ///< buffered points merged (count = points)
  };
  static const char* KindName(EventKind kind);

  struct Event {
    EventKind kind = EventKind::kFileOpened;
    int32_t level = -1;        ///< tree level; -1 when not applicable
    uint64_t file_number = 0;  ///< 0 when not applicable
    int64_t lo = 0;            ///< the time range the event covers
    int64_t hi = 0;
    uint64_t count = 0;        ///< files/blocks/points/summaries involved
    std::string detail;        ///< fallback reason, series id, ...
  };

  explicit QueryExplain(size_t max_events = 4096)
      : max_events_(max_events) {}

  // --- Recording (engine + storage read paths) ---
  void RecordFilesSkipped(int32_t level, uint64_t count, int64_t lo,
                          int64_t hi);
  /// Also installs (file_number, level) as the context inherited by the
  /// per-block events the subsequent table read records.
  void RecordFileOpened(uint64_t file_number, int32_t level, int64_t lo,
                        int64_t hi);
  void RecordBlockSkippedIndex(uint64_t count = 1);
  void RecordBlockSkippedZoneMap(uint64_t count = 1);
  void RecordBlockRead(uint64_t count = 1);
  void RecordBloomNegative(const std::string& series);
  void RecordSummaryWindowServed(int64_t ws, int64_t we,
                                 uint64_t summary_count);
  void RecordWindowFallback(int64_t ws, int64_t we, const char* reason);
  void RecordMemtableScan(uint64_t points);

  // --- Inspection ---
  const std::vector<Event>& events() const { return events_; }
  uint64_t dropped_events() const { return dropped_; }

  /// Aggregates, maintained even past the event bound. The first four
  /// mirror engine::PruningStats (the explain-completeness invariant).
  uint64_t files_skipped() const { return files_skipped_; }
  uint64_t blocks_skipped() const { return blocks_skipped_; }
  uint64_t blooms_negative() const { return blooms_negative_; }
  uint64_t summary_hits() const { return summary_hits_; }
  uint64_t files_opened() const { return files_opened_; }
  uint64_t blocks_read() const { return blocks_read_; }
  uint64_t windows_fallback() const { return windows_fallback_; }

  /// `{"events":[{...}],"dropped":N,"totals":{...}}`.
  std::string ToJson() const;
  /// Human-readable rendering, one event per line (the CLI `explain`
  /// output).
  std::string ToText() const;

  void Clear();

 private:
  void Push(Event event);

  size_t max_events_;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;

  // Context installed by RecordFileOpened, inherited by block events.
  uint64_t context_file_ = 0;
  int32_t context_level_ = -1;

  uint64_t files_skipped_ = 0;
  uint64_t blocks_skipped_ = 0;
  uint64_t blooms_negative_ = 0;
  uint64_t summary_hits_ = 0;
  uint64_t files_opened_ = 0;
  uint64_t blocks_read_ = 0;
  uint64_t windows_fallback_ = 0;
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_QUERY_EXPLAIN_H_
