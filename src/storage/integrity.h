#ifndef SEPLSM_STORAGE_INTEGRITY_H_
#define SEPLSM_STORAGE_INTEGRITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "env/env.h"

namespace seplsm::storage {

/// Verification report for one SSTable.
struct TableReport {
  std::string path;
  bool ok = false;
  std::string error;          ///< first problem found, empty when ok
  uint64_t point_count = 0;   ///< decoded points (when readable)
  uint64_t blocks = 0;
};

/// Verification report for a whole database directory.
struct DatabaseReport {
  std::vector<TableReport> tables;
  uint64_t total_points = 0;
  uint64_t corrupt_tables = 0;
  bool wal_present = false;
  bool wal_tail_truncated = false;
  uint64_t wal_records = 0;

  bool ok() const { return corrupt_tables == 0; }
};

/// Deep-verifies one SSTable: footer magic, index CRC, every block CRC,
/// in-file key ordering, and footer/point-count consistency.
TableReport VerifySSTable(Env* env, const std::string& path);

/// Verifies every `*.sst` in `dir` plus the WAL (if any). IO errors while
/// listing the directory surface as a non-OK status; per-table corruption
/// is reported in the result instead.
Result<DatabaseReport> VerifyDatabase(Env* env, const std::string& dir);

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_INTEGRITY_H_
