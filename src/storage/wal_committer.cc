#include "storage/wal_committer.h"

#include <algorithm>
#include <cassert>

namespace seplsm::storage {

GroupCommitter::GroupCommitter() : GroupCommitter(Options()) {}

GroupCommitter::GroupCommitter(Options options)
    : options_(options), thread_([this] { CommitLoop(); }) {}

GroupCommitter::~GroupCommitter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  space_cv_.notify_all();
  thread_.join();
  assert(handles_.empty() && "engines must Deregister before destruction");
}

GroupCommitter::Handle* GroupCommitter::Register(WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mutex_);
  handles_.push_back(std::make_unique<Handle>(wal));
  return handles_.back().get();
}

void GroupCommitter::SetWriter(Handle* handle, WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(handle->pending_ == 0 && "SetWriter requires Barrier quiescence");
  handle->wal_ = wal;
}

void GroupCommitter::Deregister(Handle* handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return handle->pending_ == 0; });
  handles_.erase(std::find_if(handles_.begin(), handles_.end(),
                              [&](const std::unique_ptr<Handle>& h) {
                                return h.get() == handle;
                              }));
}

GroupCommitter::Ticket GroupCommitter::Enqueue(Handle* handle,
                                               const DataPoint& point) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [&] {
    return stop_ || queue_.size() < options_.max_queue_points;
  });
  if (stop_) return nullptr;
  Ticket ticket = std::make_shared<CommitWait>();
  queue_.push_back(Entry{handle, point, ticket});
  ++handle->pending_;
  worker_cv_.notify_one();
  return ticket;
}

GroupCommitter::Ticket GroupCommitter::EnqueueBatch(Handle* handle,
                                                    const DataPoint* points,
                                                    size_t count) {
  if (count == 0) return nullptr;
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [&] {
    return stop_ || queue_.size() < options_.max_queue_points;
  });
  if (stop_) return nullptr;
  Ticket ticket = std::make_shared<CommitWait>();
  // All entries share one ticket; pending_ and the done flag tolerate the
  // N-fold bookkeeping (done is idempotent, pending_ is ±N symmetric).
  // Pushing the whole batch under this single lock hold is what guarantees
  // one commit round covers it: the ticket must not complete while part of
  // the batch is still queued.
  for (size_t i = 0; i < count; ++i) {
    queue_.push_back(Entry{handle, points[i], ticket});
  }
  handle->pending_ += count;
  worker_cv_.notify_one();
  return ticket;
}

Status GroupCommitter::Wait(const Ticket& ticket) {
  if (ticket == nullptr) return Status::Aborted("wal committer stopped");
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return ticket->done; });
  return ticket->status;
}

Status GroupCommitter::Commit(Handle* handle, const DataPoint& point) {
  return Wait(Enqueue(handle, point));
}

void GroupCommitter::Barrier(Handle* handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return handle->pending_ == 0; });
}

void GroupCommitter::AttachTelemetry(
    std::shared_ptr<telemetry::Telemetry> telemetry) {
  if (!telemetry::Active(telemetry.get())) return;
  std::lock_guard<std::mutex> lock(mutex_);
  telemetry_ = std::move(telemetry);
  ctr_group_commits_ = telemetry_->registry().GetCounter("wal_group_commits");
  ctr_group_points_ = telemetry_->registry().GetCounter("wal_group_points");
  ctr_wal_fsyncs_ = telemetry_->registry().GetCounter("wal_fsyncs");
}

GroupCommitter::Stats GroupCommitter::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void GroupCommitter::CommitLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    worker_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Stragglers window: writers woken by the previous round's ack are
    // usually a few instructions from their next Enqueue. While the queue
    // is still growing, yield (bounded) so they board this round instead
    // of paying their own fsync — microseconds spent against the ~100µs
    // fsync they would otherwise each trigger. Matters most when cores
    // are scarce and the wakeup-to-enqueue path gets serialized.
    size_t seen = 0;
    for (int spin = 0; spin < 4 && queue_.size() > seen && !stop_; ++spin) {
      seen = queue_.size();
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
    }
    // Take the whole queue as one commit round: every point that arrived
    // while the previous fsync ran rides the next one — group size adapts
    // to contention with no tuning.
    std::vector<Entry> batch;
    batch.reserve(queue_.size());
    while (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    space_cv_.notify_all();
    lock.unlock();
    CommitBatch(&batch);
    lock.lock();
    for (Entry& e : batch) {
      --e.handle->pending_;
      e.wait->done = true;
    }
    done_cv_.notify_all();
  }
}

void GroupCommitter::CommitBatch(std::vector<Entry>* batch) {
  // Group entries per handle, preserving queue order within each group (the
  // WAL record order must match the order MemTable inserts were acked in).
  struct Group {
    Handle* handle;
    std::vector<DataPoint> points;
    std::vector<CommitWait*> waits;
  };
  std::vector<Group> groups;
  for (Entry& e : *batch) {
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.handle == e.handle) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(Group{e.handle, {}, {}});
      g = &groups.back();
    }
    g->points.push_back(e.point);
    g->waits.push_back(e.wait.get());
  }

  Stats delta;
  telemetry::Telemetry* telemetry;
  telemetry::Counter* ctr_commits;
  telemetry::Counter* ctr_points;
  telemetry::Counter* ctr_fsyncs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    telemetry = telemetry_.get();
    ctr_commits = ctr_group_commits_;
    ctr_points = ctr_group_points_;
    ctr_fsyncs = ctr_wal_fsyncs_;
  }

  for (Group& g : groups) {
    WalWriter* wal = g.handle->wal_;
    Status st;
    uint64_t bytes_before = 0;
    uint64_t records = 0;
    if (wal == nullptr) {
      st = Status::IOError("wal committer: handle has no writer");
    } else {
      bytes_before = wal->bytes_written();
      // One record per max_record_points chunk, then a single fsync for
      // the whole group.
      for (size_t off = 0; st.ok() && off < g.points.size();
           off += options_.max_record_points) {
        size_t n =
            std::min(options_.max_record_points, g.points.size() - off);
        st = wal->AppendBatch(g.points.data() + off, n);
        if (st.ok()) ++records;
      }
      if (st.ok()) {
        const int64_t sync_start = options_.clock->NowNanos();
        st = wal->Sync();
        const int64_t sync_end = options_.clock->NowNanos();
        if (telemetry != nullptr) {
          telemetry->RecordSpan(telemetry::SpanType::kWalSync,
                                /*series_id=*/0, sync_start, sync_end,
                                /*points=*/g.points.size(),
                                /*bytes=*/wal->bytes_written() - bytes_before);
        }
      }
    }
    for (size_t i = 0; i < g.waits.size(); ++i) g.waits[i]->status = st;
    ++delta.groups;
    delta.records += records;
    delta.max_group_points =
        std::max(delta.max_group_points, static_cast<uint64_t>(g.points.size()));
    if (st.ok()) {
      ++delta.syncs;
      delta.commits += g.points.size();
      delta.durable_bytes += wal->bytes_written() - bytes_before;
      if (ctr_commits != nullptr) {
        ctr_commits->Add(1);
        ctr_points->Add(g.points.size());
        ctr_fsyncs->Add(1);
      }
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  stats_.commits += delta.commits;
  stats_.syncs += delta.syncs;
  stats_.groups += delta.groups;
  stats_.records += delta.records;
  stats_.durable_bytes += delta.durable_bytes;
  stats_.max_group_points =
      std::max(stats_.max_group_points, delta.max_group_points);
}

}  // namespace seplsm::storage
