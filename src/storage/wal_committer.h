#ifndef SEPLSM_STORAGE_WAL_COMMITTER_H_
#define SEPLSM_STORAGE_WAL_COMMITTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/point.h"
#include "common/status.h"
#include "storage/wal.h"
#include "telemetry/telemetry.h"

namespace seplsm::storage {

/// Group commit for write-ahead logs (ROADMAP item 1; the `group_commit()`
/// loop pattern): concurrent appends — from many threads and many series —
/// enqueue their point and wait; a dedicated commit thread drains the queue,
/// writes ONE multi-point CRC-framed record per WAL, issues ONE fsync per
/// WAL, and wakes every waiter with the durability verdict. At N concurrent
/// writers that is ~1/N of the fsyncs of sync-every-append for the same
/// guarantee: an OK Commit means the point is on the device.
///
/// Shared across `MultiSeriesDB` through `engine::Options::wal_committer`
/// exactly like the job scheduler and telemetry hubs: engines register a
/// `Handle` carrying their `WalWriter`, so one commit round can cover
/// several series' logs (points are grouped per handle; each log still gets
/// its own record + fsync, but waiters overlap instead of serializing).
///
/// Usage from an engine (see TsEngine::Append):
///   Ticket t = committer->Enqueue(handle, point);   // under engine mutex
///   ... insert into MemTable, release engine mutex ...
///   Status st = committer->Wait(t);                 // outside engine mutex
/// Enqueue order equals WAL record order, so the log is consistent with
/// MemTable contents; waiting outside the engine mutex is what lets other
/// writers pile into the same commit round.
///
/// Thread-safe. The committer never takes an engine mutex, so engines may
/// call every method while holding theirs.
/// One waiter's slot in a commit round: completed (under the committer's
/// mutex) with the round's durability verdict. Shared between the enqueuing
/// thread and the commit thread, hence the shared_ptr Ticket.
struct CommitWait {
  bool done = false;
  Status status;
};

class GroupCommitter {
 public:
  struct Options {
    /// Backpressure: Enqueue blocks while this many points are queued.
    size_t max_queue_points = 4096;
    /// Cap on points per WAL record (a commit round exceeding it writes
    /// multiple records before the single fsync).
    size_t max_record_points = 1024;
    /// Clock for fsync-latency spans (not owned).
    Clock* clock = SystemClock::Default();
  };

  /// Cumulative committer statistics (all monotone).
  struct Stats {
    uint64_t commits = 0;        ///< points acknowledged durable
    uint64_t syncs = 0;          ///< fsyncs issued
    uint64_t groups = 0;         ///< per-handle groups written
    uint64_t records = 0;        ///< WAL records written
    uint64_t max_group_points = 0;  ///< largest single group
    uint64_t durable_bytes = 0;  ///< WAL bytes covered by successful fsyncs
  };

  class Handle;

  /// A waiter's slot in a commit round. Obtained from Enqueue, redeemed by
  /// Wait exactly once.
  using Ticket = std::shared_ptr<CommitWait>;

  GroupCommitter();  // default Options
  explicit GroupCommitter(Options options);

  /// Joins the commit thread. Every handle must be deregistered first.
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Registers a WAL with the committer. The writer must stay valid until
  /// SetWriter replaces it (under Barrier quiescence) or Deregister.
  Handle* Register(WalWriter* wal);

  /// Swaps the handle's writer (WAL rotation). The caller must hold its own
  /// write lock and have Barriered first, so no round is touching the old
  /// writer and no entry for this handle is queued.
  void SetWriter(Handle* handle, WalWriter* wal);

  /// Barrier + removes the handle. The Handle pointer is dead afterwards.
  void Deregister(Handle* handle);

  /// Queues one point for the handle's WAL and returns the ticket to wait
  /// on. Blocks (briefly) while the queue is at max_queue_points. Returns a
  /// null ticket only when the committer is shutting down.
  Ticket Enqueue(Handle* handle, const DataPoint& point);

  /// Queues `count` points under ONE lock hold with ONE shared ticket — the
  /// whole batch lands in the same commit round (CommitLoop drains the
  /// entire queue per round, so entries pushed together are never split
  /// across fsyncs) and the caller pays one Enqueue/Wait pair regardless of
  /// batch size. Blocks until the queue has room for at least one point,
  /// then admits the whole batch (bounded overshoot of max_queue_points by
  /// one batch, so a batch larger than the queue cap cannot deadlock).
  /// Returns null on shutdown or when count == 0.
  Ticket EnqueueBatch(Handle* handle, const DataPoint* points, size_t count);

  /// Blocks until the ticket's commit round finished; returns the round's
  /// durability verdict (the fsync Status on failure).
  Status Wait(const Ticket& ticket);

  /// Enqueue + Wait for callers without their own lock ordering concerns.
  Status Commit(Handle* handle, const DataPoint& point);

  /// Blocks until no queued or in-flight entry references `handle`. With
  /// the caller holding its own write lock (so nothing new is enqueued),
  /// the handle's writer is untouchable after this returns — the rotation
  /// precondition.
  void Barrier(Handle* handle);

  /// Wires fsync spans (SpanType::kWalSync) and committer counters into a
  /// telemetry hub. Idempotent per hub; pass the hub shared by the engines.
  void AttachTelemetry(std::shared_ptr<telemetry::Telemetry> telemetry);

  Stats GetStats() const;

 private:
  struct Entry {
    Handle* handle;
    DataPoint point;
    Ticket wait;
  };

  void CommitLoop();
  /// Writes + fsyncs one batch of entries (called without mutex_ held),
  /// then completes their tickets.
  void CommitBatch(std::vector<Entry>* batch);

  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable worker_cv_;   ///< wakes the commit thread
  std::condition_variable done_cv_;     ///< wakes waiters + Barrier
  std::condition_variable space_cv_;    ///< wakes producers blocked on queue
  std::deque<Entry> queue_;
  bool stop_ = false;
  Stats stats_;

  /// Telemetry wiring (set once by AttachTelemetry; read by the thread).
  std::shared_ptr<telemetry::Telemetry> telemetry_;
  telemetry::Counter* ctr_group_commits_ = nullptr;
  telemetry::Counter* ctr_group_points_ = nullptr;
  telemetry::Counter* ctr_wal_fsyncs_ = nullptr;

  std::vector<std::unique_ptr<Handle>> handles_;
  std::thread thread_;
};

/// Per-registrant state: the WAL to write and the count of entries queued
/// or in flight (Barrier waits for it to hit zero). Opaque outside the
/// committer.
class GroupCommitter::Handle {
 public:
  explicit Handle(WalWriter* wal) : wal_(wal) {}

 private:
  friend class GroupCommitter;
  WalWriter* wal_;
  size_t pending_ = 0;  ///< guarded by the committer's mutex_
};

}  // namespace seplsm::storage

#endif  // SEPLSM_STORAGE_WAL_COMMITTER_H_
