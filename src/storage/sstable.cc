#include "storage/sstable.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/coding.h"
#include "storage/iterator.h"
#include "storage/query_explain.h"

namespace seplsm::storage {

std::string TableFilePath(const std::string& dir, uint64_t file_number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%08llu.sst",
                static_cast<unsigned long long>(file_number));
  return dir + buf;
}

namespace {

// Window index by floored division, correct for negative times too.
int64_t WindowStart(int64_t t, int64_t window) {
  int64_t q = t / window;
  if (t % window != 0 && t < 0) --q;
  return q * window;
}

}  // namespace

SSTableWriter::SSTableWriter(Env* env, std::string path,
                             size_t points_per_block,
                             format::ValueEncoding encoding,
                             format::TableMetadataConfig meta)
    : env_(env), path_(std::move(path)), points_per_block_(points_per_block),
      block_(encoding), meta_config_(meta) {
  assert(points_per_block_ > 0);
  open_status_ = env_->NewWritableFile(path_, &file_);
}

void SSTableWriter::AccumulateSummary(const DataPoint& point) {
  const int64_t start = WindowStart(point.generation_time,
                                    meta_config_.summary_window);
  if (summary_open_ && start != cur_summary_.window_start) {
    metadata_.summaries.push_back(cur_summary_);
    summary_open_ = false;
  }
  if (!summary_open_) {
    cur_summary_ = format::WindowSummary();
    cur_summary_.window_start = start;
    cur_summary_.min = point.value;
    cur_summary_.max = point.value;
    cur_summary_.first_time = point.generation_time;
    cur_summary_.first_value = point.value;
    summary_open_ = true;
  }
  ++cur_summary_.count;
  cur_summary_.sum += point.value;
  if (point.value < cur_summary_.min) cur_summary_.min = point.value;
  if (point.value > cur_summary_.max) cur_summary_.max = point.value;
  cur_summary_.last_time = point.generation_time;
  cur_summary_.last_value = point.value;
}

Status SSTableWriter::Add(const DataPoint& point) {
  SEPLSM_RETURN_IF_ERROR(open_status_);
  if (points_added_ == 0) {
    file_min_tg_ = point.generation_time;
  } else if (point.generation_time < file_max_tg_) {
    return Status::InvalidArgument("SSTableWriter: points out of order");
  }
  file_max_tg_ = point.generation_time;
  if (block_.empty()) {
    block_min_tg_ = point.generation_time;
    block_min_value_ = point.value;
    block_max_value_ = point.value;
  } else {
    if (point.value < block_min_value_) block_min_value_ = point.value;
    if (point.value > block_max_value_) block_max_value_ = point.value;
  }
  block_max_tg_ = point.generation_time;
  if (meta_config_.enabled && meta_config_.summary_window > 0) {
    AccumulateSummary(point);
  }
  block_.Add(point);
  ++points_added_;
  if (block_.count() >= points_per_block_) {
    SEPLSM_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::OK();
}

Status SSTableWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  uint64_t count = block_.count();
  std::string data = block_.Finish();
  format::BlockIndexEntry entry;
  entry.min_generation_time = block_min_tg_;
  entry.max_generation_time = block_max_tg_;
  entry.offset = offset_;
  entry.size = data.size();
  entry.point_count = count;
  SEPLSM_RETURN_IF_ERROR(file_->Append(data));
  offset_ += data.size();
  index_.push_back(entry);
  if (meta_config_.enabled) {
    format::BlockZoneMap zone;
    zone.min_value = block_min_value_;
    zone.max_value = block_max_value_;
    metadata_.zone_maps.push_back(zone);
  }
  ++block_count_;
  return Status::OK();
}

Result<FileMetadata> SSTableWriter::Finish() {
  SEPLSM_RETURN_IF_ERROR(open_status_);
  if (points_added_ == 0) {
    return Status::InvalidArgument("SSTableWriter: empty table");
  }
  SEPLSM_RETURN_IF_ERROR(FlushBlock());
  format::Footer footer;
  std::string meta_data;
  if (meta_config_.enabled) {
    if (summary_open_) {
      metadata_.summaries.push_back(cur_summary_);
      summary_open_ = false;
    }
    metadata_.summary_window =
        meta_config_.summary_window > 0 ? meta_config_.summary_window : 0;
    // Summaries only pay when a window folds several points; on sparse
    // series (fewer than ~4 points per touched window) the section would
    // rival the data blocks in size while saving almost no decoding. Drop
    // them and keep only the zone maps; summary_window = 0 tells readers
    // "no summary coverage", so aggregation falls back to point reads.
    if (metadata_.summaries.size() * 4 > points_added_) {
      metadata_.summaries.clear();
      metadata_.summary_window = 0;
    }
    format::EncodeTableMetadata(metadata_, &meta_data);
    footer.meta_offset = offset_;
    footer.meta_size = meta_data.size();
    footer.has_metadata = true;
    SEPLSM_RETURN_IF_ERROR(file_->Append(meta_data));
    offset_ += meta_data.size();
  }
  std::string index_data;
  format::EncodeIndex(index_, &index_data);
  SEPLSM_RETURN_IF_ERROR(file_->Append(index_data));
  footer.index_offset = offset_;
  footer.index_size = index_data.size();
  footer.point_count = points_added_;
  footer.min_generation_time = file_min_tg_;
  footer.max_generation_time = file_max_tg_;
  std::string footer_data;
  format::EncodeFooter(footer, &footer_data);
  SEPLSM_RETURN_IF_ERROR(file_->Append(footer_data));
  SEPLSM_RETURN_IF_ERROR(file_->Sync());
  SEPLSM_RETURN_IF_ERROR(file_->Close());
  // The file's bytes are durable, but its directory entry is not until the
  // parent directory is fsynced. Without this a crash after a compaction
  // could drop the *new* tables while the old ones were already unlinked —
  // losing points whose WAL records were retired at an earlier checkpoint.
  size_t slash = path_.find_last_of('/');
  if (slash != std::string::npos) {
    SEPLSM_RETURN_IF_ERROR(env_->SyncDir(path_.substr(0, slash)));
  }

  FileMetadata meta;
  meta.path = path_;
  meta.point_count = points_added_;
  meta.file_bytes = offset_ + index_data.size() + footer_data.size();
  meta.min_generation_time = file_min_tg_;
  meta.max_generation_time = file_max_tg_;
  return meta;
}

Result<std::unique_ptr<SSTableReader>> SSTableReader::Open(
    Env* env, const std::string& path, BlockCacheHandle block_cache) {
  std::unique_ptr<RandomAccessFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  uint64_t size = file->Size();
  if (size < format::kFooterSize) {
    return Status::Corruption(path + ": file smaller than footer");
  }
  // The last 8 bytes carry the magic that picks the footer version, so v1
  // files — and v2-era files written with metadata disabled — parse exactly
  // as before.
  size_t tail_size = size >= format::kFooterV2Size ? format::kFooterV2Size
                                                   : format::kFooterSize;
  std::string tail;
  SEPLSM_RETURN_IF_ERROR(file->Read(size - tail_size, tail_size, &tail));
  uint64_t magic =
      DecodeFixed64(tail.data() + tail.size() - 8);
  size_t footer_size = magic == format::kTableMagicV2 ? format::kFooterV2Size
                                                      : format::kFooterSize;
  if (footer_size > tail.size()) {
    return Status::Corruption(path + ": file smaller than footer");
  }
  format::Footer footer;
  SEPLSM_RETURN_IF_ERROR(format::DecodeFooter(
      std::string_view(tail).substr(tail.size() - footer_size), &footer));
  if (footer.index_offset + footer.index_size + footer_size != size) {
    return Status::Corruption(path + ": footer does not match file size");
  }
  format::TableMetadata metadata;
  if (footer.has_metadata) {
    if (footer.meta_offset + footer.meta_size != footer.index_offset) {
      return Status::Corruption(path + ": metadata does not abut index");
    }
    std::string meta_data;
    SEPLSM_RETURN_IF_ERROR(
        file->Read(footer.meta_offset, footer.meta_size, &meta_data));
    if (meta_data.size() != footer.meta_size) {
      return Status::Corruption(path + ": short metadata read");
    }
    SEPLSM_RETURN_IF_ERROR(format::DecodeTableMetadata(meta_data, &metadata));
  }
  std::string index_data;
  SEPLSM_RETURN_IF_ERROR(
      file->Read(footer.index_offset, footer.index_size, &index_data));
  std::vector<format::BlockIndexEntry> index;
  SEPLSM_RETURN_IF_ERROR(format::DecodeIndex(index_data, &index));
  if (footer.has_metadata && metadata.zone_maps.size() != index.size()) {
    return Status::Corruption(path + ": zone maps do not match block count");
  }
  return std::unique_ptr<SSTableReader>(new SSTableReader(
      std::move(file), footer, std::move(index), std::move(metadata),
      footer.has_metadata, block_cache));
}

Status SSTableReader::ReadAll(std::vector<DataPoint>* out) const {
  return ReadRange(footer_.min_generation_time, footer_.max_generation_time,
                   out, nullptr);
}

Result<std::shared_ptr<const CachedBlock>> SSTableReader::ReadBlock(
    const format::BlockIndexEntry& entry, ReadStats* stats,
    bool fill_cache) const {
  if (block_cache_.enabled()) {
    auto cached = block_cache_.cache->Lookup(
        block_cache_.owner_id, block_cache_.file_number, entry.offset);
    if (cached != nullptr) {
      if (stats != nullptr) ++stats->cache_hits;
      return cached;
    }
    if (stats != nullptr) ++stats->cache_misses;
  }
  std::string data;
  SEPLSM_RETURN_IF_ERROR(file_->Read(entry.offset, entry.size, &data));
  if (data.size() != entry.size) {
    return Status::Corruption("short block read");
  }
  auto block = std::make_shared<CachedBlock>();
  SEPLSM_RETURN_IF_ERROR(format::DecodeBlock(data, &block->points));
  if (stats != nullptr) {
    stats->device_bytes_read += data.size();
    ++stats->blocks_read;
  }
  // Insert only after a clean read + CRC check, so an IOError or corrupt
  // block can never poison the cache. One-pass scans (fill_cache == false)
  // never insert: their blocks will not be re-read, and inserting them
  // would evict blocks hot queries depend on.
  if (block_cache_.enabled() && fill_cache) {
    block_cache_.cache->Insert(block_cache_.owner_id,
                               block_cache_.file_number, entry.offset, block);
  }
  return std::shared_ptr<const CachedBlock>(std::move(block));
}

Status SSTableReader::ReadRange(int64_t lo, int64_t hi,
                                std::vector<DataPoint>* out,
                                ReadStats* stats,
                                QueryExplain* explain) const {
  for (const auto& entry : index_) {
    if (entry.min_generation_time > hi || entry.max_generation_time < lo) {
      if (stats != nullptr) ++stats->blocks_skipped;
      if (explain != nullptr) explain->RecordBlockSkippedIndex();
      continue;
    }
    auto block = ReadBlock(entry, stats);
    if (!block.ok()) return block.status();
    if (explain != nullptr) explain->RecordBlockRead();
    if (stats != nullptr) stats->points_scanned += (*block)->points.size();
    for (const auto& p : (*block)->points) {
      if (p.generation_time >= lo && p.generation_time <= hi) {
        out->push_back(p);
      }
    }
  }
  return Status::OK();
}

Status WriteSortedPointsAsTables(Env* env, const std::string& dir,
                                 const std::vector<DataPoint>& points,
                                 size_t points_per_file,
                                 size_t points_per_block,
                                 uint64_t* next_file_no,
                                 std::vector<FileMetadata>* files,
                                 format::ValueEncoding encoding,
                                 format::TableMetadataConfig meta) {
  VectorIterator input(&points);
  return WriteSortedPointsAsTables(env, dir, &input, points_per_file,
                                   points_per_block, next_file_no, files,
                                   encoding, meta);
}

}  // namespace seplsm::storage
