#include "storage/wal.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace seplsm::storage {

namespace {

void EncodePoint(const DataPoint& point, std::string* payload) {
  PutVarint64Signed(payload, point.generation_time);
  PutVarint64Signed(payload, point.arrival_time - point.generation_time);
  uint64_t bits;
  std::memcpy(&bits, &point.value, sizeof(bits));
  PutFixed64(payload, bits);
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path) {
  std::unique_ptr<WritableFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), 0));
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenAppend(
    Env* env, const std::string& path) {
  uint64_t existing = 0;
  if (env->FileExists(path)) {
    SEPLSM_RETURN_IF_ERROR(env->GetFileSize(path, &existing));
  }
  std::unique_ptr<WritableFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewAppendableFile(path, &file));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), existing));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) (void)file_->Close();
}

Status WalWriter::Append(const DataPoint& point) {
  return AppendBatch(&point, 1);
}

Status WalWriter::AppendBatch(const DataPoint* points, size_t count) {
  if (count == 0) return Status::OK();
  if (file_ == nullptr) return Status::IOError("wal writer closed");
  std::string payload;
  payload.reserve(count * 20);
  for (size_t i = 0; i < count; ++i) EncodePoint(points[i], &payload);
  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, crc32c::Mask(crc32c::Value(payload)));
  record += payload;
  SEPLSM_RETURN_IF_ERROR(file_->Append(record));
  bytes_written_.fetch_add(record.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::IOError("wal writer closed");
  SEPLSM_RETURN_IF_ERROR(file_->Flush());
  return file_->Sync();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  return st;
}

Result<std::vector<DataPoint>> ReadWal(Env* env, const std::string& path,
                                       bool* tail_truncated) {
  if (tail_truncated != nullptr) *tail_truncated = false;
  std::vector<DataPoint> points;
  if (!env->FileExists(path)) return points;
  std::unique_ptr<RandomAccessFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  std::string contents;
  SEPLSM_RETURN_IF_ERROR(file->Read(0, file->Size(), &contents));
  std::string_view rest = contents;
  while (!rest.empty()) {
    uint32_t len, stored_crc;
    if (!GetFixed32(&rest, &len) || !GetFixed32(&rest, &stored_crc) ||
        rest.size() < len) {
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;  // torn tail
    }
    std::string_view payload = rest.substr(0, len);
    rest.remove_prefix(len);
    if (crc32c::Value(payload) != crc32c::Unmask(stored_crc)) {
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;  // corrupt tail
    }
    // One or more point encodings back to back; a record whose CRC passed
    // but whose body does not decode cleanly still stops replay (encoder
    // bug or version skew, not a torn write — but the safe reaction is the
    // same: trust nothing at or past it).
    std::string_view body = payload;
    std::vector<DataPoint> batch;
    bool bad = false;
    while (!body.empty()) {
      DataPoint p;
      int64_t delay;
      uint64_t bits;
      if (!GetVarint64Signed(&body, &p.generation_time) ||
          !GetVarint64Signed(&body, &delay) || !GetFixed64(&body, &bits)) {
        bad = true;
        break;
      }
      p.arrival_time = p.generation_time + delay;
      std::memcpy(&p.value, &bits, sizeof(p.value));
      batch.push_back(p);
    }
    if (bad) {
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;
    }
    points.insert(points.end(), batch.begin(), batch.end());
  }
  return points;
}

}  // namespace seplsm::storage
