#include "storage/wal.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace seplsm::storage {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path) {
  std::unique_ptr<WritableFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  // Make the (empty) truncation visible immediately, so a rotation is
  // durable even before the first record lands.
  SEPLSM_RETURN_IF_ERROR(file->Flush());
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

Status WalWriter::Append(const DataPoint& point) {
  std::string payload;
  PutVarint64Signed(&payload, point.generation_time);
  PutVarint64Signed(&payload, point.arrival_time - point.generation_time);
  uint64_t bits;
  std::memcpy(&bits, &point.value, sizeof(bits));
  PutFixed64(&payload, bits);

  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, crc32c::Mask(crc32c::Value(payload)));
  record += payload;
  SEPLSM_RETURN_IF_ERROR(file_->Append(record));
  bytes_written_ += record.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  SEPLSM_RETURN_IF_ERROR(file_->Flush());
  return file_->Sync();
}

Result<std::vector<DataPoint>> ReadWal(Env* env, const std::string& path,
                                       bool* tail_truncated) {
  if (tail_truncated != nullptr) *tail_truncated = false;
  std::vector<DataPoint> points;
  if (!env->FileExists(path)) return points;
  std::unique_ptr<RandomAccessFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  std::string contents;
  SEPLSM_RETURN_IF_ERROR(file->Read(0, file->Size(), &contents));
  std::string_view rest = contents;
  while (!rest.empty()) {
    uint32_t len, stored_crc;
    if (!GetFixed32(&rest, &len) || !GetFixed32(&rest, &stored_crc) ||
        rest.size() < len) {
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;  // torn tail
    }
    std::string_view payload = rest.substr(0, len);
    rest.remove_prefix(len);
    if (crc32c::Value(payload) != crc32c::Unmask(stored_crc)) {
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;  // corrupt tail
    }
    DataPoint p;
    int64_t delay;
    uint64_t bits;
    std::string_view body = payload;
    if (!GetVarint64Signed(&body, &p.generation_time) ||
        !GetVarint64Signed(&body, &delay) || !GetFixed64(&body, &bits) ||
        !body.empty()) {
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;
    }
    p.arrival_time = p.generation_time + delay;
    std::memcpy(&p.value, &bits, sizeof(p.value));
    points.push_back(p);
  }
  return points;
}

}  // namespace seplsm::storage
