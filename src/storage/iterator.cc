#include "storage/iterator.h"

#include <cassert>
#include <utility>

#include "storage/query_explain.h"

namespace seplsm::storage {

// --- SSTableIterator ---

SSTableIterator::SSTableIterator(const SSTableReader* table,
                                 ReadOptions options)
    : table_(table), options_(options) {
  SkipToNextInRange();
}

SSTableIterator::SSTableIterator(std::shared_ptr<const SSTableReader> table,
                                 ReadOptions options)
    : owner_(std::move(table)), table_(owner_.get()), options_(options) {
  SkipToNextInRange();
}

bool SSTableIterator::Valid() const {
  return status_.ok() && !done_ && block_ != nullptr &&
         pos_ < block_->points.size();
}

const DataPoint& SSTableIterator::point() const {
  assert(Valid());
  return block_->points[pos_];
}

void SSTableIterator::Next() {
  assert(Valid());
  ++pos_;
  SkipToNextInRange();
}

void SSTableIterator::SkipToNextInRange() {
  const bool value_prune =
      options_.has_value_bounds() && table_->has_metadata() &&
      !table_->metadata().zone_maps.empty();
  while (status_.ok() && !done_) {
    if (block_ != nullptr) {
      while (pos_ < block_->points.size()) {
        const DataPoint& p = block_->points[pos_];
        if (p.generation_time > options_.hi) {
          // Points are sorted: nothing later can be back in range.
          done_ = true;
          block_.reset();
          return;
        }
        if (p.generation_time >= options_.lo &&
            p.value >= options_.value_lo && p.value <= options_.value_hi) {
          return;
        }
        ++pos_;
      }
      block_.reset();  // exhausted: release before loading the next one
    }
    const auto& index = table_->index();
    while (entry_ < index.size()) {
      if (index[entry_].max_generation_time < options_.lo) {
        // Skipped via the index: never read, never a cache lookup.
        if (options_.stats != nullptr) ++options_.stats->blocks_skipped;
        if (options_.explain != nullptr) {
          options_.explain->RecordBlockSkippedIndex();
        }
        ++entry_;
        continue;
      }
      if (index[entry_].min_generation_time > options_.hi) break;
      if (value_prune) {
        const format::BlockZoneMap& zone =
            table_->metadata().zone_maps[entry_];
        if (zone.min_value > options_.value_hi ||
            zone.max_value < options_.value_lo) {
          // Zone map proves no value in this block can match.
          if (options_.stats != nullptr) ++options_.stats->blocks_skipped;
          if (options_.explain != nullptr) {
            options_.explain->RecordBlockSkippedZoneMap();
          }
          ++entry_;
          continue;
        }
      }
      break;
    }
    if (entry_ >= index.size() ||
        index[entry_].min_generation_time > options_.hi) {
      done_ = true;
      return;
    }
    auto block =
        table_->ReadBlock(index[entry_], options_.stats, options_.fill_cache);
    if (!block.ok()) {
      status_ = block.status();
      return;
    }
    if (options_.explain != nullptr) options_.explain->RecordBlockRead();
    block_ = std::move(block).value();
    if (options_.stats != nullptr) {
      options_.stats->points_scanned += block_->points.size();
    }
    pos_ = 0;
    ++entry_;
  }
}

// --- ConcatenatingIterator ---

ConcatenatingIterator::ConcatenatingIterator(
    std::vector<std::unique_ptr<PointIterator>> children)
    : children_(std::move(children)) {
  Settle();
}

ConcatenatingIterator::ConcatenatingIterator(
    std::vector<ChildFactory> factories)
    : factories_(std::move(factories)) {
  children_.resize(factories_.size());
  Settle();
}

void ConcatenatingIterator::Next() {
  assert(Valid());
  last_time_ = children_[cur_]->point().generation_time;
  has_last_ = true;
  children_[cur_]->Next();
  Settle();
}

void ConcatenatingIterator::Settle() {
  while (status_.ok() && cur_ < children_.size()) {
    if (children_[cur_] == nullptr && cur_ < factories_.size()) {
      children_[cur_] = factories_[cur_]();
      factories_[cur_] = nullptr;  // the open table dies with the child
    }
    PointIterator* it = children_[cur_].get();
    if (it == nullptr) {  // factory pruned this child entirely
      ++cur_;
      continue;
    }
    if (it->Valid()) {
      if (has_last_ && it->point().generation_time < last_time_) {
        status_ = Status::Internal(
            "ConcatenatingIterator: children out of order");
      }
      return;
    }
    if (!it->status().ok()) {
      status_ = it->status();
      return;
    }
    // Release the exhausted child before opening the next one: at most one
    // table/iterator pair stays resident in the lazy form.
    children_[cur_].reset();
    ++cur_;
  }
}

// --- MergingIterator ---

MergingIterator::MergingIterator(
    std::vector<std::unique_ptr<PointIterator>> children)
    : children_(std::move(children)) {
  for (size_t i = 0; i < children_.size() && status_.ok(); ++i) {
    PushChild(i);
  }
}

void MergingIterator::PushChild(size_t child) {
  PointIterator* it = children_[child].get();
  if (it->Valid()) {
    heap_.push({it->point().generation_time, child});
  } else if (!it->status().ok()) {
    status_ = it->status();
  }
}

void MergingIterator::Next() {
  assert(Valid());
  // Advance every child sitting at the emitted time: the winner moves on,
  // the losers' duplicates are dropped (newer-wins dedup).
  const int64_t t = heap_.top().time;
  while (status_.ok() && !heap_.empty() && heap_.top().time == t) {
    size_t child = heap_.top().child;
    heap_.pop();
    children_[child]->Next();
    PushChild(child);
  }
}

// --- Iterator-driven table writing ---

Status WriteSortedPointsAsTables(Env* env, const std::string& dir,
                                 PointIterator* input, size_t points_per_file,
                                 size_t points_per_block,
                                 uint64_t* next_file_no,
                                 std::vector<FileMetadata>* files,
                                 format::ValueEncoding encoding,
                                 format::TableMetadataConfig meta_config,
                                 const std::atomic<bool>* cancel) {
  assert(points_per_file > 0 && points_per_block > 0);
  const size_t base = files->size();
  std::vector<std::string> created;
  // Any failure — I/O error, source error, cancellation — must not leave
  // partial .sst files behind: recovery opens every table in the directory
  // and would fail on a truncated one. Best-effort unlink of everything
  // this call created, after the writer for the current file is destroyed
  // (a live writer could re-publish its buffer on some Envs).
  auto fail = [&](Status st) {
    files->resize(base);
    for (const auto& path : created) env->RemoveFile(path);
    return st;
  };
  auto canceled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  while (input->Valid()) {
    uint64_t file_no = (*next_file_no)++;
    std::string path = TableFilePath(dir, file_no);
    created.push_back(path);
    auto meta = [&]() -> Result<FileMetadata> {
      SSTableWriter writer(env, path, points_per_block, encoding,
                           meta_config);
      size_t taken = 0;
      while (input->Valid() && taken < points_per_file) {
        // Cooperative cancellation at block granularity: a shutting-down
        // engine aborts a large merge within one block's worth of work.
        if (taken % points_per_block == 0 && canceled()) {
          return Status::Aborted("table write canceled");
        }
        SEPLSM_RETURN_IF_ERROR(writer.Add(input->point()));
        ++taken;
        input->Next();
      }
      SEPLSM_RETURN_IF_ERROR(input->status());
      return writer.Finish();
    }();
    if (!meta.ok()) return fail(meta.status());
    meta.value().file_number = file_no;
    files->push_back(std::move(meta).value());
  }
  return input->status();
}

std::unique_ptr<PointIterator> SSTableReader::NewIterator(
    ReadOptions options) const {
  return std::make_unique<SSTableIterator>(this, options);
}

}  // namespace seplsm::storage
