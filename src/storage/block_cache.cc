#include "storage/block_cache.h"

#include <algorithm>
#include <sstream>

namespace seplsm::storage {

namespace {

/// 64-bit mix (splitmix64 finalizer) — cheap and good enough to spread
/// sequential file numbers / offsets across shards and hash buckets.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

size_t BlockCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Mix64(k.owner_id);
  h = Mix64(h ^ k.file_number);
  h = Mix64(h ^ k.offset);
  return static_cast<size_t>(h);
}

BlockCache::BlockCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  size_t shards = std::max<size_t>(1, num_shards);
  shard_capacity_ = std::max<size_t>(1, capacity_bytes_ / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BlockCache::Shard& BlockCache::ShardFor(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const CachedBlock> BlockCache::Lookup(uint64_t owner_id,
                                                      uint64_t file_number,
                                                      uint64_t offset) {
  Key key{owner_id, file_number, offset};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::Counter* c =
            miss_counter_.load(std::memory_order_relaxed)) {
      c->Add(1);
    }
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Counter* c = hit_counter_.load(std::memory_order_relaxed)) {
    c->Add(1);
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->block;
}

void BlockCache::Insert(uint64_t owner_id, uint64_t file_number,
                        uint64_t offset,
                        std::shared_ptr<const CachedBlock> block) {
  if (block == nullptr) return;
  Key key{owner_id, file_number, offset};
  size_t charge = block->Charge();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (concurrent misses on the same block both insert;
    // the blocks are identical, so either copy is fine).
    shard.charge -= it->second->charge;
    it->second->block = std::move(block);
    it->second->charge = charge;
    shard.charge += charge;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(block), charge});
    shard.index[key] = shard.lru.begin();
    shard.charge += charge;
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  EvictOverBudget(shard);
}

void BlockCache::EvictOverBudget(Shard& shard) {
  while (shard.charge > shard_capacity_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.charge -= victim.charge;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BlockCache::EraseFile(uint64_t owner_id, uint64_t file_number) {
  // Blocks of one file can land in any shard (offset is part of the hash),
  // so scan them all. Files are small (a handful of blocks) and erase only
  // runs at compaction-delete time, so the linear cost is irrelevant next
  // to the file I/O that triggered it.
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.owner_id == owner_id && it->key.file_number == file_number) {
        shard.charge -= it->charge;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.charge = 0;
  }
}

size_t BlockCache::TotalCharge() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->charge;
  }
  return total;
}

size_t BlockCache::TotalEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

double BlockCache::HitRate() const {
  uint64_t h = hits();
  uint64_t m = misses();
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

void BlockCache::AttachTelemetry(
    std::shared_ptr<telemetry::Telemetry> telemetry) {
  if (!telemetry::Active(telemetry.get())) return;
  std::lock_guard<std::mutex> lock(telemetry_mutex_);
  telemetry_ = std::move(telemetry);
  // Publish the pointers last: a racing lookup either misses the counters
  // (fine — pre-attach events are not mirrored) or sees fully-built ones.
  hit_counter_.store(telemetry_->registry().GetCounter("block_cache_hits"),
                     std::memory_order_release);
  miss_counter_.store(
      telemetry_->registry().GetCounter("block_cache_misses"),
      std::memory_order_release);
}

std::string BlockCache::StatsString() const {
  std::ostringstream out;
  out << "block_cache: capacity=" << capacity_bytes_
      << "B shards=" << shards_.size() << " used=" << TotalCharge()
      << "B entries=" << TotalEntries() << " hits=" << hits()
      << " misses=" << misses() << " hit_rate=" << HitRate() * 100.0
      << "% inserts=" << inserts() << " evictions=" << evictions();
  return out.str();
}

}  // namespace seplsm::storage
