#ifndef SEPLSM_DIST_PARAMETRIC_H_
#define SEPLSM_DIST_PARAMETRIC_H_

#include <memory>
#include <string>

#include "dist/distribution.h"

namespace seplsm::dist {

/// Lognormal delay: ln(delay) ~ N(mu, sigma^2). The paper's synthetic
/// datasets (Table II) all use lognormal delays.
class LognormalDistribution final : public DelayDistribution {
 public:
  LognormalDistribution(double mu, double sigma);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  std::string Name() const override;
  DistributionPtr Clone() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Exponential delay with the given mean.
class ExponentialDistribution final : public DelayDistribution {
 public:
  explicit ExponentialDistribution(double mean);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return mean_; }
  std::string Name() const override;
  DistributionPtr Clone() const override;

 private:
  double mean_;
};

/// Uniform delay on [lo, hi], 0 <= lo < hi.
class UniformDistribution final : public DelayDistribution {
 public:
  UniformDistribution(double lo, double hi);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  std::string Name() const override;
  DistributionPtr Clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Pareto (Lomax form): P(delay > x) = (scale / (x + scale))^shape.
/// Heavy tail used in the simulated S-9 dataset.
class ParetoDistribution final : public DelayDistribution {
 public:
  ParetoDistribution(double scale, double shape);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  std::string Name() const override;
  DistributionPtr Clone() const override;

 private:
  double scale_;
  double shape_;
};

/// Weibull delay with scale lambda and shape k.
class WeibullDistribution final : public DelayDistribution {
 public:
  WeibullDistribution(double scale, double shape);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  std::string Name() const override;
  DistributionPtr Clone() const override;

 private:
  double scale_;
  double shape_;
};

/// Degenerate distribution: every delay equals `value` (models a fixed
/// transmission latency; CDF is a step).
class PointMassDistribution final : public DelayDistribution {
 public:
  explicit PointMassDistribution(double value);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return value_; }
  std::string Name() const override;
  DistributionPtr Clone() const override;

 private:
  double value_;
};

/// Standard normal CDF helper (shared by lognormal and fitters).
double StdNormalCdf(double z);
/// Inverse standard normal CDF (Acklam's rational approximation).
double StdNormalQuantile(double p);

}  // namespace seplsm::dist

#endif  // SEPLSM_DIST_PARAMETRIC_H_
