#include "dist/shifted.h"

#include <cassert>
#include <sstream>

namespace seplsm::dist {

ShiftedScaledDistribution::ShiftedScaledDistribution(DistributionPtr base,
                                                     double offset,
                                                     double scale)
    : base_(std::move(base)), offset_(offset), scale_(scale) {
  assert(base_ != nullptr);
  assert(offset >= 0.0 && scale > 0.0);
}

double ShiftedScaledDistribution::Pdf(double x) const {
  if (x < offset_) return 0.0;
  return base_->Pdf((x - offset_) / scale_) / scale_;
}

double ShiftedScaledDistribution::Cdf(double x) const {
  if (x < offset_) return 0.0;
  return base_->Cdf((x - offset_) / scale_);
}

double ShiftedScaledDistribution::Quantile(double q) const {
  return offset_ + scale_ * base_->Quantile(q);
}

double ShiftedScaledDistribution::Sample(Rng& rng) const {
  return offset_ + scale_ * base_->Sample(rng);
}

double ShiftedScaledDistribution::Mean() const {
  return offset_ + scale_ * base_->Mean();
}

std::string ShiftedScaledDistribution::Name() const {
  std::ostringstream out;
  out << "shifted(offset=" << offset_ << ", scale=" << scale_ << ", "
      << base_->Name() << ")";
  return out.str();
}

DistributionPtr ShiftedScaledDistribution::Clone() const {
  return std::make_unique<ShiftedScaledDistribution>(base_->Clone(), offset_,
                                                     scale_);
}

}  // namespace seplsm::dist
