#include "dist/mixture.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace seplsm::dist {

MixtureDistribution::MixtureDistribution(std::vector<Component> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    assert(c.weight > 0.0 && c.distribution != nullptr);
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;
}

double MixtureDistribution::Pdf(double x) const {
  double p = 0.0;
  for (const auto& c : components_) p += c.weight * c.distribution->Pdf(x);
  return p;
}

double MixtureDistribution::Cdf(double x) const {
  double p = 0.0;
  for (const auto& c : components_) p += c.weight * c.distribution->Cdf(x);
  return p;
}

double MixtureDistribution::Quantile(double q) const {
  // Bisection on the mixture CDF between the min/max component quantiles.
  double lo = components_[0].distribution->Quantile(q);
  double hi = lo;
  for (const auto& c : components_) {
    double cq = c.distribution->Quantile(q);
    lo = std::min(lo, cq);
    hi = std::max(hi, cq);
  }
  if (hi - lo < 1e-12) return lo;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-9 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

double MixtureDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  double cum = 0.0;
  for (const auto& c : components_) {
    cum += c.weight;
    if (u < cum) return c.distribution->Sample(rng);
  }
  return components_.back().distribution->Sample(rng);
}

double MixtureDistribution::Mean() const {
  double m = 0.0;
  for (const auto& c : components_) m += c.weight * c.distribution->Mean();
  return m;
}

std::string MixtureDistribution::Name() const {
  std::ostringstream out;
  out << "mixture(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out << " + ";
    out << components_[i].weight << "*" << components_[i].distribution->Name();
  }
  out << ")";
  return out.str();
}

DistributionPtr MixtureDistribution::Clone() const {
  std::vector<Component> copy;
  copy.reserve(components_.size());
  for (const auto& c : components_) {
    copy.push_back({c.weight, c.distribution->Clone()});
  }
  return std::make_unique<MixtureDistribution>(std::move(copy));
}

DistributionPtr MakeMixture(double w1, DistributionPtr d1, double w2,
                            DistributionPtr d2) {
  std::vector<MixtureDistribution::Component> cs;
  cs.push_back({w1, std::move(d1)});
  cs.push_back({w2, std::move(d2)});
  return std::make_unique<MixtureDistribution>(std::move(cs));
}

}  // namespace seplsm::dist
