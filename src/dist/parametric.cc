#include "dist/parametric.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace seplsm::dist {

namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kSqrt2Pi = 2.5066282746310002;

std::string FormatParams(const char* name,
                         std::initializer_list<std::pair<const char*, double>>
                             params) {
  std::ostringstream out;
  out << name << "(";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) out << ", ";
    out << k << "=" << v;
    first = false;
  }
  out << ")";
  return out.str();
}

}  // namespace

double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

double StdNormalQuantile(double p) {
  // Acklam's rational approximation, |relative error| < 1.15e-9.
  assert(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

// ---------------------------------------------------------------- Lognormal

LognormalDistribution::LognormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  assert(sigma > 0.0);
}

double LognormalDistribution::Pdf(double x) const {
  if (x <= 0.0) return 0.0;
  double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * kSqrt2Pi);
}

double LognormalDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return StdNormalCdf((std::log(x) - mu_) / sigma_);
}

double LognormalDistribution::Quantile(double q) const {
  return std::exp(mu_ + sigma_ * StdNormalQuantile(q));
}

double LognormalDistribution::Sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.NextGaussian());
}

double LognormalDistribution::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string LognormalDistribution::Name() const {
  return FormatParams("lognormal", {{"mu", mu_}, {"sigma", sigma_}});
}

DistributionPtr LognormalDistribution::Clone() const {
  return std::make_unique<LognormalDistribution>(mu_, sigma_);
}

// -------------------------------------------------------------- Exponential

ExponentialDistribution::ExponentialDistribution(double mean) : mean_(mean) {
  assert(mean > 0.0);
}

double ExponentialDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  return std::exp(-x / mean_) / mean_;
}

double ExponentialDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.0;
  return 1.0 - std::exp(-x / mean_);
}

double ExponentialDistribution::Quantile(double q) const {
  return -mean_ * std::log1p(-q);
}

double ExponentialDistribution::Sample(Rng& rng) const {
  return rng.NextExponential(1.0 / mean_);
}

std::string ExponentialDistribution::Name() const {
  return FormatParams("exponential", {{"mean", mean_}});
}

DistributionPtr ExponentialDistribution::Clone() const {
  return std::make_unique<ExponentialDistribution>(mean_);
}

// ------------------------------------------------------------------ Uniform

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  assert(lo >= 0.0 && hi > lo);
}

double UniformDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::Quantile(double q) const {
  return lo_ + q * (hi_ - lo_);
}

double UniformDistribution::Sample(Rng& rng) const {
  return lo_ + rng.NextDouble() * (hi_ - lo_);
}

std::string UniformDistribution::Name() const {
  return FormatParams("uniform", {{"lo", lo_}, {"hi", hi_}});
}

DistributionPtr UniformDistribution::Clone() const {
  return std::make_unique<UniformDistribution>(lo_, hi_);
}

// ------------------------------------------------------------------- Pareto

ParetoDistribution::ParetoDistribution(double scale, double shape)
    : scale_(scale), shape_(shape) {
  assert(scale > 0.0 && shape > 0.0);
}

double ParetoDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  return shape_ / scale_ * std::pow(scale_ / (x + scale_), shape_ + 1.0);
}

double ParetoDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.0;
  return 1.0 - std::pow(scale_ / (x + scale_), shape_);
}

double ParetoDistribution::Quantile(double q) const {
  return scale_ * (std::pow(1.0 - q, -1.0 / shape_) - 1.0);
}

double ParetoDistribution::Sample(Rng& rng) const {
  return Quantile(rng.NextDoubleOpen());
}

double ParetoDistribution::Mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return scale_ / (shape_ - 1.0);
}

std::string ParetoDistribution::Name() const {
  return FormatParams("pareto", {{"scale", scale_}, {"shape", shape_}});
}

DistributionPtr ParetoDistribution::Clone() const {
  return std::make_unique<ParetoDistribution>(scale_, shape_);
}

// ------------------------------------------------------------------ Weibull

WeibullDistribution::WeibullDistribution(double scale, double shape)
    : scale_(scale), shape_(shape) {
  assert(scale > 0.0 && shape > 0.0);
}

double WeibullDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return shape_ >= 1.0 ? (shape_ == 1.0 ? 1.0 / scale_ : 0.0)
                                     : std::numeric_limits<double>::infinity();
  double t = x / scale_;
  return shape_ / scale_ * std::pow(t, shape_ - 1.0) *
         std::exp(-std::pow(t, shape_));
}

double WeibullDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double WeibullDistribution::Quantile(double q) const {
  return scale_ * std::pow(-std::log1p(-q), 1.0 / shape_);
}

double WeibullDistribution::Sample(Rng& rng) const {
  return Quantile(rng.NextDouble());
}

double WeibullDistribution::Mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

std::string WeibullDistribution::Name() const {
  return FormatParams("weibull", {{"scale", scale_}, {"shape", shape_}});
}

DistributionPtr WeibullDistribution::Clone() const {
  return std::make_unique<WeibullDistribution>(scale_, shape_);
}

// --------------------------------------------------------------- Point mass

PointMassDistribution::PointMassDistribution(double value) : value_(value) {
  assert(value >= 0.0);
}

double PointMassDistribution::Pdf(double x) const {
  // Dirac mass has no density; callers integrating against Pdf should treat
  // a point mass via its CDF. We return 0 everywhere for safety.
  (void)x;
  return 0.0;
}

double PointMassDistribution::Cdf(double x) const {
  return x >= value_ ? 1.0 : 0.0;
}

double PointMassDistribution::Quantile(double q) const {
  (void)q;
  return value_;
}

double PointMassDistribution::Sample(Rng& rng) const {
  (void)rng;
  return value_;
}

std::string PointMassDistribution::Name() const {
  return FormatParams("point_mass", {{"value", value_}});
}

DistributionPtr PointMassDistribution::Clone() const {
  return std::make_unique<PointMassDistribution>(value_);
}

}  // namespace seplsm::dist
