#include "dist/empirical.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace seplsm::dist {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples,
                                             size_t density_bins) {
  assert(!samples.empty());
  for (double& s : samples) s = std::max(s, 0.0);
  std::sort(samples.begin(), samples.end());
  n_ = samples.size();
  mean_ = std::accumulate(samples.begin(), samples.end(), 0.0) /
          static_cast<double>(n_);

  // Continuous CDF through the order statistics: F(x_(i)) = i/n, anchored
  // at zero mass just below the minimum so no probability is invented
  // beneath the observed range.
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(n_ + 1);
  ys.reserve(n_ + 1);
  {
    double span = samples.back() - samples.front();
    double anchor_gap = std::max(span * 1e-9, 1e-9);
    xs.push_back(samples.front() - anchor_gap);
    ys.push_back(0.0);
  }
  for (size_t i = 0; i < n_; ++i) {
    // Collapse duplicate x knots: keep the highest y.
    double y = static_cast<double>(i + 1) / static_cast<double>(n_);
    if (!xs.empty() && xs.back() == samples[i]) {
      ys.back() = y;
    } else {
      xs.push_back(samples[i]);
      ys.push_back(y);
    }
  }
  cdf_ = numeric::LinearInterpolator(std::move(xs), std::move(ys));

  // Equal-mass histogram density: each of `density_bins` bins holds the same
  // probability mass, so bins are narrow where data are dense.
  density_bins = std::min(density_bins, n_);
  density_bins = std::max<size_t>(density_bins, 1);
  density_edges_.clear();
  density_values_.clear();
  double prev_edge = samples.front();
  density_edges_.push_back(prev_edge);
  for (size_t b = 1; b <= density_bins; ++b) {
    size_t idx = std::min(n_ - 1, b * n_ / density_bins - 1);
    double edge = samples[idx];
    if (edge <= prev_edge) continue;  // skip zero-width bins (duplicates)
    density_edges_.push_back(edge);
    prev_edge = edge;
  }
  // Compute densities from the CDF so skipped bins stay consistent.
  for (size_t i = 0; i + 1 < density_edges_.size(); ++i) {
    double lo = density_edges_[i];
    double hi = density_edges_[i + 1];
    double mass = cdf_(hi) - cdf_(lo);
    density_values_.push_back(mass / (hi - lo));
  }
  if (density_values_.empty()) {
    // All samples equal: approximate a narrow uniform spike.
    double c = samples.front();
    double w = std::max(1e-9, std::fabs(c) * 1e-6 + 1e-9);
    density_edges_ = {c - w / 2, c + w / 2};
    density_values_ = {1.0 / w};
  }
}

double EmpiricalDistribution::Pdf(double x) const {
  if (x < density_edges_.front() || x >= density_edges_.back()) return 0.0;
  auto it = std::upper_bound(density_edges_.begin(), density_edges_.end(), x);
  size_t i = static_cast<size_t>(it - density_edges_.begin());
  if (i == 0) return 0.0;
  return density_values_[i - 1];
}

double EmpiricalDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.0;
  return cdf_(x);
}

double EmpiricalDistribution::Quantile(double q) const {
  // Delays are non-negative; the sub-minimum anchor knot can dip slightly
  // below zero when the minimum is zero.
  return std::max(0.0, cdf_.Inverse(q));
}

double EmpiricalDistribution::Sample(Rng& rng) const {
  return Quantile(rng.NextDoubleOpen());
}

std::string EmpiricalDistribution::Name() const {
  std::ostringstream out;
  out << "empirical(n=" << n_ << ", mean=" << mean_ << ")";
  return out.str();
}

DistributionPtr EmpiricalDistribution::Clone() const {
  return std::make_unique<EmpiricalDistribution>(*this);
}

}  // namespace seplsm::dist
