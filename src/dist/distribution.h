#ifndef SEPLSM_DIST_DISTRIBUTION_H_
#define SEPLSM_DIST_DISTRIBUTION_H_

#include <memory>
#include <string>

#include "common/random.h"

namespace seplsm::dist {

/// A continuous, non-negative delay distribution.
///
/// The WA models (paper Eq. 2/3/5) consume the pdf `f` and cdf `F`; the
/// workload generators consume `Sample`. Delays are expressed in the same
/// time unit as the generation interval Δt (the paper uses milliseconds).
class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;

  /// Probability density at x. Zero for x < 0.
  virtual double Pdf(double x) const = 0;

  /// P(delay <= x). Zero for x < 0, non-decreasing, -> 1.
  virtual double Cdf(double x) const = 0;

  /// Inverse CDF: smallest x with Cdf(x) >= q, q in (0, 1).
  virtual double Quantile(double q) const = 0;

  /// Draws one delay.
  virtual double Sample(Rng& rng) const = 0;

  /// Expected delay; may be +inf for very heavy tails.
  virtual double Mean() const = 0;

  /// Human-readable description, e.g. "lognormal(mu=5, sigma=2)".
  virtual std::string Name() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<DelayDistribution> Clone() const = 0;
};

using DistributionPtr = std::unique_ptr<DelayDistribution>;

}  // namespace seplsm::dist

#endif  // SEPLSM_DIST_DISTRIBUTION_H_
