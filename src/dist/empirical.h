#ifndef SEPLSM_DIST_EMPIRICAL_H_
#define SEPLSM_DIST_EMPIRICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "dist/distribution.h"
#include "numeric/interpolation.h"

namespace seplsm::dist {

/// Delay distribution estimated from observed samples.
///
/// The delay analyzer builds one of these when no parametric family fits the
/// collected delays (paper §VI: real-world delays have systematic modes).
/// The CDF interpolates linearly between order statistics (a continuous
/// approximation of the ECDF); the PDF is a normalized equal-mass histogram
/// density derived from the same order statistics.
class EmpiricalDistribution final : public DelayDistribution {
 public:
  /// `samples` must be non-empty; negative values are clamped to 0.
  explicit EmpiricalDistribution(std::vector<double> samples,
                                 size_t density_bins = 64);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return mean_; }
  std::string Name() const override;
  DistributionPtr Clone() const override;

  size_t sample_size() const { return n_; }

 private:
  size_t n_;
  double mean_;
  numeric::LinearInterpolator cdf_;       // x -> F(x)
  std::vector<double> density_edges_;     // bin edges for the pdf
  std::vector<double> density_values_;    // density per bin
};

}  // namespace seplsm::dist

#endif  // SEPLSM_DIST_EMPIRICAL_H_
