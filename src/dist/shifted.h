#ifndef SEPLSM_DIST_SHIFTED_H_
#define SEPLSM_DIST_SHIFTED_H_

#include <memory>
#include <string>

#include "dist/distribution.h"

namespace seplsm::dist {

/// delay = offset + scale * base_delay. Models a fixed propagation latency
/// plus a scaled random component.
class ShiftedScaledDistribution final : public DelayDistribution {
 public:
  ShiftedScaledDistribution(DistributionPtr base, double offset,
                            double scale = 1.0);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  std::string Name() const override;
  DistributionPtr Clone() const override;

 private:
  DistributionPtr base_;
  double offset_;
  double scale_;
};

}  // namespace seplsm::dist

#endif  // SEPLSM_DIST_SHIFTED_H_
