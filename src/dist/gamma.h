#ifndef SEPLSM_DIST_GAMMA_H_
#define SEPLSM_DIST_GAMMA_H_

#include <memory>
#include <string>

#include "dist/distribution.h"

namespace seplsm::dist {

/// Gamma delay with shape k and scale θ (mean kθ). Models multi-hop
/// transmission delays (a sum of k exponential hops).
class GammaDistribution final : public DelayDistribution {
 public:
  GammaDistribution(double shape, double scale);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return shape_ * scale_; }
  std::string Name() const override;
  DistributionPtr Clone() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace seplsm::dist

#endif  // SEPLSM_DIST_GAMMA_H_
