#ifndef SEPLSM_DIST_MIXTURE_H_
#define SEPLSM_DIST_MIXTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace seplsm::dist {

/// Finite mixture of delay distributions. The simulated S-9 dataset is a
/// lognormal body plus a heavy Pareto tail; the simulated H dataset mixes an
/// "online" mode with a "buffered re-send" mode (see DESIGN.md §4).
class MixtureDistribution final : public DelayDistribution {
 public:
  struct Component {
    double weight;
    DistributionPtr distribution;
  };

  /// Weights must be positive; they are normalized internally.
  explicit MixtureDistribution(std::vector<Component> components);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double q) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  std::string Name() const override;
  DistributionPtr Clone() const override;

  size_t num_components() const { return components_.size(); }
  double weight(size_t i) const { return components_[i].weight; }
  const DelayDistribution& component(size_t i) const {
    return *components_[i].distribution;
  }

 private:
  std::vector<Component> components_;
};

/// Convenience builder: two-component mixture.
DistributionPtr MakeMixture(double w1, DistributionPtr d1, double w2,
                            DistributionPtr d2);

}  // namespace seplsm::dist

#endif  // SEPLSM_DIST_MIXTURE_H_
