#include "dist/gamma.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "numeric/special_functions.h"

namespace seplsm::dist {

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  assert(shape > 0.0 && scale > 0.0);
}

double GammaDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return std::numeric_limits<double>::infinity();
    return shape_ == 1.0 ? 1.0 / scale_ : 0.0;
  }
  double log_pdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                   std::lgamma(shape_) - shape_ * std::log(scale_);
  return std::exp(log_pdf);
}

double GammaDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return numeric::RegularizedGammaP(shape_, x / scale_);
}

double GammaDistribution::Quantile(double q) const {
  return scale_ * numeric::RegularizedGammaPInverse(shape_, q);
}

double GammaDistribution::Sample(Rng& rng) const {
  // Marsaglia–Tsang squeeze for k >= 1; boost via U^{1/k} for k < 1.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.NextDoubleOpen(), 1.0 / k);
    k += 1.0;
  }
  double d = k - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double z = rng.NextGaussian();
    double v = 1.0 + c * z;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng.NextDoubleOpen();
    if (u < 1.0 - 0.0331 * z * z * z * z ||
        std::log(u) < 0.5 * z * z + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

std::string GammaDistribution::Name() const {
  std::ostringstream out;
  out << "gamma(shape=" << shape_ << ", scale=" << scale_ << ")";
  return out.str();
}

DistributionPtr GammaDistribution::Clone() const {
  return std::make_unique<GammaDistribution>(shape_, scale_);
}

}  // namespace seplsm::dist
