#include "telemetry/trace_export.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace seplsm::telemetry {

namespace {

// The span type names contain no characters needing JSON escapes; series
// names come from user file paths, so escape the minimum set.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Writes `nanos` as fractional microseconds (Chrome's ts/dur unit) with
/// all digits. Streaming a double here would round to 6 significant digits
/// and collapse nearby timestamps on any trace longer than ~a second.
void AppendMicros(std::ostringstream& out, int64_t nanos) {
  uint64_t abs = nanos < 0 ? static_cast<uint64_t>(-nanos)
                           : static_cast<uint64_t>(nanos);
  if (nanos < 0) out << '-';
  char frac[8];
  std::snprintf(frac, sizeof(frac), ".%03llu",
                static_cast<unsigned long long>(abs % 1000));
  out << abs / 1000 << frac;
}

}  // namespace

std::string ToJsonl(const std::vector<TraceEvent>& events,
                    const Telemetry* telemetry) {
  std::ostringstream out;
  for (const TraceEvent& e : events) {
    out << "{\"type\":\"" << SpanTypeName(e.type) << "\"";
    if (telemetry != nullptr) {
      out << ",\"series\":\"" << JsonEscape(telemetry->SeriesName(e.series_id))
          << "\"";
    } else {
      out << ",\"series_id\":" << e.series_id;
    }
    out << ",\"start_nanos\":" << e.start_nanos
        << ",\"end_nanos\":" << e.end_nanos
        << ",\"duration_nanos\":" << e.duration_nanos();
    if (e.points > 0) out << ",\"points\":" << e.points;
    if (e.bytes > 0) out << ",\"bytes\":" << e.bytes;
    if (e.files > 0) out << ",\"files\":" << e.files;
    if (e.level > 0) out << ",\"level\":" << e.level;
    out << "}\n";
  }
  return out.str();
}

std::string ToChromeTrace(const std::vector<TraceEvent>& events,
                          const Telemetry* telemetry) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  // One lane (tid) per series id; name the lanes up front via metadata
  // events so chrome://tracing shows series names instead of bare ids.
  std::set<uint32_t> series_seen;
  for (const TraceEvent& e : events) series_seen.insert(e.series_id);
  for (uint32_t id : series_seen) {
    std::string name =
        telemetry != nullptr ? telemetry->SeriesName(id) : std::string();
    if (name.empty()) name = "series-" + std::to_string(id);
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << id
        << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << SpanTypeName(e.type)
        << "\",\"cat\":\"seplsm\",\"ph\":\"X\",\"ts\":";
    AppendMicros(out, e.start_nanos);
    out << ",\"dur\":";
    AppendMicros(out, e.duration_nanos());
    out << ",\"pid\":1,\"tid\":" << e.series_id << ",\"args\":{";
    out << "\"points\":" << e.points << ",\"bytes\":" << e.bytes
        << ",\"files\":" << e.files << ",\"level\":" << e.level << "}}";
  }
  out << "]}";
  return out.str();
}

bool WriteTraceFile(const Telemetry& telemetry, const std::string& path,
                    const std::string& format) {
  std::vector<TraceEvent> events = telemetry.tracer().Snapshot();
  std::string body;
  if (format == "jsonl") {
    body = ToJsonl(events, &telemetry);
  } else if (format == "chrome") {
    body = ToChromeTrace(events, &telemetry);
  } else {
    return false;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

}  // namespace seplsm::telemetry
