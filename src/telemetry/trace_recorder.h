#ifndef SEPLSM_TELEMETRY_TRACE_RECORDER_H_
#define SEPLSM_TELEMETRY_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/trace_event.h"

namespace seplsm::telemetry {

/// A lock-cheap, bounded ring buffer of trace events.
///
/// The capacity is split across shards (each its own mutex + ring), with the
/// shard picked by thread id, so writers on different threads almost never
/// contend and a Record is one uncontended lock, one struct copy, and one
/// relaxed fetch_add. When a shard's ring is full the oldest event in that
/// shard is overwritten — recording never blocks and never allocates after
/// construction; `dropped()` says how much history was lost.
///
/// Recording is gated by an atomic `enabled` flag (the CLI's `--no-trace`
/// default): disabled, Record is a single relaxed load and branch, which is
/// what keeps tier-1 numbers untouched when tracing is off.
class TraceRecorder {
 public:
  /// `capacity` is the total event budget across shards (min 1 per shard).
  /// `num_shards` = 1 makes eviction order deterministic (tests).
  explicit TraceRecorder(size_t capacity = 64 * 1024, size_t num_shards = 8);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records `event` (assigning its `seq`) unless disabled.
  void Record(TraceEvent event);

  /// Events recorded (including ones since overwritten).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wraparound.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  size_t capacity() const { return shard_capacity_ * shards_.size(); }

  /// Copies out every retained event, sorted by (start_nanos, seq).
  std::vector<TraceEvent> Snapshot() const;

  /// Drops retained events (counters keep running).
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> ring;  // capacity() slots, filled circularly
    uint64_t next = 0;             // total events written to this shard
  };

  Shard& ShardForThisThread();

  std::atomic<bool> enabled_{true};
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace seplsm::telemetry

#endif  // SEPLSM_TELEMETRY_TRACE_RECORDER_H_
