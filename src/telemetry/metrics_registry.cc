#include "telemetry/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace seplsm::telemetry {

MetricsRegistry::MetricsRegistry() = default;

void MetricsRegistry::AddLatency(SpanType op, double micros) {
  OpHistogram& h = ops_[static_cast<size_t>(op)];
  std::lock_guard<std::mutex> lock(h.mutex);
  h.histogram.Add(micros);
}

LatencySummary MetricsRegistry::Summary(SpanType op) const {
  const OpHistogram& h = ops_[static_cast<size_t>(op)];
  std::lock_guard<std::mutex> lock(h.mutex);
  LatencySummary s;
  s.count = h.histogram.count();
  if (s.count > 0) {
    s.p50_micros = h.histogram.Quantile(0.50);
    s.p95_micros = h.histogram.Quantile(0.95);
    s.p99_micros = h.histogram.Quantile(0.99);
    s.max_micros = h.histogram.max();
    s.mean_micros = h.histogram.mean();
  }
  return s;
}

stats::LogHistogram MetricsRegistry::HistogramSnapshot(SpanType op) const {
  const OpHistogram& h = ops_[static_cast<size_t>(op)];
  std::lock_guard<std::mutex> lock(h.mutex);
  return h.histogram;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;  // std::map iteration is already name-sorted
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (size_t i = 0; i < kSpanTypeCount; ++i) {
    // Copy out under other's lock, merge under ours: never hold both.
    stats::LogHistogram copy{1.0, 1.5, 120};
    {
      std::lock_guard<std::mutex> lock(other.ops_[i].mutex);
      copy = other.ops_[i].histogram;
    }
    std::lock_guard<std::mutex> lock(ops_[i].mutex);
    ops_[i].histogram.Merge(copy);
  }
  for (const auto& [name, value] : other.CounterSnapshot()) {
    GetCounter(name)->Add(value);
  }
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  out << "{\"latency_micros\":{";
  bool first = true;
  for (size_t i = 0; i < kSpanTypeCount; ++i) {
    LatencySummary s = Summary(static_cast<SpanType>(i));
    if (s.count == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << SpanTypeName(static_cast<SpanType>(i)) << "\":{"
        << "\"count\":" << s.count << ",\"p50\":" << s.p50_micros
        << ",\"p95\":" << s.p95_micros << ",\"p99\":" << s.p99_micros
        << ",\"max\":" << s.max_micros << ",\"mean\":" << s.mean_micros
        << "}";
  }
  out << "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : CounterSnapshot()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::ToPrometheus(
    const std::string& series,
    const std::vector<std::string>& exclude_counters) const {
  std::ostringstream out;
  auto labels = [&series](const std::string& extra) {
    std::string inner = extra;
    if (!series.empty()) {
      if (!inner.empty()) inner += ",";
      // Escape backslash, quote, newline per the exposition format.
      inner += "series=\"";
      for (char c : series) {
        if (c == '\\') inner += "\\\\";
        else if (c == '"') inner += "\\\"";
        else if (c == '\n') inner += "\\n";
        else inner += c;
      }
      inner += "\"";
    }
    return inner.empty() ? std::string() : "{" + inner + "}";
  };
  out << "# HELP seplsm_op_latency_micros per-operation latency quantiles\n"
      << "# TYPE seplsm_op_latency_micros summary\n";
  for (size_t i = 0; i < kSpanTypeCount; ++i) {
    LatencySummary s = Summary(static_cast<SpanType>(i));
    if (s.count == 0) continue;
    const std::string op(SpanTypeName(static_cast<SpanType>(i)));
    const struct {
      const char* quantile;
      double value;
    } rows[] = {{"0.5", s.p50_micros},
                {"0.95", s.p95_micros},
                {"0.99", s.p99_micros},
                {"1", s.max_micros}};
    for (const auto& row : rows) {
      out << "seplsm_op_latency_micros"
          << labels("op=\"" + op + "\",quantile=\"" + row.quantile + "\"")
          << " " << row.value << "\n";
    }
    out << "seplsm_op_latency_micros_count" << labels("op=\"" + op + "\"")
        << " " << s.count << "\n";
  }
  // Native le-bucket histograms, straight from the LogHistogram buckets.
  // Only boundaries where the cumulative count advances are emitted (plus
  // the mandatory +Inf bucket): cumulative histograms stay exact under
  // boundary subsetting, and 120 mostly-empty buckets per op would bloat
  // every scrape.
  out << "# HELP seplsm_op_duration_micros per-operation latency "
         "distribution (log-scaled buckets)\n"
      << "# TYPE seplsm_op_duration_micros histogram\n";
  for (size_t i = 0; i < kSpanTypeCount; ++i) {
    stats::LogHistogram h = HistogramSnapshot(static_cast<SpanType>(i));
    if (h.count() == 0) continue;
    const std::string op(SpanTypeName(static_cast<SpanType>(i)));
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket_count(b) == 0) continue;
      cumulative += h.bucket_count(b);
      const double upper = h.bucket_upper(b);
      std::ostringstream le;
      if (std::isinf(upper)) {
        le << "+Inf";
      } else {
        le << upper;
      }
      out << "seplsm_op_duration_micros_bucket"
          << labels("op=\"" + op + "\",le=\"" + le.str() + "\"") << " "
          << cumulative << "\n";
    }
    if (cumulative != h.count()) {
      // The last finite bucket did not absorb everything (it always should;
      // belt and braces for future bucket layouts).
      out << "seplsm_op_duration_micros_bucket"
          << labels("op=\"" + op + "\",le=\"+Inf\"") << " " << h.count()
          << "\n";
    } else if (!std::isinf(h.bucket_upper(h.num_buckets() - 1)) ||
               h.bucket_count(h.num_buckets() - 1) == 0) {
      // No +Inf line was emitted above: the exposition format requires one.
      out << "seplsm_op_duration_micros_bucket"
          << labels("op=\"" + op + "\",le=\"+Inf\"") << " " << h.count()
          << "\n";
    }
    out << "seplsm_op_duration_micros_sum" << labels("op=\"" + op + "\"")
        << " " << h.sum() << "\n"
        << "seplsm_op_duration_micros_count" << labels("op=\"" + op + "\"")
        << " " << h.count() << "\n";
  }
  const std::set<std::string> excluded(exclude_counters.begin(),
                                       exclude_counters.end());
  for (const auto& [name, value] : CounterSnapshot()) {
    if (excluded.count(name) != 0) continue;
    out << "# HELP seplsm_" << name << "_total telemetry counter " << name
        << "\n"
        << "# TYPE seplsm_" << name << "_total counter\n"
        << "seplsm_" << name << "_total" << labels("") << " " << value
        << "\n";
  }
  return out.str();
}

void MetricsRegistry::Clear() {
  for (size_t i = 0; i < kSpanTypeCount; ++i) {
    std::lock_guard<std::mutex> lock(ops_[i].mutex);
    ops_[i].histogram.Clear();
  }
  std::lock_guard<std::mutex> lock(counters_mutex_);
  counters_.clear();
}

}  // namespace seplsm::telemetry
