#ifndef SEPLSM_TELEMETRY_STATS_DUMP_H_
#define SEPLSM_TELEMETRY_STATS_DUMP_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace seplsm::telemetry {

/// Periodically invokes a callback (typically "log Metrics::ToString()") on
/// a dedicated timer thread. A dedicated thread rather than a JobScheduler
/// job because a sleeping job would pin a scheduler worker between dumps.
///
/// Start() is idempotent-per-instance; the destructor (or Stop()) joins the
/// thread. DumpNow() runs the callback synchronously on the caller's thread
/// (used by tests and the CLI's final dump).
class StatsDumper {
 public:
  using Callback = std::function<void()>;

  StatsDumper() = default;
  ~StatsDumper() { Stop(); }

  StatsDumper(const StatsDumper&) = delete;
  StatsDumper& operator=(const StatsDumper&) = delete;

  /// Begins firing `callback` every `interval_ms`. No-op if already started
  /// or interval_ms == 0.
  void Start(uint64_t interval_ms, Callback callback);

  /// Stops the timer thread and joins it. Safe to call when not started.
  void Stop();

  bool running() const;

  /// Invokes the callback immediately on this thread (if one is set).
  void DumpNow();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  Callback callback_;
  std::thread thread_;
};

}  // namespace seplsm::telemetry

#endif  // SEPLSM_TELEMETRY_STATS_DUMP_H_
