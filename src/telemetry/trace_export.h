#ifndef SEPLSM_TELEMETRY_TRACE_EXPORT_H_
#define SEPLSM_TELEMETRY_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

namespace seplsm::telemetry {

/// One event per line:
///   {"type":"flush","series":"cpu.load","start_nanos":..,"end_nanos":..,
///    "duration_nanos":..,"points":..,"bytes":..,"files":..}
/// Zero payload fields are omitted. `telemetry` (optional) resolves series
/// ids to names; without it the numeric id is emitted as "series_id".
std::string ToJsonl(const std::vector<TraceEvent>& events,
                    const Telemetry* telemetry = nullptr);

/// Chrome trace_event JSON (load in chrome://tracing or Perfetto): complete
/// ("ph":"X") events, ts/dur in microseconds, one tid lane per series plus
/// thread_name metadata so lanes are labeled with series names.
std::string ToChromeTrace(const std::vector<TraceEvent>& events,
                          const Telemetry* telemetry = nullptr);

/// Snapshot `telemetry`'s tracer and write it to `path` in the given format
/// ("jsonl" or "chrome"). Returns false on unknown format or I/O failure.
bool WriteTraceFile(const Telemetry& telemetry, const std::string& path,
                    const std::string& format);

}  // namespace seplsm::telemetry

#endif  // SEPLSM_TELEMETRY_TRACE_EXPORT_H_
