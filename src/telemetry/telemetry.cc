#include "telemetry/telemetry.h"

namespace seplsm::telemetry {

Telemetry::Telemetry(TelemetryOptions options)
    : options_(options),
      tracer_(options.trace_capacity, options.trace_shards) {
  tracer_.set_enabled(options.trace_enabled);
}

uint32_t Telemetry::RegisterSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(series_mutex_);
  auto it = series_ids_.find(name);
  if (it != series_ids_.end()) return it->second;
  series_names_.push_back(name);
  uint32_t id = static_cast<uint32_t>(series_names_.size());  // ids from 1
  series_ids_.emplace(name, id);
  return id;
}

std::string Telemetry::SeriesName(uint32_t id) const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  if (id == 0 || id > series_names_.size()) return "";
  return series_names_[id - 1];
}

}  // namespace seplsm::telemetry
