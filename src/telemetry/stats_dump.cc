#include "telemetry/stats_dump.h"

namespace seplsm::telemetry {

void StatsDumper::Start(uint64_t interval_ms, Callback callback) {
  if (interval_ms == 0 || !callback) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  callback_ = std::move(callback);
  thread_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                       [this] { return stop_; })) {
        break;
      }
      // Run the dump without holding the lock so DumpNow()/Stop() from the
      // callback's own logging path can't deadlock.
      Callback cb = callback_;
      lock.unlock();
      cb();
      lock.lock();
    }
    running_ = false;
  });
}

void StatsDumper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool StatsDumper::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void StatsDumper::DumpNow() {
  Callback cb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cb = callback_;
  }
  if (cb) cb();
}

}  // namespace seplsm::telemetry
