#ifndef SEPLSM_TELEMETRY_TELEMETRY_H_
#define SEPLSM_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace_recorder.h"

/// Compile-out switch: building with -DSEPLSM_DISABLE_TELEMETRY (CMake
/// option of the same name) turns every instrumentation site into dead code
/// — `telemetry::Active(t)` becomes a constant false — for deployments that
/// want the hot paths bit-identical to an uninstrumented build.
#ifdef SEPLSM_DISABLE_TELEMETRY
#define SEPLSM_TELEMETRY_ENABLED 0
#else
#define SEPLSM_TELEMETRY_ENABLED 1
#endif

namespace seplsm::telemetry {

struct TelemetryOptions {
  /// Total trace ring capacity in events.
  size_t trace_capacity = 64 * 1024;
  /// Shards in the ring (1 = deterministic eviction order, for tests).
  size_t trace_shards = 8;
  /// Start with the tracer recording? Histograms/counters are always live
  /// while a Telemetry is attached; spans only flow when tracing is on
  /// (the CLI's --no-trace default keeps this false).
  bool trace_enabled = false;
  /// Record one APPEND span per this many appends (histograms still see
  /// every append). Appends are orders of magnitude more frequent than any
  /// other event; unsampled they would evict every flush/compaction span
  /// from the bounded ring. 0 disables APPEND spans entirely.
  size_t append_span_sample_every = 1024;
};

/// The engine-facing telemetry handle: one event tracer + one metrics
/// registry + the series-name table that labels events and exports.
///
/// Shared like the block cache and job scheduler: `Options::telemetry` is a
/// shared_ptr, MultiSeriesDB hands every series engine the same instance,
/// and each engine registers its series name for a label id. Null telemetry
/// (the default) costs the hot paths a single pointer test.
class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  TraceRecorder& tracer() { return tracer_; }
  const TraceRecorder& tracer() const { return tracer_; }
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  const TelemetryOptions& options() const { return options_; }

  /// Returns a stable label id for `name` (idempotent per name).
  uint32_t RegisterSeries(const std::string& name);

  /// Name for a label id; "" for 0 (unlabeled) or unknown ids.
  std::string SeriesName(uint32_t id) const;

  /// Convenience for instrumentation sites: records a completed span and
  /// feeds its duration into the latency histogram for `type`.
  void RecordSpan(SpanType type, uint32_t series_id, int64_t start_nanos,
                  int64_t end_nanos, uint64_t points = 0, uint64_t bytes = 0,
                  uint64_t files = 0, uint32_t level = 0) {
    registry_.AddLatency(
        type, static_cast<double>(end_nanos - start_nanos) / 1000.0);
    if (tracer_.enabled()) {
      TraceEvent event;
      event.type = type;
      event.series_id = series_id;
      event.start_nanos = start_nanos;
      event.end_nanos = end_nanos;
      event.points = points;
      event.bytes = bytes;
      event.files = files;
      event.level = level;
      tracer_.Record(event);
    }
  }

 private:
  TelemetryOptions options_;
  TraceRecorder tracer_;
  MetricsRegistry registry_;

  mutable std::mutex series_mutex_;
  std::map<std::string, uint32_t> series_ids_;
  std::vector<std::string> series_names_;  // index = id - 1
};

/// The instrumentation gate. Every call site tests `Active(tele)` before
/// touching the clock, so a null telemetry costs one branch and a
/// SEPLSM_DISABLE_TELEMETRY build compiles the whole site away.
inline bool Active(const Telemetry* t) {
#if SEPLSM_TELEMETRY_ENABLED
  return t != nullptr;
#else
  (void)t;
  return false;
#endif
}

/// RAII span for call sites whose begin/end bracket a scope. Measures with
/// the given clock and records on destruction (or early via Finish()).
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, const Clock* clock, SpanType type,
             uint32_t series_id)
      : telemetry_(Active(telemetry) ? telemetry : nullptr), clock_(clock),
        type_(type), series_id_(series_id),
        start_nanos_(telemetry_ != nullptr ? clock->NowNanos() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { Finish(); }

  void set_points(uint64_t n) { points_ = n; }
  void set_bytes(uint64_t n) { bytes_ = n; }
  void set_files(uint64_t n) { files_ = n; }
  void set_level(uint32_t n) { level_ = n; }

  void Finish() {
    if (telemetry_ == nullptr) return;
    telemetry_->RecordSpan(type_, series_id_, start_nanos_,
                           clock_->NowNanos(), points_, bytes_, files_,
                           level_);
    telemetry_ = nullptr;
  }

 private:
  Telemetry* telemetry_;
  const Clock* clock_;
  SpanType type_;
  uint32_t series_id_;
  int64_t start_nanos_;
  uint64_t points_ = 0;
  uint64_t bytes_ = 0;
  uint64_t files_ = 0;
  uint32_t level_ = 0;
};

/// Clock-backed stopwatch shared by benches so every harness times through
/// the same path the engine's spans use (bench_query_util, bench_table3).
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = SystemClock::Default())
      : clock_(clock), start_nanos_(clock->NowNanos()) {}

  void Reset() { start_nanos_ = clock_->NowNanos(); }
  int64_t ElapsedNanos() const { return clock_->NowNanos() - start_nanos_; }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  const Clock* clock_;
  int64_t start_nanos_;
};

}  // namespace seplsm::telemetry

#endif  // SEPLSM_TELEMETRY_TELEMETRY_H_
