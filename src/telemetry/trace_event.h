#ifndef SEPLSM_TELEMETRY_TRACE_EVENT_H_
#define SEPLSM_TELEMETRY_TRACE_EVENT_H_

#include <cstdint>

namespace seplsm::telemetry {

/// The engine's event taxonomy. Every transient interaction the paper's
/// evaluation cares about (Figs. 13/14, Table III tail behaviour) maps to
/// one span type, so a latency spike in a trace can be attributed to the
/// flush, merge, queue wait, or stall that caused it.
enum class SpanType : uint8_t {
  kAppend = 0,       ///< one Append call (sampled; see TelemetryOptions)
  kFlush,            ///< MemTable batch -> SSTable (sync or background job)
  kCompaction,       ///< merge of buffered/level-0 data into the run
  kQueueWait,        ///< background job submit-to-dispatch latency
  kStall,            ///< Append blocked on level-0 backpressure
  kQuery,            ///< one Query/Aggregate/Downsample call
  kPolicySwitch,     ///< π_c <-> π_s reconfiguration (instant event)
  kWalSync,          ///< one WAL fsync (group commit or sync-every-append)
  kSpanTypeCount,    ///< sentinel, keep last
};

inline constexpr size_t kSpanTypeCount =
    static_cast<size_t>(SpanType::kSpanTypeCount);

/// Stable lower-case names used by both export formats and the registry.
inline const char* SpanTypeName(SpanType type) {
  switch (type) {
    case SpanType::kAppend: return "append";
    case SpanType::kFlush: return "flush";
    case SpanType::kCompaction: return "compaction";
    case SpanType::kQueueWait: return "queue_wait";
    case SpanType::kStall: return "stall";
    case SpanType::kQuery: return "query";
    case SpanType::kPolicySwitch: return "policy_switch";
    case SpanType::kWalSync: return "wal_sync";
    case SpanType::kSpanTypeCount: break;
  }
  return "unknown";
}

/// One recorded span. Timestamps come from the engine's `Clock`
/// (wall-clock by default, sim-clock under ManualClock), so traces of
/// deterministic experiments are themselves deterministic. POD — copied
/// into and out of the ring buffer wholesale.
struct TraceEvent {
  SpanType type = SpanType::kAppend;
  uint32_t series_id = 0;   ///< Telemetry::RegisterSeries label; 0 = default
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;    ///< == start_nanos for instant events
  uint64_t points = 0;      ///< payload: points moved/returned/buffered
  uint64_t bytes = 0;       ///< payload: bytes written/read
  uint64_t files = 0;       ///< payload: files created/opened/merged
  /// Payload: destination tree level of a compaction/flush span (0 means
  /// "not level-attributed" — level 0 itself is only ever a source).
  uint32_t level = 0;
  /// Global record order, assigned by the recorder: a stable tiebreak for
  /// events with equal start times and proof of cross-thread ordering.
  uint64_t seq = 0;

  int64_t duration_nanos() const { return end_nanos - start_nanos; }
};

}  // namespace seplsm::telemetry

#endif  // SEPLSM_TELEMETRY_TRACE_EVENT_H_
