#include "telemetry/trace_recorder.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace seplsm::telemetry {

TraceRecorder::TraceRecorder(size_t capacity, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  if (capacity < num_shards) capacity = num_shards;
  shard_capacity_ = capacity / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.resize(shard_capacity_);
    shards_.push_back(std::move(shard));
  }
}

TraceRecorder::Shard& TraceRecorder::ShardForThisThread() {
  size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *shards_[h % shards_.size()];
}

void TraceRecorder::Record(TraceEvent event) {
  if (!enabled()) return;
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.next >= shard_capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.ring[shard.next % shard_capacity_] = event;
  ++shard.next;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    size_t held = static_cast<size_t>(
        std::min<uint64_t>(shard->next, shard_capacity_));
    for (size_t i = 0; i < held; ++i) out.push_back(shard->ring[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_nanos != b.start_nanos) {
                return a.start_nanos < b.start_nanos;
              }
              return a.seq < b.seq;
            });
  return out;
}

void TraceRecorder::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->next = 0;
  }
}

}  // namespace seplsm::telemetry
