#ifndef SEPLSM_TELEMETRY_METRICS_REGISTRY_H_
#define SEPLSM_TELEMETRY_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"
#include "telemetry/trace_event.h"

namespace seplsm::telemetry {

/// Percentile summary of one operation's latency distribution, in
/// microseconds (log-bucketed: quantiles are exact to within one geometric
/// bucket, ~±25% at the default 1.5 growth).
struct LatencySummary {
  uint64_t count = 0;
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  double p99_micros = 0.0;
  double max_micros = 0.0;
  double mean_micros = 0.0;
};

/// A monotonically increasing named counter. Pointer-stable for the life of
/// its registry, so hot paths (block cache hit/miss) cache the pointer and
/// pay one relaxed fetch_add per event.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Central home of the engine's latency histograms (append, query, flush,
/// compaction, queue wait, stall) plus free-form named counters.
///
/// One registry is shared by every engine attached to the same `Telemetry`
/// — MultiSeriesDB hands all its series one instance — so per-series
/// latencies aggregate into fleet-wide percentiles the same way
/// Metrics::MergeFrom aggregates counters. `MergeFrom` exists for combining
/// registries that were NOT shared (e.g. per-process exports).
class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Thread-safe. `op` is the span type whose latency this is.
  void AddLatency(SpanType op, double micros);

  LatencySummary Summary(SpanType op) const;

  /// Copy of the op's full latency histogram (bucket-level access for the
  /// native-histogram Prometheus export and tests).
  stats::LogHistogram HistogramSnapshot(SpanType op) const;

  /// Returns the counter registered under `name` (creating it on first
  /// use). The pointer stays valid as long as the registry lives.
  Counter* GetCounter(const std::string& name);

  /// (name, value) for every registered counter, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;

  /// Adds `other`'s histograms and counters into this.
  void MergeFrom(const MetricsRegistry& other);

  /// {"latency_micros":{"append":{"count":..,"p50":..},..},"counters":{..}}
  std::string ToJson() const;

  /// Prometheus text exposition, promtool-conformant (`# HELP`/`# TYPE`
  /// for every family, escaped label values):
  /// - `seplsm_op_latency_micros{op=,quantile=}` summary per active op
  ///   (plus `_count`) — the compact quantile view dashboards key on;
  /// - `seplsm_op_duration_micros` native histogram per active op:
  ///   cumulative `_bucket{le="..."}` lines derived from the LogHistogram
  ///   buckets, then `_sum` and `_count`;
  /// - `seplsm_<name>_total` per registered counter.
  /// A non-empty `series` adds a `series="..."` label to every line.
  /// Counters named in `exclude_counters` are omitted — the combined
  /// `/metrics` document already emits those families from
  /// engine::Metrics, and one exposition must not declare a family twice.
  std::string ToPrometheus(
      const std::string& series = std::string(),
      const std::vector<std::string>& exclude_counters = {}) const;

  void Clear();

 private:
  struct OpHistogram {
    mutable std::mutex mutex;
    stats::LogHistogram histogram{1.0, 1.5, 120};  // micros
  };

  OpHistogram ops_[kSpanTypeCount];
  mutable std::mutex counters_mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace seplsm::telemetry

#endif  // SEPLSM_TELEMETRY_METRICS_REGISTRY_H_
