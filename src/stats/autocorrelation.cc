#include "stats/autocorrelation.h"

#include <cmath>

namespace seplsm::stats {

AutocorrResult Autocorrelation(const std::vector<double>& series,
                               size_t max_lag) {
  AutocorrResult out;
  size_t n = series.size();
  if (n < 2) return out;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double denom = 0.0;
  for (double x : series) denom += (x - mean) * (x - mean);
  if (denom == 0.0) return out;
  max_lag = std::min(max_lag, n - 1);
  out.acf.resize(max_lag + 1);
  for (size_t k = 0; k <= max_lag; ++k) {
    double num = 0.0;
    for (size_t t = 0; t + k < n; ++t) {
      num += (series[t] - mean) * (series[t + k] - mean);
    }
    out.acf[k] = num / denom;
  }
  out.conf_bound = 1.96 / std::sqrt(static_cast<double>(n));
  return out;
}

}  // namespace seplsm::stats
