#ifndef SEPLSM_STATS_QUANTILE_SKETCH_H_
#define SEPLSM_STATS_QUANTILE_SKETCH_H_

#include <array>
#include <cstdint>

namespace seplsm::stats {

/// Streaming quantile estimator using the P² algorithm (Jain & Chlamtac,
/// 1985): tracks one target quantile in O(1) memory with five markers.
/// The delay analyzer uses these for cheap online delay percentiles without
/// retaining samples.
class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.99.
  explicit P2Quantile(double quantile);

  void Add(double x);

  /// Current estimate; exact until five observations arrive.
  double Value() const;

  uint64_t count() const { return count_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double quantile_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace seplsm::stats

#endif  // SEPLSM_STATS_QUANTILE_SKETCH_H_
