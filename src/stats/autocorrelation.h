#ifndef SEPLSM_STATS_AUTOCORRELATION_H_
#define SEPLSM_STATS_AUTOCORRELATION_H_

#include <cstddef>
#include <vector>

namespace seplsm::stats {

/// Result of a sample-autocorrelation computation (MATLAB `autocorr`
/// equivalent, used for the paper's Fig. 16a on dataset H).
struct AutocorrResult {
  std::vector<double> acf;  ///< acf[k] for lag k = 0..max_lag (acf[0] == 1)
  double conf_bound = 0.0;  ///< +-1.96/sqrt(N): bounds for "independent" delays
};

/// Biased sample autocorrelation: acf[k] = sum (x_t-m)(x_{t+k}-m) / sum (x_t-m)^2.
/// Returns an empty acf when the series is constant or shorter than 2.
AutocorrResult Autocorrelation(const std::vector<double>& series,
                               size_t max_lag);

}  // namespace seplsm::stats

#endif  // SEPLSM_STATS_AUTOCORRELATION_H_
