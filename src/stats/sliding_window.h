#ifndef SEPLSM_STATS_SLIDING_WINDOW_H_
#define SEPLSM_STATS_SLIDING_WINDOW_H_

#include <cstddef>
#include <deque>

namespace seplsm::stats {

/// Fixed-capacity sliding window keeping a running sum (used to smooth the
/// per-batch WA series in the Fig. 10/17 reproductions).
class SlidingWindowMean {
 public:
  explicit SlidingWindowMean(size_t capacity) : capacity_(capacity) {}

  void Add(double x) {
    window_.push_back(x);
    sum_ += x;
    if (window_.size() > capacity_) {
      sum_ -= window_.front();
      window_.pop_front();
    }
  }

  size_t size() const { return window_.size(); }
  bool full() const { return window_.size() == capacity_; }
  double mean() const {
    return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
  }

  void Clear() {
    window_.clear();
    sum_ = 0.0;
  }

 private:
  size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

}  // namespace seplsm::stats

#endif  // SEPLSM_STATS_SLIDING_WINDOW_H_
