#ifndef SEPLSM_STATS_ECDF_H_
#define SEPLSM_STATS_ECDF_H_

#include <cstddef>
#include <vector>

namespace seplsm::stats {

/// Empirical cumulative distribution function over a fixed sample.
/// F(x) = (# samples <= x) / n. Quantile is the usual left-continuous
/// inverse. The sample is copied and sorted once at construction.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> sample);

  bool empty() const { return sorted_.empty(); }
  size_t size() const { return sorted_.size(); }

  double Cdf(double x) const;
  double Quantile(double q) const;
  double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }
  double mean() const { return mean_; }

  const std::vector<double>& sorted_sample() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Two-sample Kolmogorov–Smirnov distance sup_x |F1(x) - F2(x)|.
/// Used by the drift detector to decide when the delay distribution changed.
double KsDistance(const Ecdf& a, const Ecdf& b);

/// Asymptotic two-sample KS critical value at significance `alpha`
/// (e.g. 0.05): c(alpha) * sqrt((n+m)/(n*m)).
double KsCriticalValue(size_t n, size_t m, double alpha = 0.05);

}  // namespace seplsm::stats

#endif  // SEPLSM_STATS_ECDF_H_
