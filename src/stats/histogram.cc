#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace seplsm::stats {

FixedHistogram::FixedHistogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void FixedHistogram::Add(double value) {
  ++count_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  size_t i = static_cast<size_t>((value - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
  ++counts_[i];
}

void FixedHistogram::Merge(const FixedHistogram& other) {
  assert(other.lo_ == lo_ && other.hi_ == hi_ &&
         other.counts_.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
}

void FixedHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
}

double FixedHistogram::Quantile(double q) const {
  if (count_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string FixedHistogram::ToAscii(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    size_t bar = peak == 0 ? 0
                           : static_cast<size_t>(
                                 static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(max_width));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (overflow_ > 0) out << ">= " << hi_ << " : " << overflow_ << "\n";
  return out.str();
}

LogHistogram::LogHistogram(double min_value, double growth, size_t max_buckets)
    : min_value_(min_value), log_growth_(std::log(growth)),
      counts_(max_buckets, 0) {
  assert(min_value > 0.0 && growth > 1.0);
}

size_t LogHistogram::BucketFor(double value) const {
  if (value < min_value_) return 0;
  double b = std::log(value / min_value_) / log_growth_;
  size_t i = static_cast<size_t>(b) + 1;
  return std::min(i, counts_.size() - 1);
}

double LogHistogram::bucket_upper(size_t i) const {
  if (i + 1 >= counts_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  // Bucket 0 is [0, min_value); bucket i covers up to min_value * g^i.
  return min_value_ * std::exp(log_growth_ * static_cast<double>(i));
}

void LogHistogram::Add(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++counts_[BucketFor(value)];
}

void LogHistogram::Merge(const LogHistogram& other) {
  assert(other.min_value_ == min_value_ && other.log_growth_ == log_growth_ &&
         other.counts_.size() == counts_.size());
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target && counts_[i] > 0) {
      // Bucket edges: bucket 0 is [0, min_value); i>0 covers
      // [min_value*g^(i-1), min_value*g^i).
      if (i == 0) return min_value_ * 0.5;
      double lo = min_value_ * std::exp(log_growth_ * static_cast<double>(i - 1));
      double hi = lo * std::exp(log_growth_);
      return 0.5 * (lo + hi);
    }
  }
  return max_;
}

}  // namespace seplsm::stats
