#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace seplsm::stats {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
  if (!sorted_.empty()) {
    mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
            static_cast<double>(sorted_.size());
  }
}

double Ecdf::Cdf(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return sorted_.front();
  size_t idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

double KsDistance(const Ecdf& a, const Ecdf& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& xa = a.sorted_sample();
  const auto& xb = b.sorted_sample();
  double d = 0.0;
  size_t i = 0, j = 0;
  size_t n = xa.size(), m = xb.size();
  while (i < n && j < m) {
    double x = std::min(xa[i], xb[j]);
    while (i < n && xa[i] <= x) ++i;
    while (j < m && xb[j] <= x) ++j;
    double fa = static_cast<double>(i) / static_cast<double>(n);
    double fb = static_cast<double>(j) / static_cast<double>(m);
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

double KsCriticalValue(size_t n, size_t m, double alpha) {
  // c(alpha) = sqrt(-ln(alpha/2)/2)
  double c = std::sqrt(-std::log(alpha / 2.0) / 2.0);
  double nn = static_cast<double>(n);
  double mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

}  // namespace seplsm::stats
