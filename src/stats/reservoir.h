#ifndef SEPLSM_STATS_RESERVOIR_H_
#define SEPLSM_STATS_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace seplsm::stats {

/// Classic reservoir sample of up to `capacity` doubles from a stream.
/// The delay analyzer keeps a reservoir so the empirical CDF stays bounded
/// in memory regardless of ingest volume.
class ReservoirSample {
 public:
  explicit ReservoirSample(size_t capacity, uint64_t seed = 42)
      : capacity_(capacity), rng_(seed) {
    sample_.reserve(capacity);
  }

  void Add(double x) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(x);
      return;
    }
    uint64_t j = rng_.UniformU64(seen_);
    if (j < capacity_) sample_[static_cast<size_t>(j)] = x;
  }

  void Clear() {
    sample_.clear();
    seen_ = 0;
  }

  uint64_t seen() const { return seen_; }
  const std::vector<double>& sample() const { return sample_; }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<double> sample_;
  uint64_t seen_ = 0;
};

}  // namespace seplsm::stats

#endif  // SEPLSM_STATS_RESERVOIR_H_
