#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace seplsm::stats {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  assert(quantile > 0.0 && quantile < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * quantile, 1.0 + 4.0 * quantile,
              3.0 + 2.0 * quantile, 5.0};
  increments_ = {0.0, quantile / 2.0, quantile, (1.0 + quantile) / 2.0, 1.0};
}

double P2Quantile::Parabolic(int i, double d) const {
  double qi = heights_[i];
  double np = positions_[i + 1] - positions_[i];
  double nm = positions_[i] - positions_[i - 1];
  double hp = (heights_[i + 1] - qi) / np;
  double hm = (qi - heights_[i - 1]) / nm;
  return qi + d / (np + nm) * ((nm + d) * hp + (np - d) * hm);
}

double P2Quantile::Linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      double sign = d >= 0 ? 1.0 : -1.0;
      double candidate = Parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, sign);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    size_t idx = static_cast<size_t>(
        std::ceil(quantile_ * static_cast<double>(count_)));
    idx = idx == 0 ? 0 : idx - 1;
    return sorted[std::min(idx, static_cast<size_t>(count_ - 1))];
  }
  return heights_[2];
}

}  // namespace seplsm::stats
