#ifndef SEPLSM_STATS_ONLINE_STATS_H_
#define SEPLSM_STATS_ONLINE_STATS_H_

#include <cmath>
#include <cstdint>

namespace seplsm::stats {

/// Streaming mean/variance via Welford's algorithm, plus min/max.
class OnlineMoments {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
      min_ = max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
  }

  void Clear() {
    n_ = 0;
    mean_ = m2_ = min_ = max_ = 0.0;
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when n < 2.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace seplsm::stats

#endif  // SEPLSM_STATS_ONLINE_STATS_H_
