#ifndef SEPLSM_STATS_HISTOGRAM_H_
#define SEPLSM_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seplsm::stats {

/// A fixed-bin histogram over [lo, hi) with `bins` equal-width buckets plus
/// underflow/overflow buckets. Used for delay profiles (paper Fig. 8/19b).
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, size_t bins);

  void Add(double value);
  void Merge(const FixedHistogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bins() const { return counts_.size(); }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  /// Lower edge of bin i.
  double bin_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(size_t i) const { return bin_lo(i) + width_; }

  /// Approximate quantile (linear within the containing bin), q in [0, 1].
  double Quantile(double q) const;

  /// Multi-line ASCII rendering (for bench/report output).
  std::string ToAscii(size_t max_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
};

/// A log-scaled histogram for latency-style values spanning orders of
/// magnitude (value >= 0). Buckets grow geometrically from `min_value`.
class LogHistogram {
 public:
  /// Bucket i covers [min_value * growth^i, min_value * growth^(i+1)).
  explicit LogHistogram(double min_value = 1.0, double growth = 1.5,
                        size_t max_buckets = 120);

  void Add(double value);
  /// Adds `other`'s population; both histograms must share min_value/growth
  /// (asserted) so buckets line up.
  void Merge(const LogHistogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double Quantile(double q) const;
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double max() const { return max_; }
  double min() const { return count_ ? min_ : 0.0; }
  double sum() const { return sum_; }

  /// Bucket accessors (Prometheus native-histogram export): bucket 0 covers
  /// [0, min_value); bucket i covers [min_value*g^(i-1), min_value*g^i);
  /// the last bucket absorbs everything above. `bucket_upper(i)` is the
  /// exclusive upper edge (+inf for the last bucket) — a monotonically
  /// increasing `le` boundary sequence.
  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  double bucket_upper(size_t i) const;

 private:
  size_t BucketFor(double value) const;

  double min_value_;
  double log_growth_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace seplsm::stats

#endif  // SEPLSM_STATS_HISTOGRAM_H_
