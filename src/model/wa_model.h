#ifndef SEPLSM_MODEL_WA_MODEL_H_
#define SEPLSM_MODEL_WA_MODEL_H_

#include <cstddef>
#include <memory>

#include "dist/distribution.h"
#include "model/arrival_model.h"
#include "model/subsequent_model.h"

namespace seplsm::model {

/// Phase accounting for one r_s(n_seq) evaluation (paper §IV).
struct SeparationBreakdown {
  double g = 0.0;            ///< expected OOO per C_seq fill, Eq. 1
  double fills = 0.0;        ///< C_seq fill count per phase, n_nonseq / g
  double n_arrive = 0.0;     ///< Eq. 4
  double n_prime_seq = 0.0;  ///< points excluded from the in-phase rewrite
  double n_cur = 0.0;        ///< in-phase flushed points rewritten
  double n_bef = 0.0;        ///< ζ(N_arrive): pre-phase subsequent points
  double wa = 0.0;           ///< resulting write amplification
};

/// Write-amplification models for both policies (paper Eq. 3 and Eq. 5).
///
/// Note on Eq. 5: the paper's final simplified line contains an algebra
/// slip; expanding its own middle expression
/// (N_cur + N_bef + N_arrive) / N_arrive with
/// N_cur = N_arrive - (n - n_seq) - n'_seq gives
///   r_s = 2 + ζ(N_arrive)/N_arrive - (n - n_seq + n'_seq)/N_arrive,
/// which is what this class computes (it also matches the phase accounting:
/// every arrival is written once, plus in-phase rewrites N_cur, plus
/// pre-phase rewrites N_bef, and correctly tends to 2 — flush + one eventual
/// giant merge — as the out-of-order rate goes to zero, reproducing the
/// paper's Fig. 2 pathology).
class WaModel {
 public:
  /// Clones the distribution; self-contained afterwards.
  WaModel(const dist::DelayDistribution& delay_distribution, double delta_t,
          SubsequentModelOptions subsequent_options = {},
          double iota_offset = 0.0);

  /// Enables the *whole-SSTable granularity correction* — an extension to
  /// the paper's models. The subsequent-point models undercount because a
  /// merge rewrites every point of each overlapped SSTable, not just the
  /// subsequent ones; when a compaction's subsequent count is far below one
  /// SSTable (mild disorder, or a tiny C_nonseq producing short phases),
  /// the boundary file dominates the real cost. The correction adds
  /// `P(merge overlaps disk) * max(0, sstable_points - ζ)/per-phase-arrivals`
  /// to each estimate. 0 (default) keeps the paper-faithful models; the
  /// AdaptiveController enables it with the engine's SSTable size so the
  /// tuner never recommends a split whose merge cost is granularity-bound.
  void set_granularity_sstable_points(size_t points) {
    granularity_sstable_points_ = points;
  }
  size_t granularity_sstable_points() const {
    return granularity_sstable_points_;
  }

  /// r_c(n) = ζ(n)/n + 1 (Eq. 3).
  double ConventionalWa(size_t n) const;

  /// Expected extra write amplification from migrating points through the
  /// levels below L1 when the tree runs with `num_levels > 2` — an
  /// *extension* of the paper's two-level estimators (which this engine's
  /// default configuration matches exactly; the term is 0 for
  /// num_levels <= 2). Each point makes `num_levels - 2` hops from L1 to
  /// the deepest level. A hop is free when the migrating file lands in a
  /// next-level gap or the target level is stacked (the engine adopts the
  /// file without I/O); it rewrites the file — and, at SSTable
  /// granularity, one boundary file — only when out-of-order points
  /// widened its range into the next level's files. The per-hop overlap
  /// probability is approximated by P(a C0 fill contains at least one
  /// out-of-order point), the same proxy the granularity correction uses,
  /// making this an upper-bound-flavoured estimate: purely in-order
  /// workloads migrate for free and the term vanishes.
  double MultiLevelMigration(size_t n, size_t num_levels) const;

  /// r_c for an N-level tree: Eq. 3 plus the migration term.
  double ConventionalWaMultiLevel(size_t n, size_t num_levels) const {
    return ConventionalWa(n) + MultiLevelMigration(n, num_levels);
  }

  /// r_s with C_seq capacity n_seq out of total budget n (corrected Eq. 5).
  double SeparationWa(size_t n, size_t n_seq) const {
    return SeparationDetail(n, n_seq).wa;
  }

  /// r_s for an N-level tree: corrected Eq. 5 plus the migration term.
  /// Under separation only C_nonseq merges disturb the run, so the hop
  /// overlap is driven by the same fill-level OOO probability; the shared
  /// term keeps the two policies comparable (their *difference* — the
  /// quantity the tuner optimizes — is unchanged by the extension).
  double SeparationWaMultiLevel(size_t n, size_t n_seq,
                                size_t num_levels) const {
    return SeparationWa(n, n_seq) + MultiLevelMigration(n, num_levels);
  }

  /// Full phase accounting behind r_s.
  SeparationBreakdown SeparationDetail(size_t n, size_t n_seq) const;

  /// ζ(n) passthrough (Fig. 5).
  double Zeta(size_t n) const { return subsequent_.Estimate(n); }

  /// g(n_seq) passthrough (Eq. 1).
  double G(double n_seq) const { return arrival_.G(n_seq); }

  double delta_t() const { return delta_t_; }
  const dist::DelayDistribution& distribution() const { return *dist_; }

 private:
  dist::DistributionPtr dist_;
  double delta_t_;
  SubsequentModel subsequent_;
  ArrivalRateModel arrival_;
  size_t granularity_sstable_points_ = 0;
};

}  // namespace seplsm::model

#endif  // SEPLSM_MODEL_WA_MODEL_H_
