#ifndef SEPLSM_MODEL_TUNER_H_
#define SEPLSM_MODEL_TUNER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "engine/options.h"
#include "model/wa_model.h"

namespace seplsm::model {

struct TuningOptions {
  /// Sweep granularity for n_seq in [1, n-1]; 1 reproduces Algorithm 1
  /// verbatim, larger steps trade a slightly sub-optimal n̂*_seq for speed.
  size_t sweep_step = 1;
  /// Deployment bounds on the sweep (defaults reproduce Algorithm 1's full
  /// [1, n-1] range). Real systems bound both sides: n_seq is the flushed
  /// SSTable size (tiny n_seq floods the disk with one-point files), and
  /// n_nonseq bounds merge frequency. The query-workload benches set these.
  size_t min_nseq = 1;
  size_t min_nonseq = 1;
  /// After the coarse sweep, refine around the best point with step 1.
  bool refine = true;
  /// Keep the full (n_seq, r_s) curve in the result (Fig. 7 / Fig. 9).
  bool keep_curve = false;
  /// Non-zero enables WaModel's whole-SSTable granularity correction with
  /// this SSTable size (see WaModel::set_granularity_sstable_points).
  size_t granularity_sstable_points = 0;
  SubsequentModelOptions subsequent_options = {};
  double iota_offset = 0.0;
};

/// Output of the Separation Policy Tuning Algorithm (paper Algorithm 1).
struct TuningResult {
  engine::PolicyConfig recommended;   ///< π_c or π_s(n̂*_seq)
  double wa_conventional = 0.0;       ///< r_c(n)
  double wa_separation_best = 0.0;    ///< min over the sweep of r_s(n_seq)
  size_t best_nseq = 0;               ///< n̂*_seq
  std::vector<std::pair<size_t, double>> separation_curve;  ///< if requested
};

/// Paper Algorithm 1: given the delay distribution, generation interval and
/// memory budget n, predict r_c and min_{n_seq} r_s and recommend the
/// policy with the lower estimated WA.
TuningResult TunePolicy(const dist::DelayDistribution& delay_distribution,
                        double delta_t, size_t n,
                        const TuningOptions& options = {});

/// Same, reusing an existing WaModel (avoids rebuilding quadrature state).
TuningResult TunePolicy(const WaModel& model, size_t n,
                        const TuningOptions& options = {});

}  // namespace seplsm::model

#endif  // SEPLSM_MODEL_TUNER_H_
