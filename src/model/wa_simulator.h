#ifndef SEPLSM_MODEL_WA_SIMULATOR_H_
#define SEPLSM_MODEL_WA_SIMULATOR_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/point.h"
#include "engine/options.h"

namespace seplsm::model {

/// Result of a keys-only write-amplification simulation.
struct SimulatedWa {
  uint64_t points_ingested = 0;
  uint64_t points_flushed = 0;
  uint64_t points_rewritten = 0;
  uint64_t flush_count = 0;
  uint64_t merge_count = 0;

  double WriteAmplification() const {
    return points_ingested == 0
               ? 0.0
               : static_cast<double>(points_flushed + points_rewritten) /
                     static_cast<double>(points_ingested);
  }
};

/// A keys-only simulator of the engine's synchronous write path: it tracks
/// generation times through MemTables, flushes, and overlap merges exactly
/// like `TsEngine`, but carries no values, no blocks, no CRCs and no I/O.
/// This is the paper's "prototype system that records the writing times of
/// each data point" (§III): it measures WA an order of magnitude faster
/// than the real engine, and because it replicates the engine's rules
/// bit-for-bit it doubles as a differential-testing oracle
/// (WaSimulatorTest.MatchesEngineExactly).
class WaSimulator {
 public:
  WaSimulator(engine::PolicyConfig policy, size_t sstable_points);

  /// Feeds one arrival (upsert by generation time, like TsEngine::Append).
  void Append(int64_t generation_time);
  void Append(const DataPoint& point) { Append(point.generation_time); }

  /// Feeds a whole arrival-ordered stream.
  void AppendStream(const std::vector<DataPoint>& points) {
    for (const auto& p : points) Append(p.generation_time);
  }

  /// Drains the MemTables (same semantics as TsEngine::FlushAll).
  void FlushAll();

  const SimulatedWa& result() const { return result_; }
  size_t run_file_count() const { return run_.size(); }

  /// Rewritten-point count per merge (whole-file granularity, the
  /// measurement behind Fig. 5).
  const std::vector<uint64_t>& merge_rewrites() const {
    return merge_rewrites_;
  }

 private:
  struct SimFile {
    std::vector<int64_t> keys;  // sorted
    int64_t min_tg() const { return keys.front(); }
    int64_t max_tg() const { return keys.back(); }
  };

  void FlushSeq();
  void MergeIntoRun(std::set<int64_t>* table);
  void AppendKeysAsFiles(const std::vector<int64_t>& keys);
  int64_t RunMax() const;

  engine::PolicyConfig policy_;
  size_t sstable_points_;
  std::set<int64_t> c0_;
  std::set<int64_t> cseq_;
  std::set<int64_t> cnonseq_;
  std::vector<SimFile> run_;
  SimulatedWa result_;
  std::vector<uint64_t> merge_rewrites_;
};

}  // namespace seplsm::model

#endif  // SEPLSM_MODEL_WA_SIMULATOR_H_
