#include "model/subsequent_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "numeric/integration.h"

namespace seplsm::model {

namespace {

/// log(CDF) clamped so differences of prefix sums stay finite.
double ClampedLogCdf(const dist::DelayDistribution& d, double x) {
  double f = d.Cdf(x);
  if (f <= 0.0) return -745.0;  // exp(-745) underflows to 0
  double lf = std::log(f);
  return std::max(lf, -745.0);
}

}  // namespace

SubsequentModel::SubsequentModel(
    const dist::DelayDistribution& delay_distribution, double delta_t,
    SubsequentModelOptions options)
    : dist_(delay_distribution), delta_t_(delta_t), options_(options) {}

double SubsequentModel::TailIntegral(double from) const {
  double hi = dist_.Quantile(1.0 - 1e-12);
  if (hi <= from) return 0.0;
  return numeric::GeometricGaussLegendre(
      [this](double u) { return 1.0 - dist_.Cdf(u); }, from, hi,
      /*segments=*/24, /*points=*/16);
}

double SubsequentModel::LogCdfPrefix(size_t n, double x) const {
  // S(n) = sum_{m=1..n} ln F(m*dt + x). Once 1 - F drops below 1e-4,
  // ln F ~= -(1 - F) and the remaining sum is the survival integral —
  // this keeps the cost independent of n for the huge N_arrive values the
  // tuner can produce.
  const double dt = delta_t_;
  double sum = 0.0;
  size_t m = 1;
  for (; m <= n; ++m) {
    double arg = static_cast<double>(m) * dt + x;
    double survival = 1.0 - dist_.Cdf(arg);
    // Once ln F ~= -(1 - F) holds to ~0.1% the survival integral below is
    // as accurate as the term-by-term sum and far cheaper for heavy tails.
    if (survival < 2e-3) break;
    sum += ClampedLogCdf(dist_, arg);
  }
  if (m <= n) {
    double lo = (static_cast<double>(m) - 0.5) * dt + x;
    double hi = (static_cast<double>(n) + 0.5) * dt + x;
    double q_hi = dist_.Quantile(1.0 - 1e-12);
    hi = std::min(hi, std::max(q_hi, lo));
    if (hi > lo) {
      sum -= numeric::GeometricGaussLegendre(
                 [this](double u) { return 1.0 - dist_.Cdf(u); }, lo, hi,
                 /*segments=*/16, /*points=*/8) /
             dt;
    }
  }
  return sum;
}

double SubsequentModel::Estimate(size_t n) const {
  if (n == 0) return 0.0;
  const double dt = delta_t_;

  // Quadrature nodes over the delay density (the disk point's own delay x).
  double a = dist_.Quantile(options_.quantile_lo);
  double b = dist_.Quantile(options_.quantile_hi);
  if (!(b > a)) b = a + 1.0;
  struct Node {
    double x;
    double wf;
  };
  std::vector<Node> nodes;
  {
    const double ratio = 1.5;
    int segments = options_.quad_segments;
    double total_units = (std::pow(ratio, segments) - 1.0) / (ratio - 1.0);
    double width = (b - a) / total_units;
    double lo = a;
    for (int s = 0; s < segments; ++s) {
      double seg_hi = (s + 1 == segments) ? b : lo + width;
      // Gauss–Legendre points within [lo, seg_hi] via simple midpoint set:
      // use Chebyshev-like composite (equal-weight midpoints) — adequate
      // because segments already concentrate resolution near the mode.
      int pts = options_.quad_points;
      double h = (seg_hi - lo) / pts;
      for (int k = 0; k < pts; ++k) {
        double x = lo + (k + 0.5) * h;
        nodes.push_back({x, h * dist_.Pdf(x)});
      }
      lo = seg_hi;
      width *= ratio;
    }
  }
  double weight_sum = 0.0;
  for (const auto& node : nodes) weight_sum += node.wf;
  if (weight_sum <= 0.0) return 0.0;

  // Telescoping prefix sums: s_lo = S(i), s_hi = S(i+n) per node, where
  // S(k) = sum_{m=1..k} ln F(m*dt + x).
  std::vector<double> s_lo(nodes.size(), 0.0);
  std::vector<double> s_hi(nodes.size(), 0.0);
  for (size_t t = 0; t < nodes.size(); ++t) {
    s_hi[t] = LogCdfPrefix(n, nodes[t].x);
  }

  double total = 0.0;
  size_t i = 0;
  for (; i < options_.max_exact_terms; ++i) {
    double inner = 0.0;
    for (size_t t = 0; t < nodes.size(); ++t) {
      inner += nodes[t].wf * std::exp(s_hi[t] - s_lo[t]);
    }
    double p = 1.0 - inner / weight_sum;
    p = std::clamp(p, 0.0, 1.0);
    if (p < options_.tail_switch && i >= 8) break;
    total += p;
    double m_lo = static_cast<double>(i + 1) * dt;
    double m_hi = static_cast<double>(i + 1 + n) * dt;
    for (size_t t = 0; t < nodes.size(); ++t) {
      s_lo[t] += ClampedLogCdf(dist_, m_lo + nodes[t].x);
      s_hi[t] += ClampedLogCdf(dist_, m_hi + nodes[t].x);
    }
  }

  // Union-bound tail: sum over remaining depths i' >= i of
  // sum_{j=1..n} (1 - F((i'+j) dt)). Grouped by m = i'+j:
  //   m in (i, i+n]  -> weight (m - i)
  //   m > i+n        -> weight n     (via the survival integral)
  double tail = 0.0;
  const double survival_horizon = dist_.Quantile(1.0 - 1e-12);
  for (size_t m = i + 1; m <= i + n; ++m) {
    double arg = static_cast<double>(m) * dt;
    if (arg > survival_horizon) break;  // survival ~0 from here on
    tail += static_cast<double>(m - i) * (1.0 - dist_.Cdf(arg));
  }
  tail += static_cast<double>(n) / dt *
          TailIntegral((static_cast<double>(i + n) + 0.5) * dt);
  return total + tail;
}

double ZetaMonteCarlo(const dist::DelayDistribution& delay_distribution,
                      double delta_t, size_t n, size_t disk_points,
                      size_t rounds, uint64_t seed) {
  Rng rng(seed);
  // One long stream; sample windows at random offsets past a warm-up.
  size_t total_points = disk_points + n + 4 * (disk_points + n) + 1024;
  struct Arrival {
    double arrival_time;
    double generation_time;
  };
  std::vector<Arrival> stream(total_points);
  for (size_t i = 0; i < total_points; ++i) {
    double g = static_cast<double>(i) * delta_t;
    stream[i] = {g + delay_distribution.Sample(rng), g};
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  double total = 0.0;
  size_t warmup = disk_points;
  size_t max_start = total_points - n - 1;
  for (size_t r = 0; r < rounds; ++r) {
    size_t k = warmup + static_cast<size_t>(rng.UniformU64(max_start - warmup));
    // Buffer = arrivals [k, k+n); disk = arrivals [k - disk_points, k).
    double min_buffer_g = stream[k].generation_time;
    for (size_t j = 1; j < n; ++j) {
      min_buffer_g = std::min(min_buffer_g, stream[k + j].generation_time);
    }
    size_t lookback_begin = k >= disk_points ? k - disk_points : 0;
    size_t count = 0;
    for (size_t d = lookback_begin; d < k; ++d) {
      if (stream[d].generation_time > min_buffer_g) ++count;
    }
    total += static_cast<double>(count);
  }
  return total / static_cast<double>(rounds);
}

}  // namespace seplsm::model
