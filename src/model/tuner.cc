#include "model/tuner.h"

#include <algorithm>
#include <limits>

namespace seplsm::model {

TuningResult TunePolicy(const WaModel& model, size_t n,
                        const TuningOptions& options) {
  TuningResult result;
  result.wa_conventional = model.ConventionalWa(n);

  size_t step = std::max<size_t>(1, options.sweep_step);
  size_t sweep_lo = std::max<size_t>(1, options.min_nseq);
  size_t sweep_hi = n > options.min_nonseq ? n - options.min_nonseq : 0;
  double best_wa = std::numeric_limits<double>::infinity();
  size_t best_nseq = 0;
  auto evaluate = [&](size_t nseq) {
    double wa = model.SeparationWa(n, nseq);
    if (options.keep_curve) result.separation_curve.emplace_back(nseq, wa);
    if (wa < best_wa) {
      best_wa = wa;
      best_nseq = nseq;
    }
  };
  for (size_t x = sweep_lo; x <= sweep_hi; x += step) evaluate(x);
  if (step > 1 && sweep_hi >= sweep_lo &&
      (sweep_hi - sweep_lo) % step != 0) {
    evaluate(sweep_hi);
  }
  if (options.refine && step > 1 && best_nseq != 0) {
    size_t lo = best_nseq > sweep_lo + step ? best_nseq - step : sweep_lo;
    size_t hi = std::min(sweep_hi, best_nseq + step);
    for (size_t x = lo; x <= hi; ++x) {
      if (x >= sweep_lo && (x - sweep_lo) % step == 0) {
        continue;  // already evaluated
      }
      double wa = model.SeparationWa(n, x);
      if (options.keep_curve) result.separation_curve.emplace_back(x, wa);
      if (wa < best_wa) {
        best_wa = wa;
        best_nseq = x;
      }
    }
  }
  result.wa_separation_best = best_wa;
  result.best_nseq = best_nseq;
  if (options.keep_curve) {
    std::sort(result.separation_curve.begin(), result.separation_curve.end());
    result.separation_curve.erase(
        std::unique(result.separation_curve.begin(),
                    result.separation_curve.end(),
                    [](const auto& a, const auto& b) {
                      return a.first == b.first;
                    }),
        result.separation_curve.end());
  }

  if (best_wa < result.wa_conventional && best_nseq > 0) {
    result.recommended = engine::PolicyConfig::Separation(n, best_nseq);
  } else {
    result.recommended = engine::PolicyConfig::Conventional(n);
  }
  return result;
}

TuningResult TunePolicy(const dist::DelayDistribution& delay_distribution,
                        double delta_t, size_t n,
                        const TuningOptions& options) {
  WaModel model(delay_distribution, delta_t, options.subsequent_options,
                options.iota_offset);
  model.set_granularity_sstable_points(options.granularity_sstable_points);
  return TunePolicy(model, n, options);
}

}  // namespace seplsm::model
