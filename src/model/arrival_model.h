#ifndef SEPLSM_MODEL_ARRIVAL_MODEL_H_
#define SEPLSM_MODEL_ARRIVAL_MODEL_H_

#include <cstddef>

#include "dist/distribution.h"

namespace seplsm::model {

/// The arrival-rate ratio model of paper §II (Eq. 1).
///
/// After a C_seq flush sets LAST(R), the i-th subsequent arrival is in-order
/// with probability F(ι_i), ι_i ≈ i·Δt + offset. The expected number of
/// in-order points among α arrivals is x(α) = Σ_{i≤α} F(ι_i) and the
/// expected out-of-order count is g = α − x(α).
class ArrivalRateModel {
 public:
  /// `iota_offset` shifts ι_i to account for the (small) delay of the point
  /// that defines LAST(R); 0 reproduces the paper's approximation.
  ArrivalRateModel(const dist::DelayDistribution& delay_distribution,
                   double delta_t, double iota_offset = 0.0);

  /// x(α): expected in-order points among the first `alpha` arrivals.
  double ExpectedInOrder(double alpha) const;

  /// Smallest (fractional) α with x(α) >= in_order_target.
  /// in_order_target must be positive.
  double ArrivalsForInOrder(double in_order_target) const;

  /// g(n_seq) of Eq. 1: expected out-of-order arrivals collected while
  /// filling C_seq with n_seq in-order points.
  double G(double n_seq) const {
    return ArrivalsForInOrder(n_seq) - n_seq;
  }

 private:
  const dist::DelayDistribution& dist_;
  double delta_t_;
  double iota_offset_;
};

}  // namespace seplsm::model

#endif  // SEPLSM_MODEL_ARRIVAL_MODEL_H_
