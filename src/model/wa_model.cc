#include "model/wa_model.h"

#include <algorithm>
#include <cmath>

namespace seplsm::model {

WaModel::WaModel(const dist::DelayDistribution& delay_distribution,
                 double delta_t, SubsequentModelOptions subsequent_options,
                 double iota_offset)
    : dist_(delay_distribution.Clone()),
      delta_t_(delta_t),
      subsequent_(*dist_, delta_t, subsequent_options),
      arrival_(*dist_, delta_t, iota_offset) {}

double WaModel::ConventionalWa(size_t n) const {
  if (n == 0) return 1.0;
  double nd = static_cast<double>(n);
  double zeta = subsequent_.Estimate(n);
  double wa = zeta / nd + 1.0;
  if (granularity_sstable_points_ > 0) {
    // Probability that a C0 fill contains at least one out-of-order point
    // (only then does the flush overlap the run and rewrite a file).
    double expected_ooo = std::max(0.0, nd - arrival_.ExpectedInOrder(nd));
    double p_overlap = 1.0 - std::exp(-expected_ooo);
    double sstable = static_cast<double>(granularity_sstable_points_);
    wa += p_overlap * std::max(0.0, sstable - zeta) / nd;
  }
  return wa;
}

double WaModel::MultiLevelMigration(size_t n, size_t num_levels) const {
  if (num_levels <= 2 || n == 0) return 0.0;
  double nd = static_cast<double>(n);
  // P(a fill contains at least one out-of-order point): only such fills
  // produce files whose ranges interleave with already-migrated data, so
  // only they can pay rewrite I/O on a level hop (in-order files take the
  // gap-insert / append / MoveFile fast paths for free).
  double expected_ooo = std::max(0.0, nd - arrival_.ExpectedInOrder(nd));
  double p_overlap = 1.0 - std::exp(-expected_ooo);
  // An overlapping hop rewrites the migrating file once (per-point cost 1)
  // plus, at whole-SSTable granularity, the boundary file it lands in.
  double boundary = 0.0;
  if (granularity_sstable_points_ > 0) {
    double sstable = static_cast<double>(granularity_sstable_points_);
    double zeta = subsequent_.Estimate(n);
    boundary = std::max(0.0, sstable - zeta) / nd;
  }
  return static_cast<double>(num_levels - 2) * p_overlap * (1.0 + boundary);
}

SeparationBreakdown WaModel::SeparationDetail(size_t n, size_t n_seq) const {
  SeparationBreakdown out;
  double nd = static_cast<double>(n);
  double nseq = static_cast<double>(n_seq);
  double nnonseq = nd - nseq;
  out.g = std::max(arrival_.G(nseq), 1e-9);
  out.fills = nnonseq / out.g;
  out.n_arrive = nseq * out.fills + nnonseq;  // Eq. 4
  out.n_prime_seq = (1.0 + out.fills - std::floor(out.fills)) * nseq;
  out.n_cur = std::max(0.0, out.n_arrive - nnonseq - out.n_prime_seq);
  // For nearly ordered workloads g -> 0 and N_arrive explodes; ζ(N)/N is
  // already negligible long before that, so cap the argument.
  constexpr double kZetaArgCap = 1 << 22;
  size_t zeta_arg = static_cast<size_t>(
      std::llround(std::min(out.n_arrive, kZetaArgCap)));
  out.n_bef = subsequent_.Estimate(zeta_arg);
  if (granularity_sstable_points_ > 0) {
    // Granularity-aware accounting (see set_granularity_sstable_points):
    // 1. The n'_seq exclusion assumes the last flushed C_seq SSTable
    //    escapes the merge; with whole-file rewrites C_nonseq's top almost
    //    always lands inside it, so every in-phase flushed point is
    //    rewritten.
    // 2. The merge's bottom boundary file is rewritten in full even when
    //    few of its points are subsequent.
    double sstable = static_cast<double>(granularity_sstable_points_);
    double nnonseq_d = out.n_arrive >= nnonseq ? nnonseq : out.n_arrive;
    out.n_cur = std::max(0.0, out.n_arrive - nnonseq_d);
    out.wa = (out.n_arrive + out.n_cur + out.n_bef +
              std::max(0.0, sstable - out.n_bef)) /
             out.n_arrive;
    return out;
  }
  out.wa = (out.n_arrive + out.n_cur + out.n_bef) / out.n_arrive;
  return out;
}

}  // namespace seplsm::model
