#include "model/wa_simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace seplsm::model {

namespace {
constexpr int64_t kNoData = std::numeric_limits<int64_t>::min();
}  // namespace

WaSimulator::WaSimulator(engine::PolicyConfig policy, size_t sstable_points)
    : policy_(policy), sstable_points_(sstable_points) {
  assert(sstable_points > 0);
  assert(policy.memtable_capacity > 0);
}

int64_t WaSimulator::RunMax() const {
  return run_.empty() ? kNoData : run_.back().max_tg();
}

void WaSimulator::Append(int64_t generation_time) {
  ++result_.points_ingested;
  if (policy_.kind == engine::PolicyKind::kConventional) {
    c0_.insert(generation_time);
    if (c0_.size() >= policy_.memtable_capacity) MergeIntoRun(&c0_);
    return;
  }
  if (generation_time > RunMax()) {
    cseq_.insert(generation_time);
    if (cseq_.size() >= policy_.nseq_capacity) FlushSeq();
  } else {
    cnonseq_.insert(generation_time);
    if (cnonseq_.size() >= policy_.nonseq_capacity()) {
      MergeIntoRun(&cnonseq_);
    }
  }
}

void WaSimulator::AppendKeysAsFiles(const std::vector<int64_t>& keys) {
  size_t i = 0;
  while (i < keys.size()) {
    size_t take = std::min(sstable_points_, keys.size() - i);
    SimFile file;
    file.keys.assign(keys.begin() + static_cast<long>(i),
                     keys.begin() + static_cast<long>(i + take));
    run_.push_back(std::move(file));
    i += take;
  }
}

void WaSimulator::FlushSeq() {
  if (cseq_.empty()) return;
  // Mirrors TsEngine::FlushAboveRunLocked: C_seq is strictly above the run,
  // so the flush appends without rewriting (the defensive merge fallback of
  // the engine cannot trigger here: the run max only grows via FlushSeq).
  std::vector<int64_t> keys(cseq_.begin(), cseq_.end());
  assert(run_.empty() || keys.front() > RunMax());
  result_.points_flushed += keys.size();
  ++result_.flush_count;
  AppendKeysAsFiles(keys);
  cseq_.clear();
}

void WaSimulator::MergeIntoRun(std::set<int64_t>* table) {
  if (table->empty()) return;
  int64_t lo = *table->begin();
  int64_t hi = *table->rbegin();
  // Overlap slice [begin, end) like Version::OverlappingRunRange.
  size_t begin = 0;
  while (begin < run_.size() && run_[begin].max_tg() < lo) ++begin;
  size_t end = begin;
  while (end < run_.size() && run_[end].min_tg() <= hi) ++end;

  std::vector<int64_t> merged;
  uint64_t rewritten = 0;
  {
    std::vector<int64_t> disk;
    for (size_t i = begin; i < end; ++i) {
      disk.insert(disk.end(), run_[i].keys.begin(), run_[i].keys.end());
      rewritten += run_[i].keys.size();
    }
    merged.reserve(disk.size() + table->size());
    std::set_union(table->begin(), table->end(), disk.begin(), disk.end(),
                   std::back_inserter(merged));
  }

  std::vector<SimFile> replacements;
  {
    // Cut exactly like storage::WriteSortedPointsAsTables.
    size_t i = 0;
    while (i < merged.size()) {
      size_t take = std::min(sstable_points_, merged.size() - i);
      SimFile file;
      file.keys.assign(merged.begin() + static_cast<long>(i),
                       merged.begin() + static_cast<long>(i + take));
      replacements.push_back(std::move(file));
      i += take;
    }
  }
  run_.erase(run_.begin() + static_cast<long>(begin),
             run_.begin() + static_cast<long>(end));
  run_.insert(run_.begin() + static_cast<long>(begin),
              std::make_move_iterator(replacements.begin()),
              std::make_move_iterator(replacements.end()));

  result_.points_flushed += table->size();
  result_.points_rewritten += rewritten;
  ++result_.merge_count;
  merge_rewrites_.push_back(rewritten);
  table->clear();
}

void WaSimulator::FlushAll() {
  if (policy_.kind == engine::PolicyKind::kConventional) {
    MergeIntoRun(&c0_);
    return;
  }
  MergeIntoRun(&cnonseq_);
  FlushSeq();
}

}  // namespace seplsm::model
