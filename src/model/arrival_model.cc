#include "model/arrival_model.h"

#include <cmath>

namespace seplsm::model {

ArrivalRateModel::ArrivalRateModel(
    const dist::DelayDistribution& delay_distribution, double delta_t,
    double iota_offset)
    : dist_(delay_distribution), delta_t_(delta_t),
      iota_offset_(iota_offset) {}

double ArrivalRateModel::ExpectedInOrder(double alpha) const {
  if (alpha <= 0.0) return 0.0;
  double whole = std::floor(alpha);
  double sum = 0.0;
  for (double i = 1.0; i <= whole; i += 1.0) {
    sum += dist_.Cdf(i * delta_t_ + iota_offset_);
  }
  double frac = alpha - whole;
  if (frac > 0.0) {
    sum += frac * dist_.Cdf((whole + 1.0) * delta_t_ + iota_offset_);
  }
  return sum;
}

double ArrivalRateModel::ArrivalsForInOrder(double in_order_target) const {
  if (in_order_target <= 0.0) return 0.0;
  double sum = 0.0;
  double i = 0.0;
  // Each term adds F(i Δt) in (0, 1]; F -> 1, so the scan terminates in
  // O(target + E[delay]/Δt) steps. Guard the pathological all-mass-at-∞
  // case with a generous cap.
  const double cap = in_order_target * 1e6 + 1e7;
  while (sum < in_order_target && i < cap) {
    i += 1.0;
    double f = dist_.Cdf(i * delta_t_ + iota_offset_);
    if (sum + f >= in_order_target && f > 0.0) {
      // Fractional arrival within step i.
      return (i - 1.0) + (in_order_target - sum) / f;
    }
    sum += f;
  }
  return i;
}

}  // namespace seplsm::model
