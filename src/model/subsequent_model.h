#ifndef SEPLSM_MODEL_SUBSEQUENT_MODEL_H_
#define SEPLSM_MODEL_SUBSEQUENT_MODEL_H_

#include <cstddef>
#include <memory>

#include "dist/distribution.h"

namespace seplsm::model {

/// Numerical options for the ζ(n) estimator.
struct SubsequentModelOptions {
  /// Quadrature resolution over the delay density (geometric Gauss–Legendre).
  int quad_segments = 16;
  int quad_points = 8;
  /// Quantile truncation of the delay domain.
  double quantile_lo = 1e-7;
  double quantile_hi = 1.0 - 1e-9;
  /// Switch from the exact per-depth probability to the union-bound tail
  /// once P(B_i) falls below this value (the bound is within O(P^2) there).
  double tail_switch = 0.02;
  /// Hard cap on exact per-depth iterations.
  size_t max_exact_terms = 65536;
};

/// Estimator of ζ(n) — the expected number of *subsequent data points* on
/// disk when n points are buffered in memory (paper Eq. 2), given the delay
/// distribution and the generation interval Δt.
///
/// P(B_i) = 1 - ∫ f(x) · Π_{j=1..n} F((i+j)·Δt + x) dx  is evaluated with
/// the arrival-gap approximation T̃_m ≈ m·Δt, a telescoping log-CDF prefix
/// sum per quadrature node, and a union-bound tail correction
/// Σ_j (1 - F((i+j)Δt)) for depths where the probability is already small
/// (see DESIGN.md §2).
class SubsequentModel {
 public:
  SubsequentModel(const dist::DelayDistribution& delay_distribution,
                  double delta_t, SubsequentModelOptions options = {});

  /// Expected subsequent points for a buffer of n points. ζ(0) = 0.
  double Estimate(size_t n) const;

  double delta_t() const { return delta_t_; }

 private:
  double TailIntegral(double from) const;
  double LogCdfPrefix(size_t n, double x) const;

  const dist::DelayDistribution& dist_;
  double delta_t_;
  SubsequentModelOptions options_;
};

/// Monte-Carlo oracle for ζ(n): simulates `rounds` independent windows of a
/// synthetic arrival stream and counts subsequent points directly. Slow but
/// assumption-free on the arrival-gap approximation; used by the model
/// ablation bench and tests.
double ZetaMonteCarlo(const dist::DelayDistribution& delay_distribution,
                      double delta_t, size_t n, size_t disk_points,
                      size_t rounds, uint64_t seed);

}  // namespace seplsm::model

#endif  // SEPLSM_MODEL_SUBSEQUENT_MODEL_H_
