#ifndef SEPLSM_SEPLSM_H_
#define SEPLSM_SEPLSM_H_

/// \file
/// Umbrella header for the seplsm library — a leveled LSM-tree engine for
/// out-of-order time-series data with the separation policy (π_s), the
/// conventional policy (π_c), write-amplification estimation models, and the
/// adaptive delay analyzer, reproducing Kang et al., "Separation or Not: On
/// Handling Out-of-Order Time-Series Data in Leveled LSM-Tree" (ICDE 2022).
///
/// Typical use:
///
///   seplsm::engine::Options options;
///   options.dir = "/tmp/db";
///   options.policy = seplsm::engine::PolicyConfig::Separation(512, 256);
///   auto db = seplsm::engine::TsEngine::Open(options);
///   db.value()->Append({generation_time, arrival_time, value});
///
/// or let the analyzer pick the policy:
///
///   seplsm::analyzer::AdaptiveController controller(db->get());
///   controller.Observe(point);   // before/after each Append

#include "analyzer/adaptive_controller.h"
#include "analyzer/delay_collector.h"
#include "analyzer/drift_detector.h"
#include "analyzer/fitter.h"
#include "common/point.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "dist/distribution.h"
#include "dist/empirical.h"
#include "dist/gamma.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "dist/shifted.h"
#include "engine/metrics.h"
#include "engine/multi_series_db.h"
#include "engine/options.h"
#include "engine/ts_engine.h"
#include "env/env.h"
#include "env/fault_env.h"
#include "env/latency_env.h"
#include "env/mem_env.h"
#include "model/arrival_model.h"
#include "model/subsequent_model.h"
#include "model/tuner.h"
#include "model/wa_model.h"
#include "model/wa_simulator.h"
#include "obs/http_exporter.h"
#include "stats/autocorrelation.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "storage/integrity.h"
#include "storage/query_explain.h"
#include "telemetry/stats_dump.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"
#include "workload/synthetic.h"
#include "workload/trace_io.h"

#endif  // SEPLSM_SEPLSM_H_
