#ifndef SEPLSM_ANALYZER_ADAPTIVE_CONTROLLER_H_
#define SEPLSM_ANALYZER_ADAPTIVE_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "analyzer/delay_collector.h"
#include "analyzer/drift_detector.h"
#include "analyzer/fitter.h"
#include "common/status.h"
#include "engine/ts_engine.h"
#include "model/tuner.h"

namespace seplsm::analyzer {

/// The paper's delay-analyzer module: observes the write stream, maintains
/// the delay profile, and — on startup and whenever the delay distribution
/// drifts — re-runs the Separation Policy Tuning Algorithm (Algorithm 1)
/// and reconfigures the engine (π_adaptive).
///
/// Usage: call Observe(point) for every point *before or after* handing it
/// to the engine; the controller calls TsEngine::SwitchPolicy itself.
class AdaptiveController {
 public:
  struct Options {
    /// Run the first tuning decision after this many points.
    uint64_t warmup_points = 4096;
    /// Test for drift every this many points.
    uint64_t check_interval = 2048;
    size_t reservoir_capacity = 4096;
    size_t recent_window = 2048;
    DriftDetector::Options drift;
    FitterOptions fitter;
    model::TuningOptions tuning;
    /// Bounded length of the policy-decision audit ring (oldest entries are
    /// evicted; `audit_dropped()` counts evictions). 0 disables auditing.
    size_t audit_capacity = 256;
  };

  /// A tuning decision that was applied (or re-confirmed).
  struct Decision {
    uint64_t at_points = 0;          ///< points observed when decided
    std::string fitted_family;
    double wa_conventional = 0.0;
    double wa_separation_best = 0.0;
    engine::PolicyConfig chosen;
    bool switched = false;           ///< engine policy actually changed
  };

  /// One audited tuning decision: the Decision plus the analyzer inputs it
  /// was derived from, as observed at decision time. This is the
  /// `/debug/policy` record (DESIGN.md §15): enough to answer "why did the
  /// controller pick (or keep) this policy?" after the fact.
  struct AuditEntry {
    uint64_t at_points = 0;      ///< points observed when decided
    std::string trigger;         ///< "warmup" or "drift"
    double delta_t = 0.0;        ///< estimated generation interval Δt
    double median_delay = 0.0;   ///< streaming P50 of delays
    double p99_delay = 0.0;      ///< streaming P99 of delays
    /// Estimated out-of-order rate: the fraction of the sampled delays
    /// exceeding Δt (a point delayed by more than one generation interval
    /// lands behind at least one later point).
    double ooo_rate = 0.0;
    std::string fitted_family;   ///< delay-distribution family that won
    double wa_conventional = 0.0;    ///< predicted r_c (π_c)
    double wa_separation_best = 0.0; ///< predicted best r_s (π_s)
    std::string chosen;          ///< PolicyConfig::ToString() of the pick
    bool switched = false;       ///< engine policy actually changed

    std::string ToJson() const;
  };

  /// `engine` must outlive the controller.
  explicit AdaptiveController(engine::TsEngine* engine)
      : AdaptiveController(engine, Options()) {}
  AdaptiveController(engine::TsEngine* engine, Options options);

  /// Feeds one point's statistics; may trigger a policy switch.
  Status Observe(const DataPoint& point);

  /// Feeds a whole batch in one call (the batched-append path): the caller
  /// pays one call — and, in MultiSeriesDB, one shard-lock hold — per
  /// batch instead of per point. Statistics and tuning triggers are
  /// identical to `count` sequential Observes.
  Status ObserveBatch(const DataPoint* points, size_t count);

  const std::vector<Decision>& decisions() const { return decisions_; }
  const DelayCollector& collector() const { return collector_; }

  /// Snapshot of the audit ring, oldest first. Thread-safe (unlike
  /// `decisions()`, which follows the controller's external-synchronization
  /// contract): HTTP exporter threads read this while the write path holds
  /// the shard lock.
  std::vector<AuditEntry> AuditLog() const;
  /// Entries evicted from the ring so far (ring overflow, not data loss —
  /// the Prometheus counters still carry the totals).
  uint64_t audit_dropped() const;
  /// The audit ring as a JSON array (the `/debug/policy` payload body).
  std::string AuditJson() const;

 private:
  Status RunTuning(const char* trigger);
  static bool SameConfig(const engine::PolicyConfig& a,
                         const engine::PolicyConfig& b);

  engine::TsEngine* engine_;
  Options options_;
  DelayCollector collector_;
  DriftDetector drift_;
  std::vector<Decision> decisions_;
  uint64_t observed_ = 0;
  uint64_t next_check_ = 0;

  /// Audit ring: written by RunTuning (under the caller's write-path
  /// synchronization), read by exporter scrape threads — hence its own
  /// mutex even though the rest of the controller is externally
  /// synchronized.
  mutable std::mutex audit_mutex_;
  std::deque<AuditEntry> audit_;
  uint64_t audit_dropped_ = 0;
};

}  // namespace seplsm::analyzer

#endif  // SEPLSM_ANALYZER_ADAPTIVE_CONTROLLER_H_
