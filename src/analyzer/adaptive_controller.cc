#include "analyzer/adaptive_controller.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace seplsm::analyzer {

namespace {

std::string JsonString(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// Bumps a named counter on the engine's telemetry hub (no-op when
/// observability is off). The controller's own instrumentation: tuning
/// cadence and drift-triggered refits show up next to the POLICY_SWITCH
/// spans the engine records.
void BumpCounter(engine::TsEngine* engine, const char* name) {
  telemetry::Telemetry* t = engine->options().telemetry.get();
  if (telemetry::Active(t)) t->registry().GetCounter(name)->Add(1);
}

}  // namespace

AdaptiveController::AdaptiveController(engine::TsEngine* engine,
                                       Options options)
    : engine_(engine),
      options_(options),
      collector_(options.reservoir_capacity, options.recent_window),
      drift_(options.drift),
      next_check_(options.warmup_points) {}

bool AdaptiveController::SameConfig(const engine::PolicyConfig& a,
                                    const engine::PolicyConfig& b) {
  if (a.kind != b.kind || a.memtable_capacity != b.memtable_capacity) {
    return false;
  }
  return a.kind == engine::PolicyKind::kConventional ||
         a.nseq_capacity == b.nseq_capacity;
}

Status AdaptiveController::Observe(const DataPoint& point) {
  collector_.Observe(point);
  ++observed_;
  if (observed_ < next_check_) return Status::OK();
  next_check_ = observed_ + options_.check_interval;

  if (!drift_.has_reference()) {
    // First decision after warm-up: fit, tune, install reference profile.
    SEPLSM_RETURN_IF_ERROR(RunTuning("warmup"));
    drift_.SetReference(collector_.sample());
    return Status::OK();
  }
  if (drift_.IsDrift(collector_.RecentSample())) {
    SEPLSM_LOG(Info) << "delay drift detected after " << observed_
                     << " points; re-tuning";
    BumpCounter(engine_, "analyzer_drift_detections");
    // Rebuild the profile from recent data only: the old reservoir mixes
    // both regimes. Timing statistics (Δt) keep their history.
    std::vector<double> recent = collector_.RecentSample();
    collector_.ResetDelays();
    for (double d : recent) collector_.AddDelay(d);
    SEPLSM_RETURN_IF_ERROR(RunTuning("drift"));
    drift_.SetReference(collector_.sample());
  }
  return Status::OK();
}

Status AdaptiveController::ObserveBatch(const DataPoint* points,
                                        size_t count) {
  for (size_t i = 0; i < count; ++i) {
    SEPLSM_RETURN_IF_ERROR(Observe(points[i]));
  }
  return Status::OK();
}

std::string AdaptiveController::AuditEntry::ToJson() const {
  std::ostringstream out;
  out << "{\"at_points\":" << at_points
      << ",\"trigger\":" << JsonString(trigger)
      << ",\"delta_t\":" << delta_t
      << ",\"median_delay\":" << median_delay
      << ",\"p99_delay\":" << p99_delay
      << ",\"ooo_rate\":" << ooo_rate
      << ",\"fitted_family\":" << JsonString(fitted_family)
      << ",\"wa_conventional\":" << wa_conventional
      << ",\"wa_separation_best\":" << wa_separation_best
      << ",\"chosen\":" << JsonString(chosen)
      << ",\"switched\":" << (switched ? "true" : "false") << "}";
  return out.str();
}

std::vector<AdaptiveController::AuditEntry> AdaptiveController::AuditLog()
    const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return {audit_.begin(), audit_.end()};
}

uint64_t AdaptiveController::audit_dropped() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return audit_dropped_;
}

std::string AdaptiveController::AuditJson() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  std::ostringstream out;
  out << "{\"dropped\":" << audit_dropped_ << ",\"entries\":[";
  bool first = true;
  for (const AuditEntry& entry : audit_) {
    if (!first) out << ",";
    first = false;
    out << entry.ToJson();
  }
  out << "]}";
  return out.str();
}

Status AdaptiveController::RunTuning(const char* trigger) {
  auto fit = FitDelayDistribution(collector_.sample(), options_.fitter);
  if (!fit.ok()) return fit.status();

  double delta_t = collector_.EstimateDeltaT(/*fallback=*/1.0);
  if (delta_t <= 0.0) delta_t = 1.0;
  size_t n = engine_->options().policy.memtable_capacity;
  // Tip: setting options_.tuning.granularity_sstable_points to the engine's
  // sstable_points makes the estimates granularity-aware (recommended for
  // mildly disordered workloads; see WaModel::set_granularity_sstable_points).
  model::TuningResult tuned =
      model::TunePolicy(*fit->distribution, delta_t, n, options_.tuning);

  Decision decision;
  decision.at_points = observed_;
  decision.fitted_family = fit->family;
  decision.wa_conventional = tuned.wa_conventional;
  decision.wa_separation_best = tuned.wa_separation_best;
  decision.chosen = tuned.recommended;
  decision.switched =
      !SameConfig(engine_->options().policy, tuned.recommended);
  BumpCounter(engine_, "analyzer_tuning_decisions");
  if (decision.switched) {
    BumpCounter(engine_, "analyzer_policy_switches");
    SEPLSM_LOG(Info) << "switching policy to "
                     << tuned.recommended.ToString()
                     << " (r_c=" << tuned.wa_conventional
                     << ", r_s*=" << tuned.wa_separation_best << ")";
    SEPLSM_RETURN_IF_ERROR(engine_->SwitchPolicy(tuned.recommended));
  }
  if (options_.audit_capacity > 0) {
    AuditEntry entry;
    entry.at_points = decision.at_points;
    entry.trigger = trigger;
    entry.delta_t = delta_t;
    entry.median_delay = collector_.MedianDelay();
    entry.p99_delay = collector_.P99Delay();
    const std::vector<double>& sample = collector_.sample();
    if (!sample.empty()) {
      size_t ooo = 0;
      for (double d : sample) {
        if (d > delta_t) ++ooo;
      }
      entry.ooo_rate =
          static_cast<double>(ooo) / static_cast<double>(sample.size());
    }
    entry.fitted_family = decision.fitted_family;
    entry.wa_conventional = decision.wa_conventional;
    entry.wa_separation_best = decision.wa_separation_best;
    entry.chosen = decision.chosen.ToString();
    entry.switched = decision.switched;
    std::lock_guard<std::mutex> lock(audit_mutex_);
    audit_.push_back(std::move(entry));
    while (audit_.size() > options_.audit_capacity) {
      audit_.pop_front();
      ++audit_dropped_;
    }
  }
  decisions_.push_back(std::move(decision));
  return Status::OK();
}

}  // namespace seplsm::analyzer
