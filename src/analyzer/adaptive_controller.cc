#include "analyzer/adaptive_controller.h"

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace seplsm::analyzer {

namespace {

/// Bumps a named counter on the engine's telemetry hub (no-op when
/// observability is off). The controller's own instrumentation: tuning
/// cadence and drift-triggered refits show up next to the POLICY_SWITCH
/// spans the engine records.
void BumpCounter(engine::TsEngine* engine, const char* name) {
  telemetry::Telemetry* t = engine->options().telemetry.get();
  if (telemetry::Active(t)) t->registry().GetCounter(name)->Add(1);
}

}  // namespace

AdaptiveController::AdaptiveController(engine::TsEngine* engine,
                                       Options options)
    : engine_(engine),
      options_(options),
      collector_(options.reservoir_capacity, options.recent_window),
      drift_(options.drift),
      next_check_(options.warmup_points) {}

bool AdaptiveController::SameConfig(const engine::PolicyConfig& a,
                                    const engine::PolicyConfig& b) {
  if (a.kind != b.kind || a.memtable_capacity != b.memtable_capacity) {
    return false;
  }
  return a.kind == engine::PolicyKind::kConventional ||
         a.nseq_capacity == b.nseq_capacity;
}

Status AdaptiveController::Observe(const DataPoint& point) {
  collector_.Observe(point);
  ++observed_;
  if (observed_ < next_check_) return Status::OK();
  next_check_ = observed_ + options_.check_interval;

  if (!drift_.has_reference()) {
    // First decision after warm-up: fit, tune, install reference profile.
    SEPLSM_RETURN_IF_ERROR(RunTuning());
    drift_.SetReference(collector_.sample());
    return Status::OK();
  }
  if (drift_.IsDrift(collector_.RecentSample())) {
    SEPLSM_LOG(Info) << "delay drift detected after " << observed_
                     << " points; re-tuning";
    BumpCounter(engine_, "analyzer_drift_detections");
    // Rebuild the profile from recent data only: the old reservoir mixes
    // both regimes. Timing statistics (Δt) keep their history.
    std::vector<double> recent = collector_.RecentSample();
    collector_.ResetDelays();
    for (double d : recent) collector_.AddDelay(d);
    SEPLSM_RETURN_IF_ERROR(RunTuning());
    drift_.SetReference(collector_.sample());
  }
  return Status::OK();
}

Status AdaptiveController::ObserveBatch(const DataPoint* points,
                                        size_t count) {
  for (size_t i = 0; i < count; ++i) {
    SEPLSM_RETURN_IF_ERROR(Observe(points[i]));
  }
  return Status::OK();
}

Status AdaptiveController::RunTuning() {
  auto fit = FitDelayDistribution(collector_.sample(), options_.fitter);
  if (!fit.ok()) return fit.status();

  double delta_t = collector_.EstimateDeltaT(/*fallback=*/1.0);
  if (delta_t <= 0.0) delta_t = 1.0;
  size_t n = engine_->options().policy.memtable_capacity;
  // Tip: setting options_.tuning.granularity_sstable_points to the engine's
  // sstable_points makes the estimates granularity-aware (recommended for
  // mildly disordered workloads; see WaModel::set_granularity_sstable_points).
  model::TuningResult tuned =
      model::TunePolicy(*fit->distribution, delta_t, n, options_.tuning);

  Decision decision;
  decision.at_points = observed_;
  decision.fitted_family = fit->family;
  decision.wa_conventional = tuned.wa_conventional;
  decision.wa_separation_best = tuned.wa_separation_best;
  decision.chosen = tuned.recommended;
  decision.switched =
      !SameConfig(engine_->options().policy, tuned.recommended);
  BumpCounter(engine_, "analyzer_tuning_decisions");
  if (decision.switched) {
    BumpCounter(engine_, "analyzer_policy_switches");
    SEPLSM_LOG(Info) << "switching policy to "
                     << tuned.recommended.ToString()
                     << " (r_c=" << tuned.wa_conventional
                     << ", r_s*=" << tuned.wa_separation_best << ")";
    SEPLSM_RETURN_IF_ERROR(engine_->SwitchPolicy(tuned.recommended));
  }
  decisions_.push_back(std::move(decision));
  return Status::OK();
}

}  // namespace seplsm::analyzer
