#include "analyzer/fitter.h"

#include <algorithm>
#include <cmath>

#include "dist/empirical.h"
#include "dist/gamma.h"
#include "dist/parametric.h"
#include "stats/ecdf.h"

namespace seplsm::analyzer {

namespace {

/// One-sample KS distance between a continuous CDF and the sample ECDF.
double KsAgainstSample(const dist::DelayDistribution& d,
                       const std::vector<double>& sorted) {
  double ks = 0.0;
  size_t n = sorted.size();
  for (size_t i = 0; i < n; ++i) {
    double f = d.Cdf(sorted[i]);
    double lo = static_cast<double>(i) / static_cast<double>(n);
    double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    ks = std::max(ks, std::max(std::fabs(f - lo), std::fabs(f - hi)));
  }
  return ks;
}

}  // namespace

Result<FitResult> FitDelayDistribution(const std::vector<double>& sample,
                                       const FitterOptions& options) {
  if (sample.empty()) {
    return Status::InvalidArgument("FitDelayDistribution: empty sample");
  }
  std::vector<double> sorted = sample;
  for (double& x : sorted) x = std::max(x, 0.0);
  std::sort(sorted.begin(), sorted.end());

  FitResult best;
  best.ks_distance = std::numeric_limits<double>::infinity();

  auto consider = [&](dist::DistributionPtr d, const std::string& family) {
    double ks = KsAgainstSample(*d, sorted);
    if (ks < best.ks_distance) {
      best.distribution = std::move(d);
      best.family = family;
      best.ks_distance = ks;
    }
  };

  double mean = 0.0;
  for (double x : sorted) mean += x;
  mean /= static_cast<double>(sorted.size());

  if (options.try_lognormal) {
    // Moment estimates on log(delay); zeros nudged to a small epsilon
    // relative to the positive minimum.
    double eps = 1e-6;
    for (double x : sorted) {
      if (x > 0.0) {
        eps = std::max(1e-9, x * 1e-3);
        break;
      }
    }
    double log_mean = 0.0;
    for (double x : sorted) log_mean += std::log(std::max(x, eps));
    log_mean /= static_cast<double>(sorted.size());
    double log_var = 0.0;
    for (double x : sorted) {
      double z = std::log(std::max(x, eps)) - log_mean;
      log_var += z * z;
    }
    log_var /= static_cast<double>(std::max<size_t>(1, sorted.size() - 1));
    double sigma = std::sqrt(std::max(log_var, 1e-12));
    consider(std::make_unique<dist::LognormalDistribution>(log_mean, sigma),
             "lognormal");
  }
  if (options.try_exponential && mean > 0.0) {
    consider(std::make_unique<dist::ExponentialDistribution>(mean),
             "exponential");
  }
  if (options.try_gamma && mean > 0.0) {
    // Method of moments: shape = mean^2 / var, scale = var / mean.
    double var = 0.0;
    for (double x : sorted) var += (x - mean) * (x - mean);
    var /= static_cast<double>(std::max<size_t>(1, sorted.size() - 1));
    if (var > 0.0) {
      double shape = mean * mean / var;
      double scale = var / mean;
      if (shape > 1e-3 && shape < 1e4) {
        consider(std::make_unique<dist::GammaDistribution>(shape, scale),
                 "gamma");
      }
    }
  }

  if (best.distribution == nullptr ||
      best.ks_distance > options.max_parametric_ks) {
    FitResult empirical;
    empirical.distribution = std::make_unique<dist::EmpiricalDistribution>(
        sorted, options.empirical_density_bins);
    empirical.family = "empirical";
    empirical.ks_distance = KsAgainstSample(*empirical.distribution, sorted);
    // The interpolated empirical CDF is essentially the ECDF; prefer it when
    // no parametric family fits.
    return empirical;
  }
  return best;
}

}  // namespace seplsm::analyzer
