#ifndef SEPLSM_ANALYZER_DELAY_COLLECTOR_H_
#define SEPLSM_ANALYZER_DELAY_COLLECTOR_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/point.h"
#include "stats/online_stats.h"
#include "stats/quantile_sketch.h"
#include "stats/reservoir.h"

namespace seplsm::analyzer {

/// Online statistical profile of a write stream: delays (reservoir sample +
/// moments), a bounded window of the most recent delays (for drift
/// detection), and generation-time extremes (for the Δt estimate).
///
/// This is the data-gathering half of the paper's delay analyzer (§I-D).
/// Delay statistics can be reset independently of the timing statistics so
/// that, after a detected drift, the profile is rebuilt from the new regime
/// while the Δt estimate keeps its full history.
class DelayCollector {
 public:
  explicit DelayCollector(size_t reservoir_capacity = 4096,
                          size_t recent_window = 2048,
                          uint64_t seed = 20220517)
      : reservoir_(reservoir_capacity, seed), recent_capacity_(recent_window) {}

  void Observe(const DataPoint& point) {
    AddDelay(static_cast<double>(point.delay()));
    ++timing_count_;
    min_generation_ = std::min(min_generation_, point.generation_time);
    max_generation_ = std::max(max_generation_, point.generation_time);
  }

  /// Adds a bare delay (no timing information).
  void AddDelay(double delay) {
    moments_.Add(delay);
    reservoir_.Add(delay);
    p50_.Add(delay);
    p99_.Add(delay);
    recent_.push_back(delay);
    if (recent_.size() > recent_capacity_) recent_.pop_front();
  }

  uint64_t count() const { return moments_.count(); }
  const stats::OnlineMoments& moments() const { return moments_; }

  /// Long-term delay sample (reservoir over the current regime).
  const std::vector<double>& sample() const { return reservoir_.sample(); }

  /// The most recent `recent_window` delays.
  std::vector<double> RecentSample() const {
    return {recent_.begin(), recent_.end()};
  }

  /// Estimated generation interval Δt, assuming near-constant frequency:
  /// (max - min generation time) / (points - 1). Returns `fallback` until
  /// two points were observed.
  double EstimateDeltaT(double fallback = 1.0) const {
    if (timing_count_ < 2) return fallback;
    double dt = static_cast<double>(max_generation_ - min_generation_) /
                static_cast<double>(timing_count_ - 1);
    return dt > 0.0 ? dt : fallback;
  }

  /// O(1)-memory streaming percentiles (P² sketches).
  double MedianDelay() const { return p50_.Value(); }
  double P99Delay() const { return p99_.Value(); }

  /// Clears the delay profile (drift recovery); timing stats are kept.
  void ResetDelays() {
    moments_.Clear();
    reservoir_.Clear();
    p50_ = stats::P2Quantile(0.5);
    p99_ = stats::P2Quantile(0.99);
    recent_.clear();
  }

 private:
  stats::OnlineMoments moments_;
  stats::ReservoirSample reservoir_;
  stats::P2Quantile p50_{0.5};
  stats::P2Quantile p99_{0.99};
  size_t recent_capacity_;
  std::deque<double> recent_;
  uint64_t timing_count_ = 0;
  int64_t min_generation_ = std::numeric_limits<int64_t>::max();
  int64_t max_generation_ = std::numeric_limits<int64_t>::min();
};

}  // namespace seplsm::analyzer

#endif  // SEPLSM_ANALYZER_DELAY_COLLECTOR_H_
