#ifndef SEPLSM_ANALYZER_DRIFT_DETECTOR_H_
#define SEPLSM_ANALYZER_DRIFT_DETECTOR_H_

#include <cstddef>
#include <vector>

#include "stats/ecdf.h"

namespace seplsm::analyzer {

/// Detects changes in the delay distribution by comparing a frozen
/// *reference* sample against the most recent window with the two-sample
/// Kolmogorov–Smirnov distance. Drives the π_adaptive policy switches of
/// the paper's Fig. 10/17 experiments.
class DriftDetector {
 public:
  struct Options {
    /// Flag drift when KS distance exceeds `ks_margin` × the asymptotic
    /// 5%-significance critical value.
    double ks_margin = 1.5;
    /// Minimum samples on both sides before testing.
    size_t min_samples = 256;
  };

  DriftDetector() : DriftDetector(Options()) {}
  explicit DriftDetector(Options options) : options_(options) {}

  /// Installs the current "normal" delay profile.
  void SetReference(std::vector<double> sample) {
    reference_ = stats::Ecdf(std::move(sample));
  }

  bool has_reference() const { return !reference_.empty(); }

  /// Returns true when `recent` deviates significantly from the reference.
  bool IsDrift(const std::vector<double>& recent) const {
    if (reference_.size() < options_.min_samples ||
        recent.size() < options_.min_samples) {
      return false;
    }
    stats::Ecdf recent_ecdf(recent);
    double d = stats::KsDistance(reference_, recent_ecdf);
    double critical =
        stats::KsCriticalValue(reference_.size(), recent.size(), 0.05);
    return d > options_.ks_margin * critical;
  }

 private:
  Options options_;
  stats::Ecdf reference_;
};

}  // namespace seplsm::analyzer

#endif  // SEPLSM_ANALYZER_DRIFT_DETECTOR_H_
