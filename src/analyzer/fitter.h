#ifndef SEPLSM_ANALYZER_FITTER_H_
#define SEPLSM_ANALYZER_FITTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/distribution.h"

namespace seplsm::analyzer {

/// A fitted delay distribution plus goodness-of-fit diagnostics.
struct FitResult {
  dist::DistributionPtr distribution;
  std::string family;   ///< "lognormal", "exponential", "empirical"
  double ks_distance = 0.0;  ///< against the sample ECDF
};

struct FitterOptions {
  /// Parametric fits whose KS distance exceeds this fall back to the
  /// empirical distribution (paper §V-E: real delays often have systematic
  /// modes no standard family captures).
  double max_parametric_ks = 0.08;
  /// Try these families (moment/MLE estimators) before falling back.
  bool try_lognormal = true;
  bool try_exponential = true;
  bool try_gamma = true;
  size_t empirical_density_bins = 64;
};

/// Fits a delay distribution to an i.i.d.-assumed sample (the analyzer's
/// statistical-profile step). Requires a non-empty sample.
Result<FitResult> FitDelayDistribution(const std::vector<double>& sample,
                                       const FitterOptions& options = {});

}  // namespace seplsm::analyzer

#endif  // SEPLSM_ANALYZER_FITTER_H_
