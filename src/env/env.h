#ifndef SEPLSM_ENV_ENV_H_
#define SEPLSM_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace seplsm {

/// Append-only file handle used by the SSTable writer and the WAL.
///
/// Durability contract: `Flush` pushes buffered bytes to the file system
/// (visible to readers, not crash-durable); `Sync` additionally forces them
/// to the device (`fdatasync` under PosixEnv) — data acknowledged by a
/// successful `Sync` must survive a crash. `Close` flushes and releases the
/// handle; its Status must be checked, since a buffered write can fail as
/// late as close.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positioned-read file handle used by the SSTable reader.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to n bytes at `offset` into *out (replaced, not appended).
  /// Short reads at EOF are not an error; *out is sized to what was read.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;

  virtual uint64_t Size() const = 0;
};

/// Abstraction over the file system so the engine can run against real files
/// (`PosixEnv`), purely in memory (`MemEnv`, tests), with injected device
/// latency (`LatencyEnv`, HDD simulation for the query-latency experiments),
/// or with injected failures (`FaultInjectionEnv`, robustness tests).
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) = 0;

  /// Opens `fname` for appending, preserving existing contents (created
  /// when absent). The base implementation emulates append by rewriting the
  /// current contents through NewWritableFile; envs with native append
  /// (PosixEnv via O_APPEND, MemEnv by seeding the buffer) override it.
  virtual Status NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* file) {
    std::string existing;
    if (FileExists(fname)) {
      std::unique_ptr<RandomAccessFile> reader;
      SEPLSM_RETURN_IF_ERROR(NewRandomAccessFile(fname, &reader));
      SEPLSM_RETURN_IF_ERROR(
          reader->Read(0, static_cast<size_t>(reader->Size()), &existing));
    }
    SEPLSM_RETURN_IF_ERROR(NewWritableFile(fname, file));
    if (!existing.empty()) {
      SEPLSM_RETURN_IF_ERROR((*file)->Append(existing));
    }
    return Status::OK();
  }

  /// Durability barrier for directory metadata: after a successful SyncDir,
  /// every create/rename/remove previously performed inside `dirname` must
  /// survive a crash. On Posix this is an fsync of the directory fd — a file
  /// fsync alone does not make its directory entry durable. Envs without
  /// real directories treat it as a no-op.
  virtual Status SyncDir(const std::string& dirname) {
    (void)dirname;
    return Status::OK();
  }

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& dst) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status ListDir(const std::string& dirname,
                         std::vector<std::string>* children) = 0;

  /// Process-wide Posix environment.
  static Env* Default();
};

}  // namespace seplsm

#endif  // SEPLSM_ENV_ENV_H_
