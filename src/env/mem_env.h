#ifndef SEPLSM_ENV_MEM_ENV_H_
#define SEPLSM_ENV_MEM_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"

namespace seplsm {

/// In-memory Env: a flat map from path to contents. Directories are
/// implicit (a prefix ending in '/'). Thread-safe. Used by tests and by the
/// latency-simulation benches, where device time is injected explicitly and
/// real disk I/O would only add noise.
class MemEnv final : public Env {
 public:
  MemEnv() = default;

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override;
  bool FileExists(const std::string& fname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RemoveFile(const std::string& fname) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status ListDir(const std::string& dirname,
                 std::vector<std::string>* children) override;

  /// Total bytes held across all files (test/diagnostic aid).
  uint64_t TotalBytes();

 private:
  friend class MemWritableFile;

  void Put(const std::string& fname, std::string contents);

  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<std::string>> files_;
};

}  // namespace seplsm

#endif  // SEPLSM_ENV_MEM_ENV_H_
