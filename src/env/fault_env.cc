#include "env/fault_env.h"

namespace seplsm {

namespace {

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    SEPLSM_RETURN_IF_ERROR(env_->CheckOp());
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    SEPLSM_RETURN_IF_ERROR(env_->CheckOp());
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    SEPLSM_RETURN_IF_ERROR(env_->CheckReadOp());
    return base_->Read(offset, n, out);
  }
  uint64_t Size() const override { return base_->Size(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

}  // namespace

Status FaultInjectionEnv::CheckOp() {
  int64_t limit = fail_after_ops_.load(std::memory_order_relaxed);
  int64_t count = ops_.fetch_add(1, std::memory_order_relaxed);
  if (limit >= 0 && count >= limit) {
    return Status::IOError("injected fault");
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  SEPLSM_RETURN_IF_ERROR(CheckOp());
  std::unique_ptr<WritableFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  *file = std::make_unique<FaultWritableFile>(this, std::move(base_file));
  return Status::OK();
}

Status FaultInjectionEnv::CheckReadOp() {
  if (fail_reads_.load(std::memory_order_relaxed)) {
    return Status::IOError("injected read fault");
  }
  return CheckOp();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* file) {
  SEPLSM_RETURN_IF_ERROR(CheckReadOp());
  std::unique_ptr<RandomAccessFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base_file));
  *file = std::make_unique<FaultRandomAccessFile>(this, std::move(base_file));
  return Status::OK();
}

}  // namespace seplsm
