#include "env/fault_env.h"

#include <algorithm>

namespace seplsm {

namespace {

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string fname,
                    std::unique_ptr<WritableFile> base, uint64_t initial_bytes)
      : env_(env),
        fname_(std::move(fname)),
        base_(std::move(base)),
        bytes_(initial_bytes) {}

  Status Append(std::string_view data) override {
    SEPLSM_RETURN_IF_ERROR(env_->CheckOp());
    SEPLSM_RETURN_IF_ERROR(base_->Append(data));
    bytes_ += data.size();
    return Status::OK();
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    SEPLSM_RETURN_IF_ERROR(env_->CheckSyncOp());
    // Flush first so the base env's published contents cover everything the
    // sync acknowledges (MemEnv publishes on Flush, PosixEnv on write(2)).
    SEPLSM_RETURN_IF_ERROR(base_->Flush());
    SEPLSM_RETURN_IF_ERROR(base_->Sync());
    env_->MarkSynced(fname_, bytes_);
    return Status::OK();
  }
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
  uint64_t bytes_;  ///< total file size after our appends
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    SEPLSM_RETURN_IF_ERROR(env_->CheckReadOp());
    return base_->Read(offset, n, out);
  }
  uint64_t Size() const override { return base_->Size(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

}  // namespace

Status FaultInjectionEnv::CheckOp() {
  int64_t limit = fail_after_ops_.load(std::memory_order_relaxed);
  int64_t count = ops_.fetch_add(1, std::memory_order_relaxed);
  if (limit >= 0 && count >= limit) {
    return Status::IOError("injected fault");
  }
  return Status::OK();
}

Status FaultInjectionEnv::CheckReadOp() {
  if (fail_reads_.load(std::memory_order_relaxed)) {
    return Status::IOError("injected read fault");
  }
  return CheckOp();
}

Status FaultInjectionEnv::CheckSyncOp() {
  if (fail_syncs_.load(std::memory_order_relaxed)) {
    return Status::IOError("injected sync fault");
  }
  return CheckOp();
}

void FaultInjectionEnv::MarkSynced(const std::string& fname, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tracked_.find(fname);
  if (it != tracked_.end()) {
    it->second.synced_bytes = std::max(it->second.synced_bytes, bytes);
  }
}

std::string FaultInjectionEnv::ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash);
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  SEPLSM_RETURN_IF_ERROR(CheckOp());
  const bool existed = base_->FileExists(fname);
  std::unique_ptr<WritableFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A truncating create restarts durability from zero even for a file that
    // was durable before: the truncation is modeled as hitting the device
    // immediately, so a crash now leaves an empty file, not the old bytes.
    // This is the harshest outcome Posix permits and the one that exposes
    // truncate-in-place WAL rotation.
    auto it = tracked_.find(fname);
    if (it != tracked_.end()) {
      it->second.synced_bytes = 0;  // entry durability carries over
    } else {
      FileState state;
      state.synced_bytes = 0;
      state.entry_durable = existed;  // entry predates us -> durable
      tracked_.emplace(fname, state);
    }
  }
  *file = std::make_unique<FaultWritableFile>(this, fname,
                                              std::move(base_file), 0);
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  SEPLSM_RETURN_IF_ERROR(CheckOp());
  uint64_t existing = 0;
  const bool existed = base_->FileExists(fname);
  if (existed) {
    SEPLSM_RETURN_IF_ERROR(base_->GetFileSize(fname, &existing));
  }
  std::unique_ptr<WritableFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &base_file));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tracked_.find(fname);
    if (it == tracked_.end()) {
      // First touch: whatever is on "disk" predates us and is durable.
      FileState state;
      state.synced_bytes = existing;
      state.entry_durable = existed;
      tracked_.emplace(fname, state);
    }
  }
  *file = std::make_unique<FaultWritableFile>(this, fname,
                                              std::move(base_file), existing);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* file) {
  SEPLSM_RETURN_IF_ERROR(CheckReadOp());
  std::unique_ptr<RandomAccessFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base_file));
  *file = std::make_unique<FaultRandomAccessFile>(this, std::move(base_file));
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  SEPLSM_RETURN_IF_ERROR(base_->RemoveFile(fname));
  std::lock_guard<std::mutex> lock(mutex_);
  // Unlinks are modeled as immediately durable (no resurrection after
  // crash); dropping the state keeps SimulateCrash from re-creating it.
  tracked_.erase(fname);
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& dst) {
  PendingRename undo;
  undo.src = src;
  undo.dst = dst;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    undo.dst_existed = base_->FileExists(dst);
    if (undo.dst_existed) {
      SEPLSM_RETURN_IF_ERROR(ReadBaseFile(dst, &undo.old_dst_contents));
    }
    auto dst_it = tracked_.find(dst);
    if (dst_it != tracked_.end()) {
      undo.dst_was_tracked = true;
      undo.old_dst_state = dst_it->second;
    }
    SEPLSM_RETURN_IF_ERROR(base_->RenameFile(src, dst));
    // The moved file keeps its content durability but its directory entry
    // under the new name is volatile until the next SyncDir.
    FileState moved;
    auto src_it = tracked_.find(src);
    if (src_it != tracked_.end()) {
      moved = src_it->second;
      tracked_.erase(src_it);
    } else {
      uint64_t size = 0;
      (void)base_->GetFileSize(dst, &size);
      moved.synced_bytes = size;  // untracked source: previously durable
      moved.entry_durable = true;
    }
    undo.src_entry_durable = moved.entry_durable;
    moved.entry_durable = false;
    tracked_[dst] = moved;
    pending_renames_.push_back(std::move(undo));
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dirname) {
  SEPLSM_RETURN_IF_ERROR(CheckSyncOp());
  SEPLSM_RETURN_IF_ERROR(base_->SyncDir(dirname));
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [path, state] : tracked_) {
    if (ParentDir(path) == dirname) state.entry_durable = true;
  }
  pending_renames_.erase(
      std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                     [&](const PendingRename& r) {
                       return ParentDir(r.dst) == dirname;
                     }),
      pending_renames_.end());
  return Status::OK();
}

Status FaultInjectionEnv::ReadBaseFile(const std::string& fname,
                                       std::string* out) {
  std::unique_ptr<RandomAccessFile> f;
  SEPLSM_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &f));
  return f->Read(0, static_cast<size_t>(f->Size()), out);
}

Status FaultInjectionEnv::WriteBaseFile(const std::string& fname,
                                        const std::string& contents) {
  std::unique_ptr<WritableFile> f;
  SEPLSM_RETURN_IF_ERROR(base_->NewWritableFile(fname, &f));
  SEPLSM_RETURN_IF_ERROR(f->Append(contents));
  return f->Close();
}

Status FaultInjectionEnv::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  // 1. Roll back renames whose directory entry never became durable,
  //    newest first so chained renames unwind in order. The renamed file's
  //    bytes travel back to the source name together with their tracking
  //    state; the destination reverts to its pre-rename contents.
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    std::string current;
    if (base_->FileExists(it->dst)) {
      SEPLSM_RETURN_IF_ERROR(ReadBaseFile(it->dst, &current));
      SEPLSM_RETURN_IF_ERROR(WriteBaseFile(it->src, current));
    }
    auto state_it = tracked_.find(it->dst);
    if (state_it != tracked_.end()) {
      FileState restored = state_it->second;
      restored.entry_durable = it->src_entry_durable;
      tracked_[it->src] = restored;
      tracked_.erase(state_it);
    }
    if (it->dst_existed) {
      SEPLSM_RETURN_IF_ERROR(WriteBaseFile(it->dst, it->old_dst_contents));
      if (it->dst_was_tracked) tracked_[it->dst] = it->old_dst_state;
    } else if (base_->FileExists(it->dst)) {
      SEPLSM_RETURN_IF_ERROR(base_->RemoveFile(it->dst));
      tracked_.erase(it->dst);
    }
  }
  pending_renames_.clear();
  // 2. Apply per-file durability: drop files whose entry never hit the
  //    directory, truncate the rest to their last-synced prefix.
  for (auto& [path, state] : tracked_) {
    if (!base_->FileExists(path)) continue;
    if (!state.entry_durable) {
      SEPLSM_RETURN_IF_ERROR(base_->RemoveFile(path));
      continue;
    }
    uint64_t size = 0;
    SEPLSM_RETURN_IF_ERROR(base_->GetFileSize(path, &size));
    if (size > state.synced_bytes) {
      std::string contents;
      SEPLSM_RETURN_IF_ERROR(ReadBaseFile(path, &contents));
      contents.resize(static_cast<size_t>(state.synced_bytes));
      SEPLSM_RETURN_IF_ERROR(WriteBaseFile(path, contents));
    }
  }
  // The survivors are the new durable baseline.
  tracked_.clear();
  return Status::OK();
}

}  // namespace seplsm
