#include "env/mem_env.h"

#include <algorithm>

namespace seplsm {

namespace {

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<std::string> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->clear();
    if (offset >= data_->size()) return Status::OK();
    size_t avail = data_->size() - static_cast<size_t>(offset);
    out->assign(data_->data() + offset, std::min(n, avail));
    return Status::OK();
  }

  uint64_t Size() const override { return data_->size(); }

 private:
  std::shared_ptr<std::string> data_;
};

}  // namespace

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(MemEnv* env, std::string fname, std::string initial = "")
      : env_(env), fname_(std::move(fname)), buffer_(std::move(initial)) {}

  ~MemWritableFile() override { PublishLocked(); }

  Status Append(std::string_view data) override {
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }

  Status Flush() override {
    PublishLocked();
    return Status::OK();
  }

  Status Sync() override { return Flush(); }

  Status Close() override {
    PublishLocked();
    return Status::OK();
  }

 private:
  void PublishLocked() { env_->Put(fname_, buffer_); }

  MemEnv* env_;
  std::string fname_;
  std::string buffer_;
};

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* file) {
  *file = std::make_unique<MemWritableFile>(this, fname);
  return Status::OK();
}

Status MemEnv::NewAppendableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) {
  // Seed the write buffer with the current contents; publishing then
  // re-stores old + new bytes, exactly like O_APPEND on a real fs.
  std::string existing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = files_.find(fname);
    if (it != files_.end()) existing = *it->second;
  }
  *file = std::make_unique<MemWritableFile>(this, fname, std::move(existing));
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* file) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  *file = std::make_unique<MemRandomAccessFile>(it->second);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(fname) > 0;
}

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  *size = it->second->size();
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(fname) == 0) return Status::NotFound(fname);
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& dst) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound(src);
  files_[dst] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::CreateDirIfMissing(const std::string& dirname) {
  (void)dirname;  // directories are implicit
  return Status::OK();
}

Status MemEnv::ListDir(const std::string& dirname,
                       std::vector<std::string>* children) {
  children->clear();
  std::string prefix = dirname;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::lock_guard<std::mutex> lock(mutex_);
  std::string last_dir;
  for (const auto& [path, contents] : files_) {
    (void)contents;
    if (path.rfind(prefix, 0) == 0) {
      std::string rest = path.substr(prefix.size());
      if (rest.empty()) continue;
      size_t slash = rest.find('/');
      if (slash == std::string::npos) {
        children->push_back(rest);
      } else {
        // Implicit child directory (reported once, like Posix readdir).
        std::string dir = rest.substr(0, slash);
        if (dir != last_dir) {
          children->push_back(dir);
          last_dir = dir;
        }
      }
    }
  }
  return Status::OK();
}

uint64_t MemEnv::TotalBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [path, contents] : files_) {
    (void)path;
    total += contents->size();
  }
  return total;
}

void MemEnv::Put(const std::string& fname, std::string contents) {
  std::lock_guard<std::mutex> lock(mutex_);
  files_[fname] = std::make_shared<std::string>(std::move(contents));
}

}  // namespace seplsm
