#ifndef SEPLSM_ENV_FAULT_ENV_H_
#define SEPLSM_ENV_FAULT_ENV_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"

namespace seplsm {

/// Fault-injection wrapper with two cooperating roles:
///
/// 1. **Error injection** — after `fail_after_ops` successful I/O operations
///    (appends + reads + opens + syncs + dir syncs), every subsequent
///    operation returns IOError; `SetFailReads`/`SetFailSyncs` break one
///    operation class selectively. Robustness tests use this to check that
///    the engine surfaces errors as Status instead of crashing.
///
/// 2. **Crash simulation** — the env tracks, per file written through it,
///    how many bytes the last successful Sync covered and whether the
///    file's directory entry was made durable by a SyncDir. `SimulateCrash`
///    rewinds the base env to exactly what a power loss would leave:
///    * un-synced bytes past the last Sync are dropped (a truncating
///      create counts as "synced to 0 immediately" — the harshest legal
///      outcome, which is precisely what catches truncate-in-place bugs);
///    * files created since the last SyncDir of their directory lose their
///      directory entry entirely, even if their contents were fsynced;
///    * renames not yet covered by a SyncDir are rolled back (the
///      pre-rename destination is restored).
///    Files that existed before this env first touched them are considered
///    durable as-is; RemoveFile is modeled as immediately durable (no
///    unlink resurrection). Call SimulateCrash only after the writers are
///    closed/destroyed, the way a test tears the engine down first.
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Arms the fault: ops beyond this count fail. Negative disarms.
  void SetFailAfterOps(int64_t fail_after_ops) {
    fail_after_ops_.store(fail_after_ops, std::memory_order_relaxed);
    ops_.store(0, std::memory_order_relaxed);
  }

  /// Fails only the read side (NewRandomAccessFile / Read) while writes keep
  /// succeeding — models a device that still accepts appends but cannot be
  /// read back. Lets tests break compaction (which must read its inputs)
  /// without breaking flushes.
  void SetFailReads(bool fail) {
    fail_reads_.store(fail, std::memory_order_relaxed);
  }

  /// Fails only WritableFile::Sync and SyncDir while buffered writes keep
  /// succeeding — models a device whose write cache accepts data but whose
  /// flush command errors. Data "written" under this fault must be treated
  /// as volatile.
  void SetFailSyncs(bool fail) {
    fail_syncs_.store(fail, std::memory_order_relaxed);
  }

  /// Number of I/O ops observed since the last SetFailAfterOps.
  int64_t ops() const { return ops_.load(std::memory_order_relaxed); }

  /// Rewinds the base env to the durable state (see class comment), then
  /// resets the tracking so the survivors form the new durable baseline.
  /// Does not touch the fail switches; disarm them before reopening.
  Status SimulateCrash();

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override;
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RemoveFile(const std::string& fname) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status ListDir(const std::string& dirname,
                 std::vector<std::string>* children) override {
    return base_->ListDir(dirname, children);
  }
  Status SyncDir(const std::string& dirname) override;

  /// Internal: returns non-OK when the fault is tripped; counts the op.
  Status CheckOp();
  /// Internal: CheckOp plus the reads-only fault.
  Status CheckReadOp();
  /// Internal: CheckOp plus the syncs-only fault.
  Status CheckSyncOp();
  /// Internal: a tracked file's Sync succeeded covering `bytes`.
  void MarkSynced(const std::string& fname, uint64_t bytes);

 private:
  /// Durability bookkeeping for one file written through this env.
  struct FileState {
    uint64_t synced_bytes = 0;  ///< prefix covered by the last Sync
    bool entry_durable = false; ///< dir entry survived a SyncDir (or predates us)
  };

  /// Undo record for a rename not yet covered by SyncDir.
  struct PendingRename {
    std::string src;
    std::string dst;
    bool dst_existed = false;
    std::string old_dst_contents;    ///< base contents of dst pre-rename
    bool dst_was_tracked = false;
    FileState old_dst_state;
    /// Whether the SOURCE entry was durable pre-rename: a rollback must
    /// restore the source with its old durability, not the destination
    /// entry's (always-volatile) flag — else a crash would delete both
    /// names, an outcome Posix never produces.
    bool src_entry_durable = false;
  };

  static std::string ParentDir(const std::string& path);
  Status ReadBaseFile(const std::string& fname, std::string* out);
  Status WriteBaseFile(const std::string& fname, const std::string& contents);

  Env* base_;
  std::atomic<int64_t> fail_after_ops_{-1};
  std::atomic<bool> fail_reads_{false};
  std::atomic<bool> fail_syncs_{false};
  std::atomic<int64_t> ops_{0};

  std::mutex mutex_;                        ///< guards the tracking state
  std::map<std::string, FileState> tracked_;
  std::vector<PendingRename> pending_renames_;
};

}  // namespace seplsm

#endif  // SEPLSM_ENV_FAULT_ENV_H_
