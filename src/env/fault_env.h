#ifndef SEPLSM_ENV_FAULT_ENV_H_
#define SEPLSM_ENV_FAULT_ENV_H_

#include <atomic>
#include <memory>
#include <string>

#include "env/env.h"

namespace seplsm {

/// Fault-injection wrapper: after `fail_after_ops` successful I/O operations
/// (appends + reads + opens), every subsequent operation returns IOError.
/// Used by robustness tests to check that the engine surfaces errors as
/// Status instead of crashing or corrupting state.
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Arms the fault: ops beyond this count fail. Negative disarms.
  void SetFailAfterOps(int64_t fail_after_ops) {
    fail_after_ops_.store(fail_after_ops, std::memory_order_relaxed);
    ops_.store(0, std::memory_order_relaxed);
  }

  /// Fails only the read side (NewRandomAccessFile / Read) while writes keep
  /// succeeding — models a device that still accepts appends but cannot be
  /// read back. Lets tests break compaction (which must read its inputs)
  /// without breaking flushes.
  void SetFailReads(bool fail) {
    fail_reads_.store(fail, std::memory_order_relaxed);
  }

  /// Number of I/O ops observed since the last SetFailAfterOps.
  int64_t ops() const { return ops_.load(std::memory_order_relaxed); }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override;
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status RenameFile(const std::string& src, const std::string& dst) override {
    return base_->RenameFile(src, dst);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status ListDir(const std::string& dirname,
                 std::vector<std::string>* children) override {
    return base_->ListDir(dirname, children);
  }

  /// Internal: returns non-OK when the fault is tripped; counts the op.
  Status CheckOp();
  /// Internal: CheckOp plus the reads-only fault.
  Status CheckReadOp();

 private:
  Env* base_;
  std::atomic<int64_t> fail_after_ops_{-1};
  std::atomic<bool> fail_reads_{false};
  std::atomic<int64_t> ops_{0};
};

}  // namespace seplsm

#endif  // SEPLSM_ENV_FAULT_ENV_H_
