#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "env/env.h"

namespace seplsm {

namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, std::FILE* f)
      : fname_(std::move(fname)), file_(f) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IOError(fname_ + ": closed");
    size_t written = std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) return ErrnoStatus(fname_ + " write");
    return Status::OK();
  }

  Status Flush() override {
    if (file_ != nullptr && std::fflush(file_) != 0) {
      return ErrnoStatus(fname_ + " flush");
    }
    return Status::OK();
  }

  Status Sync() override { return Flush(); }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return ErrnoStatus(fname_ + " close");
    return Status::OK();
  }

 private:
  std::string fname_;
  std::FILE* file_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, std::FILE* f, uint64_t size)
      : fname_(std::move(fname)), file_(f), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    if (n == 0) return Status::OK();
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return ErrnoStatus(fname_ + " seek");
    }
    size_t got = std::fread(out->data(), 1, n, file_);
    if (got < n && std::ferror(file_)) {
      return ErrnoStatus(fname_ + " read");
    }
    out->resize(got);
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  std::FILE* file_;
  uint64_t size_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::FILE* f = std::fopen(fname.c_str(), "wb");
    if (f == nullptr) return ErrnoStatus(fname + " open for write");
    *file = std::make_unique<PosixWritableFile>(fname, f);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    std::FILE* f = std::fopen(fname.c_str(), "rb");
    if (f == nullptr) return ErrnoStatus(fname + " open for read");
    std::error_code ec;
    uint64_t size = fs::file_size(fname, ec);
    if (ec) {
      std::fclose(f);
      return Status::IOError(fname + " size: " + ec.message());
    }
    *file = std::make_unique<PosixRandomAccessFile>(fname, f, size);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::error_code ec;
    return fs::exists(fname, ec);
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    std::error_code ec;
    uint64_t s = fs::file_size(fname, ec);
    if (ec) return Status::IOError(fname + " size: " + ec.message());
    *size = s;
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    std::error_code ec;
    if (!fs::remove(fname, ec) || ec) {
      return Status::IOError(fname + " remove: " +
                             (ec ? ec.message() : "not found"));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& dst) override {
    std::error_code ec;
    fs::rename(src, dst, ec);
    if (ec) return Status::IOError(src + " -> " + dst + ": " + ec.message());
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    std::error_code ec;
    fs::create_directories(dirname, ec);
    if (ec) return Status::IOError(dirname + " mkdir: " + ec.message());
    return Status::OK();
  }

  Status ListDir(const std::string& dirname,
                 std::vector<std::string>* children) override {
    children->clear();
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dirname, ec)) {
      children->push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError(dirname + " list: " + ec.message());
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static Env* env = new PosixEnv();
  return env;
}

}  // namespace seplsm
