#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

#include "env/env.h"

namespace seplsm {

namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

/// fd-based writable file: a user-space buffer in front of write(2), with
/// Sync() = flush + fdatasync so acknowledged-durable bytes really reach
/// the device. The previous FILE*-based implementation's Sync was fflush
/// only — nothing ever hit the platter, and wal_sync_every_append was a
/// silent no-op.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      // Best effort: callers that care about the result use Close().
      (void)FlushBuffered();
      ::close(fd_);
    }
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError(fname_ + ": closed");
    buffer_.append(data.data(), data.size());
    if (buffer_.size() >= kBufferBytes) return FlushBuffered();
    return Status::OK();
  }

  Status Flush() override {
    if (fd_ < 0) return Status::IOError(fname_ + ": closed");
    return FlushBuffered();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError(fname_ + ": closed");
    SEPLSM_RETURN_IF_ERROR(FlushBuffered());
    // fdatasync: file contents durable; size-change metadata is included,
    // timestamps are not (we never rely on them).
    if (::fdatasync(fd_) != 0) return ErrnoStatus(fname_ + " fdatasync");
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    Status st = FlushBuffered();
    if (::close(fd_) != 0 && st.ok()) st = ErrnoStatus(fname_ + " close");
    fd_ = -1;
    return st;
  }

 private:
  static constexpr size_t kBufferBytes = 64 * 1024;

  Status FlushBuffered() {
    const char* p = buffer_.data();
    size_t left = buffer_.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(fname_ + " write");
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    buffer_.clear();
    return Status::OK();
  }

  std::string fname_;
  int fd_;
  std::string buffer_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, std::FILE* f, uint64_t size)
      : fname_(std::move(fname)), file_(f), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    if (n == 0) return Status::OK();
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return ErrnoStatus(fname_ + " seek");
    }
    size_t got = std::fread(out->data(), 1, n, file_);
    if (got < n && std::ferror(file_)) {
      return ErrnoStatus(fname_ + " read");
    }
    out->resize(got);
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  std::FILE* file_;
  uint64_t size_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    return OpenWritable(fname, O_CREAT | O_TRUNC | O_WRONLY, file);
  }

  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override {
    return OpenWritable(fname, O_CREAT | O_APPEND | O_WRONLY, file);
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    std::FILE* f = std::fopen(fname.c_str(), "rb");
    if (f == nullptr) return ErrnoStatus(fname + " open for read");
    std::error_code ec;
    uint64_t size = fs::file_size(fname, ec);
    if (ec) {
      std::fclose(f);
      return Status::IOError(fname + " size: " + ec.message());
    }
    *file = std::make_unique<PosixRandomAccessFile>(fname, f, size);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::error_code ec;
    return fs::exists(fname, ec);
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    std::error_code ec;
    uint64_t s = fs::file_size(fname, ec);
    if (ec) return Status::IOError(fname + " size: " + ec.message());
    *size = s;
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    std::error_code ec;
    if (!fs::remove(fname, ec) || ec) {
      return Status::IOError(fname + " remove: " +
                             (ec ? ec.message() : "not found"));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& dst) override {
    std::error_code ec;
    fs::rename(src, dst, ec);
    if (ec) return Status::IOError(src + " -> " + dst + ": " + ec.message());
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    std::error_code ec;
    fs::create_directories(dirname, ec);
    if (ec) return Status::IOError(dirname + " mkdir: " + ec.message());
    return Status::OK();
  }

  Status ListDir(const std::string& dirname,
                 std::vector<std::string>* children) override {
    children->clear();
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dirname, ec)) {
      children->push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError(dirname + " list: " + ec.message());
    return Status::OK();
  }

  Status SyncDir(const std::string& dirname) override {
    int fd = ::open(dirname.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus(dirname + " open dir");
    Status st;
    if (::fsync(fd) != 0) st = ErrnoStatus(dirname + " fsync dir");
    ::close(fd);
    return st;
  }

 private:
  Status OpenWritable(const std::string& fname, int flags,
                      std::unique_ptr<WritableFile>* file) {
    int fd = ::open(fname.c_str(), flags | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus(fname + " open for write");
    *file = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static Env* env = new PosixEnv();
  return env;
}

}  // namespace seplsm
