#include "env/latency_env.h"

#include <chrono>
#include <thread>

namespace seplsm {

namespace {

class LatencyWritableFile final : public WritableFile {
 public:
  LatencyWritableFile(LatencyEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    if (env_->model().charge_writes) {
      env_->Charge(static_cast<int64_t>(
          env_->model().transfer_nanos_per_byte * static_cast<double>(data.size())));
    }
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    if (env_->model().charge_writes) env_->Charge(env_->model().seek_nanos);
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  LatencyEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

class LatencyRandomAccessFile final : public RandomAccessFile {
 public:
  LatencyRandomAccessFile(LatencyEnv* env,
                          std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    // A read that does not continue where the previous one ended costs a
    // seek; all bytes cost transfer time.
    if (offset != next_contiguous_offset_) {
      env_->Charge(env_->model().seek_nanos);
    }
    Status st = base_->Read(offset, n, out);
    if (st.ok()) {
      env_->Charge(static_cast<int64_t>(env_->model().transfer_nanos_per_byte *
                                        static_cast<double>(out->size())));
      env_->CountRead(out->size());
      next_contiguous_offset_ = offset + out->size();
    }
    return st;
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  LatencyEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
  mutable uint64_t next_contiguous_offset_ = ~0ull;
};

}  // namespace

LatencyEnv::LatencyEnv(Env* base, DeviceLatencyModel model,
                       bool sleep_for_real)
    : base_(base), model_(model), sleep_for_real_(sleep_for_real) {}

void LatencyEnv::Charge(int64_t nanos) {
  simulated_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  if (sleep_for_real_) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

void LatencyEnv::ResetCounters() {
  simulated_nanos_.store(0, std::memory_order_relaxed);
  opens_.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
}

Status LatencyEnv::NewWritableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  *file = std::make_unique<LatencyWritableFile>(this, std::move(base_file));
  return Status::OK();
}

Status LatencyEnv::NewAppendableFile(const std::string& fname,
                                     std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &base_file));
  *file = std::make_unique<LatencyWritableFile>(this, std::move(base_file));
  return Status::OK();
}

Status LatencyEnv::SyncDir(const std::string& dirname) {
  // A directory fsync costs a seek like any other flush command.
  if (model_.charge_writes) Charge(model_.seek_nanos);
  return base_->SyncDir(dirname);
}

Status LatencyEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* file) {
  opens_.fetch_add(1, std::memory_order_relaxed);
  Charge(model_.seek_nanos);
  std::unique_ptr<RandomAccessFile> base_file;
  SEPLSM_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base_file));
  *file = std::make_unique<LatencyRandomAccessFile>(this, std::move(base_file));
  return Status::OK();
}

bool LatencyEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status LatencyEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status LatencyEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}

Status LatencyEnv::RenameFile(const std::string& src, const std::string& dst) {
  return base_->RenameFile(src, dst);
}

Status LatencyEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status LatencyEnv::ListDir(const std::string& dirname,
                           std::vector<std::string>* children) {
  return base_->ListDir(dirname, children);
}

}  // namespace seplsm
