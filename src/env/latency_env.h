#ifndef SEPLSM_ENV_LATENCY_ENV_H_
#define SEPLSM_ENV_LATENCY_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "env/env.h"

namespace seplsm {

/// Device-latency parameters. Defaults approximate a consumer HDD: ~8 ms per
/// seek (file open and each non-contiguous positioned read) and ~100 MB/s
/// sequential transfer. The paper's query-latency experiments (Fig. 13/14/20)
/// ran on an HDD where per-file seek cost dominates; `LatencyEnv` reproduces
/// that cost structure deterministically (see DESIGN.md §4).
struct DeviceLatencyModel {
  int64_t seek_nanos = 8'000'000;          ///< per file open / random read
  double transfer_nanos_per_byte = 10.0;   ///< 100 MB/s
  bool charge_writes = false;              ///< also delay Append/Sync
};

/// Wraps another Env; accrues simulated device time into a counter and can
/// optionally sleep for real. With `sleep_for_real=false` the accumulated
/// nanoseconds are the measurement — fully deterministic.
class LatencyEnv final : public Env {
 public:
  LatencyEnv(Env* base, DeviceLatencyModel model, bool sleep_for_real = false);

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override;
  bool FileExists(const std::string& fname) override;
  Status SyncDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RemoveFile(const std::string& fname) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status ListDir(const std::string& dirname,
                 std::vector<std::string>* children) override;

  /// Simulated device time accrued so far (monotone).
  int64_t simulated_nanos() const {
    return simulated_nanos_.load(std::memory_order_relaxed);
  }

  /// Number of file opens (seeks) so far.
  uint64_t opens() const { return opens_.load(std::memory_order_relaxed); }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

  void ResetCounters();

  /// Internal: charge simulated time (called by wrapped files too).
  void Charge(int64_t nanos);
  void CountRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }

  const DeviceLatencyModel& model() const { return model_; }

 private:
  Env* base_;
  DeviceLatencyModel model_;
  bool sleep_for_real_;
  std::atomic<int64_t> simulated_nanos_{0};
  std::atomic<uint64_t> opens_{0};
  std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace seplsm

#endif  // SEPLSM_ENV_LATENCY_ENV_H_
