#include "workload/trace_io.h"

#include <charconv>
#include <cstdio>
#include <string_view>

namespace seplsm::workload {

namespace {

bool ParseField(std::string_view* line, std::string_view* field) {
  if (line->empty()) return false;
  size_t comma = line->find(',');
  if (comma == std::string_view::npos) {
    *field = *line;
    line->remove_prefix(line->size());
  } else {
    *field = line->substr(0, comma);
    line->remove_prefix(comma + 1);
  }
  return true;
}

bool ParseInt64(std::string_view field, int64_t* out) {
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

}  // namespace

Status WriteTraceCsv(Env* env, const std::string& path,
                     const std::vector<DataPoint>& points) {
  std::unique_ptr<WritableFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  SEPLSM_RETURN_IF_ERROR(file->Append("generation_time,arrival_time,value\n"));
  std::string buffer;
  char row[96];
  for (const auto& p : points) {
    int len = std::snprintf(row, sizeof(row), "%lld,%lld,%.17g\n",
                            static_cast<long long>(p.generation_time),
                            static_cast<long long>(p.arrival_time), p.value);
    buffer.append(row, static_cast<size_t>(len));
    if (buffer.size() > (1u << 20)) {
      SEPLSM_RETURN_IF_ERROR(file->Append(buffer));
      buffer.clear();
    }
  }
  SEPLSM_RETURN_IF_ERROR(file->Append(buffer));
  SEPLSM_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Result<std::vector<DataPoint>> ReadTraceCsv(Env* env,
                                            const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  SEPLSM_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  std::string contents;
  SEPLSM_RETURN_IF_ERROR(file->Read(0, file->Size(), &contents));
  std::vector<DataPoint> points;
  std::string_view rest = contents;
  bool header = true;
  size_t line_no = 0;
  while (!rest.empty()) {
    ++line_no;
    size_t nl = rest.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest.remove_prefix(nl == std::string_view::npos ? rest.size() : nl + 1);
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    std::string_view f1, f2, f3;
    DataPoint p;
    if (!ParseField(&line, &f1) || !ParseField(&line, &f2) ||
        !ParseField(&line, &f3) || !ParseInt64(f1, &p.generation_time) ||
        !ParseInt64(f2, &p.arrival_time)) {
      return Status::Corruption(path + ": malformed row at line " +
                                std::to_string(line_no));
    }
    // Parse the value with strtod semantics (from_chars<double> is fine on
    // this toolchain but keep it simple and locale-free).
    {
      double v;
      auto [ptr, ec] = std::from_chars(f3.data(), f3.data() + f3.size(), v);
      if (ec != std::errc() || ptr != f3.data() + f3.size()) {
        return Status::Corruption(path + ": malformed value at line " +
                                  std::to_string(line_no));
      }
      p.value = v;
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace seplsm::workload
