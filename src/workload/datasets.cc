#include "workload/datasets.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"
#include "dist/mixture.h"
#include "dist/parametric.h"

namespace seplsm::workload {

const std::vector<TableIIConfig>& TableII() {
  static const std::vector<TableIIConfig>* table = [] {
    auto* t = new std::vector<TableIIConfig>();
    const double sigmas[] = {1.5, 1.75, 2.0};
    const double mus[] = {4.0, 5.0};
    const double dts[] = {50.0, 10.0};
    int index = 1;
    for (double dt : dts) {
      for (double mu : mus) {
        for (double sigma : sigmas) {
          t->push_back({"M" + std::to_string(index++), mu, sigma, dt});
        }
      }
    }
    return t;
  }();
  return *table;
}

const TableIIConfig& TableIIByName(const std::string& name) {
  for (const auto& c : TableII()) {
    if (c.name == name) return c;
  }
  assert(false && "unknown Table II dataset name");
  return TableII().front();
}

dist::DistributionPtr MakeTableIIDistribution(const TableIIConfig& config) {
  return std::make_unique<dist::LognormalDistribution>(config.mu,
                                                       config.sigma);
}

std::vector<DataPoint> GenerateTableII(const TableIIConfig& config,
                                       size_t num_points, uint64_t seed) {
  SyntheticConfig sc;
  sc.num_points = num_points;
  sc.delta_t = config.delta_t;
  sc.seed = seed;
  auto d = MakeTableIIDistribution(config);
  return GenerateSynthetic(sc, *d);
}

dist::DistributionPtr MakeS9DelayDistribution() {
  // Body: typical WLAN transmission latency; tail: retransmission bursts a
  // few seconds long (the real S-9's delays reach tens of seconds, not
  // hours — Weiss et al. 2017). Weights tuned so ~7 % of points are out of
  // order under Definition 3 (paper reports 7.05 % for the real S-9).
  return dist::MakeMixture(
      0.93, std::make_unique<dist::LognormalDistribution>(std::log(60.0), 0.5),
      0.07,
      std::make_unique<dist::LognormalDistribution>(std::log(6000.0), 0.8));
}

std::vector<DataPoint> GenerateS9Simulated(size_t num_points,
                                           bool jitter_intervals,
                                           uint64_t seed) {
  SyntheticConfig sc;
  sc.num_points = num_points;
  sc.delta_t = kS9DeltaT;
  sc.seed = seed;
  sc.interval_jitter = jitter_intervals ? 0.4 : 0.0;
  auto d = MakeS9DelayDistribution();
  return GenerateSynthetic(sc, *d);
}

std::vector<DataPoint> GenerateHSimulated(const HSimConfig& config) {
  Rng rng(config.seed);
  dist::LognormalDistribution online_delay(
      std::log(config.online_delay_median), config.online_delay_sigma);

  std::vector<DataPoint> points(config.num_points);
  bool in_outage = false;
  double outage_end = 0.0;
  for (size_t i = 0; i < config.num_points; ++i) {
    double gen = static_cast<double>(i) * config.delta_t;
    if (!in_outage && rng.Bernoulli(config.outage_start_probability)) {
      in_outage = true;
      // Outage duration: a few missed points on average.
      outage_end = gen + rng.NextExponential(1.0 / (4.0 * config.delta_t));
    }
    double arrival;
    if (in_outage && gen < outage_end) {
      // Buffered locally; re-sent in a batch at the next boundary after the
      // outage ends. Within-batch order preserved by a tiny spacing.
      double boundary =
          std::ceil(outage_end / config.resend_period) * config.resend_period;
      arrival = boundary + static_cast<double>(i % 64);
    } else {
      in_outage = false;
      arrival = gen + online_delay.Sample(rng);
    }
    points[i].generation_time = static_cast<int64_t>(std::llround(gen));
    points[i].arrival_time = static_cast<int64_t>(std::llround(arrival));
    points[i].value = 40.0 + 10.0 * std::sin(static_cast<double>(i) * 2e-4);
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const DataPoint& a, const DataPoint& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  return points;
}

}  // namespace seplsm::workload
