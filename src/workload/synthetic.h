#ifndef SEPLSM_WORKLOAD_SYNTHETIC_H_
#define SEPLSM_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/point.h"
#include "dist/distribution.h"

namespace seplsm::workload {

/// Configuration for a synthetic write stream generated the way the paper
/// builds its datasets (§V-A): generation times form an arithmetic
/// progression with interval Δt, each point gets an i.i.d. delay from the
/// distribution, arrival = generation + delay, and the stream is sorted by
/// arrival time.
struct SyntheticConfig {
  size_t num_points = 100'000;
  double delta_t = 50.0;
  int64_t start_time = 0;
  uint64_t seed = 1;
  /// Optional jitter on the generation interval (Fig. 18 robustness case):
  /// interval_i = Δt * max(0.05, 1 + jitter * N(0,1)).
  double interval_jitter = 0.0;
};

/// Generates the stream (sorted by arrival; ties keep generation order).
/// Values are a deterministic function of the generation index so tests can
/// verify round-trips.
std::vector<DataPoint> GenerateSynthetic(
    const SyntheticConfig& config,
    const dist::DelayDistribution& delay_distribution);

/// Disorder profile of an arrival-ordered stream.
struct DisorderStats {
  size_t num_points = 0;
  /// Fraction of *late events*: generation time below the immediately
  /// preceding arrival's generation time (literature's metric, §II).
  double late_event_fraction = 0.0;
  /// Fraction of *out-of-order points* under Definition 3 with an
  /// immediately-flushed disk (generation time below the running maximum).
  double out_of_order_fraction = 0.0;
  double mean_delay = 0.0;
  double max_delay = 0.0;
  /// Mean delay among the out-of-order points only.
  double mean_out_of_order_delay = 0.0;
};

DisorderStats ComputeDisorderStats(const std::vector<DataPoint>& stream);

}  // namespace seplsm::workload

#endif  // SEPLSM_WORKLOAD_SYNTHETIC_H_
