#ifndef SEPLSM_WORKLOAD_TRACE_IO_H_
#define SEPLSM_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/point.h"
#include "common/result.h"
#include "common/status.h"
#include "env/env.h"

namespace seplsm::workload {

/// Writes a stream as CSV (`generation_time,arrival_time,value`, one header
/// line) so traces can be exchanged with external tools.
Status WriteTraceCsv(Env* env, const std::string& path,
                     const std::vector<DataPoint>& points);

/// Reads a CSV trace written by WriteTraceCsv (or hand-made with the same
/// columns). Rejects malformed rows.
Result<std::vector<DataPoint>> ReadTraceCsv(Env* env, const std::string& path);

}  // namespace seplsm::workload

#endif  // SEPLSM_WORKLOAD_TRACE_IO_H_
