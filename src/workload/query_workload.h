#ifndef SEPLSM_WORKLOAD_QUERY_WORKLOAD_H_
#define SEPLSM_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>

#include "common/random.h"

namespace seplsm::workload {

/// A half-open time-range predicate on generation time: [lo, hi].
struct TimeRangeQuery {
  int64_t lo = 0;
  int64_t hi = 0;
};

/// The paper's *recent data query workload* (§V-D1): a real-time dashboard
/// repeatedly asking for the trailing `window` of the series —
/// `SELECT * FROM TS WHERE time > max_time - window`.
class RecentQueryGenerator {
 public:
  explicit RecentQueryGenerator(int64_t window) : window_(window) {}

  /// `max_written_generation_time` is the client-tracked maximum generation
  /// time already written (the paper's client records it during ingest).
  TimeRangeQuery Next(int64_t max_written_generation_time) const {
    return {max_written_generation_time - window_,
            max_written_generation_time};
  }

  int64_t window() const { return window_; }

 private:
  int64_t window_;
};

/// The paper's *historical query workload* (§V-D2): a uniformly random
/// window placed anywhere in the already-written history —
/// `SELECT * FROM TS WHERE time > r AND time < r + window`.
class HistoricalQueryGenerator {
 public:
  HistoricalQueryGenerator(int64_t window, uint64_t seed = 77)
      : window_(window), rng_(seed) {}

  /// Draws a window within [min_time, max_time]; the upper bound never
  /// exceeds max_time (paper's guarantee).
  TimeRangeQuery Next(int64_t min_time, int64_t max_time) {
    int64_t span = max_time - min_time - window_;
    int64_t lo = span <= 0
                     ? min_time
                     : min_time + rng_.UniformInt(0, span);
    return {lo, lo + window_};
  }

  int64_t window() const { return window_; }

 private:
  int64_t window_;
  Rng rng_;
};

}  // namespace seplsm::workload

#endif  // SEPLSM_WORKLOAD_QUERY_WORKLOAD_H_
