#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace seplsm::workload {

std::vector<DataPoint> GenerateSynthetic(
    const SyntheticConfig& config,
    const dist::DelayDistribution& delay_distribution) {
  Rng rng(config.seed);
  std::vector<DataPoint> points(config.num_points);
  double t = static_cast<double>(config.start_time);
  for (size_t i = 0; i < config.num_points; ++i) {
    double interval = config.delta_t;
    if (config.interval_jitter > 0.0) {
      interval *= std::max(0.05, 1.0 + config.interval_jitter *
                                           rng.NextGaussian());
    }
    if (i > 0) t += interval;
    double delay = delay_distribution.Sample(rng);
    points[i].generation_time = static_cast<int64_t>(std::llround(t));
    points[i].arrival_time =
        points[i].generation_time + static_cast<int64_t>(std::llround(delay));
    // Deterministic payload: a smooth signal over the generation index.
    points[i].value = std::sin(static_cast<double>(i) * 0.001) * 100.0;
  }
  // Generation times must be unique (they are the key): the jitter path can
  // collide after rounding; nudge duplicates forward.
  std::vector<DataPoint> by_generation = points;
  std::sort(by_generation.begin(), by_generation.end(),
            OrderByGenerationTime());
  bool had_duplicates = false;
  for (size_t i = 1; i < by_generation.size(); ++i) {
    if (by_generation[i].generation_time <=
        by_generation[i - 1].generation_time) {
      had_duplicates = true;
      break;
    }
  }
  if (had_duplicates) {
    int64_t last = by_generation.empty()
                       ? 0
                       : by_generation.front().generation_time - 1;
    for (auto& p : by_generation) {
      if (p.generation_time <= last) {
        int64_t delta = last + 1 - p.generation_time;
        p.generation_time += delta;
        p.arrival_time += delta;
      }
      last = p.generation_time;
    }
    points = std::move(by_generation);
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const DataPoint& a, const DataPoint& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  return points;
}

DisorderStats ComputeDisorderStats(const std::vector<DataPoint>& stream) {
  DisorderStats out;
  out.num_points = stream.size();
  if (stream.empty()) return out;
  int64_t running_max = stream.front().generation_time;
  size_t late = 0;
  size_t ooo = 0;
  double delay_sum = 0.0;
  double ooo_delay_sum = 0.0;
  double max_delay = 0.0;
  for (size_t i = 0; i < stream.size(); ++i) {
    double d = static_cast<double>(stream[i].delay());
    delay_sum += d;
    max_delay = std::max(max_delay, d);
    if (i > 0) {
      if (stream[i].generation_time < stream[i - 1].generation_time) ++late;
      if (stream[i].generation_time < running_max) {
        ++ooo;
        ooo_delay_sum += d;
      }
      running_max = std::max(running_max, stream[i].generation_time);
    }
  }
  double n = static_cast<double>(stream.size());
  out.late_event_fraction = static_cast<double>(late) / n;
  out.out_of_order_fraction = static_cast<double>(ooo) / n;
  out.mean_delay = delay_sum / n;
  out.max_delay = max_delay;
  out.mean_out_of_order_delay =
      ooo > 0 ? ooo_delay_sum / static_cast<double>(ooo) : 0.0;
  return out;
}

}  // namespace seplsm::workload
