#ifndef SEPLSM_WORKLOAD_DATASETS_H_
#define SEPLSM_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "common/point.h"
#include "dist/distribution.h"
#include "workload/synthetic.h"

namespace seplsm::workload {

/// One of the paper's twelve synthetic dataset configurations (Table II):
/// lognormal delays with parameters (μ, σ) over a constant generation
/// interval Δt. M1–M6 use Δt = 50, M7–M12 use Δt = 10; within each group μ
/// is 4 then 5 and σ sweeps {1.5, 1.75, 2}. The paper writes 10 M tuples
/// per dataset; `num_points` scales that down proportionally for bench runs
/// (WA is a ratio, so the shape is preserved).
struct TableIIConfig {
  std::string name;  ///< "M1" ... "M12"
  double mu = 4.0;
  double sigma = 1.5;
  double delta_t = 50.0;
};

/// All twelve configurations in paper order.
const std::vector<TableIIConfig>& TableII();

/// The configuration with the given name ("M1".."M12"); aborts on typos.
const TableIIConfig& TableIIByName(const std::string& name);

/// Builds the lognormal delay distribution of a Table II config.
dist::DistributionPtr MakeTableIIDistribution(const TableIIConfig& config);

/// Generates a Table II dataset with `num_points` tuples.
std::vector<DataPoint> GenerateTableII(const TableIIConfig& config,
                                       size_t num_points, uint64_t seed = 1);

/// Simulated stand-in for the real S-9 dataset of Weiss et al. (mobile
/// device -> server telemetry, 30 k points): a lognormal delay body plus a
/// heavy Pareto tail so a small share of points suffers very long delays,
/// yielding ≈7 % out-of-order points under Definition 3 (paper §V-A).
/// `jitter_intervals` additionally randomizes the generation interval, the
/// property exercised by the paper's Fig. 18.
std::vector<DataPoint> GenerateS9Simulated(size_t num_points = 30'000,
                                           bool jitter_intervals = true,
                                           uint64_t seed = 9);

/// The delay distribution used by the S-9 simulation (for model inputs).
dist::DistributionPtr MakeS9DelayDistribution();

/// Nominal S-9 generation interval (ms).
inline constexpr double kS9DeltaT = 100.0;

/// Simulated stand-in for the industrial vehicle-fleet dataset H (paper
/// §VI): one point per second; the device is normally "online" (small
/// lognormal delays) but occasionally loses connectivity, buffers points
/// locally, and re-sends them in a batch at the next ~5·10⁴ ms boundary.
/// This produces the paper's three H properties: autocorrelated delays
/// (Fig. 16a), a systematic delay mode near 5·10⁴ ms (Fig. 19b), and a tiny
/// out-of-order fraction.
struct HSimConfig {
  size_t num_points = 1'000'000;
  double delta_t = 1000.0;            ///< 1 s in ms
  double resend_period = 50'000.0;    ///< batch re-send boundary
  double outage_start_probability = 2e-4;  ///< per-point P(online -> outage)
  double online_delay_median = 200.0;
  double online_delay_sigma = 0.4;
  uint64_t seed = 17;
};

std::vector<DataPoint> GenerateHSimulated(const HSimConfig& config = {});

/// Nominal H generation interval (ms).
inline constexpr double kHDeltaT = 1000.0;

}  // namespace seplsm::workload

#endif  // SEPLSM_WORKLOAD_DATASETS_H_
