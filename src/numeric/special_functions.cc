#include "numeric/special_functions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace seplsm::numeric {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

/// Series representation: P(a,x) = e^{-x} x^a / Γ(a) * Σ x^n / (a(a+1)...(a+n)).
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for Q(a,x) (Lentz's algorithm).
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  return 1.0 - RegularizedGammaP(a, x);
}

double RegularizedGammaPInverse(double a, double p) {
  assert(a > 0.0 && p > 0.0 && p < 1.0);
  // Bracket then bisect+Newton. Initial guess via Wilson–Hilferty.
  double g = std::lgamma(a);
  (void)g;
  double guess;
  {
    double t = 1.0 - 2.0 / (9.0 * a);
    // Inverse normal via a crude rational form is avoided: bisection below
    // dominates accuracy anyway; use a mean-based fallback guess.
    guess = a * t * t * t;
    if (guess <= 0.0) guess = a * p;
  }
  double lo = 0.0;
  double hi = guess;
  while (RegularizedGammaP(a, hi) < p) {
    hi *= 2.0;
    if (hi > 1e300) return hi;
  }
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (RegularizedGammaP(a, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= kEpsilon * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace seplsm::numeric
