#include "numeric/interpolation.h"

#include <algorithm>
#include <cassert>

namespace seplsm::numeric {

LinearInterpolator::LinearInterpolator(std::vector<double> xs,
                                       std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  assert(xs_.size() == ys_.size());
  assert(std::is_sorted(xs_.begin(), xs_.end()));
}

double LinearInterpolator::operator()(double x) const {
  if (xs_.empty()) return 0.0;
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  size_t i = static_cast<size_t>(it - xs_.begin());
  double x0 = xs_[i - 1], x1 = xs_[i];
  double y0 = ys_[i - 1], y1 = ys_[i];
  if (x1 == x0) return y1;
  double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double LinearInterpolator::Inverse(double y) const {
  if (ys_.empty()) return 0.0;
  if (y <= ys_.front()) return xs_.front();
  if (y >= ys_.back()) return xs_.back();
  auto it = std::upper_bound(ys_.begin(), ys_.end(), y);
  size_t i = static_cast<size_t>(it - ys_.begin());
  double y0 = ys_[i - 1], y1 = ys_[i];
  double x0 = xs_[i - 1], x1 = xs_[i];
  if (y1 == y0) return x1;
  double t = (y - y0) / (y1 - y0);
  return x0 + t * (x1 - x0);
}

}  // namespace seplsm::numeric
