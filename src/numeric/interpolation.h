#ifndef SEPLSM_NUMERIC_INTERPOLATION_H_
#define SEPLSM_NUMERIC_INTERPOLATION_H_

#include <cstddef>
#include <vector>

namespace seplsm::numeric {

/// Piecewise-linear interpolation over a set of (x, y) knots with
/// non-decreasing x. Used for empirical CDFs and their inverses.
class LinearInterpolator {
 public:
  LinearInterpolator() = default;

  /// Knots must be sorted by x (ties allowed; the last y among equal x wins).
  LinearInterpolator(std::vector<double> xs, std::vector<double> ys);

  bool empty() const { return xs_.empty(); }
  size_t size() const { return xs_.size(); }

  /// Evaluates at x; clamps outside [xs.front(), xs.back()].
  double operator()(double x) const;

  /// For y-monotone tables: finds x with f(x)=y by inverse interpolation,
  /// clamped to the knot range. Requires ys non-decreasing.
  double Inverse(double y) const;

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace seplsm::numeric

#endif  // SEPLSM_NUMERIC_INTERPOLATION_H_
