#ifndef SEPLSM_NUMERIC_INTEGRATION_H_
#define SEPLSM_NUMERIC_INTEGRATION_H_

#include <functional>

namespace seplsm::numeric {

/// Options for adaptive quadrature.
struct IntegrationOptions {
  double abs_tolerance = 1e-9;   ///< stop when the local error estimate falls below this
  double rel_tolerance = 1e-8;   ///< ... or below rel_tolerance * |integral so far|
  int max_depth = 40;            ///< recursion depth cap per interval
};

/// Integrates f over [a, b] with adaptive Simpson's rule.
/// f must be finite over [a, b]. Returns the estimate; accuracy is
/// best-effort within the given tolerances.
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, const IntegrationOptions& opts = {});

/// Fixed-order Gauss–Legendre quadrature over [a, b].
/// `points` must be one of {8, 16, 32, 64}.
double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int points = 32);

/// Integrates f over [a, b] by splitting into `segments` geometric
/// subintervals (denser near `a`) and applying Gauss–Legendre to each.
/// Suited to integrands that decay over several orders of magnitude, e.g.
/// heavy-tailed densities. Requires 0 <= a < b.
double GeometricGaussLegendre(const std::function<double(double)>& f, double a,
                              double b, int segments = 24, int points = 16);

}  // namespace seplsm::numeric

#endif  // SEPLSM_NUMERIC_INTEGRATION_H_
