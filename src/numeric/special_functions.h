#ifndef SEPLSM_NUMERIC_SPECIAL_FUNCTIONS_H_
#define SEPLSM_NUMERIC_SPECIAL_FUNCTIONS_H_

namespace seplsm::numeric {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
/// x >= 0. Series expansion for x < a+1, continued fraction otherwise
/// (Numerical Recipes style). Accuracy ~1e-12.
double RegularizedGammaP(double a, double x);

/// Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Inverse of P(a, ·): smallest x with P(a, x) >= p, p in (0, 1).
double RegularizedGammaPInverse(double a, double p);

}  // namespace seplsm::numeric

#endif  // SEPLSM_NUMERIC_SPECIAL_FUNCTIONS_H_
