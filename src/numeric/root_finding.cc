#include "numeric/root_finding.h"

#include <algorithm>
#include <cmath>

namespace seplsm::numeric {

Result<double> Brent(const std::function<double(double)>& f, double a,
                     double b, const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (std::fabs(fa) <= opts.f_tolerance) return a;
  if (std::fabs(fb) <= opts.f_tolerance) return b;
  if (fa * fb > 0.0) {
    return Status::InvalidArgument("Brent: f(a) and f(b) must bracket a root");
  }
  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    double lo = (3.0 * a + b) / 4.0;
    double hi = b;
    if (lo > hi) std::swap(lo, hi);
    bool bisect =
        (s < lo || s > hi) ||
        (mflag && std::fabs(s - b) >= std::fabs(b - c) / 2.0) ||
        (!mflag && std::fabs(s - b) >= std::fabs(c - d) / 2.0) ||
        (mflag && std::fabs(b - c) < opts.x_tolerance) ||
        (!mflag && std::fabs(c - d) < opts.x_tolerance);
    if (bisect) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }
    double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    if (std::fabs(fb) <= opts.f_tolerance ||
        std::fabs(b - a) <= opts.x_tolerance) {
      return b;
    }
  }
  return b;  // best effort after max iterations
}

Result<long long> MonotoneIntSearch(const std::function<double(long long)>& g,
                                    long long lo, long long hi,
                                    double target) {
  if (g(hi) < target) {
    return Status::OutOfRange("MonotoneIntSearch: g(hi) below target");
  }
  while (lo < hi) {
    long long mid = lo + (hi - lo) / 2;
    if (g(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace seplsm::numeric
