#ifndef SEPLSM_NUMERIC_ROOT_FINDING_H_
#define SEPLSM_NUMERIC_ROOT_FINDING_H_

#include <functional>

#include "common/result.h"

namespace seplsm::numeric {

struct RootOptions {
  double x_tolerance = 1e-10;
  double f_tolerance = 1e-12;
  int max_iterations = 200;
};

/// Finds x in [a, b] with f(x) ~= 0 using Brent's method.
/// Requires f(a) and f(b) to have opposite signs (or one of them ~0).
Result<double> Brent(const std::function<double(double)>& f, double a,
                     double b, const RootOptions& opts = {});

/// Finds the smallest integer k in [lo, hi] with g(k) >= target, where g is
/// non-decreasing. Returns hi+1 sentinel as OutOfRange error if g(hi) < target.
Result<long long> MonotoneIntSearch(
    const std::function<double(long long)>& g, long long lo, long long hi,
    double target);

}  // namespace seplsm::numeric

#endif  // SEPLSM_NUMERIC_ROOT_FINDING_H_
