#include "format/simd.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/coding.h"

#if !defined(SEPLSM_SIMD_DISABLED) && (defined(__x86_64__) || defined(_M_X64))
#define SEPLSM_HAVE_SSE2 1
#include <emmintrin.h>
#endif
#if !defined(SEPLSM_SIMD_DISABLED) && defined(__aarch64__)
#define SEPLSM_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace seplsm::format {

// ---------------------------------------------------------------------------
// Scalar reference kernels: these DEFINE the byte format. Every vector
// variant below must match them bit for bit (fuzz-verified).
// ---------------------------------------------------------------------------

namespace scalar {

size_t CountOneByteVarints(const uint8_t* data, size_t len) {
  size_t i = 0;
  while (i < len && data[i] < 0x80) ++i;
  return i;
}

void EncodeF64LE(const double* values, size_t count, std::string* dst) {
  // coding.h already assumes a little-endian host, so the value column is
  // the in-memory representation (identical bytes to a PutFixed64 loop).
  const size_t base = dst->size();
  dst->resize(base + count * 8);
  if (count != 0) std::memcpy(dst->data() + base, values, count * 8);
}

void DecodeF64LE(const char* data, size_t count, double* out) {
  if (count != 0) std::memcpy(out, data, count * 8);
}

void EncodeZigZagVarints(const int64_t* values, size_t count,
                         std::string* dst) {
  for (size_t i = 0; i < count; ++i) PutVarint64Signed(dst, values[i]);
}

bool DecodeZigZagVarints(std::string_view* input, size_t count,
                         int64_t* out) {
  for (size_t i = 0; i < count; ++i) {
    if (!GetVarint64Signed(input, &out[i])) return false;
  }
  return true;
}

}  // namespace scalar

namespace {

/// Batched varint decode shared by every vector level: scan for a run of
/// one-byte varints with the level's byte-scan kernel, decode the run with
/// a branch-free loop (each byte IS the zigzag value), and only fall into
/// the generic multi-byte path at run boundaries. Accepts exactly the
/// byte sequences a GetVarint64Signed loop accepts, fills the same prefix
/// of `out` before reporting truncation.
bool DecodeZigZagVarintsRuns(std::string_view* input, size_t count,
                             int64_t* out,
                             size_t (*scan)(const uint8_t*, size_t)) {
  size_t i = 0;
  while (i < count) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(input->data());
    const size_t run = scan(p, input->size());
    const size_t take = std::min(run, count - i);
    for (size_t j = 0; j < take; ++j) {
      out[i + j] = ZigZagDecode(p[j]);
    }
    input->remove_prefix(take);
    i += take;
    if (i < count) {
      // The next byte (if any) has its high bit set: multi-byte varint,
      // or truncated input — the generic parser decides.
      if (!GetVarint64Signed(input, &out[i])) return false;
      ++i;
    }
  }
  return true;
}

}  // namespace

#if defined(SEPLSM_HAVE_SSE2)

namespace sse2 {

size_t CountOneByteVarints(const uint8_t* data, size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(v));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  return i + scalar::CountOneByteVarints(data + i, len - i);
}

void EncodeF64LE(const double* values, size_t count, std::string* dst) {
  const size_t base = dst->size();
  dst->resize(base + count * 8);
  char* p = dst->data() + base;
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(p + i * 8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i)));
  }
  if (i < count) std::memcpy(p + i * 8, values + i, 8);
}

void DecodeF64LE(const char* data, size_t count, double* out) {
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + i),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i * 8)));
  }
  if (i < count) std::memcpy(out + i, data + i * 8, 8);
}

void EncodeZigZagVarints(const int64_t* values, size_t count,
                         std::string* dst) {
  size_t i = 0;
  while (i < count) {
    if (count - i >= 8) {
      // ZigZag eight lanes at once. SSE2 has no 64-bit arithmetic shift;
      // v >> 63 is rebuilt by replicating each lane's high dword and
      // arithmetic-shifting that by 31 — all-ones for negative lanes.
      __m128i z[4];
      __m128i acc = _mm_setzero_si128();
      for (int k = 0; k < 4; ++k) {
        __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(values + i + 2 * k));
        __m128i sign = _mm_srai_epi32(
            _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 1, 1)), 31);
        z[k] = _mm_xor_si128(_mm_slli_epi64(x, 1), sign);
        acc = _mm_or_si128(acc, z[k]);
      }
      const uint64_t or_all = static_cast<uint64_t>(_mm_cvtsi128_si64(
          _mm_or_si128(acc, _mm_unpackhi_epi64(acc, acc))));
      if (or_all < 0x80) {
        // Every zigzag fits one varint byte (the common case for sorted
        // time deltas): the encoded form is just the low byte of each
        // lane — emit all eight with no per-value branch.
        char buf[8];
        for (int k = 0; k < 4; ++k) {
          buf[2 * k] = static_cast<char>(_mm_cvtsi128_si64(z[k]));
          buf[2 * k + 1] = static_cast<char>(
              _mm_cvtsi128_si64(_mm_unpackhi_epi64(z[k], z[k])));
        }
        dst->append(buf, 8);
        i += 8;
        continue;
      }
    }
    // Mixed-width chunk (or tail): generic encoder, one chunk at a time so
    // the next iteration re-probes for a fast run.
    const size_t end = std::min(count, i + 8);
    for (; i < end; ++i) PutVarint64Signed(dst, values[i]);
  }
}

bool DecodeZigZagVarints(std::string_view* input, size_t count,
                         int64_t* out) {
  return DecodeZigZagVarintsRuns(input, count, out, &CountOneByteVarints);
}

}  // namespace sse2

#endif  // SEPLSM_HAVE_SSE2

#if defined(SEPLSM_HAVE_NEON)

namespace neon {

size_t CountOneByteVarints(const uint8_t* data, size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    uint8x16_t v = vld1q_u8(data + i);
    if (vmaxvq_u8(v) >= 0x80) {
      return i + scalar::CountOneByteVarints(data + i, 16);
    }
  }
  return i + scalar::CountOneByteVarints(data + i, len - i);
}

bool DecodeZigZagVarints(std::string_view* input, size_t count,
                         int64_t* out) {
  return DecodeZigZagVarintsRuns(input, count, out, &CountOneByteVarints);
}

}  // namespace neon

#endif  // SEPLSM_HAVE_NEON

// ---------------------------------------------------------------------------
// Dispatch: resolved once per process into a kernel table.
// ---------------------------------------------------------------------------

namespace {

struct Kernels {
  SimdLevel level;
  const char* name;
  size_t (*count_one_byte)(const uint8_t*, size_t);
  void (*enc_f64)(const double*, size_t, std::string*);
  void (*dec_f64)(const char*, size_t, double*);
  void (*enc_zz)(const int64_t*, size_t, std::string*);
  bool (*dec_zz)(std::string_view*, size_t, int64_t*);
};

constexpr Kernels kScalarKernels = {
    SimdLevel::kScalar,        "scalar",
    &scalar::CountOneByteVarints, &scalar::EncodeF64LE,
    &scalar::DecodeF64LE,         &scalar::EncodeZigZagVarints,
    &scalar::DecodeZigZagVarints,
};

bool EnvForcesScalar() {
  const char* env = std::getenv("SEPLSM_SIMD");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "off" || v == "OFF" || v == "0" || v == "scalar";
}

Kernels Resolve() {
  if (EnvForcesScalar()) return kScalarKernels;
#if defined(SEPLSM_HAVE_SSE2)
  // SSE2 is architectural baseline on x86-64: no cpuid probe needed.
  return Kernels{SimdLevel::kSSE2,         "sse2",
                 &sse2::CountOneByteVarints, &sse2::EncodeF64LE,
                 &sse2::DecodeF64LE,         &sse2::EncodeZigZagVarints,
                 &sse2::DecodeZigZagVarints};
#elif defined(SEPLSM_HAVE_NEON)
  // NEON is architectural baseline on arm64. Only the byte-scan and the
  // run-decode ride it today; the other kernels use the scalar reference
  // (memcpy already saturates the copy kernels there).
  return Kernels{SimdLevel::kNEON,           "neon",
                 &neon::CountOneByteVarints, &scalar::EncodeF64LE,
                 &scalar::DecodeF64LE,       &scalar::EncodeZigZagVarints,
                 &neon::DecodeZigZagVarints};
#else
  return kScalarKernels;
#endif
}

const Kernels& Active() {
  static const Kernels kernels = Resolve();
  return kernels;
}

}  // namespace

SimdLevel ActiveSimdLevel() { return Active().level; }

const char* SimdLevelName() { return Active().name; }

size_t CountOneByteVarints(const uint8_t* data, size_t len) {
  return Active().count_one_byte(data, len);
}

void EncodeF64LE(const double* values, size_t count, std::string* dst) {
  Active().enc_f64(values, count, dst);
}

void DecodeF64LE(const char* data, size_t count, double* out) {
  Active().dec_f64(data, count, out);
}

void EncodeZigZagVarints(const int64_t* values, size_t count,
                         std::string* dst) {
  Active().enc_zz(values, count, dst);
}

bool DecodeZigZagVarints(std::string_view* input, size_t count,
                         int64_t* out) {
  return Active().dec_zz(input, count, out);
}

}  // namespace seplsm::format
