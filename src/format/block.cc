#include "format/block.h"

#include <cassert>

#include "common/coding.h"
#include "common/crc32c.h"

namespace seplsm::format {

void BlockBuilder::Add(const DataPoint& point) {
  if (count_ == 0) {
    PutVarint64Signed(&times_, point.generation_time);
  } else {
    assert(point.generation_time >= last_generation_time_);
    PutVarint64Signed(&times_, point.generation_time - last_generation_time_);
  }
  last_generation_time_ = point.generation_time;
  PutVarint64Signed(&delays_, point.arrival_time - point.generation_time);
  values_.push_back(point.value);
  ++count_;
}

std::string BlockBuilder::Finish() {
  std::string out;
  PutVarint64(&out, count_);
  out.push_back(static_cast<char>(encoding_));
  out += times_;
  out += delays_;
  EncodeValues(encoding_, values_, &out);
  PutFixed32(&out, crc32c::Mask(crc32c::Value(out)));
  Reset();
  return out;
}

void BlockBuilder::Reset() {
  times_.clear();
  delays_.clear();
  values_.clear();
  count_ = 0;
  last_generation_time_ = 0;
}

Status DecodeBlock(std::string_view data, std::vector<DataPoint>* out) {
  if (data.size() < 4) return Status::Corruption("block too small");
  std::string_view payload = data.substr(0, data.size() - 4);
  uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(data.data() + data.size() - 4));
  if (crc32c::Value(payload) != stored_crc) {
    return Status::Corruption("block checksum mismatch");
  }
  uint64_t count;
  if (!GetVarint64(&payload, &count)) {
    return Status::Corruption("block count truncated");
  }
  if (payload.empty()) return Status::Corruption("block encoding truncated");
  auto encoding = static_cast<ValueEncoding>(payload.front());
  if (encoding != ValueEncoding::kRaw && encoding != ValueEncoding::kGorilla) {
    return Status::Corruption("block value encoding unknown");
  }
  payload.remove_prefix(1);
  size_t base = out->size();
  out->resize(base + count);
  int64_t t = 0;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t delta;
    if (!GetVarint64Signed(&payload, &delta)) {
      return Status::Corruption("block time truncated");
    }
    t = (i == 0) ? delta : t + delta;
    (*out)[base + i].generation_time = t;
  }
  for (uint64_t i = 0; i < count; ++i) {
    int64_t delay;
    if (!GetVarint64Signed(&payload, &delay)) {
      return Status::Corruption("block delay truncated");
    }
    (*out)[base + i].arrival_time = (*out)[base + i].generation_time + delay;
  }
  std::vector<double> values;
  SEPLSM_RETURN_IF_ERROR(DecodeValues(encoding, payload, count, &values));
  for (uint64_t i = 0; i < count; ++i) {
    (*out)[base + i].value = values[i];
  }
  return Status::OK();
}

}  // namespace seplsm::format
