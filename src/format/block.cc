#include "format/block.h"

#include <cassert>

#include "common/coding.h"
#include "common/crc32c.h"
#include "format/simd.h"

namespace seplsm::format {

void BlockBuilder::Add(const DataPoint& point) {
  assert(count_ == 0 || point.generation_time >= last_generation_time_);
  last_generation_time_ = point.generation_time;
  times_.push_back(point.generation_time);
  delays_.push_back(point.arrival_time - point.generation_time);
  values_.push_back(point.value);
  ++count_;
}

std::string BlockBuilder::Finish() {
  std::string out;
  PutVarint64(&out, count_);
  out.push_back(static_cast<char>(encoding_));
  // Delta the time column in place, back to front (entry 0 stays the
  // absolute first timestamp — the format's anchor), then emit both
  // columns as whole-column zigzag varint runs. Sorted input makes every
  // delta non-negative and usually tiny, which is exactly the one-byte
  // fast path of EncodeZigZagVarints.
  for (size_t i = count_; i-- > 1;) {
    times_[i] -= times_[i - 1];
  }
  EncodeZigZagVarints(times_.data(), count_, &out);
  EncodeZigZagVarints(delays_.data(), count_, &out);
  EncodeValues(encoding_, values_, &out);
  PutFixed32(&out, crc32c::Mask(crc32c::Value(out)));
  Reset();
  return out;
}

void BlockBuilder::Reset() {
  times_.clear();
  delays_.clear();
  values_.clear();
  count_ = 0;
  last_generation_time_ = 0;
}

Status DecodeBlock(std::string_view data, std::vector<DataPoint>* out) {
  if (data.size() < 4) return Status::Corruption("block too small");
  std::string_view payload = data.substr(0, data.size() - 4);
  uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(data.data() + data.size() - 4));
  if (crc32c::Value(payload) != stored_crc) {
    return Status::Corruption("block checksum mismatch");
  }
  uint64_t count;
  if (!GetVarint64(&payload, &count)) {
    return Status::Corruption("block count truncated");
  }
  if (payload.empty()) return Status::Corruption("block encoding truncated");
  auto encoding = static_cast<ValueEncoding>(payload.front());
  if (encoding != ValueEncoding::kRaw && encoding != ValueEncoding::kGorilla) {
    return Status::Corruption("block value encoding unknown");
  }
  payload.remove_prefix(1);
  // Any valid block spends >= 1 byte per time plus >= 1 byte per delay, so
  // a count claiming more than half the remaining payload is corrupt —
  // reject it before sizing buffers from it.
  if (count > payload.size() / 2 + 1) {
    return Status::Corruption("block count implausible");
  }
  size_t base = out->size();
  out->resize(base + count);
  std::vector<int64_t> column(count);
  if (!DecodeZigZagVarints(&payload, count, column.data())) {
    return Status::Corruption("block time truncated");
  }
  int64_t t = 0;
  for (uint64_t i = 0; i < count; ++i) {
    t = (i == 0) ? column[i] : t + column[i];
    (*out)[base + i].generation_time = t;
  }
  if (!DecodeZigZagVarints(&payload, count, column.data())) {
    return Status::Corruption("block delay truncated");
  }
  for (uint64_t i = 0; i < count; ++i) {
    (*out)[base + i].arrival_time = (*out)[base + i].generation_time +
                                    column[i];
  }
  std::vector<double> values;
  SEPLSM_RETURN_IF_ERROR(DecodeValues(encoding, payload, count, &values));
  for (uint64_t i = 0; i < count; ++i) {
    (*out)[base + i].value = values[i];
  }
  return Status::OK();
}

}  // namespace seplsm::format
