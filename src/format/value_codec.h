#ifndef SEPLSM_FORMAT_VALUE_CODEC_H_
#define SEPLSM_FORMAT_VALUE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace seplsm::format {

/// How a block's value column is encoded.
enum class ValueEncoding : uint8_t {
  kRaw = 0,      ///< 8 bytes per value (IEEE-754 bits, little-endian)
  kGorilla = 1,  ///< Facebook Gorilla XOR compression (Pelkonen et al. 2015)
};

/// Encodes `values` with the chosen encoding, appending to *dst.
/// Gorilla stores each value XORed with its predecessor: identical values
/// cost 1 bit, smooth sensor series typically compress 5-10x.
void EncodeValues(ValueEncoding encoding, const std::vector<double>& values,
                  std::string* dst);

/// Decodes exactly `count` values; consumes all of `data` for kRaw and a
/// bit-padded stream for kGorilla.
Status DecodeValues(ValueEncoding encoding, std::string_view data,
                    size_t count, std::vector<double>* out);

}  // namespace seplsm::format

#endif  // SEPLSM_FORMAT_VALUE_CODEC_H_
