#ifndef SEPLSM_FORMAT_BLOCK_H_
#define SEPLSM_FORMAT_BLOCK_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "format/value_codec.h"

namespace seplsm::format {

/// Serializes a run of points (sorted by generation time) into a compact
/// block:
///
///   varint   point_count
///   uint8    value encoding (ValueEncoding)
///   varint   first generation_time (zigzag)
///   varint*  generation_time deltas (zigzag; sorted input => non-negative)
///   varint*  (arrival_time - generation_time) per point (zigzag)
///   bytes    value column (raw fixed64 or Gorilla bit stream)
///   fixed32  masked CRC-32C of everything above
class BlockBuilder {
 public:
  explicit BlockBuilder(ValueEncoding encoding = ValueEncoding::kRaw)
      : encoding_(encoding) {}

  /// Appends one point; generation_time must be >= the previous one.
  void Add(const DataPoint& point);

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Finalizes and returns the encoded block; the builder resets.
  std::string Finish();

  void Reset();

 private:
  ValueEncoding encoding_;
  /// Columns buffered raw; Finish() delta-computes and varint-encodes them
  /// whole-column through the SIMD dispatch layer (format/simd.h) instead
  /// of per-Add — byte output is unchanged.
  std::vector<int64_t> times_;   ///< absolute generation times
  std::vector<int64_t> delays_;  ///< arrival - generation per point
  std::vector<double> values_;
  size_t count_ = 0;
  int64_t last_generation_time_ = 0;
};

/// Decodes a block produced by BlockBuilder; verifies the CRC.
/// Appends points to *out.
Status DecodeBlock(std::string_view data, std::vector<DataPoint>* out);

}  // namespace seplsm::format

#endif  // SEPLSM_FORMAT_BLOCK_H_
