#ifndef SEPLSM_FORMAT_TABLE_FORMAT_H_
#define SEPLSM_FORMAT_TABLE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace seplsm::format {

/// SSTable file layout (format v1):
///
///   Block 1 | Block 2 | ... | Index | Footer
///
/// and format v2 (adds a pruning-metadata section between data and index):
///
///   Block 1 | Block 2 | ... | Metadata | Index | Footer
///
/// Index: varint entry count, then per block
///   {min_tg (zigzag varint), max_tg, offset (varint), size (varint),
///    point_count (varint)}, followed by a masked CRC-32C (fixed32).
///
/// Metadata (v2 only; see TableMetadata below): per-block value zone maps
/// plus per-window pre-aggregated summaries, followed by a masked CRC-32C.
///
/// v1 footer (fixed 48 bytes, at EOF):
///   index_offset (fixed64) | index_size (fixed64) | point_count (fixed64) |
///   min_tg (fixed64) | max_tg (fixed64) | magic (fixed64)
///
/// v2 footer (fixed 64 bytes, at EOF): the same five fields, then
///   meta_offset (fixed64) | meta_size (fixed64) | magicV2 (fixed64)
///
/// Readers look at the trailing 8 bytes to pick the version, so v1 files
/// (and files written with metadata disabled, which are byte-identical to
/// v1) keep reading exactly as before.
inline constexpr uint64_t kTableMagic = 0x7365706C736D3144ULL;    // "seplsm1D"
inline constexpr uint64_t kTableMagicV2 = 0x7365706C736D3244ULL;  // "seplsm2D"
inline constexpr size_t kFooterSize = 6 * 8;
inline constexpr size_t kFooterV2Size = 8 * 8;

/// Location and key coverage of one data block inside an SSTable.
struct BlockIndexEntry {
  int64_t min_generation_time = 0;
  int64_t max_generation_time = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t point_count = 0;
};

struct Footer {
  uint64_t index_offset = 0;
  uint64_t index_size = 0;
  uint64_t point_count = 0;
  int64_t min_generation_time = 0;
  int64_t max_generation_time = 0;
  /// v2 fields; both 0 (and has_metadata false) for v1 files.
  uint64_t meta_offset = 0;
  uint64_t meta_size = 0;
  bool has_metadata = false;
};

/// Value range of one data block, parallel to the index entries (the
/// time range already lives in BlockIndexEntry). Lets a reader skip blocks
/// whose values cannot match a value predicate without reading them.
struct BlockZoneMap {
  double min_value = 0.0;
  double max_value = 0.0;
};

/// Pre-aggregated summary of every point in one fixed time window
/// [window_start, window_start + window). first/last are carried so a
/// summary-served aggregate is bit-identical to folding the raw points.
struct WindowSummary {
  int64_t window_start = 0;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t first_time = 0;
  double first_value = 0.0;
  int64_t last_time = 0;
  double last_value = 0.0;
};

/// The v2 metadata section. `zone_maps` is parallel to the block index;
/// `summaries` covers windows of `summary_window` time units aligned to
/// absolute time (floor(t / window) * window), sorted by window_start.
/// `summary_window == 0` means no summaries were written.
struct TableMetadata {
  int64_t summary_window = 0;
  std::vector<BlockZoneMap> zone_maps;
  std::vector<WindowSummary> summaries;
};

/// Writer-side configuration for the v2 metadata section. Disabled, the
/// writer emits byte-identical v1 files.
struct TableMetadataConfig {
  bool enabled = true;
  /// Summary window width in generation-time units; 0 disables summaries
  /// (zone maps are still written).
  int64_t summary_window = 64;
};

void EncodeIndex(const std::vector<BlockIndexEntry>& entries,
                 std::string* dst);
Status DecodeIndex(std::string_view data,
                   std::vector<BlockIndexEntry>* entries);

void EncodeTableMetadata(const TableMetadata& meta, std::string* dst);
Status DecodeTableMetadata(std::string_view data, TableMetadata* meta);

/// Writes a v1 footer when `footer.has_metadata` is false, v2 otherwise.
void EncodeFooter(const Footer& footer, std::string* dst);
/// Accepts both footer versions: `data` must be exactly kFooterSize or
/// kFooterV2Size bytes with the matching magic at the end.
Status DecodeFooter(std::string_view data, Footer* footer);

}  // namespace seplsm::format

#endif  // SEPLSM_FORMAT_TABLE_FORMAT_H_
