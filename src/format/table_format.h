#ifndef SEPLSM_FORMAT_TABLE_FORMAT_H_
#define SEPLSM_FORMAT_TABLE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace seplsm::format {

/// SSTable file layout:
///
///   Block 1 | Block 2 | ... | Index | Footer
///
/// Index: varint entry count, then per block
///   {min_tg (zigzag varint), max_tg, offset (varint), size (varint),
///    point_count (varint)}, followed by a masked CRC-32C (fixed32).
///
/// Footer (fixed size, at EOF):
///   index_offset (fixed64) | index_size (fixed64) | point_count (fixed64) |
///   min_tg (fixed64) | max_tg (fixed64) | magic (fixed64)
inline constexpr uint64_t kTableMagic = 0x7365706C736D3144ULL;  // "seplsm1D"
inline constexpr size_t kFooterSize = 6 * 8;

/// Location and key coverage of one data block inside an SSTable.
struct BlockIndexEntry {
  int64_t min_generation_time = 0;
  int64_t max_generation_time = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t point_count = 0;
};

struct Footer {
  uint64_t index_offset = 0;
  uint64_t index_size = 0;
  uint64_t point_count = 0;
  int64_t min_generation_time = 0;
  int64_t max_generation_time = 0;
};

void EncodeIndex(const std::vector<BlockIndexEntry>& entries,
                 std::string* dst);
Status DecodeIndex(std::string_view data,
                   std::vector<BlockIndexEntry>* entries);

void EncodeFooter(const Footer& footer, std::string* dst);
Status DecodeFooter(std::string_view data, Footer* footer);

}  // namespace seplsm::format

#endif  // SEPLSM_FORMAT_TABLE_FORMAT_H_
