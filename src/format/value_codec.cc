#include "format/value_codec.h"

#include <bit>
#include <cstring>

#include "common/bits.h"
#include "common/coding.h"
#include "format/simd.h"

namespace seplsm::format {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Gorilla control codes after the first (raw 64-bit) value:
//   '0'            -> value identical to predecessor
//   '10'           -> XOR fits the previous leading/meaningful-bits window
//   '11' + 5 bits leading + 6 bits (length-1) + payload -> new window
//
// Control code, window header, and payload are fused into as few
// BitWriter::Write calls as possible (same bits, fewer flush rounds); the
// word-at-a-time BitWriter does the rest. Byte output is identical to the
// historical bit-by-bit encoder — pinned by the golden blocks in
// tests/data/.
void EncodeGorilla(const std::vector<double>& values, std::string* dst) {
  BitWriter writer(dst);
  uint64_t prev = 0;
  int prev_leading = -1;  // no window yet
  int prev_meaningful = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t bits = DoubleBits(values[i]);
    if (i == 0) {
      writer.Write(bits, 64);
      prev = bits;
      continue;
    }
    uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      writer.WriteBit(false);
      continue;
    }
    int leading = std::countl_zero(x);
    int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit field
    int meaningful = 64 - leading - trailing;
    if (prev_leading >= 0 && leading >= prev_leading &&
        64 - prev_leading - prev_meaningful <= trailing) {
      // Reuse the previous window: '10' + payload in one call when they
      // fit a word together.
      const uint64_t payload =
          x >> (64 - prev_leading - prev_meaningful);
      if (prev_meaningful <= 62) {
        writer.Write((uint64_t{0b10} << prev_meaningful) | payload,
                     2 + prev_meaningful);
      } else {
        writer.Write(0b10, 2);
        writer.Write(payload, prev_meaningful);
      }
    } else {
      // New window: '11' + 5-bit leading + 6-bit (meaningful-1) header is
      // always 13 bits — one call — then the payload.
      writer.Write((uint64_t{0b11} << 11) |
                       (static_cast<uint64_t>(leading) << 6) |
                       static_cast<uint64_t>(meaningful - 1),
                   13);
      writer.Write(x >> trailing, meaningful);
      prev_leading = leading;
      prev_meaningful = meaningful;
    }
  }
  writer.Finish();
}

Status DecodeGorilla(std::string_view data, size_t count,
                     std::vector<double>* out) {
  BitReader reader(data);
  uint64_t prev = 0;
  int window_leading = -1;
  int window_meaningful = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0) {
      if (!reader.Read(64, &prev)) {
        return Status::Corruption("gorilla: truncated first value");
      }
      out->push_back(BitsToDouble(prev));
      continue;
    }
    bool differs;
    if (!reader.ReadBit(&differs)) {
      return Status::Corruption("gorilla: truncated control bit");
    }
    if (!differs) {
      out->push_back(BitsToDouble(prev));
      continue;
    }
    bool new_window;
    if (!reader.ReadBit(&new_window)) {
      return Status::Corruption("gorilla: truncated window bit");
    }
    if (new_window) {
      uint64_t header;
      if (!reader.Read(11, &header)) {
        return Status::Corruption("gorilla: truncated window header");
      }
      window_leading = static_cast<int>(header >> 6);
      window_meaningful = static_cast<int>(header & 0x3F) + 1;
      if (window_leading + window_meaningful > 64) {
        // The encoder never emits an over-wide window; only corrupt or
        // garbage input reaches here (a negative shift below otherwise).
        return Status::Corruption("gorilla: invalid window header");
      }
    } else if (window_leading < 0) {
      return Status::Corruption("gorilla: window reuse before definition");
    }
    uint64_t payload;
    if (!reader.Read(window_meaningful, &payload)) {
      return Status::Corruption("gorilla: truncated payload");
    }
    int trailing = 64 - window_leading - window_meaningful;
    uint64_t x = payload << trailing;
    prev ^= x;
    out->push_back(BitsToDouble(prev));
  }
  return Status::OK();
}

}  // namespace

void EncodeValues(ValueEncoding encoding, const std::vector<double>& values,
                  std::string* dst) {
  if (encoding == ValueEncoding::kGorilla) {
    EncodeGorilla(values, dst);
    return;
  }
  EncodeF64LE(values.data(), values.size(), dst);
}

Status DecodeValues(ValueEncoding encoding, std::string_view data,
                    size_t count, std::vector<double>* out) {
  out->reserve(out->size() + count);
  if (encoding == ValueEncoding::kGorilla) {
    return DecodeGorilla(data, count, out);
  }
  if (data.size() != count * 8) {
    return Status::Corruption("raw value section size mismatch");
  }
  const size_t base = out->size();
  out->resize(base + count);
  DecodeF64LE(data.data(), count, out->data() + base);
  return Status::OK();
}

}  // namespace seplsm::format
