#ifndef SEPLSM_FORMAT_SIMD_H_
#define SEPLSM_FORMAT_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace seplsm::format {

/// Runtime-dispatched SIMD layer for the block codecs (DESIGN.md §13).
///
/// Every kernel has a scalar reference implementation and, per
/// architecture, a vector fast path that produces BYTE-IDENTICAL output —
/// the on-disk format is defined by the scalar code, the SIMD paths are
/// pure speed. tests/codec_simd_test.cc fuzzes the equivalence (≥1000
/// seeded iterations) and pins golden encoded blocks, so a fast path that
/// drifts from the reference cannot land.
///
/// Dispatch is resolved once per process:
///  - compiled out entirely with -DSEPLSM_SIMD=OFF (macro
///    SEPLSM_SIMD_DISABLED) — CI keeps a scalar-only matrix leg;
///  - forced to scalar at runtime with SEPLSM_SIMD=off|0|scalar in the
///    environment (used to A/B the paths on one binary);
///  - otherwise SSE2 on x86-64 (baseline, always present) and NEON on
///    arm64 where a kernel has a NEON variant (the rest use scalar).
enum class SimdLevel {
  kScalar = 0,
  kSSE2,
  kNEON,
};

/// The level the kernels below actually dispatch to (cached).
SimdLevel ActiveSimdLevel();

/// "scalar" | "sse2" | "neon" — for bench/telemetry JSON.
const char* SimdLevelName();

/// Length of the longest prefix of `data` whose bytes all have the high
/// bit clear — i.e. how many complete one-byte varints start the buffer.
/// The workhorse of batched varint decode: regular time series encode
/// almost every time/delay delta in one byte, so the decode loop rides
/// this 16-bytes-per-instruction scan instead of a per-byte branch.
size_t CountOneByteVarints(const uint8_t* data, size_t len);

/// Appends `count` doubles to *dst as little-endian IEEE-754 fixed64 —
/// the kRaw value column.
void EncodeF64LE(const double* values, size_t count, std::string* dst);

/// Decodes `count` little-endian fixed64 doubles from `data` (which must
/// hold at least count * 8 bytes) into `out`.
void DecodeF64LE(const char* data, size_t count, double* out);

/// Appends `count` int64s as zigzag varints to *dst (identical bytes to a
/// PutVarint64Signed loop). Fast path: chunks whose zigzag values all fit
/// one byte are emitted with no per-value branch.
void EncodeZigZagVarints(const int64_t* values, size_t count,
                         std::string* dst);

/// Decodes exactly `count` zigzag varints from the front of *input into
/// `out`, consuming them; false on truncation/overflow (same acceptance
/// set as a GetVarint64Signed loop, and the same prefix of `out` filled).
bool DecodeZigZagVarints(std::string_view* input, size_t count, int64_t* out);

/// Scalar reference implementations — the format-defining code paths.
/// Exposed so the equivalence fuzz can compare them against the
/// dispatched kernels inside one binary.
namespace scalar {
size_t CountOneByteVarints(const uint8_t* data, size_t len);
void EncodeF64LE(const double* values, size_t count, std::string* dst);
void DecodeF64LE(const char* data, size_t count, double* out);
void EncodeZigZagVarints(const int64_t* values, size_t count,
                         std::string* dst);
bool DecodeZigZagVarints(std::string_view* input, size_t count, int64_t* out);
}  // namespace scalar

}  // namespace seplsm::format

#endif  // SEPLSM_FORMAT_SIMD_H_
