#include "format/table_format.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace seplsm::format {

void EncodeIndex(const std::vector<BlockIndexEntry>& entries,
                 std::string* dst) {
  std::string body;
  PutVarint64(&body, entries.size());
  for (const auto& e : entries) {
    PutVarint64Signed(&body, e.min_generation_time);
    PutVarint64Signed(&body, e.max_generation_time);
    PutVarint64(&body, e.offset);
    PutVarint64(&body, e.size);
    PutVarint64(&body, e.point_count);
  }
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body)));
  dst->append(body);
}

Status DecodeIndex(std::string_view data,
                   std::vector<BlockIndexEntry>* entries) {
  entries->clear();
  if (data.size() < 4) return Status::Corruption("index too small");
  std::string_view payload = data.substr(0, data.size() - 4);
  uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(data.data() + data.size() - 4));
  if (crc32c::Value(payload) != stored_crc) {
    return Status::Corruption("index checksum mismatch");
  }
  uint64_t count;
  if (!GetVarint64(&payload, &count)) {
    return Status::Corruption("index count truncated");
  }
  entries->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BlockIndexEntry e;
    if (!GetVarint64Signed(&payload, &e.min_generation_time) ||
        !GetVarint64Signed(&payload, &e.max_generation_time) ||
        !GetVarint64(&payload, &e.offset) || !GetVarint64(&payload, &e.size) ||
        !GetVarint64(&payload, &e.point_count)) {
      return Status::Corruption("index entry truncated");
    }
    entries->push_back(e);
  }
  return Status::OK();
}

namespace {

// Doubles travel as their IEEE-754 bit pattern in a fixed64.
void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

bool GetDouble(std::string_view* input, double* v) {
  uint64_t bits;
  if (!GetFixed64(input, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

}  // namespace

void EncodeTableMetadata(const TableMetadata& meta, std::string* dst) {
  std::string body;
  PutVarint64(&body, meta.zone_maps.size());
  for (const auto& z : meta.zone_maps) {
    PutDouble(&body, z.min_value);
    PutDouble(&body, z.max_value);
  }
  PutVarint64Signed(&body, meta.summary_window);
  PutVarint64(&body, meta.summaries.size());
  for (const auto& s : meta.summaries) {
    PutVarint64Signed(&body, s.window_start);
    PutVarint64(&body, s.count);
    PutDouble(&body, s.sum);
    PutDouble(&body, s.min);
    PutDouble(&body, s.max);
    PutVarint64Signed(&body, s.first_time);
    PutDouble(&body, s.first_value);
    PutVarint64Signed(&body, s.last_time);
    PutDouble(&body, s.last_value);
  }
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body)));
  dst->append(body);
}

Status DecodeTableMetadata(std::string_view data, TableMetadata* meta) {
  *meta = TableMetadata();
  if (data.size() < 4) return Status::Corruption("table metadata too small");
  std::string_view payload = data.substr(0, data.size() - 4);
  uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(data.data() + data.size() - 4));
  if (crc32c::Value(payload) != stored_crc) {
    return Status::Corruption("table metadata checksum mismatch");
  }
  uint64_t zone_count;
  if (!GetVarint64(&payload, &zone_count) ||
      zone_count > payload.size() / 16) {
    return Status::Corruption("table metadata zone count truncated");
  }
  meta->zone_maps.reserve(zone_count);
  for (uint64_t i = 0; i < zone_count; ++i) {
    BlockZoneMap z;
    if (!GetDouble(&payload, &z.min_value) ||
        !GetDouble(&payload, &z.max_value)) {
      return Status::Corruption("table metadata zone map truncated");
    }
    meta->zone_maps.push_back(z);
  }
  uint64_t summary_count;
  if (!GetVarint64Signed(&payload, &meta->summary_window) ||
      !GetVarint64(&payload, &summary_count)) {
    return Status::Corruption("table metadata summary header truncated");
  }
  if (meta->summary_window < 0) {
    return Status::Corruption("table metadata negative summary window");
  }
  // Each summary is at least 9 bytes; bound reserve by the payload left.
  if (summary_count > payload.size() / 9) {
    return Status::Corruption("table metadata summary count truncated");
  }
  meta->summaries.reserve(summary_count);
  for (uint64_t i = 0; i < summary_count; ++i) {
    WindowSummary s;
    if (!GetVarint64Signed(&payload, &s.window_start) ||
        !GetVarint64(&payload, &s.count) || !GetDouble(&payload, &s.sum) ||
        !GetDouble(&payload, &s.min) || !GetDouble(&payload, &s.max) ||
        !GetVarint64Signed(&payload, &s.first_time) ||
        !GetDouble(&payload, &s.first_value) ||
        !GetVarint64Signed(&payload, &s.last_time) ||
        !GetDouble(&payload, &s.last_value)) {
      return Status::Corruption("table metadata summary truncated");
    }
    meta->summaries.push_back(s);
  }
  return Status::OK();
}

void EncodeFooter(const Footer& footer, std::string* dst) {
  PutFixed64(dst, footer.index_offset);
  PutFixed64(dst, footer.index_size);
  PutFixed64(dst, footer.point_count);
  PutFixed64(dst, static_cast<uint64_t>(footer.min_generation_time));
  PutFixed64(dst, static_cast<uint64_t>(footer.max_generation_time));
  if (footer.has_metadata) {
    PutFixed64(dst, footer.meta_offset);
    PutFixed64(dst, footer.meta_size);
    PutFixed64(dst, kTableMagicV2);
  } else {
    PutFixed64(dst, kTableMagic);
  }
}

Status DecodeFooter(std::string_view data, Footer* footer) {
  if (data.size() != kFooterSize && data.size() != kFooterV2Size) {
    return Status::Corruption("footer size mismatch");
  }
  uint64_t magic = DecodeFixed64(data.data() + data.size() - 8);
  const char* p = data.data();
  footer->index_offset = DecodeFixed64(p);
  footer->index_size = DecodeFixed64(p + 8);
  footer->point_count = DecodeFixed64(p + 16);
  footer->min_generation_time = static_cast<int64_t>(DecodeFixed64(p + 24));
  footer->max_generation_time = static_cast<int64_t>(DecodeFixed64(p + 32));
  if (data.size() == kFooterSize) {
    footer->meta_offset = 0;
    footer->meta_size = 0;
    footer->has_metadata = false;
    if (magic != kTableMagic) return Status::Corruption("bad table magic");
    return Status::OK();
  }
  footer->meta_offset = DecodeFixed64(p + 40);
  footer->meta_size = DecodeFixed64(p + 48);
  footer->has_metadata = true;
  if (magic != kTableMagicV2) return Status::Corruption("bad table magic");
  return Status::OK();
}

}  // namespace seplsm::format
