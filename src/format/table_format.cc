#include "format/table_format.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace seplsm::format {

void EncodeIndex(const std::vector<BlockIndexEntry>& entries,
                 std::string* dst) {
  std::string body;
  PutVarint64(&body, entries.size());
  for (const auto& e : entries) {
    PutVarint64Signed(&body, e.min_generation_time);
    PutVarint64Signed(&body, e.max_generation_time);
    PutVarint64(&body, e.offset);
    PutVarint64(&body, e.size);
    PutVarint64(&body, e.point_count);
  }
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body)));
  dst->append(body);
}

Status DecodeIndex(std::string_view data,
                   std::vector<BlockIndexEntry>* entries) {
  entries->clear();
  if (data.size() < 4) return Status::Corruption("index too small");
  std::string_view payload = data.substr(0, data.size() - 4);
  uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(data.data() + data.size() - 4));
  if (crc32c::Value(payload) != stored_crc) {
    return Status::Corruption("index checksum mismatch");
  }
  uint64_t count;
  if (!GetVarint64(&payload, &count)) {
    return Status::Corruption("index count truncated");
  }
  entries->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BlockIndexEntry e;
    if (!GetVarint64Signed(&payload, &e.min_generation_time) ||
        !GetVarint64Signed(&payload, &e.max_generation_time) ||
        !GetVarint64(&payload, &e.offset) || !GetVarint64(&payload, &e.size) ||
        !GetVarint64(&payload, &e.point_count)) {
      return Status::Corruption("index entry truncated");
    }
    entries->push_back(e);
  }
  return Status::OK();
}

void EncodeFooter(const Footer& footer, std::string* dst) {
  PutFixed64(dst, footer.index_offset);
  PutFixed64(dst, footer.index_size);
  PutFixed64(dst, footer.point_count);
  PutFixed64(dst, static_cast<uint64_t>(footer.min_generation_time));
  PutFixed64(dst, static_cast<uint64_t>(footer.max_generation_time));
  PutFixed64(dst, kTableMagic);
}

Status DecodeFooter(std::string_view data, Footer* footer) {
  if (data.size() != kFooterSize) {
    return Status::Corruption("footer size mismatch");
  }
  const char* p = data.data();
  footer->index_offset = DecodeFixed64(p);
  footer->index_size = DecodeFixed64(p + 8);
  footer->point_count = DecodeFixed64(p + 16);
  footer->min_generation_time = static_cast<int64_t>(DecodeFixed64(p + 24));
  footer->max_generation_time = static_cast<int64_t>(DecodeFixed64(p + 32));
  uint64_t magic = DecodeFixed64(p + 40);
  if (magic != kTableMagic) return Status::Corruption("bad table magic");
  return Status::OK();
}

}  // namespace seplsm::format
